// Package southwell is a from-scratch Go reproduction of
//
//	J. Wolfson-Pou and E. Chow, "Distributed Southwell: An Iterative
//	Method with Low Communication Costs", SC17.
//
// The library lives under internal/: sparse matrices (internal/sparse),
// problem generators and the synthetic SuiteSparse stand-ins
// (internal/problem), a multilevel graph partitioner (internal/partition),
// a simulated one-sided MPI runtime (internal/rma), the scalar and
// distributed solver families (internal/solvers, internal/dmem), geometric
// multigrid (internal/multigrid), the public facade (internal/core), and
// the experiment harness regenerating every table and figure of the paper
// (internal/bench). See README.md, DESIGN.md, and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate scaled-down versions of each
// experiment; use cmd/benchtables for the full configurations.
package southwell
