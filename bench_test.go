package southwell_test

import (
	"io"
	"testing"

	"southwell/internal/bench"
	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/multigrid"
	"southwell/internal/partition"
	"southwell/internal/pqueue"
	"southwell/internal/problem"
	"southwell/internal/solvers"
	"southwell/internal/sparse"
)

// quick is the scaled-down configuration used so `go test -bench=.`
// completes in minutes; cmd/benchtables runs the full configurations.
func quick() bench.Config { return bench.Config{Quick: true, Ranks: 64, Seed: 1} }

// ---- One benchmark per paper table/figure ------------------------------

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig2(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Table2(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Table3(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Table4(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Fig7(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Fig8(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := bench.Fig9(io.Discard, quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Kernel micro-benchmarks -------------------------------------------

func benchMatrix() *sparse.CSR {
	a := problem.Poisson2D(100, 100)
	if _, err := sparse.Scale(a); err != nil {
		panic(err)
	}
	return a
}

func BenchmarkSpMV(b *testing.B) {
	a := benchMatrix()
	x := problem.RandomVec(a.N, 1)
	y := make([]float64, a.N)
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkGaussSeidelSweep(b *testing.B) {
	a := benchMatrix()
	for i := 0; i < b.N; i++ {
		bb, x := problem.RandomBSystem(a, 1)
		solvers.GaussSeidel(a, bb, x, solvers.Options{MaxRelax: a.N})
	}
}

func BenchmarkSequentialSouthwellSweep(b *testing.B) {
	a := benchMatrix()
	for i := 0; i < b.N; i++ {
		bb, x := problem.RandomBSystem(a, 1)
		solvers.SequentialSouthwell(a, bb, x, solvers.Options{MaxRelax: a.N})
	}
}

func BenchmarkDistSWScalarSweep(b *testing.B) {
	a := benchMatrix()
	for i := 0; i < b.N; i++ {
		bb, x := problem.RandomBSystem(a, 1)
		solvers.DistributedSouthwell(a, bb, x, solvers.Options{MaxRelax: a.N})
	}
}

func BenchmarkPartition64(b *testing.B) {
	a := benchMatrix()
	for i := 0; i < b.N; i++ {
		partition.Partition(a, 64, partition.Options{Seed: int64(i)})
	}
}

func BenchmarkLayoutBuild(b *testing.B) {
	a := benchMatrix()
	part := partition.Partition(a, 64, partition.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dmem.NewLayout(a, part, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistSWStep(b *testing.B) {
	// Cost of one Distributed Southwell parallel step at 64 ranks.
	a := benchMatrix()
	part := partition.Partition(a, 64, partition.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l, err := dmem.NewLayout(a, part, 64)
		if err != nil {
			b.Fatal(err)
		}
		bb, x := problem.ZeroBSystem(a, 1)
		b.StartTimer()
		dmem.DistributedSouthwell(l, bb, x, dmem.Config{Steps: 10})
	}
}

func BenchmarkVCycleGS(b *testing.B) {
	h, err := multigrid.New(127, multigrid.GaussSeidel{})
	if err != nil {
		b.Fatal(err)
	}
	n := 127 * 127
	bb := problem.RandomVec(n, 1)
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.VCycle(bb, x)
	}
}

func BenchmarkVCycleDistSW(b *testing.B) {
	h, err := multigrid.New(127, multigrid.DistSW{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := 127 * 127
	bb := problem.RandomVec(n, 1)
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.VCycle(bb, x)
	}
}

func BenchmarkIndexedHeap(b *testing.B) {
	prio := problem.RandomVec(10000, 1)
	h := pqueue.New(prio)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := h.Max()
		h.Update(k, 0)
		h.Update((k+37)%10000, float64(i%1000))
	}
}

func BenchmarkSolveDistributedParallelEngine(b *testing.B) {
	a := benchMatrix()
	for i := 0; i < b.N; i++ {
		bb, x := problem.ZeroBSystem(a, 1)
		if _, err := core.SolveDistributed(a, bb, x, core.DistOptions{
			Method: core.DistSWD, Ranks: 64, Steps: 10, Parallel: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
