// Command dsouthwell mirrors the paper artifact's DMEM_Southwell driver: it
// loads or generates a test matrix, scales it to unit diagonal, prepares a
// random initial guess (or right-hand side), partitions it over simulated
// MPI ranks, runs the selected solver for a number of parallel steps, and
// reports the solve statistics.
//
// Examples:
//
//	dsouthwell -mat af_5_k101 -n 1024 -solver sos_sds -sweep_max 20
//	dsouthwell -solver bj -n 256                  # default Laplace problem
//	dsouthwell -mat_file m.mtx -solver ps -x_zeros
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/obs"
	kernpool "southwell/internal/parallel"
	"southwell/internal/problem"
	"southwell/internal/rma"
	"southwell/internal/sparse"
)

// options are the validated run settings derived from flags.
type options struct {
	method core.DistMethod
	local  dmem.LocalSolver
	faults *rma.FaultPlan
}

// parseSched resolves the -sched flag (shared vocabulary with
// cmd/benchtables).
func parseSched(s string) (rma.Sched, error) {
	switch s {
	case "barrier":
		return rma.SchedBarrier, nil
	case "neighbor", "nbr":
		return rma.SchedNeighbor, nil
	}
	return 0, fmt.Errorf("-sched %q: unknown (use barrier or neighbor)", s)
}

// validateOutFile checks an output-file flag up front: the path must not
// be an existing directory and its parent directory must exist, so a typo
// fails before the run instead of after minutes of simulation.
func validateOutFile(flagName, path string) error {
	if path == "" {
		return nil
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return fmt.Errorf("%s %q: is a directory, want a file path", flagName, path)
	}
	if dir := filepath.Dir(path); dir != "." {
		fi, err := os.Stat(dir)
		if err != nil {
			return fmt.Errorf("%s %q: parent directory %q does not exist", flagName, path, dir)
		}
		if !fi.IsDir() {
			return fmt.Errorf("%s %q: parent %q is not a directory", flagName, path, dir)
		}
	}
	return nil
}

// validate checks every flag value up front, so misuse fails with a
// one-line message and exit status 2 instead of a deep panic or a
// confusing error mid-run.
func validate(ranks, sweepMax, grid int, solver, locSolver string, target, chaos float64, chaosSeed int64, kernWorkers int, trace, metrics string) (options, error) {
	var o options
	if ranks <= 0 {
		return o, fmt.Errorf("-n %d: need at least 1 simulated rank", ranks)
	}
	if kernWorkers < 0 {
		return o, fmt.Errorf("-kernel-workers %d: must be >= 1 (or 0 for GOMAXPROCS)", kernWorkers)
	}
	if err := validateOutFile("-trace", trace); err != nil {
		return o, err
	}
	if err := validateOutFile("-metrics", metrics); err != nil {
		return o, err
	}
	if trace != "" && trace == metrics {
		return o, fmt.Errorf("-trace and -metrics %q: must be different files", trace)
	}
	if sweepMax <= 0 {
		return o, fmt.Errorf("-sweep_max %d: need at least 1 parallel step", sweepMax)
	}
	if grid < 2 {
		return o, fmt.Errorf("-grid %d: need at least 2", grid)
	}
	if target < 0 {
		return o, fmt.Errorf("-target %g: must be >= 0", target)
	}
	var err error
	if o.method, err = core.ParseDistMethod(solver); err != nil {
		return o, fmt.Errorf("-solver %q: unknown (use sos_sds, ds, ps, bj, or pb16)", solver)
	}
	switch locSolver {
	case "gs":
		o.local = dmem.LocalGS
	case "direct", "pardiso":
		o.local = dmem.LocalDirect
	case "auto":
		o.local = dmem.LocalAuto
	default:
		return o, fmt.Errorf("-loc_solver %q: unknown (use gs, direct, pardiso, or auto)", locSolver)
	}
	if chaos < 0 || chaos > 1 {
		return o, fmt.Errorf("-chaos %g: must be a probability in [0, 1]", chaos)
	}
	if chaos > 0 {
		o.faults = rma.DelayPlan(chaosSeed, chaos, 3)
	}
	return o, nil
}

func main() {
	var (
		matName  = flag.String("mat", "", "synthetic suite matrix name (see -list)")
		matFile  = flag.String("mat_file", "", "MatrixMarket file to load instead")
		list     = flag.Bool("list", false, "list suite matrix names and exit")
		ranks    = flag.Int("n", 256, "number of simulated MPI processes")
		solver   = flag.String("solver", "sos_sds", "solver: sos_sds (Distributed Southwell), ps, bj, pb16")
		sweepMax = flag.Int("sweep_max", 20, "number of parallel steps")
		target   = flag.Float64("target", 0, "stop early at this residual norm (0 = run all steps)")
		locSolve = flag.String("loc_solver", "gs", "local subdomain solver: gs (one Gauss-Seidel sweep), direct (sparse LDLT, the artifact's PARDISO option), or auto (per-rank dense/sparse crossover)")
		xZeros   = flag.Bool("x_zeros", false, "x = 0 and random b (default: random x, b = 0)")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Bool("goroutines", false, "alias for -par (kept for artifact compatibility)")
		par      = flag.Bool("par", false, "run simulated ranks on the persistent worker-pool engine")
		active   = flag.Bool("active", true, "active-set stepping: skip provably quiescent ranks (bit-identical results; -active=false forces dense stepping)")
		sched    = flag.String("sched", "barrier", "pool-engine epoch discipline: barrier (global) or neighbor (per-neighborhood PSCW groups; implies -par). Results are identical either way")
		kernWkrs = flag.Int("kernel-workers", 0, "workers for the shared numerical-kernel pool; results are identical for every value (0 = SOUTHWELL_KERNEL_WORKERS env or GOMAXPROCS, 1 = sequential kernels)")
		grid     = flag.Int("grid", 100, "grid dimension for the default Laplace problem")
		chaos    = flag.Float64("chaos", 0, "inject delay faults: per-message probability of a 1-3 phase delivery delay (0 = perfect network)")
		chaosSd  = flag.Int64("chaos-seed", 1, "fault-injection seed (chaos runs are bit-reproducible per seed)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (open in Perfetto; one track per simulated rank)")
		metrics  = flag.String("metrics", "", "write a plain-text per-step / per-rank metrics summary of the run to this file")
		cpuProf  = flag.String("cpuprofile", "", "write pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write pprof heap profile to this file on exit")
	)
	flag.Parse()

	opts, err := validate(*ranks, *sweepMax, *grid, *solver, *locSolve, *target, *chaos, *chaosSd, *kernWkrs, *traceOut, *metrics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
		os.Exit(2)
	}
	schedVal, err := parseSched(*sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
		os.Exit(2)
	}
	if *kernWkrs > 0 {
		kernpool.SetDefaultWorkers(*kernWkrs)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range problem.Suite() {
			fmt.Printf("%-12s %s\n", e.Name, e.Kind)
		}
		return
	}

	a, label, err := loadMatrix(*matName, *matFile, *grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
		os.Exit(1)
	}
	if _, err := sparse.Scale(a); err != nil {
		fmt.Fprintf(os.Stderr, "dsouthwell: scaling: %v\n", err)
		os.Exit(1)
	}

	var b, x []float64
	if *xZeros {
		b, x = problem.RandomBSystem(a, *seed)
	} else {
		b, x = problem.ZeroBSystem(a, *seed)
	}

	fmt.Printf("matrix:    %s (n=%d, nnz=%d)\n", label, a.N, a.NNZ())
	fmt.Printf("solver:    %s, %d ranks, %d parallel steps\n", opts.method, *ranks, *sweepMax)
	if opts.faults != nil {
		fmt.Printf("chaos:     delay prob %g, max 3 phases, seed %d\n", *chaos, *chaosSd)
	}

	opt := core.DistOptions{
		Method: opts.method, Ranks: *ranks, Steps: *sweepMax, Target: *target,
		PartSeed: *seed,
		Parallel: *parallel || *par || schedVal == rma.SchedNeighbor,
		Sched:    schedVal, Local: opts.local, Dense: !*active,
		Faults: opts.faults,
	}
	var rec *obs.Recorder
	var poolBase kernpool.PoolStats
	if *traceOut != "" || *metrics != "" {
		rec = obs.NewRecorder(*ranks)
		rec.SetLabel(fmt.Sprintf("%s %s p=%d", label, opts.method, *ranks))
		opt.Trace = rec
		poolBase = kernpool.Default().Stats()
	}
	res, err := core.SolveDistributed(a, b, x, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsouthwell: %v\n", err)
		os.Exit(1)
	}
	if rec != nil {
		ps := kernpool.Default().Stats()
		rec.SetPool(obs.PoolStats{
			Regions: ps.Regions - poolBase.Regions,
			Blocks:  ps.Blocks - poolBase.Blocks,
			Width:   ps.Width,
		})
		if err := writeObs(*traceOut, rec.WriteTrace); err != nil {
			fmt.Fprintf(os.Stderr, "dsouthwell: -trace: %v\n", err)
			os.Exit(1)
		}
		if err := writeObs(*metrics, rec.WriteMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "dsouthwell: -metrics: %v\n", err)
			os.Exit(1)
		}
	}

	fin := res.Final()
	fmt.Printf("\nresidual norm:      %.6g (from 1.0)\n", fin.ResNorm)
	fmt.Printf("parallel steps:     %d\n", fin.Step)
	fmt.Printf("relaxations/n:      %.3f\n", float64(fin.Relaxations)/float64(res.N))
	fmt.Printf("active processes:   %.3f\n", res.ActiveFraction)
	fmt.Printf("messages:           %d solve + %d residual = %d total\n",
		res.Stats.SolveMsgs, res.Stats.ResMsgs, res.Stats.TotalMsgs())
	fmt.Printf("communication cost: %.3f (messages/rank)\n", res.Stats.CommCost(res.P))
	fmt.Printf("sim wall-clock:     %.6f s (alpha-beta-gamma model)\n", res.Stats.SimTime)
	if len(res.ActiveHist) > 0 {
		sum := 0
		for _, n := range res.ActiveHist {
			sum += n
		}
		mean := float64(sum) / float64(len(res.ActiveHist))
		fmt.Printf("active-set engine:  mean %.1f/%d ranks stepped (%.1f%% skipped)\n",
			mean, res.P, 100*(1-mean/float64(res.P)))
	}
	if opts.faults != nil {
		fmt.Printf("faults injected:    %d delayed, %d duplicated, %d reordered, %d paused rank-phases\n",
			res.Stats.DelayedMsgs, res.Stats.DupMsgs, res.Stats.ReorderedBatches, res.Stats.PausedRankPhases)
	}
	if res.Deadlocked {
		fmt.Printf("DEADLOCKED at step %d (stagnation watchdog)\n", res.DeadlockStep)
	}
}

// writeObs writes one observability export to path (no-op when empty).
func writeObs(path string, fn func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadMatrix(name, file string, grid int) (*sparse.CSR, string, error) {
	switch {
	case name != "" && file != "":
		return nil, "", fmt.Errorf("use only one of -mat and -mat_file")
	case name != "":
		e, ok := problem.SuiteByName(name)
		if !ok {
			return nil, "", fmt.Errorf("unknown suite matrix %q (try -list)", name)
		}
		return e.Gen(), name, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, "", err
		}
		return a, file, nil
	default:
		// The artifact's default: a 5-point Laplace problem.
		return problem.Poisson2D(grid, grid), fmt.Sprintf("laplace-%dx%d", grid, grid), nil
	}
}
