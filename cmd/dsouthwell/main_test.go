package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"southwell/internal/core"
	"southwell/internal/dmem"
)

type flagCase struct {
	name        string
	ranks       int
	sweepMax    int
	grid        int
	solver      string
	locSolver   string
	target      float64
	chaos       float64
	kernWorkers int
	trace       string
	metrics     string
}

func good() flagCase {
	return flagCase{ranks: 256, sweepMax: 20, grid: 100, solver: "sos_sds", locSolver: "gs"}
}

func (c flagCase) run() (options, error) {
	return validate(c.ranks, c.sweepMax, c.grid, c.solver, c.locSolver, c.target, c.chaos, 1, c.kernWorkers, c.trace, c.metrics)
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		mutate func(*flagCase)
		want   string
	}{
		{func(c *flagCase) { c.ranks = 0 }, "-n"},
		{func(c *flagCase) { c.ranks = -4 }, "-n"},
		{func(c *flagCase) { c.sweepMax = 0 }, "-sweep_max"},
		{func(c *flagCase) { c.grid = 1 }, "-grid"},
		{func(c *flagCase) { c.target = -1 }, "-target"},
		{func(c *flagCase) { c.solver = "cg" }, "-solver"},
		{func(c *flagCase) { c.solver = "" }, "-solver"},
		{func(c *flagCase) { c.locSolver = "ilu" }, "-loc_solver"},
		{func(c *flagCase) { c.chaos = -0.1 }, "-chaos"},
		{func(c *flagCase) { c.chaos = 1.5 }, "-chaos"},
		{func(c *flagCase) { c.kernWorkers = -1 }, "-kernel-workers"},
		{func(c *flagCase) { c.trace = "." }, "-trace"},
		{func(c *flagCase) { c.metrics = "." }, "-metrics"},
		{func(c *flagCase) { c.trace = "no/such/dir/t.json" }, "-trace"},
		{func(c *flagCase) { c.metrics = "no/such/dir/m.txt" }, "-metrics"},
		{func(c *flagCase) { c.trace, c.metrics = "same.out", "same.out" }, "-metrics"},
	}
	for _, tc := range cases {
		c := good()
		tc.mutate(&c)
		_, err := c.run()
		if err == nil {
			t.Errorf("%+v: accepted", c)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not name the flag %q", c, err, tc.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%+v: error is not one line: %q", c, err)
		}
	}
}

func TestValidateAcceptsGoodFlags(t *testing.T) {
	c := good()
	o, err := c.run()
	if err != nil {
		t.Fatal(err)
	}
	if o.method != core.DistSWD || o.local != dmem.LocalGS || o.faults != nil {
		t.Errorf("defaults misparsed: %+v", o)
	}

	c.solver, c.locSolver = "pb16", "pardiso"
	if o, err = c.run(); err != nil {
		t.Fatal(err)
	}
	if o.method != core.Piggyback2016 || o.local != dmem.LocalDirect {
		t.Errorf("aliases misparsed: %+v", o)
	}

	c = good()
	c.locSolver = "auto"
	if o, err = c.run(); err != nil {
		t.Fatal(err)
	}
	if o.local != dmem.LocalAuto {
		t.Errorf("-loc_solver auto misparsed: %+v", o)
	}

	c = good()
	c.chaos = 0.25
	if o, err = c.run(); err != nil {
		t.Fatal(err)
	}
	if o.faults == nil || o.faults.DelayProb != 0.25 {
		t.Errorf("chaos plan not built: %+v", o.faults)
	}

	// Distinct trace/metrics files into an existing directory are fine, as
	// is overwriting an existing regular file.
	c = good()
	dir := t.TempDir()
	existing := filepath.Join(dir, "old.trace.json")
	if err := os.WriteFile(existing, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.trace = existing
	c.metrics = filepath.Join(dir, "run.metrics.txt")
	c.kernWorkers = 2
	if _, err = c.run(); err != nil {
		t.Errorf("valid trace/metrics paths rejected: %v", err)
	}
}
