package main

import (
	"os"
	"testing"

	"southwell/internal/analysis/registry"
)

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range registry.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is incomplete", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"detrand", "maporder", "clonerheld", "phaseabsorb", "floatcmp"} {
		if !names[want] {
			t.Errorf("registry is missing analyzer %q", want)
		}
	}
}

func TestLintCleanPackage(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if code := lint([]string{"southwell/internal/analysis/lintutil"}, null, null); code != 0 {
		t.Fatalf("lint on a clean package exited %d, want 0", code)
	}
	if code := lint([]string{"southwell/internal/no/such/package"}, null, null); code != 2 {
		t.Fatalf("lint on a bogus pattern exited %d, want 2", code)
	}
}
