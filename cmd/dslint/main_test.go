package main

import (
	"io"
	"strings"
	"testing"

	"southwell/internal/analysis/registry"
)

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range registry.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is incomplete", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"detrand", "maporder", "clonerheld", "phaseabsorb", "floatcmp",
		"callgraph", "hotalloc", "walltime", "staleignore",
	} {
		if !names[want] {
			t.Errorf("registry is missing analyzer %q", want)
		}
	}
	// Ordering constraints: callgraph produces the facts hotalloc and
	// walltime consume, and staleignore inspects directive-consumption
	// flags every other analyzer may set.
	idx := map[string]int{}
	for i, a := range registry.Analyzers() {
		idx[a.Name] = i
	}
	if idx["callgraph"] > idx["hotalloc"] || idx["callgraph"] > idx["walltime"] {
		t.Error("callgraph must run before hotalloc and walltime")
	}
	if idx["staleignore"] != len(registry.Analyzers())-1 {
		t.Error("staleignore must run last")
	}
}

func TestLintCleanPackage(t *testing.T) {
	cfg := config{patterns: []string{"southwell/internal/analysis/lintutil"}}
	if code := lint(cfg, io.Discard, io.Discard); code != 0 {
		t.Fatalf("lint on a clean package exited %d, want 0", code)
	}
	cfg.patterns = []string{"southwell/internal/no/such/package"}
	if code := lint(cfg, io.Discard, io.Discard); code != 2 {
		t.Fatalf("lint on a bogus pattern exited %d, want 2", code)
	}
}

// TestLintFixCleanPackage smoke-tests the -fix path (make lint-fix): on a
// clean package there is nothing to fix and nothing left to report, so the
// run must be a no-op with exit 0 and no output. (ApplyFixes semantics on
// real findings are pinned by the staleignore fix tests.)
func TestLintFixCleanPackage(t *testing.T) {
	cfg := config{
		patterns: []string{"southwell/internal/analysis/lintutil"},
		fix:      true,
	}
	var out strings.Builder
	if code := lint(cfg, &out, io.Discard); code != 0 {
		t.Fatalf("lint -fix on a clean package exited %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Fatalf("lint -fix on a clean package produced output:\n%s", out.String())
	}
}
