// dslint machine-checks the repo's determinism and fault-safety
// invariants: the project-specific rules that no generic linter knows
// (DESIGN.md §8, §12). It is a multichecker in the style of
// golang.org/x/tools/go/analysis, built on the repo's offline analysis
// framework (internal/analysis/framework) and driven by a parallel,
// content-hash-cached driver (internal/analysis/driver): packages are
// analyzed concurrently across the import DAG, and a warm run re-analyzes
// only packages whose sources (or whose in-module dependencies' sources)
// changed, restoring diagnostics and interprocedural facts from the cache.
//
// Usage:
//
//	go run ./cmd/dslint [flags] [packages]
//
// Packages default to ./.... Each finding prints as
// file:line:col: analyzer: message, deduplicated and sorted, so two runs
// over the same tree produce byte-identical output (cached or not). The
// exit status is 1 when there are findings, 2 when loading or analysis
// itself failed, 0 when clean.
//
// -fix applies suggested fixes (today: deleting stale //dslint:ignore
// directives) and then reports only the findings that had no fix.
// Intentional violations are suppressed in source with
// //dslint:ignore <analyzer> comments carrying a justification.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"southwell/internal/analysis/driver"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/registry"
)

// config carries the parsed flags into lint (testable without a process).
type config struct {
	patterns []string
	fix      bool
	cacheDir string // "" disables caching
	stats    bool
	parallel int
}

func main() {
	help := flag.Bool("help", false, "print the analyzer descriptions and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree, then report remaining findings")
	cache := flag.Bool("cache", true, "reuse (and refresh) the warm cache of per-package results")
	cacheDir := flag.String("cache-dir", ".dslintcache", "directory holding the warm cache")
	stats := flag.Bool("stats", false, "print analyzed/restored package counts to stderr")
	par := flag.Int("par", 0, "max packages analyzed concurrently (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dslint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the simulator's determinism and fault-safety invariants.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *help {
		for _, a := range registry.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	cfg := config{
		patterns: flag.Args(),
		fix:      *fix,
		stats:    *stats,
		parallel: *par,
	}
	if *cache {
		cfg.cacheDir = *cacheDir
	}
	os.Exit(lint(cfg, os.Stdout, os.Stderr))
}

// lint runs the registry over the patterns through the cached parallel
// driver and prints findings; it returns the process exit status.
func lint(cfg config, out, errOut io.Writer) int {
	res, err := driver.Run(driver.Options{
		Dir:       ".",
		Patterns:  cfg.patterns,
		Analyzers: registry.Analyzers(),
		CacheDir:  cfg.cacheDir,
		Parallel:  cfg.parallel,
	})
	if err != nil {
		fmt.Fprintf(errOut, "dslint: %v\n", err)
		return 2
	}
	if cfg.stats {
		fmt.Fprintf(errOut, "dslint: %d packages, %d analyzed, %d restored from cache\n",
			res.Stats.Packages, res.Stats.Analyzed, res.Stats.Restored)
	}

	diags := res.Diagnostics
	if cfg.fix {
		changed, err := framework.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(errOut, "dslint: %v\n", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintf(out, "dslint: fixed %s\n", f)
		}
		// Only findings without a machine-applicable fix remain actionable.
		var rest []framework.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "dslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
