// dslint machine-checks the repo's determinism and fault-safety
// invariants: the project-specific rules that no generic linter knows
// (DESIGN.md §8). It is a multichecker in the style of
// golang.org/x/tools/go/analysis, built on the repo's offline analysis
// framework (internal/analysis/framework).
//
// Usage:
//
//	go run ./cmd/dslint [-help] [packages]
//
// Packages default to ./.... Each finding prints as
// file:line:col: analyzer: message; the exit status is 1 when there are
// findings, 2 when loading or analysis itself failed, 0 when clean.
// Intentional violations are suppressed in source with
// //dslint:ignore <analyzer> comments carrying a justification.
package main

import (
	"flag"
	"fmt"
	"os"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/registry"
)

func main() {
	help := flag.Bool("help", false, "print the analyzer descriptions and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dslint [-help] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the simulator's determinism and fault-safety invariants.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *help {
		for _, a := range registry.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(lint(flag.Args(), os.Stdout, os.Stderr))
}

// lint runs every registered analyzer over the patterns and prints
// findings; it returns the process exit status.
func lint(patterns []string, out, errOut *os.File) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(errOut, "dslint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range registry.Analyzers() {
			diags, err := framework.Run(a, pkg)
			if err != nil {
				fmt.Fprintf(errOut, "dslint: %v\n", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintln(out, d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(errOut, "dslint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
