package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"southwell/internal/bench"
	"southwell/internal/dmem"
)

func TestValidateRejectsBadFlags(t *testing.T) {
	tmp := t.TempDir()
	file := filepath.Join(tmp, "plain.txt")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ranks, steps, par, kw int
		chaos                 float64
		trace, metrics        string
		want                  string
	}{
		{ranks: -1, want: "-ranks"},
		{steps: -5, want: "-steps"},
		{par: -2, want: "-par"},
		{kw: -1, want: "-kernel-workers"},
		{chaos: -0.5, want: "-chaos"},
		{chaos: 2, want: "-chaos"},
		{trace: file, want: "-trace"},
		{metrics: file, want: "-metrics"},
	}
	for _, tc := range cases {
		err := validate(tc.ranks, tc.steps, tc.par, tc.kw, tc.chaos, tc.trace, tc.metrics)
		if err == nil {
			t.Errorf("validate(%d,%d,%d,%g): accepted", tc.ranks, tc.steps, tc.par, tc.chaos)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not name the flag %q", err, tc.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("error is not one line: %q", err)
		}
	}
}

func TestValidateAcceptsGoodFlags(t *testing.T) {
	tmp := t.TempDir()
	for _, tc := range []struct {
		ranks, steps, par, kw int
		chaos                 float64
		trace, metrics        string
	}{
		{}, // all defaults
		{256, 120, 8, 4, 0.5, "", ""},
		{ranks: 1, kw: 1, chaos: 1},        // boundary values
		{trace: tmp, metrics: tmp},         // existing directory is fine
		{trace: filepath.Join(tmp, "new")}, // missing directory: created later
	} {
		if err := validate(tc.ranks, tc.steps, tc.par, tc.kw, tc.chaos, tc.trace, tc.metrics); err != nil {
			t.Errorf("validate(%d,%d,%d,%g): %v", tc.ranks, tc.steps, tc.par, tc.chaos, err)
		}
	}
}

func TestParseLocSolver(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want dmem.LocalSolver
	}{
		{"gs", dmem.LocalGS},
		{"direct", dmem.LocalDirect},
		{"pardiso", dmem.LocalDirect},
		{"auto", dmem.LocalAuto},
	} {
		got, err := parseLocSolver(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseLocSolver(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseLocSolver("ilu"); err == nil || !strings.Contains(err.Error(), "-loc_solver") {
		t.Errorf("bad value not rejected by flag name: %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	cfg := bench.Config{Quick: true}
	if err := run(cfg, []string{"fig99"}, ""); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Errorf("unknown experiment not rejected by name: %v", err)
	}
	if err := run(cfg, nil, ""); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("empty experiment list not rejected with usage: %v", err)
	}
}
