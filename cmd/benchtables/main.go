// Command benchtables regenerates the tables and figures of the paper's
// evaluation section on the synthetic suite and simulated runtime.
//
// Usage:
//
//	benchtables [flags] <experiment>...
//
// where each experiment is one of: fig2 fig5 fig6 fig7 fig8 fig9 table2
// table3 table4 deadlock ablation chaos scaling all ("all" excludes
// scaling, the paper-scale host-performance study — request it by name).
//
// Flags:
//
//	-ranks N       simulated process count for suite experiments (default 256)
//	-steps N       parallel-step budget override (default: per-experiment)
//	-quick         shrunken configuration (smoke test)
//	-seed S        initial guess / partition seed (default 1)
//	-out DIR       write one file per experiment into DIR instead of stdout
//	-par N         run up to N suite runs concurrently (default GOMAXPROCS;
//	               output is identical for every value)
//	-loc_solver S  local subdomain solver for every run: gs (default),
//	               direct (sparse LDLT), or auto (per-rank crossover)
//	-goroutines    run each simulated world on the rma worker-pool engine
//	-sched S       pool-engine epoch discipline: barrier (default) or
//	               neighbor (per-neighborhood PSCW epochs; implies
//	               -goroutines). Results are bit-identical either way
//	-v             log driver progress (cache skips, shared setups) to stderr
//	-chaos P       inject delay faults: each message delayed 1-3 phases with
//	               probability P (deterministic per -chaos-seed)
//	-chaos-seed S  fault-injection seed (default 1)
//	-trace DIR     write one Chrome trace-event JSON (Perfetto) per suite
//	               run into DIR
//	-metrics DIR   write one plain-text metrics summary per suite run into
//	               DIR
//	-cpuprofile F  write a pprof CPU profile to F
//	-memprofile F  write a pprof heap profile to F on exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"southwell/internal/bench"
	"southwell/internal/dmem"
	"southwell/internal/parallel"
	"southwell/internal/rma"
)

var experiments = []struct {
	name string
	run  func(io.Writer, bench.Config) error
}{
	{"fig2", bench.Fig2},
	{"fig5", bench.Fig5},
	{"fig6", bench.Fig6},
	{"table2", bench.Table2},
	{"table3", bench.Table3},
	{"table4", bench.Table4},
	{"fig7", bench.Fig7},
	{"fig8", bench.Fig8},
	{"fig9", bench.Fig9},
	{"deadlock", bench.Deadlock},
	{"ablation", bench.Ablation},
	{"chaos", bench.Chaos},
	// scaling is explicit-only (excluded from "all"): the 8192-rank rungs
	// and host-time measurement make it a standalone study, not a table.
	{"scaling", runScaling},
}

// allExcluded experiments must be requested by name.
var allExcluded = map[string]bool{"scaling": true}

// parseSched resolves the -sched flag (shared vocabulary with
// cmd/dsouthwell).
func parseSched(s string) (rma.Sched, error) {
	switch s {
	case "barrier":
		return rma.SchedBarrier, nil
	case "neighbor", "nbr":
		return rma.SchedNeighbor, nil
	}
	return 0, fmt.Errorf("-sched %q: unknown (use barrier or neighbor)", s)
}

// parseLocSolver resolves the -loc_solver flag (shared vocabulary with
// cmd/dsouthwell).
func parseLocSolver(s string) (dmem.LocalSolver, error) {
	switch s {
	case "gs":
		return dmem.LocalGS, nil
	case "direct", "pardiso":
		return dmem.LocalDirect, nil
	case "auto":
		return dmem.LocalAuto, nil
	}
	return 0, fmt.Errorf("-loc_solver %q: unknown (use gs, direct, pardiso, or auto)", s)
}

// validateOutDir checks an output-directory flag up front: an existing
// path must be a directory (a missing one is created on first write).
func validateOutDir(flagName, path string) error {
	if path == "" {
		return nil
	}
	if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
		return fmt.Errorf("%s %q: exists and is not a directory", flagName, path)
	}
	return nil
}

// validate rejects nonsensical flag combinations before any experiment
// starts, so misuse fails with one line instead of a deep panic.
func validate(ranks, steps, par, kernelWorkers int, chaos float64, trace, metrics string) error {
	if kernelWorkers < 0 {
		return fmt.Errorf("-kernel-workers %d: must be >= 1 (or 0 for GOMAXPROCS)", kernelWorkers)
	}
	if err := validateOutDir("-trace", trace); err != nil {
		return err
	}
	if err := validateOutDir("-metrics", metrics); err != nil {
		return err
	}
	if ranks < 0 {
		return fmt.Errorf("-ranks %d: must be >= 1 (or 0 for the default)", ranks)
	}
	if steps < 0 {
		return fmt.Errorf("-steps %d: must be >= 1 (or 0 for the per-experiment default)", steps)
	}
	if par < 0 {
		return fmt.Errorf("-par %d: must be >= 1 (or 0 for sequential)", par)
	}
	if chaos < 0 || chaos > 1 {
		return fmt.Errorf("-chaos %g: must be a probability in [0, 1]", chaos)
	}
	return nil
}

func main() {
	ranks := flag.Int("ranks", 0, "simulated process count (0 = default 256)")
	steps := flag.Int("steps", 0, "parallel-step budget (0 = per-experiment default)")
	quick := flag.Bool("quick", false, "shrunken smoke-test configuration")
	seed := flag.Int64("seed", 1, "initial-guess and partition seed")
	outDir := flag.String("out", "", "write one file per experiment into this directory")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "max concurrent suite runs (1 = sequential)")
	locSolver := flag.String("loc_solver", "gs", "local subdomain solver for every run: gs, direct (sparse LDLT), or auto")
	kernelWorkers := flag.Int("kernel-workers", 0, "workers for the shared numerical-kernel pool; results are identical for every value (0 = SOUTHWELL_KERNEL_WORKERS env or GOMAXPROCS, 1 = sequential kernels)")
	goroutines := flag.Bool("goroutines", false, "run simulated worlds on the rma worker-pool engine")
	active := flag.Bool("active", true, "active-set stepping: skip provably quiescent ranks (bit-identical results; -active=false forces dense stepping)")
	sched := flag.String("sched", "barrier", "pool-engine epoch discipline: barrier (global) or neighbor (per-neighborhood PSCW groups; implies -goroutines). Results are identical either way")
	verbose := flag.Bool("v", false, "log driver progress (cache-skipped cells, shared setups) to stderr")
	chaos := flag.Float64("chaos", 0, "inject delay faults into every run: per-message probability of a 1-3 phase delivery delay (0 = perfect network)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (chaos runs are bit-reproducible per seed)")
	traceDir := flag.String("trace", "", "write one Chrome trace-event JSON per suite run into this directory (open in Perfetto)")
	metricsDir := flag.String("metrics", "", "write one plain-text metrics summary per suite run into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write pprof heap profile to this file on exit")
	flag.Parse()

	if err := validate(*ranks, *steps, *par, *kernelWorkers, *chaos, *traceDir, *metricsDir); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(2)
	}
	local, err := parseLocSolver(*locSolver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(2)
	}
	schedVal, err := parseSched(*sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(2)
	}
	if *kernelWorkers > 0 {
		parallel.SetDefaultWorkers(*kernelWorkers)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := bench.Config{Ranks: *ranks, Steps: *steps, Quick: *quick, Seed: *seed,
		Par: *par, Goroutines: *goroutines || schedVal == rma.SchedNeighbor,
		Sched: schedVal, Dense: !*active, ChaosSeed: *chaosSeed, Local: local,
		TraceDir: *traceDir, MetricsDir: *metricsDir}
	if *verbose {
		cfg.LogW = os.Stderr
	}
	if *chaos > 0 {
		cfg.Faults = rma.DelayPlan(*chaosSeed, *chaos, 3)
	}
	err = run(cfg, flag.Args(), *outDir)

	// Flush profiles before exiting, even on experiment failure.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	writeMemProfile(*memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg bench.Config, args []string, outDir string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchtables [flags] fig2|fig5|fig6|fig7|fig8|fig9|table2|table3|table4|deadlock|ablation|chaos|scaling|all")
	}

	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				if !allExcluded[e.name] {
					want[e.name] = true
				}
			}
			continue
		}
		want[a] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for a := range want {
		if !known[a] {
			return fmt.Errorf("unknown experiment %q", a)
		}
	}

	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		var w io.Writer = os.Stdout
		var f *os.File
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			var err error
			f, err = os.Create(filepath.Join(outDir, e.name+".txt"))
			if err != nil {
				return err
			}
			w = f
		} else {
			fmt.Printf("==== %s ====\n", e.name)
		}
		if err := e.run(w, cfg); err != nil {
			return fmt.Errorf("%s: %v", e.name, err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", filepath.Join(outDir, e.name+".txt"))
		} else {
			fmt.Println()
		}
	}
	return nil
}

// writeMemProfile dumps a heap profile after a final GC, pprof-compatible.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
	}
}
