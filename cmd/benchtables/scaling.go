package main

// The paper-scale scaling study (results/scaling.txt): host wall-clock,
// simulated time, message counts, and peak RSS for BJ/PS/DS at
// P ∈ {256, 1024, 4096, 8192} simulated ranks on the neighborhood-epoch
// pool engine, with dense-vs-active host-time columns on the barrier
// engine (every rung audits active against dense for bit-identity); a
// point-load experiment where the active-set engine must deliver its
// headline wall-clock win (the classic Southwell setting — residual zero
// away from the load — drains the active set to a wavefront); and a
// straggler experiment where the neighborhood scheduler must beat the
// global-barrier engine on host wall-clock. Wall-clock and /proc reads are
// deliberately confined to this command: internal/bench is a deterministic
// package (dslint walltime policy) and must stay free of host-time reads.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"southwell/internal/bench"
	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/rma"
	"southwell/internal/sparse"
)

// scalingMethods is the paper's method triple, Table 2 order.
var scalingMethods = []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD}

// runScaling executes the ladder. cfg.Steps overrides the per-run budget
// (default 20 — enough steps for the engines to reach steady state without
// making the 8192-rank rungs dominate CI time); cfg.Quick shrinks the
// ladder and matrix for smoke tests.
func runScaling(w io.Writer, cfg bench.Config) error {
	matName := "Flan_1565"
	ladder := []int{256, 1024, 4096, 8192}
	if cfg.Quick {
		matName = "af_5_k101"
		ladder = []int{16, 64}
	}
	steps := cfg.Steps
	if steps == 0 {
		steps = 20
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ent, ok := problem.SuiteByName(matName)
	if !ok {
		return fmt.Errorf("scaling: unknown suite matrix %q", matName)
	}
	a := ent.Build()

	fmt.Fprintf(w, "# Scaling study: %s (n=%d, nnz=%d), %d steps/run, seed %d\n", matName, a.N, a.NNZ(), steps, seed)
	fmt.Fprintf(w, "# engine: worker-pool; nbr(ms) = neighborhood-epoch scheduler (rma.SchedNeighbor),\n")
	fmt.Fprintf(w, "# dense/active(ms) = barrier engine with -active off/on. Every rung audits all three\n")
	fmt.Fprintf(w, "# runs for bit-identity. Uniform random x0 keeps most ranks relaxing or fielding mail,\n")
	fmt.Fprintf(w, "# so the active set stays nearly full here — see the point-load experiment below for\n")
	fmt.Fprintf(w, "# the regime active-set stepping is built for.\n")
	fmt.Fprintf(w, "# host: GOMAXPROCS=%d; peak RSS is the process high-water mark (VmHWM) after the rung\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%7s  %-6s  %10s  %12s  %10s  %9s  %9s  %10s  %8s  %12s\n",
		"P", "method", "final||r||", "simtime(s)", "msgs", "nbr(ms)", "dense(ms)", "active(ms)", "speedup", "peakRSS(MB)")

	for _, p := range ladder {
		if p >= a.N {
			fmt.Fprintf(w, "%7d  (skipped: P >= n)\n", p)
			continue
		}
		t0 := time.Now()
		part := partition.Partition(a, p, partition.Options{Seed: seed})
		l, err := dmem.NewLayout(a, part, p)
		if err != nil {
			return fmt.Errorf("scaling: P=%d: %w", p, err)
		}
		setup, err := dmem.NewSetup(l, cfg.Local)
		if err != nil {
			return fmt.Errorf("scaling: P=%d: %w", p, err)
		}
		setupMS := time.Since(t0).Seconds() * 1e3
		fmt.Fprintf(w, "%7d  setup: partition+layout+factor %.0f ms\n", p, setupMS)
		for _, m := range scalingMethods {
			b, x := problem.ZeroBSystem(a, seed)
			nbrRes, nbrMS, err := timedRun(a, b, x, setup, m, p, steps, rma.SchedNeighbor, nil, cfg.Local, false)
			if err != nil {
				return err
			}
			denseRes, denseMS, err := timedRun(a, b, x, setup, m, p, steps, rma.SchedBarrier, nil, cfg.Local, true)
			if err != nil {
				return err
			}
			actRes, actMS, err := timedRun(a, b, x, setup, m, p, steps, rma.SchedBarrier, nil, cfg.Local, false)
			if err != nil {
				return err
			}
			// Bit-identity audits, free off the runs already timed: active
			// vs dense stepping, and barrier vs neighborhood scheduling.
			if err := sameResult(actRes, denseRes); err != nil {
				return fmt.Errorf("scaling: P=%d %s: active vs dense stepping diverge: %w", p, m, err)
			}
			if err := sameResult(nbrRes, denseRes); err != nil {
				return fmt.Errorf("scaling: P=%d %s: neighbor vs barrier engines diverge: %w", p, m, err)
			}
			fmt.Fprintf(w, "%7d  %-6s  %10.3e  %12.4f  %10d  %9.1f  %9.1f  %10.1f  %8.2fx  %12s\n",
				p, m, nbrRes.Final().ResNorm, nbrRes.Stats.SimTime, nbrRes.Stats.TotalMsgs(),
				nbrMS, denseMS, actMS, denseMS/actMS, peakRSSMB())
			if s := activeSummary(actRes); s != "" {
				fmt.Fprintf(w, "%7d  %-6s  %s\n", p, m, s)
			}
		}
		fmt.Fprintf(w, "%7d  bit-identity: active=dense=neighbor OK (all methods)\n", p)
	}

	if err := runPointLoad(w, cfg, seed); err != nil {
		return err
	}

	// Straggler margin: a persistently slow rank plus sparse per-(rank,
	// phase) spikes, made real in host time as blocking delays
	// (FaultPlan.HostDelay): a stalled rank parks, it does not burn its
	// core — the honest model for OS noise and I/O hiccups, and the only
	// one whose engine contrast is observable on a small host (a CPU spin
	// is engine-invariant work when cores, not ranks, are the bottleneck).
	// The pool is over-subscribed (FaultPlan.HostWorkers) so a parked rank
	// never deschedules the others, mirroring MPI's process-per-rank
	// execution. The barrier engine fences all P ranks behind every phase's
	// slowest sleeper; the neighborhood scheduler confines each stall to
	// its PSCW groups and pipelines everyone else, so the same
	// bit-identical run finishes measurably sooner.
	fmt.Fprintf(w, "\n# Straggler experiment: rank 0 persistently 3x slow, per-(rank,phase) spike prob 0.02 (x%g),\n", 8.0)
	fmt.Fprintf(w, "# stalls realized as blocking host delays of %.2f ms per unit slowdown (FaultPlan.HostDelay)\n", stallUnit.Seconds()*1e3)
	for _, p := range ladder {
		if p < 1024 && !cfg.Quick {
			continue
		}
		if p >= a.N || (cfg.Quick && p != ladder[len(ladder)-1]) {
			continue
		}
		plan := &rma.FaultPlan{
			Seed:               9,
			Stragglers:         map[int]float64{0: 3},
			StragglerPhaseProb: 0.02,
			HostWorkers:        hostWorkers(p),
			HostDelay: func(rank int, phase int64, mult float64) {
				time.Sleep(time.Duration((mult - 1) * float64(stallUnit)))
			},
		}
		part := partition.Partition(a, p, partition.Options{Seed: seed})
		l, err := dmem.NewLayout(a, part, p)
		if err != nil {
			return fmt.Errorf("scaling: straggler P=%d: %w", p, err)
		}
		setup, err := dmem.NewSetup(l, cfg.Local)
		if err != nil {
			return fmt.Errorf("scaling: straggler P=%d: %w", p, err)
		}
		sb, sx := problem.ZeroBSystem(a, seed)
		barRes, barMS, err := timedRun(a, sb, sx, setup, core.DistSWD, p, steps, rma.SchedBarrier, plan, cfg.Local, false)
		if err != nil {
			return err
		}
		nbrRes, nbrMS, err := timedRun(a, sb, sx, setup, core.DistSWD, p, steps, rma.SchedNeighbor, plan, cfg.Local, false)
		if err != nil {
			return err
		}
		if err := sameResult(nbrRes, barRes); err != nil {
			return fmt.Errorf("scaling: straggler P=%d: engines diverge: %w", p, err)
		}
		fmt.Fprintf(w, "P=%d DS under straggler plan: barrier %.1f ms, neighbor %.1f ms (%.2fx; identical results)\n",
			p, barMS, nbrMS, barMS/nbrMS)
		if wt := nbrRes.SchedWaits; wt != nil {
			fmt.Fprintf(w, "P=%d neighborhood wait tally: %d groups, %d parks, %d blocked-rank events\n",
				p, wt.Groups, wt.Parks, wt.TotalBlocked())
		}
	}
	return nil
}

// stallUnit is the host sleep charged per unit of straggler slowdown in
// the straggler experiment: long enough that stall time (not scheduler
// bookkeeping) dominates the wall clock at paper scale, short enough to
// keep the study inside CI budgets.
const stallUnit = 2 * time.Millisecond

// hostWorkers sizes the over-subscribed pool for the straggler runs: one
// worker per rank up to a cap that keeps goroutine bookkeeping cheap.
func hostWorkers(p int) int {
	const cap = 256
	if p < cap {
		return p
	}
	return cap
}

// timedRun solves one (method, P) cell off a shared setup and returns the
// result plus host milliseconds. Always on the pool engine; sched picks
// the epoch discipline and dense forces dense stepping (the -active=false
// path). b and x are read-only to the solver, so one pair serves every
// run of a cell.
func timedRun(a *sparse.CSR, b, x []float64, setup *dmem.Setup, m core.DistMethod, p, steps int, sched rma.Sched, plan *rma.FaultPlan, local dmem.LocalSolver, dense bool) (*dmem.Result, float64, error) {
	// Collect the previous run's garbage outside the timed region so a
	// major GC from a neighboring rung cannot land inside a short run and
	// distort its wall-clock column.
	runtime.GC()
	t0 := time.Now()
	res, err := core.SolveDistributed(a, b, x, core.DistOptions{
		Method: m, Ranks: p, Steps: steps, Setup: setup,
		Parallel: true, Sched: sched, Local: local, Faults: plan, Dense: dense,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("scaling: %s P=%d: %w", m, p, err)
	}
	return res, time.Since(t0).Seconds() * 1e3, nil
}

// activeSummary renders a run's active-set occupancy ("" for dense runs:
// no engine was engaged, e.g. BJ, which is never quiescent by
// declaration).
func activeSummary(res *dmem.Result) string {
	if len(res.ActiveHist) == 0 {
		return ""
	}
	sum := 0
	for _, n := range res.ActiveHist {
		sum += n
	}
	mean := float64(sum) / float64(len(res.ActiveHist))
	return fmt.Sprintf("active ranks mean %.1f/%d (%.1f%% of rank-steps skipped)",
		mean, res.P, 100*(1-mean/float64(res.P)))
}

// runPointLoad is the active-set headline experiment: a point load
// (b = e_k at the grid center, zero initial guess) on a scaled 2-D
// Poisson grid. Away from the load the residual is exactly zero, so ranks
// hold — with no mail and no relaxation — until the relaxation wavefront
// reaches them: the regime Southwell iteration, and the active-set
// engine, are built for. Dense and active stepping are timed on the
// barrier pool engine and audited for bit-identity; the P=8192 DS row is
// the >=5x wall-clock target recorded in results/scaling.txt.
func runPointLoad(w io.Writer, cfg bench.Config, seed int64) error {
	grid, steps := 512, 400
	ladder := []int{1024, 8192}
	if cfg.Quick {
		grid, steps = 64, 50
		ladder = []int{16, 64}
	}
	a := problem.Poisson2D(grid, grid)
	if _, err := sparse.Scale(a); err != nil {
		return fmt.Errorf("scaling: point load: %w", err)
	}
	fmt.Fprintf(w, "\n# Point-load experiment: poisson2d %dx%d scaled (n=%d), b = e_k at the grid center, x0 = 0,\n", grid, grid, a.N)
	fmt.Fprintf(w, "# DS, %d steps/run, barrier pool engine, dense vs active stepping (results audited bit-identical)\n", steps)
	for _, p := range ladder {
		t0 := time.Now()
		part := partition.Partition(a, p, partition.Options{Seed: seed})
		l, err := dmem.NewLayout(a, part, p)
		if err != nil {
			return fmt.Errorf("scaling: point load P=%d: %w", p, err)
		}
		setup, err := dmem.NewSetup(l, cfg.Local)
		if err != nil {
			return fmt.Errorf("scaling: point load P=%d: %w", p, err)
		}
		setupMS := time.Since(t0).Seconds() * 1e3
		b := make([]float64, a.N)
		b[a.N/2+grid/2] = 1
		x := make([]float64, a.N)
		denseRes, denseMS, err := timedRun(a, b, x, setup, core.DistSWD, p, steps, rma.SchedBarrier, nil, cfg.Local, true)
		if err != nil {
			return err
		}
		actRes, actMS, err := timedRun(a, b, x, setup, core.DistSWD, p, steps, rma.SchedBarrier, nil, cfg.Local, false)
		if err != nil {
			return err
		}
		if err := sameResult(actRes, denseRes); err != nil {
			return fmt.Errorf("scaling: point load P=%d: active vs dense stepping diverge: %w", p, err)
		}
		fmt.Fprintf(w, "P=%d DS point load: setup %.0f ms; dense %.1f ms, active %.1f ms (%.2fx; identical results), final||r|| %.3e\n",
			p, setupMS, denseMS, actMS, denseMS/actMS, actRes.Final().ResNorm)
		fmt.Fprintf(w, "P=%d %s\n", p, activeSummary(actRes))
	}
	return nil
}

// sameResult checks bit-identity of two runs: history, stats, solution.
func sameResult(got, want *dmem.Result) error {
	if len(got.History) != len(want.History) {
		return fmt.Errorf("history lengths %d vs %d", len(got.History), len(want.History))
	}
	for i := range want.History {
		if got.History[i] != want.History[i] {
			return fmt.Errorf("step %d: %+v vs %+v", i, got.History[i], want.History[i])
		}
	}
	if got.Stats != want.Stats {
		return fmt.Errorf("stats: %+v vs %+v", got.Stats, want.Stats)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] { //dslint:ignore floatcmp bit-identity audit: the engines must agree to the last bit by design
			return fmt.Errorf("solution differs at %d", i)
		}
	}
	return nil
}

// peakRSSMB reads the process peak resident set (VmHWM) from /proc.
func peakRSSMB() string {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return "n/a"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.Atoi(f[1]); err == nil {
					return fmt.Sprintf("%.1f", float64(kb)/1024)
				}
			}
		}
	}
	return "n/a"
}
