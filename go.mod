module southwell

go 1.22
