package rma

// Active-subset phase execution: the runtime half of the active-set
// stepping engine (DESIGN.md §14). A caller that can prove a rank's phase
// function is a state no-op — empty inbox, unchanged state, no scheduled
// wakeup — runs the phase over just the active subset with RunPhaseActive.
// Every skipped rank's would-be compute charge is paid through the idle
// vector instead, keeping the α-β-γ clock bit-identical to dense. On the
// plain barrier path with no fault plan and no tracer, the charge is
// folded into the phase maximum analytically and the boundary runs in
// O(active work) (deliverActive); under chaos or tracing the idle flops
// are written per rank, so straggler multipliers and per-rank cost traces
// match dense exactly. Either way the per-skipped-rank cost is at most
// one bool load and one float add.
//
// Contract, mirroring RunPhase: f(p) may only touch rank p's state, and
// the caller guarantees that for every inactive rank f would have sent no
// messages, mutated no state, and charged exactly idle[p] flops (0 when
// idle is nil); idle[p] must also lower-bound the flop charge of every
// rank that does execute f (it is the unconditional part of the phase),
// which lets the boundary fold the skipped ranks' compute cost from a
// single cached maximum over the idle vector. Paused ranks
// (FaultPlan.Pauses) neither run nor take the idle charge — dense
// stepping charges a descheduled rank nothing, and so do we. Host-time
// straggler hooks (SpinStragglers, HostDelay) fire only for executed
// ranks; callers that skip ranks under such plans would under-stall the
// host clock, so the dmem engine declines to dense there.

// RunPhaseActive executes one access epoch over the subset of ranks with
// active[p] set: f runs for active ranks (sequentially, or sharded over
// the persistent worker pool when w.Parallel is set), skipped unpaused
// ranks are charged idle[p] flops (idle may be nil for a zero-cost
// phase), then all staged puts are delivered and the phase's simulated
// time is accounted exactly as in RunPhase. active must have length P and
// must not be mutated until the call returns; running a superset of the
// minimal active set is always safe (active[p] = true for all p is
// RunPhase).
//
// actList, when non-nil, must list exactly the ranks with active[p] set,
// ascending. It lets the fast boundary replace its remaining O(P) scans —
// phase dispatch, staged-put sweep, cost fold — with O(active) list walks,
// which is what keeps a paper-scale step near-free when almost every rank
// sleeps. Passing nil is always correct (the boundary falls back to mask
// scans); passing a stale or unsorted list is not.
//
//dslint:hotpath
func (w *World) RunPhaseActive(active []bool, actList []int32, idle []float64, f func(rank int)) {
	if w.closed.Load() {
		panic(ErrClosed)
	}
	if ch := w.chaos; ch != nil {
		ch.markPaused(w.phases)
	}
	if w.chaos == nil && w.trace == nil && w.nb == nil {
		// Arm the O(active work) boundary: activeRange skips the per-rank
		// idle flop writes and deliver dispatches to deliverActive, which
		// folds the skipped ranks' Gamma·idle[p] compute cost analytically
		// and touches only written windows. With a fault plan or tracer the
		// per-rank path stays: chaos needs per-rank straggler multipliers
		// and traces carry a KindRankCost row per idle-charged rank. (A
		// neighborhood-scheduled world lands messages outside land(), so
		// its liveInbox bookkeeping cannot be trusted — but such worlds
		// never reach RunPhaseActive; the nb check is defense in depth.)
		w.fastActive, w.fastList, w.fastIdle = active, actList, idle
	}
	if w.Parallel && w.P > 1 {
		w.poolOnce.Do(w.startPool) //dslint:ignore hotalloc method value for one-time pool start; Once skips it on every later phase
		w.barrier.Add(len(w.workers))
		for _, c := range w.workers {
			c <- phaseWork{f: f, active: active, idle: idle}
		}
		w.barrier.Wait()
	} else {
		w.activeRange(0, w.P, f, active, idle)
	}
	w.deliver()
	w.fastActive, w.fastList, w.fastIdle = nil, nil, nil
}

// lowerBound returns the first index in the ascending list whose value is
// >= x (len(list) if none). Hand-rolled so the hot path stays closure- and
// allocation-free.
func lowerBound(list []int32, x int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// activeRange runs the active-subset phase body over ranks [lo, hi): the
// whole world on the sequential engine, one worker's contiguous chunk on
// the pool. Chunk boundaries never influence the output — each rank's
// branch is a pure function of (active, pausedNow, idle) — so the engines
// stay bit-identical.
//
//dslint:hotpath
func (w *World) activeRange(lo, hi int, f func(int), active []bool, idle []float64) {
	ch := w.chaos
	if ch == nil {
		if list := w.fastList; list != nil {
			// Fast boundary armed with a member list: walk just the members
			// in [lo, hi) — ascending, so the per-rank call order matches the
			// mask scan exactly on both engines.
			for _, p32 := range list[lowerBound(list, int32(lo)):] {
				p := int(p32)
				if p >= hi {
					break
				}
				f(p)
			}
			return
		}
		if idle == nil || w.fastActive != nil {
			// Zero-cost phase, or the fast boundary is armed: skipped ranks
			// take no per-rank write at all — deliverActive folds their
			// idle compute cost into the phase maximum analytically.
			for p := lo; p < hi; p++ {
				if active[p] {
					f(p)
				}
			}
			return
		}
		for p := lo; p < hi; p++ {
			if active[p] {
				f(p)
			} else {
				w.flops[p] += idle[p]
			}
		}
		return
	}
	for p := lo; p < hi; p++ {
		if ch.pausedNow[p] {
			// Descheduled: the phase function does not run, and dense
			// stepping charges a paused rank nothing — neither do we.
			continue
		}
		if active[p] {
			f(p)
			ch.hostStraggle(p, w.phases, w.flops[p]) //dslint:ignore hotalloc caller-supplied FaultPlan.HostDelay dynamic call; fires only under an installed fault plan, never on measured active-set runs
		} else if idle != nil {
			w.flops[p] += idle[p]
		}
	}
}
