package rma

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// activeWorld builds a world plus the pieces of an active-subset ring
// exchange: the phase body (sends to both ring neighbors, reads the
// window), a membership mask with one rank in `stride` active, and the
// per-rank idle charge a skipped rank must still pay.
func activeWorld(p, stride int, parallel bool) (*World, func(int), []bool, []float64) {
	w := NewWorld(p, DefaultCostModel())
	w.Parallel = parallel
	payloads := make([][2]benchPayload, p)
	for r := range payloads {
		payloads[r][0].vals = make([]float64, 8)
		payloads[r][1].vals = make([]float64, 8)
	}
	phase := func(rank int) {
		sum := 0.0
		for _, m := range w.Inbox(rank) {
			sum += m.Payload.(*benchPayload).norm
		}
		for d := 0; d < 2; d++ {
			pl := &payloads[rank][d]
			pl.norm = sum + float64(rank+d)
			to := rank + 1
			if d == 1 {
				to = rank - 1 + p
			}
			w.Put(rank, to%p, TagSolve, 8*len(pl.vals)+16, pl)
		}
		w.Charge(rank, 100)
	}
	active := make([]bool, p)
	idle := make([]float64, p)
	for r := range active {
		active[r] = r%stride == 0
		idle[r] = 5
	}
	return w, phase, active, idle
}

// maskList is the ascending member list of a mask — the actList form the
// dmem engine maintains incrementally.
func maskList(active []bool) []int32 {
	var l []int32
	for p, in := range active {
		if in {
			l = append(l, int32(p))
		}
	}
	return l
}

// TestRunPhaseActiveMatchesRunPhase is the runtime half of the active-set
// bit-identity story: RunPhaseActive over a mask must leave the world in
// exactly the state of a dense RunPhase whose body branches on the same
// mask and charges idle[p] for skipped ranks — same stats, same simulated
// clock, same landed messages. Checked on both engines.
func TestRunPhaseActiveMatchesRunPhase(t *testing.T) {
	const p, stride, rounds = 64, 4, 5
	for _, parallel := range []bool{false, true} {
		for _, withList := range []bool{false, true} {
			name := "seq"
			if parallel {
				name = "pool"
			}
			if withList {
				name += "/list"
			} else {
				name += "/mask"
			}
			t.Run(name, func(t *testing.T) {
				wa, fa, active, idle := activeWorld(p, stride, parallel)
				defer wa.Close()
				wd, fd, _, _ := activeWorld(p, stride, parallel)
				defer wd.Close()
				var lst []int32
				if withList {
					lst = maskList(active)
				}
				dense := func(rank int) {
					if active[rank] {
						fd(rank)
					} else {
						wd.Charge(rank, idle[rank])
					}
				}
				for i := 0; i < rounds; i++ {
					wa.RunPhaseActive(active, lst, idle, fa)
					wd.RunPhase(dense)
					for r := 0; r < p; r++ {
						ia, id := wa.Inbox(r), wd.Inbox(r)
						if len(ia) != len(id) {
							t.Fatalf("round %d rank %d: %d landings active vs %d dense", i, r, len(ia), len(id))
						}
						for k := range ia {
							if ia[k].From != id[k].From || ia[k].Tag != id[k].Tag {
								t.Fatalf("round %d rank %d landing %d differs", i, r, k)
							}
						}
					}
				}
				if sa, sd := wa.Stats(), wd.Stats(); sa != sd {
					t.Errorf("stats differ:\nactive %+v\ndense  %+v", sa, sd)
				}
			})
		}
	}
}

// TestRunPhaseActiveFullMaskIsRunPhase: with every rank active,
// RunPhaseActive must be RunPhase — the superset-safety anchor the dmem
// engine's correctness induction bottoms out on.
func TestRunPhaseActiveFullMaskIsRunPhase(t *testing.T) {
	const p = 32
	wa, fa, _, _ := activeWorld(p, 1, false)
	defer wa.Close()
	wd, fd, _, _ := activeWorld(p, 1, false)
	defer wd.Close()
	all := make([]bool, p)
	for r := range all {
		all[r] = true
	}
	for i := 0; i < 4; i++ {
		wa.RunPhaseActive(all, nil, nil, fa)
		wd.RunPhase(fd)
	}
	if sa, sd := wa.Stats(), wd.Stats(); sa != sd {
		t.Errorf("stats differ:\nactive %+v\ndense  %+v", sa, sd)
	}
}

type activeGate struct {
	Gate map[string]float64 `json:"gate"`
}

// TestActiveAllocGate pins the steady-state allocation count of one
// RunPhaseActive phase against BENCH_active.json: the membership mask and
// idle vector ride through phaseWork by value and the skip path is a bool
// load plus a float add, so a warmed world must allocate nothing — the
// property that lets paper-scale runs step in O(active work) without
// trading away the runtime's zero-alloc discipline.
func TestActiveAllocGate(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_active.json")
	if err != nil {
		t.Fatalf("reading BENCH_active.json: %v", err)
	}
	var g activeGate
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing BENCH_active.json: %v", err)
	}
	want, ok := g.Gate["ActivePhase"]
	if !ok {
		t.Fatal("BENCH_active.json gate has no ActivePhase entry")
	}
	for _, parallel := range []bool{false, true} {
		name := "seq"
		if parallel {
			name = "pool"
		}
		t.Run(name, func(t *testing.T) {
			w, f, active, idle := activeWorld(256, 16, parallel)
			defer w.Close()
			lst := maskList(active)
			for i := 0; i < 4; i++ { // warm staging rings, window buffers, pool
				w.RunPhaseActive(active, lst, idle, f)
			}
			got := testing.AllocsPerRun(50, func() {
				w.RunPhaseActive(active, lst, idle, f)
			})
			if got > want {
				t.Errorf("active phase allocates %.1f allocs/op, gate is %.1f", got, want)
			}
		})
	}
}

func BenchmarkActivePhases(b *testing.B) {
	for _, p := range []int{256, 1024, 8192} {
		for _, stride := range []int{1, 16} {
			b.Run(fmt.Sprintf("P=%d/active=1in%d", p, stride), func(b *testing.B) {
				w, f, active, idle := activeWorld(p, stride, false)
				defer w.Close()
				lst := maskList(active)
				w.RunPhaseActive(active, lst, idle, f)
				w.RunPhaseActive(active, lst, idle, f)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.RunPhaseActive(active, lst, idle, f)
				}
			})
		}
	}
}
