package rma

import (
	"testing"
	"testing/quick"
)

func TestPutDeliveredNextPhase(t *testing.T) {
	w := NewWorld(3, CostModel{})
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 2, TagSolve, 8, "hello")
		}
		if len(w.Inbox(rank)) != 0 {
			t.Errorf("rank %d inbox nonempty before delivery", rank)
		}
	})
	w.RunPhase(func(rank int) {
		in := w.Inbox(rank)
		if rank == 2 {
			if len(in) != 1 || in[0].Payload.(string) != "hello" || in[0].From != 0 {
				t.Errorf("rank 2 inbox = %+v", in)
			}
		} else if len(in) != 0 {
			t.Errorf("rank %d got stray messages", rank)
		}
	})
	// Inboxes cleared at next boundary.
	w.RunPhase(func(rank int) {
		if len(w.Inbox(rank)) != 0 {
			t.Errorf("rank %d inbox not cleared", rank)
		}
	})
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	w := NewWorld(5, CostModel{})
	w.RunPhase(func(rank int) {
		if rank != 1 {
			w.Put(rank, 1, TagSolve, 0, rank)
		}
	})
	w.RunPhase(func(rank int) {
		if rank != 1 {
			return
		}
		in := w.Inbox(1)
		if len(in) != 4 {
			t.Fatalf("got %d messages", len(in))
		}
		for i := 1; i < len(in); i++ {
			if in[i].From < in[i-1].From {
				t.Error("inbox not ordered by origin")
			}
		}
	})
}

func TestStatsTagsAndBytes(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 100, nil)
			w.Put(0, 1, TagResidual, 16, nil)
		}
	})
	s := w.Stats()
	if s.SolveMsgs != 1 || s.ResMsgs != 1 {
		t.Errorf("msgs = %d/%d", s.SolveMsgs, s.ResMsgs)
	}
	if s.SolveBytes != 100 || s.ResBytes != 16 {
		t.Errorf("bytes = %d/%d", s.SolveBytes, s.ResBytes)
	}
	if s.TotalMsgs() != 2 || s.CommCost(2) != 1 {
		t.Errorf("total=%d comm=%g", s.TotalMsgs(), s.CommCost(2))
	}
	w.ResetStats()
	if w.Stats().TotalMsgs() != 0 || w.Stats().SimTime != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestCostModelMaxOverRanks(t *testing.T) {
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}
	w := NewWorld(3, m)
	w.RunPhase(func(rank int) {
		switch rank {
		case 0:
			w.Charge(0, 10) // cost 2*10 = 20
		case 1:
			w.Put(1, 2, TagSolve, 4, nil) // sender cost 1 + 2 = 3; receiver same
		}
	})
	if got := w.Stats().SimTime; got != 20 {
		t.Errorf("SimTime = %g, want 20 (max over ranks)", got)
	}
	w.RunPhase(func(rank int) { w.Charge(rank, 1) })
	if got := w.Stats().SimTime; got != 22 {
		t.Errorf("SimTime = %g, want 22", got)
	}
	// Receive side counts: a rank receiving many messages dominates.
	w2 := NewWorld(4, CostModel{Alpha: 1})
	w2.RunPhase(func(rank int) {
		if rank != 3 {
			w2.Put(rank, 3, TagSolve, 0, nil)
		}
	})
	if got := w2.Stats().SimTime; got != 3 {
		t.Errorf("h-relation SimTime = %g, want 3 (3 landings at rank 3)", got)
	}
	if w.Stats().Phases != 2 {
		t.Errorf("Phases = %d", w.Stats().Phases)
	}
}

func TestPutPanicsOutOfRange(t *testing.T) {
	w := NewWorld(2, CostModel{})
	defer func() {
		if recover() == nil {
			t.Error("Put out of range did not panic")
		}
	}()
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 7, TagSolve, 0, nil)
		}
	})
}

// Property: sequential and concurrent engines deliver identical message
// streams and identical stats for a randomized communication pattern.
func TestQuickEnginesEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		run := func(parallel bool) ([][]int, Stats) {
			w := NewWorld(8, DefaultCostModel())
			w.Parallel = parallel
			got := make([][]int, 8)
			for phase := 0; phase < 5; phase++ {
				w.RunPhase(func(rank int) {
					for _, m := range w.Inbox(rank) {
						got[rank] = append(got[rank], m.From*1000+m.Payload.(int))
					}
					// Deterministic pseudo-random pattern per (seed, phase, rank).
					h := seed + int64(phase*131) + int64(rank*17)
					for k := 0; k < int(h%4+3)%4; k++ {
						to := int((h + int64(k)*29) % 8)
						if to < 0 {
							to += 8
						}
						w.Put(rank, to, Tag(k%2), k*8, phase*10+k)
						w.Charge(rank, float64(rank+k))
					}
				})
			}
			return got, w.Stats()
		}
		seqGot, seqStats := run(false)
		parGot, parStats := run(true)
		if seqStats != parStats {
			return false
		}
		for r := range seqGot {
			if len(seqGot[r]) != len(parGot[r]) {
				return false
			}
			for i := range seqGot[r] {
				if seqGot[r][i] != parGot[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
