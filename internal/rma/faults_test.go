package rma

import (
	"testing"
	"testing/quick"
)

// clonable is a payload with a buffer the sender reuses, as the dmem
// payloads do.
type clonable struct {
	vals []float64
}

func (c *clonable) CloneMessage() any {
	return &clonable{vals: append([]float64(nil), c.vals...)}
}

func TestDelayFaultHoldsMessageForExtraPhases(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 1, DelayProb: 1, DelayMax: 1})
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, "late")
		}
	})
	if w.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", w.InFlight())
	}
	w.RunPhase(func(rank int) {
		if rank == 1 && len(w.Inbox(1)) != 0 {
			t.Error("delayed message arrived on time")
		}
	})
	w.RunPhase(func(rank int) {
		if rank == 1 {
			in := w.Inbox(1)
			if len(in) != 1 || in[0].Payload.(string) != "late" {
				t.Errorf("delayed message not delivered one phase late: %+v", in)
			}
		}
	})
	if w.InFlight() != 0 {
		t.Errorf("InFlight = %d after delivery", w.InFlight())
	}
	st := w.Stats()
	if st.DelayedMsgs != 1 || st.Delivered != 1 {
		t.Errorf("stats: delayed %d delivered %d", st.DelayedMsgs, st.Delivered)
	}
}

func TestDelayedPayloadIsCloned(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 3, DelayProb: 1, DelayMax: 1})
	buf := &clonable{vals: []float64{42}}
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, buf)
		}
	})
	buf.vals[0] = -1 // sender reuses its buffer while the message is held
	w.RunPhase(func(rank int) {})
	got := false
	w.RunPhase(func(rank int) {
		if rank == 1 {
			in := w.Inbox(1)
			if len(in) != 1 {
				t.Fatalf("got %d messages", len(in))
			}
			pl := in[0].Payload.(*clonable)
			if pl.vals[0] != 42 {
				t.Errorf("held payload aliased sender buffer: %g", pl.vals[0])
			}
			got = true
		}
	})
	if !got {
		t.Fatal("delivery phase did not run")
	}
}

func TestDupFaultLandsTwiceFlagged(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 1, DupProb: 1})
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, "x")
		}
	})
	w.RunPhase(func(rank int) {
		if rank != 1 {
			return
		}
		in := w.Inbox(1)
		if len(in) != 2 {
			t.Fatalf("got %d landings, want 2", len(in))
		}
		if in[0].Dup || !in[1].Dup {
			t.Errorf("dup flags = %v/%v, want false/true", in[0].Dup, in[1].Dup)
		}
	})
	st := w.Stats()
	if st.DupMsgs != 1 || st.TotalMsgs() != 1 || st.Delivered != 2 {
		t.Errorf("stats: dup %d total %d delivered %d", st.DupMsgs, st.TotalMsgs(), st.Delivered)
	}
}

func TestPausedRankAccumulatesWindow(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 1, Pauses: []Pause{{Rank: 1, From: 1, To: 3}}})
	ran := make([]int, 4) // how many phases rank 1 executed, per phase index
	for phase := 0; phase < 4; phase++ {
		if w.FaultsQuiescent() != (phase >= 3) {
			t.Errorf("phase %d: FaultsQuiescent = %v", phase, w.FaultsQuiescent())
		}
		w.RunPhase(func(rank int) {
			if rank == 0 {
				w.Put(0, 1, TagSolve, 8, phase)
			}
			if rank == 1 {
				ran[phase]++
			}
		})
	}
	if ran[0] != 1 || ran[1] != 0 || ran[2] != 0 || ran[3] != 1 {
		t.Errorf("rank 1 execution per phase = %v, want [1 0 0 1]", ran)
	}
	// Phases 0-2 each landed one message; rank 1 read none of them while
	// paused, so all three must still be in its window for phase 4.
	w.RunPhase(func(rank int) {
		if rank != 1 {
			return
		}
		in := w.Inbox(1)
		if len(in) != 1 || in[0].Payload.(int) != 3 {
			// The phase-3 epoch (first after resume) consumed phases 0-2's
			// accumulated messages; this phase sees only phase 3's put.
			t.Errorf("post-resume inbox = %+v", in)
		}
	})
	if st := w.Stats(); st.PausedRankPhases != 2 {
		t.Errorf("PausedRankPhases = %d, want 2", st.PausedRankPhases)
	}
}

func TestPausedWindowRetainsAcrossPause(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 1, Pauses: []Pause{{Rank: 1, From: 1, To: 3}}})
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, 100)
		}
	})
	w.RunPhase(func(rank int) {}) // rank 1 paused
	w.RunPhase(func(rank int) {}) // rank 1 paused
	w.RunPhase(func(rank int) {   // rank 1 resumes and reads everything landed
		if rank == 1 {
			if n := len(w.Inbox(1)); n != 1 {
				t.Errorf("resumed rank sees %d messages, want 1", n)
			}
		}
	})
}

func TestStragglerMultipliesCost(t *testing.T) {
	base := NewWorld(2, CostModel{Gamma: 1})
	base.RunPhase(func(rank int) { base.Charge(rank, 10) })
	slow := NewWorld(2, CostModel{Gamma: 1})
	slow.InstallFaults(&FaultPlan{Seed: 1, Stragglers: map[int]float64{1: 4}})
	slow.RunPhase(func(rank int) { slow.Charge(rank, 10) })
	if got, want := slow.Stats().SimTime, 4*base.Stats().SimTime; got != want {
		t.Errorf("straggler SimTime = %g, want %g", got, want)
	}
}

// chaosPlan is the everything-on plan used by the determinism and engine
// equivalence tests.
func chaosPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		Seed:        seed,
		DelayProb:   0.3,
		DelayMax:    3,
		DupProb:     0.2,
		ReorderProb: 0.5,
		Stragglers:  map[int]float64{2: 3},
		Pauses:      []Pause{{Rank: 1, From: 2, To: 5}, {Rank: 5, From: 7, To: 9}},
	}
}

// chaosRun drives a fixed communication pattern under a chaos plan and
// returns per-rank observed message streams and the final stats.
func chaosRun(seed int64, parallel bool) ([][]int, Stats) {
	const P = 8
	w := NewWorld(P, DefaultCostModel())
	w.Parallel = parallel
	defer w.Close()
	w.InstallFaults(chaosPlan(seed))
	got := make([][]int, P)
	for phase := 0; phase < 12; phase++ {
		w.RunPhase(func(rank int) {
			for _, m := range w.Inbox(rank) {
				v := m.From*10000 + m.Payload.(int)
				if m.Dup {
					v = -v
				}
				got[rank] = append(got[rank], v)
			}
			h := seed + int64(phase*131) + int64(rank*17)
			for k := 0; k < int(h%4+3)%4; k++ {
				to := int((h + int64(k)*29) % P)
				if to < 0 {
					to += P
				}
				w.Put(rank, to, Tag(k%2), k*8, phase*10+k)
				w.Charge(rank, float64(rank+k))
			}
		})
	}
	return got, w.Stats()
}

// TestChaosDeterministicAcrossEngines: identical FaultPlan seed ⇒ identical
// observed message streams and stats on the sequential and worker-pool
// engines, and across repeated runs.
func TestChaosDeterministicAcrossEngines(t *testing.T) {
	f := func(seed int64) bool {
		seqGot, seqStats := chaosRun(seed, false)
		for _, parallel := range []bool{false, true} {
			got, stats := chaosRun(seed, parallel)
			if stats != seqStats {
				return false
			}
			for r := range got {
				if len(got[r]) != len(seqGot[r]) {
					return false
				}
				for i := range got[r] {
					if got[r][i] != seqGot[r][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestChaosActuallyInjects(t *testing.T) {
	_, st := chaosRun(99, false)
	if st.DelayedMsgs == 0 || st.DupMsgs == 0 || st.ReorderedBatches == 0 || st.PausedRankPhases == 0 {
		t.Errorf("plan injected nothing: %+v", st)
	}
}

func TestInstallNilFaultsRemovesPlan(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.InstallFaults(&FaultPlan{Seed: 1, DelayProb: 1, DelayMax: 1})
	w.InstallFaults(nil)
	w.RunPhase(func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, "on time")
		}
	})
	w.RunPhase(func(rank int) {
		if rank == 1 && len(w.Inbox(1)) != 1 {
			t.Error("message faulted after plan removal")
		}
	})
}

func TestCloseIdempotent(t *testing.T) {
	// Sequential world: Close twice, no pool ever started.
	w := NewWorld(4, CostModel{})
	w.RunPhase(func(rank int) {})
	w.Close()
	w.Close()
	// Parallel world with a live pool: Close twice must not panic or hang.
	wp := NewWorld(4, CostModel{})
	wp.Parallel = true
	wp.RunPhase(func(rank int) {})
	wp.Close()
	wp.Close()
}

func TestPutAfterCloseFailsLoudly(t *testing.T) {
	w := NewWorld(2, CostModel{})
	w.Close()
	defer func() {
		if r := recover(); r != ErrClosed {
			t.Errorf("recover() = %v, want ErrClosed", r)
		}
	}()
	w.Put(0, 1, TagSolve, 8, nil)
}

func TestRunPhaseAfterCloseFailsLoudly(t *testing.T) {
	// The parallel engine is the dangerous case: before the closed check,
	// phases after Close hung forever on the released workers.
	w := NewWorld(4, CostModel{})
	w.Parallel = true
	w.RunPhase(func(rank int) {})
	w.Close()
	defer func() {
		if r := recover(); r != ErrClosed {
			t.Errorf("recover() = %v, want ErrClosed", r)
		}
	}()
	w.RunPhase(func(rank int) {})
}
