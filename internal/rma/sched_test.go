package rma

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// ringNeighborhoods builds the symmetric ±1 ring used by the scheduler
// tests: every rank's post/start group is its two ring neighbors.
func ringNeighborhoods(p int) [][]int {
	nbrs := make([][]int, p)
	for r := 0; r < p; r++ {
		a, b := (r+p-1)%p, (r+1)%p
		switch {
		case a == b: // p == 2
			nbrs[r] = []int{a}
		case a < b:
			nbrs[r] = []int{a, b}
		default:
			nbrs[r] = []int{b, a}
		}
	}
	return nbrs
}

// runSchedPattern drives a deterministic ring-exchange pattern for `steps`
// RunPhases groups of `phasesPerStep` phases each on the requested engine,
// returning the per-rank received-message streams and the final stats.
func runSchedPattern(mode string, seed int64, p, steps, phasesPerStep int, plan *FaultPlan) ([][]int64, Stats) {
	w := NewWorld(p, DefaultCostModel())
	switch mode {
	case "seq":
	case "pool":
		w.Parallel = true
	case "nbr":
		w.Parallel = true
		w.Sched = SchedNeighbor
		w.SetNeighborhoods(ringNeighborhoods(p))
	default:
		panic("unknown mode " + mode)
	}
	defer w.Close()
	if plan != nil {
		w.InstallFaults(plan)
	}
	got := make([][]int64, p)
	fs := make([]func(int), phasesPerStep)
	for step := 0; step < steps; step++ {
		for k := 0; k < phasesPerStep; k++ {
			phase := step*phasesPerStep + k
			fs[k] = func(rank int) {
				for _, m := range w.Inbox(rank) {
					got[rank] = append(got[rank], int64(m.From)*1_000_000+m.Payload.(int64))
				}
				h := seed + int64(phase)*131 + int64(rank)*17
				if h%3 != 0 {
					w.Put(rank, (rank+1)%p, TagSolve, int(h%64), int64(phase)*100+int64(rank))
				}
				if h%5 != 0 {
					w.Put(rank, (rank+p-1)%p, TagResidual, int(h%32), int64(phase)*100+int64(rank)+7)
				}
				w.Charge(rank, float64(h%1000))
			}
		}
		w.RunPhases(fs...)
	}
	return got, w.Stats()
}

func assertSchedEquivalent(t *testing.T, seed int64, p, steps, phasesPerStep int, plan *FaultPlan) {
	t.Helper()
	refGot, refStats := runSchedPattern("seq", seed, p, steps, phasesPerStep, plan)
	for _, mode := range []string{"pool", "nbr"} {
		got, stats := runSchedPattern(mode, seed, p, steps, phasesPerStep, plan)
		if stats != refStats {
			t.Fatalf("p=%d seed=%d %s stats diverge:\nseq: %+v\n%s: %+v", p, seed, mode, refStats, mode, stats)
		}
		for r := range refGot {
			if len(got[r]) != len(refGot[r]) {
				t.Fatalf("p=%d seed=%d %s rank %d: got %d msgs, want %d", p, seed, mode, r, len(got[r]), len(refGot[r]))
			}
			for i := range refGot[r] {
				if got[r][i] != refGot[r][i] {
					t.Fatalf("p=%d seed=%d %s rank %d msg %d: got %d, want %d", p, seed, mode, r, i, got[r][i], refGot[r][i])
				}
			}
		}
	}
}

// The tentpole invariant: the neighborhood-epoch engine delivers the same
// message streams, the same stats, and bit-identical SimTime as the
// sequential and global-barrier engines.
func TestNeighborEngineEquivalent(t *testing.T) {
	for _, p := range []int{2, 3, 8, 33} {
		for _, phasesPerStep := range []int{1, 2, 3} {
			for seed := int64(1); seed <= 4; seed++ {
				assertSchedEquivalent(t, seed, p, 6, phasesPerStep, nil)
			}
		}
	}
}

// Stragglers (constant and per-phase spikes) and pauses are counter-indexed
// and run natively on the neighborhood engine: stats — including SimTime
// with the straggler multipliers and the paused-rank-phase count — must
// stay bit-identical across all three engines.
func TestNeighborChaosEquivalent(t *testing.T) {
	plan := &FaultPlan{
		Seed:               42,
		Stragglers:         map[int]float64{1: 4},
		StragglerPhaseProb: 0.25,
		Pauses:             []Pause{{Rank: 2, From: 3, To: 7}, {Rank: 5, From: 5, To: 6}},
	}
	for _, p := range []int{8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			assertSchedEquivalent(t, seed, p, 8, 2, plan)
		}
	}
}

// Plans that draw from the sequential chaos PRNG (delays, dups, reorders)
// force RunPhases back onto the barrier engine — equivalence must still
// hold, and no group may be credited to the neighborhood scheduler.
func TestNeighborRNGPlanFallsBack(t *testing.T) {
	plan := &FaultPlan{Seed: 7, DelayProb: 0.3, DelayMax: 2, DupProb: 0.1}
	assertSchedEquivalent(t, 3, 8, 8, 2, plan)

	w := NewWorld(8, DefaultCostModel())
	w.Parallel = true
	w.Sched = SchedNeighbor
	w.SetNeighborhoods(ringNeighborhoods(8))
	w.InstallFaults(plan)
	defer w.Close()
	w.RunPhases(func(rank int) {}, func(rank int) {})
	if tally := w.WaitTally(); tally != nil {
		t.Fatalf("RNG-dependent plan must fall back to the barrier engine, got wait tally %+v", tally)
	}
}

func TestSetNeighborhoodsValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	w := NewWorld(4, CostModel{})
	expectPanic("wrong length", func() { w.SetNeighborhoods(make([][]int, 3)) })
	expectPanic("self neighbor", func() {
		w.SetNeighborhoods([][]int{{1}, {1}, {3}, {2}})
	})
	expectPanic("out of range", func() {
		w.SetNeighborhoods([][]int{{4}, {0}, {3}, {2}})
	})
	expectPanic("not ascending", func() {
		w.SetNeighborhoods([][]int{{3, 1}, {0}, {3}, {0, 2}})
	})
	expectPanic("asymmetric", func() {
		w.SetNeighborhoods([][]int{{1}, {0, 2}, {}, {}})
	})
	// A valid symmetric relation (including an isolated rank) is accepted.
	w.SetNeighborhoods([][]int{{1}, {0, 2}, {1}, {}})
}

// PSCW faithfulness: under the neighborhood scheduler a Put may only target
// the registered post/start group.
func TestNeighborPutOutsideGroupPanics(t *testing.T) {
	w := NewWorld(8, DefaultCostModel())
	w.SetNeighborhoods(ringNeighborhoods(8))
	defer func() {
		if recover() == nil {
			t.Error("nbPut to a non-neighbor did not panic")
		}
	}()
	w.nbPut(0, 4, TagSolve, 8, nil)
}

func TestRunPhasesAfterCloseFailsLoudly(t *testing.T) {
	w := NewWorld(4, DefaultCostModel())
	w.Close()
	defer func() {
		if r := recover(); r != ErrClosed {
			t.Errorf("RunPhases after Close: recover() = %v, want ErrClosed", r)
		}
	}()
	w.RunPhases(func(rank int) {})
}

// Satellite: Close during an in-flight neighborhood group must release
// workers parked on neighborhood waits, make the blocked RunPhases panic
// with ErrClosed, stay idempotent, and leak no goroutines.
func TestCloseReleasesParkedWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	const p = 8
	w := NewWorld(p, DefaultCostModel())
	w.Parallel = true
	w.Sched = SchedNeighbor
	w.SetNeighborhoods(ringNeighborhoods(p))
	w.RunPhases(func(rank int) {}) // create the pool with a complete group

	gate := make(chan struct{})
	closeDone := make(chan struct{})
	go func() {
		<-gate
		w.Close()
		w.Close() // idempotent
		close(closeDone)
	}()
	var once sync.Once
	panicked := make(chan any, 1)
	func() {
		defer func() { panicked <- recover() }()
		// Rank 0 stalls inside its phase function until Close has run;
		// its neighbors' owners park on rank 0's epoch in the meantime.
		w.RunPhases(func(rank int) {
			if rank == 0 {
				once.Do(func() {
					close(gate)
					<-closeDone
				})
			}
		}, func(rank int) {})
	}()
	if got := <-panicked; got != ErrClosed {
		t.Fatalf("RunPhases closed mid-group: recover() = %v, want ErrClosed", got)
	}
	func() {
		defer func() {
			if r := recover(); r != ErrClosed {
				t.Errorf("Put after Close: recover() = %v, want ErrClosed", r)
			}
		}()
		w.Put(0, 1, TagSolve, 8, nil)
	}()
	// Every pool worker (and the closer goroutine) must exit: poll the
	// goroutine count back down to the pre-test baseline.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Close: %d live, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitTally reports counts only for worlds that actually ran neighborhood
// groups, sized by rank, with the group count exact.
func TestWaitTally(t *testing.T) {
	w := NewWorld(8, DefaultCostModel())
	w.Parallel = true
	w.Sched = SchedNeighbor
	w.SetNeighborhoods(ringNeighborhoods(8))
	defer w.Close()
	if w.WaitTally() != nil {
		t.Fatal("WaitTally non-nil before any group")
	}
	const groups = 5
	for i := 0; i < groups; i++ {
		w.RunPhases(func(rank int) {}, func(rank int) {})
	}
	tally := w.WaitTally()
	if tally == nil {
		t.Fatal("WaitTally nil after neighborhood groups")
	}
	if tally.Groups != groups {
		t.Errorf("Groups = %d, want %d", tally.Groups, groups)
	}
	if len(tally.Blocked) != 8 {
		t.Errorf("len(Blocked) = %d, want 8", len(tally.Blocked))
	}
	if tally.TotalBlocked() < 0 || tally.Parks < 0 {
		t.Errorf("negative tally: %+v", tally)
	}
}

// scaleWorld builds a P-rank neighborhood-scheduled world running the same
// two-neighbor ring exchange as the engine benchmarks.
func scaleWorld(p int) (*World, []func(int)) {
	w := NewWorld(p, DefaultCostModel())
	w.Parallel = true
	w.Sched = SchedNeighbor
	w.SetNeighborhoods(ringNeighborhoods(p))
	payloads := make([][2]benchPayload, p)
	for r := range payloads {
		payloads[r][0].vals = make([]float64, 8)
		payloads[r][1].vals = make([]float64, 8)
	}
	phase := func(rank int) {
		sum := 0.0
		for _, m := range w.Inbox(rank) {
			sum += m.Payload.(*benchPayload).norm
		}
		for d := 0; d < 2; d++ {
			pl := &payloads[rank][d]
			pl.norm = sum + float64(rank+d)
			to := rank + 1
			if d == 1 {
				to = rank - 1 + p
			}
			w.Put(rank, to%p, TagSolve, 8*len(pl.vals)+16, pl)
		}
		w.Charge(rank, 100)
	}
	return w, []func(int){phase, phase}
}

type scaleGate struct {
	Gate map[string]float64 `json:"gate"`
}

// TestScaleAllocGate pins the steady-state allocation count of one
// neighborhood-scheduled RunPhases group against BENCH_scale.json: the
// arena-reused staging rings, inbox buffers, group buffers, and waiter
// lists must make the scheduler allocation-free after warmup — the
// property that keeps P=8192 runs CI-feasible.
func TestScaleAllocGate(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scale.json")
	if err != nil {
		t.Fatalf("reading BENCH_scale.json: %v", err)
	}
	var g scaleGate
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing BENCH_scale.json: %v", err)
	}
	want, ok := g.Gate["NbrGroup"]
	if !ok {
		t.Fatal("BENCH_scale.json gate has no NbrGroup entry")
	}
	w, fs := scaleWorld(256)
	defer w.Close()
	for i := 0; i < 4; i++ { // warm buffers, pool, and parking slots
		w.RunPhases(fs...)
	}
	got := testing.AllocsPerRun(50, func() {
		w.RunPhases(fs...)
	})
	if got > want {
		t.Errorf("neighborhood group allocates %.1f allocs/op, gate is %.1f", got, want)
	}
}

func BenchmarkScalePhases(b *testing.B) {
	for _, p := range []int{256, 1024} {
		b.Run("nbr/P="+itoa(p), func(b *testing.B) {
			w, fs := scaleWorld(p)
			defer w.Close()
			w.RunPhases(fs...)
			w.RunPhases(fs...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RunPhases(fs...)
			}
		})
	}
}

// itoa avoids pulling strconv into the test just for benchmark names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
