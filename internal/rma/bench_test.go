package rma

import (
	"fmt"
	"testing"
)

// benchPayload stands in for a solver message body; a pointer to it crosses
// the simulated network so Put should not allocate for the payload itself.
type benchPayload struct {
	vals []float64
	norm float64
}

// runPhaseBench drives the engine with a neighbor-exchange pattern shaped
// like one Distributed Southwell phase: every rank writes to its two ring
// neighbors and reads its inbox from the previous phase.
func runPhaseBench(b *testing.B, p int, parallel bool) {
	b.Helper()
	w := NewWorld(p, DefaultCostModel())
	w.Parallel = parallel
	defer w.Close()

	// Persistent per-(rank,direction) payloads, as the solvers keep them.
	payloads := make([][2]benchPayload, p)
	for r := range payloads {
		payloads[r][0].vals = make([]float64, 8)
		payloads[r][1].vals = make([]float64, 8)
	}
	phase := func(rank int) {
		sum := 0.0
		for _, m := range w.Inbox(rank) {
			sum += m.Payload.(*benchPayload).norm
		}
		for d := 0; d < 2; d++ {
			pl := &payloads[rank][d]
			pl.norm = sum + float64(rank+d)
			to := rank + 1
			if d == 1 {
				to = rank - 1 + p
			}
			w.Put(rank, to%p, TagSolve, 8*len(pl.vals)+16, pl)
		}
		w.Charge(rank, 100)
	}
	// Warm up buffers so steady-state allocation is what is measured.
	w.RunPhase(phase)
	w.RunPhase(phase)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunPhase(phase)
	}
}

func BenchmarkRunPhase(b *testing.B) {
	for _, p := range []int{256, 1024, 8192} {
		for _, eng := range []struct {
			name     string
			parallel bool
		}{{"seq", false}, {"pool", true}} {
			b.Run(fmt.Sprintf("P=%d/%s", p, eng.name), func(b *testing.B) {
				runPhaseBench(b, p, eng.parallel)
			})
		}
	}
}
