// Package rma simulates the one-sided (remote memory access) communication
// model the paper's implementation uses (MPI-3 MPI_Win_allocate / MPI_Put
// with post-start-complete-wait access epochs) inside a single process.
//
// The paper's algorithms are phase-synchronous within a parallel step:
// every rank writes to its neighbors' windows, then waits for its own
// window ("Wait for neighbors to finish writing to Wp") before reading.
// The simulator reproduces exactly this epoch structure: a phase runs every
// rank's local code, during which ranks Put messages toward target windows;
// at the end of the phase all puts are delivered atomically, becoming
// readable in the next phase. Delivery order is deterministic (sorted by
// origin rank), and the sequential and worker-pool engines produce
// bit-identical results.
//
// Two engines execute a phase. The sequential engine runs ranks 0..P-1 in
// order on the calling goroutine. The worker-pool engine (Parallel=true)
// shards the ranks into contiguous chunks over a persistent pool of
// GOMAXPROCS-bounded workers created on the first parallel phase and reused
// across all subsequent phases — no per-phase goroutine spawning. Because a
// rank's phase function touches only that rank's slots (staged puts,
// counters) and messages become visible only at the phase boundary, the two
// engines execute the same state machine and their results are
// bit-identical (asserted by the engine-equivalence tests). Call Close when
// done with a parallel world to release the workers.
//
// The hot path is allocation-free at steady state: staged-put and inbox
// slices keep their capacity across phases, delivery scratch is
// preallocated, and payloads are expected to be pointers to caller-owned
// buffers (boxing a pointer into the Payload interface does not allocate).
//
// A seeded fault-injection plan (faults.go) can perturb delivery — delayed,
// duplicated, and reordered landings, straggler cost multipliers, and rank
// pauses — deterministically and identically on both engines, for the
// robustness studies.
//
// The runtime also does the bookkeeping the paper reports: messages and
// bytes per rank split by tag (solve updates vs explicit residual updates,
// Table 3), and a BSP α-β-γ cost model that converts per-phase maxima of
// (compute + message costs) into simulated wall-clock seconds (DESIGN.md
// §2 explains why this reproduces the paper's wall-clock *shape*).
package rma

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"southwell/internal/obs"
)

// ErrClosed is the panic value of Put and RunPhase on a closed World:
// using a world after Close is a programming error that previously hung on
// the released worker pool, so it now fails loudly instead.
var ErrClosed = errors.New("rma: world used after Close")

// Tag classifies a message for the communication-cost breakdown.
type Tag int

const (
	// TagSolve marks messages carrying relaxation updates after a local
	// subdomain solve ("Solve comm" in Table 3).
	TagSolve Tag = iota
	// TagResidual marks explicit residual-norm update messages
	// ("Res comm" in Table 3).
	TagResidual
	numTags
)

// CostModel is the α-β-γ BSP time model: a message costs Alpha + Beta*bytes
// to inject, and local computation costs Gamma per flop. The simulated time
// of a phase is the maximum over ranks; phases accumulate.
type CostModel struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
	Gamma float64 // seconds per flop
}

// DefaultCostModel is loosely calibrated to a Cori-class machine: ~1.5 µs
// message latency, ~0.1 ns/byte (≈10 GB/s injection), ~0.25 ns/flop for
// sparse kernels (~4 Gflop/s sustained).
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 1.5e-6, Beta: 1e-10, Gamma: 2.5e-10}
}

// Message is one Put landed in a window.
type Message struct {
	From    int
	To      int
	Tag     Tag
	Bytes   int
	Payload any
	// Dup marks a duplicate landing injected by the fault layer: the same
	// window write observed twice in one batch. Receivers treating window
	// writes as idempotent skip these.
	Dup bool
}

// World is a set of P simulated ranks with windows and counters.
type World struct {
	P        int
	Model    CostModel
	Parallel bool // run phases on the persistent worker pool
	// Sched selects the epoch-completion discipline for RunPhases groups:
	// SchedBarrier (default, MPI_Win_fence-like global barrier) or
	// SchedNeighbor (PSCW-like per-neighborhood completion; requires
	// SetNeighborhoods and Parallel — see sched.go).
	Sched Sched

	inbox  [][]Message // readable this phase
	staged [][]Message // staged[from]: puts issued this phase
	flops  []float64   // per-rank compute charged this phase
	msgs   []int64     // per-rank messages sent this phase
	bytes  []int64     // per-rank bytes sent this phase

	recvMsgs  []int64 // deliver() scratch: per-rank landings, zeroed in place
	recvBytes []int64

	// liveInbox lists the ranks whose inbox is currently nonempty, in the
	// order they first received a landing. land maintains it (append on the
	// empty→nonempty transition) and deliver consumes it, so the active-set
	// fast path (deliverActive) clears, costs, and order-checks only the
	// windows that were actually written instead of scanning all P.
	liveInbox []int32

	// fastActive/fastList/fastIdle hold the membership mask, the optional
	// sorted member list, and the idle-charge vector of an active-subset
	// phase in flight (RunPhaseActive). When set — and no fault plan or
	// tracer is installed — deliver dispatches to deliverActive and
	// activeRange skips the per-rank idle flop writes; the idle compute
	// cost folds into the phase maximum analytically, and the list (when
	// non-nil) replaces every remaining O(P) mask or staging scan.
	fastActive []bool
	fastList   []int32
	fastIdle   []float64
	// idleMax cache: max over an idle vector, keyed by slice identity —
	// one O(P) scan per distinct vector per run instead of per phase.
	idleMaxVec []float64
	idleMaxVal float64

	simTime    float64
	totalMsgs  [numTags]int64
	totalBytes [numTags]int64
	phases     int64
	delivered  int64

	// base is the Stats snapshot taken by ResetStats. The raw counters
	// above are monotone for the life of the world (the trace clock and
	// the SimTime-monotone invariant depend on that); Stats subtracts the
	// baseline instead of the counters ever being rewound.
	base Stats

	// trace, when non-nil, receives structured events (obs package). All
	// emits are guarded by a nil check so the disabled path is free; an
	// event for rank p is emitted from p's phase function or from the
	// driver between phases, matching the obs.Tracer concurrency contract.
	trace obs.Tracer

	// chaos, when non-nil, is the installed fault-injection state (see
	// faults.go). All chaos decisions are made in deliver on the calling
	// goroutine, keeping both engines bit-identical.
	chaos *chaosState

	// Worker pool, created lazily on the first parallel phase. Each worker
	// owns a contiguous chunk of ranks and blocks on its own work channel;
	// RunPhase broadcasts the phase function and waits on the barrier.
	poolOnce  sync.Once
	workers   []chan phaseWork
	barrier   sync.WaitGroup
	stop      chan struct{}
	closeOnce sync.Once
	// closed is atomic because Close may run concurrently with workers
	// parked inside an in-flight neighborhood group (the release path of
	// Close under SchedNeighbor); Put/RunPhase read it on every call.
	closed atomic.Bool

	// Neighborhood scheduler (sched.go), nil until SetNeighborhoods.
	nb       *nbState
	nbActive bool            // a neighborhood group is executing: Put routes to nbPut
	nbNotify []chan struct{} // per-worker wakeup slots (cap 1)
	nbParks  []int64         // per-worker park counts (wait tally)
}

// phaseWork is one unit broadcast to the worker pool: a single
// barrier-synchronized phase function f (over all ranks, or — when active
// is non-nil — over the active subset with idle charging, see active.go),
// or a whole neighborhood-epoch group g.
type phaseWork struct {
	f      func(int)
	g      *nbGroup
	active []bool    // non-nil: run f only where set (RunPhaseActive)
	idle   []float64 // per-rank flop charge for skipped, unpaused ranks
}

// NewWorld creates a world of p ranks with the given cost model.
func NewWorld(p int, model CostModel) *World {
	w := &World{
		P:         p,
		Model:     model,
		inbox:     make([][]Message, p),
		staged:    make([][]Message, p),
		flops:     make([]float64, p),
		msgs:      make([]int64, p),
		bytes:     make([]int64, p),
		recvMsgs:  make([]int64, p),
		recvBytes: make([]int64, p),
		liveInbox: make([]int32, 0, p),
	}
	return w
}

// Put stages a one-sided write of payload into the window of rank `to`. It
// becomes visible in to's inbox at the start of the next phase. Put must be
// called from rank `from`'s phase function. Payloads should be pointers to
// caller-owned buffers: boxing a pointer does not allocate, and the runtime
// never copies or retains payload contents beyond the receiving phase.
//
//dslint:hotpath
func (w *World) Put(from, to int, tag Tag, bytes int, payload any) {
	if w.closed.Load() {
		panic(ErrClosed)
	}
	if to < 0 || to >= w.P {
		panic(fmt.Sprintf("rma: Put target %d out of range (P=%d)", to, w.P))
	}
	if w.nbActive {
		w.nbPut(from, to, tag, bytes, payload)
		return
	}
	w.staged[from] = append(w.staged[from], Message{From: from, To: to, Tag: tag, Bytes: bytes, Payload: payload}) //dslint:ignore hotalloc staging buffers keep their capacity across phases (deliver resets to st[:0])
	w.msgs[from]++
	w.bytes[from] += int64(bytes)
	if w.trace != nil {
		w.trace.Emit(obs.Event{
			Kind:  obs.KindPut,
			Rank:  int32(from),
			A:     int32(to),
			Tag:   uint8(tag),
			I1:    int64(bytes),
			Ts:    w.simTime,
			Phase: w.phases,
		})
	}
}

// Charge records flops of local computation for rank in the current phase.
//
//dslint:hotpath
func (w *World) Charge(rank int, flops float64) {
	w.flops[rank] += flops
}

// Inbox returns the messages delivered to rank at the last phase boundary.
// The slice is valid until the next phase boundary.
//
//dslint:hotpath
func (w *World) Inbox(rank int) []Message {
	return w.inbox[rank]
}

// LiveInboxes returns the ranks whose inbox is currently nonempty, in
// first-landing order, so boundary scans over P ranks can instead walk the
// handful of windows that were actually written. The slice is valid until
// the next phase boundary and must not be mutated. Not maintained on the
// neighborhood-scheduled (SchedNeighbor) delivery path, which assembles
// windows per rank — callers there must scan Inbox directly.
//
//dslint:hotpath
func (w *World) LiveInboxes() []int32 {
	return w.liveInbox
}

// SetTracer installs (or, with nil, removes) a structured-event tracer.
// Install before the first phase; the tracer must follow the obs.Tracer
// concurrency contract. Tracing changes no observable runtime behavior:
// results, message counts, and SimTime are bit-identical with it on or off.
func (w *World) SetTracer(t obs.Tracer) { w.trace = t }

// Tracer returns the installed tracer (nil when tracing is off), so layers
// above the runtime (dmem) can emit algorithm-level events on the same
// clock.
func (w *World) Tracer() obs.Tracer { return w.trace }

// Now returns the simulated clock: cumulative α-β-γ seconds since the
// world was created. Unlike Stats().SimTime it is never rewound by
// ResetStats, which is what makes it a valid trace timestamp.
func (w *World) Now() float64 { return w.simTime }

// PhaseIndex returns the number of completed phases since world creation
// (also monotone across ResetStats).
func (w *World) PhaseIndex() int64 { return w.phases }

// RunPhase executes one access epoch: f runs for every rank (sequentially,
// or sharded over the persistent worker pool when w.Parallel is set), then
// all staged puts are delivered and the phase's simulated time is
// accounted. Both engines produce bit-identical results: f(p) may only
// touch rank p's state, and cross-rank data moves exclusively through Put
// at the phase boundary.
//
//dslint:hotpath
func (w *World) RunPhase(f func(rank int)) {
	if w.closed.Load() {
		panic(ErrClosed)
	}
	if ch := w.chaos; ch != nil && ch.markPaused(w.phases) {
		// Paused ranks are descheduled for this phase: their function does
		// not run, and deliver leaves their windows (inboxes) intact so
		// landed one-sided writes stay readable until they next execute.
		inner := f
		//dslint:ignore hotalloc chaos wrapper closure, built only under an installed fault plan
		f = func(p int) {
			if !ch.pausedNow[p] {
				inner(p)
			}
		}
	}
	if ch := w.chaos; ch != nil && (ch.plan.SpinStragglers || ch.plan.HostDelay != nil) {
		// Host-side straggling: burn real CPU and/or block on the slowed
		// rank's worker in proportion to the extra simulated cost, so
		// wall-clock studies see the stall the cost model charges. Paused
		// ranks did not run, so they do not straggle (matching nbRunPhase).
		// Results are unaffected.
		inner := f
		phase := w.phases
		//dslint:ignore hotalloc chaos wrapper closure, built only under an installed fault plan
		f = func(p int) {
			inner(p)
			if ch.pausedNow[p] {
				return
			}
			ch.hostStraggle(p, phase, w.flops[p])
		}
	}
	if w.Parallel && w.P > 1 {
		w.poolOnce.Do(w.startPool) //dslint:ignore hotalloc method value for one-time pool start; Once skips it on every later phase
		w.barrier.Add(len(w.workers))
		for _, ch := range w.workers {
			ch <- phaseWork{f: f}
		}
		w.barrier.Wait()
	} else {
		for p := 0; p < w.P; p++ {
			f(p)
		}
	}
	w.deliver()
}

// startPool creates the persistent workers: at most GOMAXPROCS goroutines
// (or exactly FaultPlan.HostWorkers when the installed plan requests pool
// over-subscription for blocking host delays), each owning a contiguous
// chunk of ranks for its lifetime. Workers survive across phases (and
// across solver steps) until Close.
//
//dslint:ignore hotalloc one-time worker-pool construction behind poolOnce
func (w *World) startPool() {
	n := runtime.GOMAXPROCS(0)
	if ch := w.chaos; ch != nil && ch.plan.HostWorkers > 0 {
		n = ch.plan.HostWorkers
	}
	if n > w.P {
		n = w.P
	}
	w.stop = make(chan struct{})
	chunk := (w.P + n - 1) / n
	for lo := 0; lo < w.P; lo += chunk {
		hi := lo + chunk
		if hi > w.P {
			hi = w.P
		}
		id := len(w.workers)
		ch := make(chan phaseWork, 1)
		w.workers = append(w.workers, ch)
		w.nbNotify = append(w.nbNotify, make(chan struct{}, 1))
		w.nbParks = append(w.nbParks, 0)
		go func(id, lo, hi int, ch <-chan phaseWork) {
			for {
				select {
				case pw := <-ch:
					if pw.g != nil {
						stopped := w.nbRunChunk(id, lo, hi, pw.g)
						w.barrier.Done()
						if stopped {
							w.drainWorker(ch)
							return
						}
					} else if pw.active != nil {
						w.activeRange(lo, hi, pw.f, pw.active, pw.idle)
						w.barrier.Done()
					} else {
						for p := lo; p < hi; p++ {
							pw.f(p)
						}
						w.barrier.Done()
					}
				case <-w.stop:
					w.drainWorker(ch)
					return
				}
			}
		}(id, lo, hi, ch)
	}
}

// drainWorker consumes any work broadcast concurrently with Close and
// signals the barrier for it, so a driver racing Close on its way into a
// phase blocks on barrier.Wait only until the drain — and then observes
// closed and panics with ErrClosed instead of hanging.
func (w *World) drainWorker(ch <-chan phaseWork) {
	for {
		select {
		case <-ch:
			w.barrier.Done()
		default:
			return
		}
	}
}

// Close releases the worker pool. It is safe to call multiple times and on
// worlds that never ran a parallel phase. Close must not race with
// RunPhase; under SchedNeighbor it additionally may be called (once the
// pool exists) while a RunPhases group is in flight: workers parked on
// neighborhood waits are released, every worker exits, and the blocked
// RunPhases call panics with ErrClosed. After Close, Put, RunPhase, and
// RunPhases panic with ErrClosed instead of hanging on the released
// workers.
func (w *World) Close() {
	w.closeOnce.Do(func() {
		w.closed.Store(true)
		if w.stop != nil {
			close(w.stop)
		}
	})
}

// deliver moves staged puts into inboxes (deterministically ordered by
// origin rank) and accumulates the phase's simulated time. The time is the
// BSP h-relation cost: per rank, compute plus message costs counting both
// injections and landings (a window write occupies the target's NIC even
// though the target CPU is not involved), maximized over ranks.
//
// deliver is allocation-free at steady state: inboxes and staged slices
// keep their capacity, and the landing counters are preallocated scratch.
// With a fault plan installed it additionally holds back, duplicates, and
// reorders landings, retains the windows of paused ranks, and applies
// straggler multipliers to the cost model — all decided here, on the
// calling goroutine, so both engines see the same schedule.
func (w *World) deliver() {
	ch := w.chaos
	if ch == nil && w.trace == nil && w.fastActive != nil {
		w.deliverActive()
		return
	}
	w.liveInbox = w.liveInbox[:0] // rebuilt below (retained windows) and by land
	for p := range w.inbox {
		if ch != nil && ch.pausedNow[p] {
			// One-sided writes to a paused rank's window persist until the
			// rank next runs an epoch and can actually read them.
			ch.paused++
			if len(w.inbox[p]) > 0 {
				w.liveInbox = append(w.liveInbox, int32(p)) //dslint:ignore hotalloc preallocated to cap P in NewWorld; entries are distinct ranks, so len never exceeds P
			}
			if w.trace != nil {
				w.trace.Emit(obs.Event{
					Kind:  obs.KindFault,
					Rank:  obs.ControlRank,
					Flag:  obs.FlagFaultPaused,
					A:     int32(p),
					Ts:    w.simTime,
					Phase: w.phases,
				})
			}
			continue
		}
		in := w.inbox[p]
		for i := range in {
			in[i].Payload = nil // do not retain payloads past their phase
		}
		w.inbox[p] = in[:0]
	}
	if ch != nil {
		for p := range w.inbox {
			ch.batchStart[p] = len(w.inbox[p])
		}
		// Delayed messages whose boundary has come land first (they are
		// the oldest traffic), in staging order.
		for _, h := range ch.releaseDue(w.phases) {
			w.land(h.m)
		}
	}
	for from := 0; from < w.P; from++ {
		st := w.staged[from]
		for i := range st {
			m := &st[i]
			w.totalMsgs[m.Tag]++
			w.totalBytes[m.Tag] += int64(m.Bytes)
			if ch == nil {
				w.land(*m)
			} else if deliver, dup := ch.fault(m, w.phases); deliver {
				w.land(*m)
				if dup {
					d := *m
					d.Dup = true
					w.land(d)
					w.emitFault(obs.FlagFaultDuped, m.From, m.To)
				}
			} else {
				w.emitFault(obs.FlagFaultDelayed, m.From, m.To)
			}
			m.Payload = nil
		}
		w.staged[from] = st[:0]
	}
	if ch != nil && ch.plan.ReorderProb > 0 {
		for p := range w.inbox {
			batch := w.inbox[p][ch.batchStart[p]:]
			if len(batch) < 2 {
				continue
			}
			if ch.rng.float() >= ch.plan.ReorderProb {
				continue
			}
			ch.reordered++
			w.emitFault(obs.FlagFaultReordered, p, p)
			for i := len(batch) - 1; i > 0; i-- {
				j := ch.rng.intn(i + 1)
				batch[i], batch[j] = batch[j], batch[i]
			}
		}
	}

	maxCost := 0.0
	for p := 0; p < w.P; p++ {
		h := float64(w.msgs[p] + w.recvMsgs[p])
		hb := float64(w.bytes[p] + w.recvBytes[p])
		cost := w.Model.Gamma*w.flops[p] + w.Model.Alpha*h + w.Model.Beta*hb
		if ch != nil {
			cost *= ch.slowAt(p, w.phases)
		}
		if cost > maxCost {
			maxCost = cost
		}
	}
	w.simTime += maxCost
	w.phases++
	var landings int64
	for p := 0; p < w.P; p++ {
		landings += w.recvMsgs[p]
		if w.trace != nil && (w.flops[p] != 0 || w.msgs[p] != 0 || w.recvMsgs[p] != 0) {
			// Re-derive the cost split so the slice carries the γ/α/β
			// terms separately: the rank whose total tracks the phase
			// maximum is the SimTime winner.
			mult := 1.0
			if ch != nil {
				mult = ch.slowAt(p, w.phases-1)
			}
			fc := w.Model.Gamma * w.flops[p] * mult
			mc := w.Model.Alpha * float64(w.msgs[p]+w.recvMsgs[p]) * mult
			bc := w.Model.Beta * float64(w.bytes[p]+w.recvBytes[p]) * mult
			w.trace.Emit(obs.Event{
				Kind:  obs.KindRankCost,
				Rank:  int32(p),
				Ts:    w.simTime,
				Dur:   fc + mc + bc,
				V1:    fc,
				V2:    mc,
				V3:    bc,
				A:     int32(w.msgs[p]),
				B:     int32(w.recvMsgs[p]),
				I1:    w.bytes[p],
				I2:    w.recvBytes[p],
				Phase: w.phases - 1,
			})
		}
		w.flops[p] = 0
		w.msgs[p] = 0
		w.bytes[p] = 0
		w.recvMsgs[p] = 0
		w.recvBytes[p] = 0
	}
	if w.trace != nil {
		w.trace.Emit(obs.Event{
			Kind:  obs.KindPhase,
			Rank:  obs.ControlRank,
			Ts:    w.simTime,
			Dur:   maxCost,
			I1:    landings,
			Phase: w.phases - 1,
		})
	}
	if ch != nil {
		// Chaos delivery is intentionally not origin-ordered (delays and
		// reordering are the point); skip the order normalization below.
		return
	}
	// Origin order is already deterministic because delivery iterates
	// senders in ascending rank order; verify the invariant cheaply and
	// only pay for a sort if a future change breaks it.
	for p := range w.inbox {
		in := w.inbox[p]
		for i := 1; i < len(in); i++ {
			if in[i].From < in[i-1].From {
				//dslint:ignore hotalloc defensive re-sort, unreachable while delivery iterates senders in ascending rank order
				sort.SliceStable(in, func(a, b int) bool { return in[a].From < in[b].From })
				break
			}
		}
	}
}

// sweepStaged lands rank from's staged puts (tag totals included) and
// resets the ring. Shared by deliverActive's mask and member-list sweeps.
//
//dslint:hotpath
func (w *World) sweepStaged(from int) {
	st := w.staged[from]
	for i := range st {
		m := &st[i]
		w.totalMsgs[m.Tag]++
		w.totalBytes[m.Tag] += int64(m.Bytes)
		w.land(*m)
		m.Payload = nil
	}
	w.staged[from] = st[:0]
}

// idleMax returns max(idle), cached by slice identity: the engine reuses
// one immutable idle vector per phase kind for a whole run, so the O(P)
// scan happens once per run rather than once per phase. Callers must not
// mutate a vector between phases (RunPhaseActive contract).
func (w *World) idleMax(idle []float64) float64 {
	if len(idle) == 0 {
		return 0
	}
	if w.idleMaxVec != nil && &w.idleMaxVec[0] == &idle[0] {
		return w.idleMaxVal
	}
	m := 0.0
	for _, v := range idle {
		if v > m {
			m = v
		}
	}
	w.idleMaxVec, w.idleMaxVal = idle, m
	return m
}

// deliverActive is deliver for an active-subset phase with no fault plan
// and no tracer installed: every per-rank loop runs over the ranks that
// were actually touched (the active set, plus windows that received a
// landing) rather than all P, so a phase boundary costs O(active work).
// Skipped ranks carry no idle flop writes on this path — their compute
// cost Gamma·idle[p] is a monotone function of idle[p] with zero message
// terms, so folding a single Gamma·max(idle) term reproduces the dense
// phase maximum bit-for-bit: x+0 = x and max(c·a, c·b) = c·max(a,b) for
// the non-negative finite costs the model produces, and the max may be
// taken over ALL ranks (cached per idle vector, see idleMax) because
// idle[p] lower-bounds every executing rank's flop charge (RunPhaseActive
// contract) and IEEE multiply-by-nonnegative and add-nonnegative are
// monotone, so an executing or landing rank's full-formula cost already
// dominates its own Gamma·idle[p] term.
//
//dslint:hotpath
func (w *World) deliverActive() {
	// Clear only the windows that were written last phase. land() keeps
	// liveInbox exact: an entry per nonempty inbox, appended on the
	// empty→nonempty transition.
	for _, p := range w.liveInbox {
		in := w.inbox[p]
		for i := range in {
			in[i].Payload = nil // do not retain payloads past their phase
		}
		w.inbox[p] = in[:0]
	}
	w.liveInbox = w.liveInbox[:0]
	active, list, idle := w.fastActive, w.fastList, w.fastIdle
	if list != nil {
		// Only executing ranks can have staged puts (the RunPhaseActive
		// contract: an inactive rank's phase sends nothing), and the list is
		// ascending, so walking it preserves sender-order delivery.
		for _, from := range list {
			w.sweepStaged(int(from))
		}
	} else {
		for from := 0; from < w.P; from++ {
			if len(w.staged[from]) == 0 {
				continue
			}
			w.sweepStaged(from)
		}
	}

	// Phase cost: the executing ranks and the landing receivers carry the
	// full α-β-γ formula; every other skipped rank's cost is exactly
	// Gamma·idle[p], folded analytically below.
	maxCost := 0.0
	if idle != nil {
		maxCost = w.Model.Gamma * w.idleMax(idle)
	}
	if list != nil {
		for _, p32 := range list {
			p := int(p32)
			h := float64(w.msgs[p] + w.recvMsgs[p])
			hb := float64(w.bytes[p] + w.recvBytes[p])
			cost := w.Model.Gamma*w.flops[p] + w.Model.Alpha*h + w.Model.Beta*hb
			if cost > maxCost {
				maxCost = cost
			}
			w.flops[p] = 0
			w.msgs[p] = 0
			w.bytes[p] = 0
			w.recvMsgs[p] = 0
			w.recvBytes[p] = 0
		}
	} else {
		for p := 0; p < w.P; p++ {
			if !active[p] {
				continue
			}
			h := float64(w.msgs[p] + w.recvMsgs[p])
			hb := float64(w.bytes[p] + w.recvBytes[p])
			cost := w.Model.Gamma*w.flops[p] + w.Model.Alpha*h + w.Model.Beta*hb
			if cost > maxCost {
				maxCost = cost
			}
			w.flops[p] = 0
			w.msgs[p] = 0
			w.bytes[p] = 0
			w.recvMsgs[p] = 0
			w.recvBytes[p] = 0
		}
	}
	for _, p32 := range w.liveInbox {
		p := int(p32)
		fl := w.flops[p] // 0 for a skipped receiver: no idle writes on this path
		if !active[p] && idle != nil {
			fl = idle[p] // dense charges flops[p] = 0 + idle[p]
		}
		h := float64(w.msgs[p] + w.recvMsgs[p])
		hb := float64(w.bytes[p] + w.recvBytes[p])
		cost := w.Model.Gamma*fl + w.Model.Alpha*h + w.Model.Beta*hb
		if cost > maxCost {
			maxCost = cost
		}
		w.flops[p] = 0
		w.msgs[p] = 0
		w.bytes[p] = 0
		w.recvMsgs[p] = 0
		w.recvBytes[p] = 0
	}
	w.simTime += maxCost
	w.phases++
	// Origin order is deterministic because delivery iterates senders in
	// ascending rank order; verify cheaply over the written windows only.
	for _, p := range w.liveInbox {
		in := w.inbox[p]
		for i := 1; i < len(in); i++ {
			if in[i].From < in[i-1].From {
				//dslint:ignore hotalloc defensive re-sort, unreachable while delivery iterates senders in ascending rank order
				sort.SliceStable(in, func(a, b int) bool { return in[a].From < in[b].From })
				break
			}
		}
	}
}

// emitFault records a fault-layer action on the control track. Fault
// decisions are made on the driver goroutine in deliver, so these emits
// are always race-free.
func (w *World) emitFault(flag uint8, from, to int) {
	if w.trace == nil {
		return
	}
	w.trace.Emit(obs.Event{
		Kind:  obs.KindFault,
		Rank:  obs.ControlRank,
		Flag:  flag,
		A:     int32(from),
		B:     int32(to),
		Ts:    w.simTime,
		Phase: w.phases,
	})
}

// land appends one message to its target window and charges the landing
// (the write occupies the target's NIC even though its CPU is not
// involved).
func (w *World) land(m Message) {
	if len(w.inbox[m.To]) == 0 {
		w.liveInbox = append(w.liveInbox, int32(m.To)) //dslint:ignore hotalloc preallocated to cap P in NewWorld; entries are distinct ranks, so len never exceeds P
	}
	w.inbox[m.To] = append(w.inbox[m.To], m) //dslint:ignore hotalloc window buffers keep their capacity across phases (deliver resets to in[:0])
	w.recvMsgs[m.To]++
	w.recvBytes[m.To] += int64(m.Bytes)
	w.delivered++
	if w.trace != nil {
		e := obs.Event{
			Kind:  obs.KindDeliver,
			Rank:  int32(m.To),
			A:     int32(m.From),
			Tag:   uint8(m.Tag),
			I1:    int64(m.Bytes),
			Ts:    w.simTime,
			Phase: w.phases,
		}
		if m.Dup {
			e.Flag = obs.FlagDup
		}
		w.trace.Emit(e)
	}
}

// Stats is the cumulative communication record of a world.
type Stats struct {
	SimTime    float64
	Phases     int64
	SolveMsgs  int64
	ResMsgs    int64
	SolveBytes int64
	ResBytes   int64
	// Delivered counts landings (including fault-injected duplicates);
	// without faults it equals TotalMsgs once all messages have arrived.
	Delivered int64
	// Fault-injection counters, all zero without an installed plan.
	DelayedMsgs      int64 // messages held back by the fault layer
	DupMsgs          int64 // duplicate landings injected
	ReorderedBatches int64 // delivery batches shuffled
	PausedRankPhases int64 // rank-phases spent descheduled
}

// TotalMsgs returns all messages sent so far.
func (s Stats) TotalMsgs() int64 { return s.SolveMsgs + s.ResMsgs }

// CommCost is the paper's §4.3 metric: total messages divided by ranks.
// A non-positive rank count yields 0 rather than NaN/±Inf, so a malformed
// caller cannot poison a table cell silently.
func (s Stats) CommCost(p int) float64 {
	if p <= 0 {
		return 0
	}
	return float64(s.TotalMsgs()) / float64(p)
}

// rawStats snapshots the monotone lifetime counters, ignoring any
// ResetStats baseline.
func (w *World) rawStats() Stats {
	s := Stats{
		SimTime:    w.simTime,
		Phases:     w.phases,
		SolveMsgs:  w.totalMsgs[TagSolve],
		ResMsgs:    w.totalMsgs[TagResidual],
		SolveBytes: w.totalBytes[TagSolve],
		ResBytes:   w.totalBytes[TagResidual],
		Delivered:  w.delivered,
	}
	if ch := w.chaos; ch != nil {
		s.DelayedMsgs = ch.delayed
		s.DupMsgs = ch.duped
		s.ReorderedBatches = ch.reordered
		s.PausedRankPhases = ch.paused
	}
	return s
}

// Stats returns a snapshot of the counters since the last ResetStats (or
// world creation).
func (w *World) Stats() Stats {
	s := w.rawStats()
	b := w.base
	s.SimTime -= b.SimTime
	s.Phases -= b.Phases
	s.SolveMsgs -= b.SolveMsgs
	s.ResMsgs -= b.ResMsgs
	s.SolveBytes -= b.SolveBytes
	s.ResBytes -= b.ResBytes
	s.Delivered -= b.Delivered
	s.DelayedMsgs -= b.DelayedMsgs
	s.DupMsgs -= b.DupMsgs
	s.ReorderedBatches -= b.ReorderedBatches
	s.PausedRankPhases -= b.PausedRankPhases
	return s
}

// ResetStats restarts the Stats window (e.g. between a setup phase and a
// measured solve). It moves the baseline rather than rewinding counters:
// the internal clock stays monotone for the life of the world, so a
// mid-run reset can never make trace timestamps — or a SimTime series read
// through Stats after the reset — go backwards relative to each other.
func (w *World) ResetStats() {
	w.base = w.rawStats()
}
