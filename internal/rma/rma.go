// Package rma simulates the one-sided (remote memory access) communication
// model the paper's implementation uses (MPI-3 MPI_Win_allocate / MPI_Put
// with post-start-complete-wait access epochs) inside a single process.
//
// The paper's algorithms are phase-synchronous within a parallel step:
// every rank writes to its neighbors' windows, then waits for its own
// window ("Wait for neighbors to finish writing to Wp") before reading.
// The simulator reproduces exactly this epoch structure: a phase runs every
// rank's local code, during which ranks Put messages toward target windows;
// at the end of the phase all puts are delivered atomically, becoming
// readable in the next phase. Delivery order is deterministic (sorted by
// origin rank), and the sequential and concurrent engines produce
// bit-identical results.
//
// The runtime also does the bookkeeping the paper reports: messages and
// bytes per rank split by tag (solve updates vs explicit residual updates,
// Table 3), and a BSP α-β-γ cost model that converts per-phase maxima of
// (compute + message costs) into simulated wall-clock seconds (DESIGN.md
// §2 explains why this reproduces the paper's wall-clock *shape*).
package rma

import (
	"fmt"
	"sort"
	"sync"
)

// Tag classifies a message for the communication-cost breakdown.
type Tag int

const (
	// TagSolve marks messages carrying relaxation updates after a local
	// subdomain solve ("Solve comm" in Table 3).
	TagSolve Tag = iota
	// TagResidual marks explicit residual-norm update messages
	// ("Res comm" in Table 3).
	TagResidual
	numTags
)

// CostModel is the α-β-γ BSP time model: a message costs Alpha + Beta*bytes
// to inject, and local computation costs Gamma per flop. The simulated time
// of a phase is the maximum over ranks; phases accumulate.
type CostModel struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
	Gamma float64 // seconds per flop
}

// DefaultCostModel is loosely calibrated to a Cori-class machine: ~1.5 µs
// message latency, ~0.1 ns/byte (≈10 GB/s injection), ~0.25 ns/flop for
// sparse kernels (~4 Gflop/s sustained).
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 1.5e-6, Beta: 1e-10, Gamma: 2.5e-10}
}

// Message is one Put landed in a window.
type Message struct {
	From    int
	Tag     Tag
	Bytes   int
	Payload any
}

// World is a set of P simulated ranks with windows and counters.
type World struct {
	P        int
	Model    CostModel
	Parallel bool // run phases with one goroutine per rank

	inbox  [][]Message // readable this phase
	staged [][]Message // staged[from]: puts issued this phase
	flops  []float64   // per-rank compute charged this phase
	msgs   []int64     // per-rank messages sent this phase
	bytes  []int64     // per-rank bytes sent this phase

	simTime    float64
	totalMsgs  [numTags]int64
	totalBytes [numTags]int64
	phases     int64
}

// NewWorld creates a world of p ranks with the given cost model.
func NewWorld(p int, model CostModel) *World {
	w := &World{
		P:      p,
		Model:  model,
		inbox:  make([][]Message, p),
		staged: make([][]Message, p),
		flops:  make([]float64, p),
		msgs:   make([]int64, p),
		bytes:  make([]int64, p),
	}
	return w
}

// Put stages a one-sided write of payload into the window of rank `to`. It
// becomes visible in to's inbox at the start of the next phase. Put must be
// called from rank `from`'s phase function.
func (w *World) Put(from, to int, tag Tag, bytes int, payload any) {
	if to < 0 || to >= w.P {
		panic(fmt.Sprintf("rma: Put target %d out of range (P=%d)", to, w.P))
	}
	w.staged[from] = append(w.staged[from], Message{From: from, Tag: tag, Bytes: bytes, Payload: payload})
	// Target is stored in-band to keep staging per-origin (race-free in the
	// concurrent engine); deliver() routes by this field.
	w.staged[from][len(w.staged[from])-1].Payload = routed{to: to, payload: payload}
	w.msgs[from]++
	w.bytes[from] += int64(bytes)
}

type routed struct {
	to      int
	payload any
}

// Charge records flops of local computation for rank in the current phase.
func (w *World) Charge(rank int, flops float64) {
	w.flops[rank] += flops
}

// Inbox returns the messages delivered to rank at the last phase boundary.
// The slice is valid until the next phase boundary.
func (w *World) Inbox(rank int) []Message {
	return w.inbox[rank]
}

// RunPhase executes one access epoch: f runs for every rank (sequentially,
// or concurrently when w.Parallel is set), then all staged puts are
// delivered and the phase's simulated time is accounted.
func (w *World) RunPhase(f func(rank int)) {
	if w.Parallel {
		var wg sync.WaitGroup
		wg.Add(w.P)
		for p := 0; p < w.P; p++ {
			go func(p int) {
				defer wg.Done()
				f(p)
			}(p)
		}
		wg.Wait()
	} else {
		for p := 0; p < w.P; p++ {
			f(p)
		}
	}
	w.deliver()
}

// deliver moves staged puts into inboxes (deterministically ordered by
// origin rank) and accumulates the phase's simulated time. The time is the
// BSP h-relation cost: per rank, compute plus message costs counting both
// injections and landings (a window write occupies the target's NIC even
// though the target CPU is not involved), maximized over ranks.
func (w *World) deliver() {
	recvMsgs := make([]int64, w.P)
	recvBytes := make([]int64, w.P)
	for p := range w.inbox {
		w.inbox[p] = w.inbox[p][:0]
	}
	for from := 0; from < w.P; from++ {
		for _, m := range w.staged[from] {
			r := m.Payload.(routed)
			m.Payload = r.payload
			w.inbox[r.to] = append(w.inbox[r.to], m)
			recvMsgs[r.to]++
			recvBytes[r.to] += int64(m.Bytes)
			w.totalMsgs[m.Tag]++
			w.totalBytes[m.Tag] += int64(m.Bytes)
		}
		w.staged[from] = w.staged[from][:0]
	}

	maxCost := 0.0
	for p := 0; p < w.P; p++ {
		h := float64(w.msgs[p] + recvMsgs[p])
		hb := float64(w.bytes[p] + recvBytes[p])
		cost := w.Model.Gamma*w.flops[p] + w.Model.Alpha*h + w.Model.Beta*hb
		if cost > maxCost {
			maxCost = cost
		}
		w.flops[p] = 0
		w.msgs[p] = 0
		w.bytes[p] = 0
	}
	w.simTime += maxCost
	w.phases++
	// Origin order is already deterministic because we iterate senders in
	// rank order; keep a stable sort as a guard for future multi-window use.
	for p := range w.inbox {
		sort.SliceStable(w.inbox[p], func(i, j int) bool {
			return w.inbox[p][i].From < w.inbox[p][j].From
		})
	}
}

// Stats is the cumulative communication record of a world.
type Stats struct {
	SimTime    float64
	Phases     int64
	SolveMsgs  int64
	ResMsgs    int64
	SolveBytes int64
	ResBytes   int64
}

// TotalMsgs returns all messages sent so far.
func (s Stats) TotalMsgs() int64 { return s.SolveMsgs + s.ResMsgs }

// CommCost is the paper's §4.3 metric: total messages divided by ranks.
func (s Stats) CommCost(p int) float64 { return float64(s.TotalMsgs()) / float64(p) }

// Stats returns a snapshot of the counters.
func (w *World) Stats() Stats {
	return Stats{
		SimTime:    w.simTime,
		Phases:     w.phases,
		SolveMsgs:  w.totalMsgs[TagSolve],
		ResMsgs:    w.totalMsgs[TagResidual],
		SolveBytes: w.totalBytes[TagSolve],
		ResBytes:   w.totalBytes[TagResidual],
	}
}

// ResetStats zeroes the cumulative counters (e.g. between a setup phase and
// a measured solve).
func (w *World) ResetStats() {
	w.simTime = 0
	w.phases = 0
	for t := Tag(0); t < numTags; t++ {
		w.totalMsgs[t] = 0
		w.totalBytes[t] = 0
	}
}
