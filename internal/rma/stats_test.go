package rma

import (
	"testing"

	"southwell/internal/obs"
)

// TestCommCostGuard: a non-positive rank count must yield 0, never a NaN
// or ±Inf that would poison a table cell downstream.
func TestCommCostGuard(t *testing.T) {
	s := Stats{SolveMsgs: 7, ResMsgs: 3}
	for _, p := range []int{0, -1, -64} {
		if got := s.CommCost(p); got != 0 {
			t.Errorf("CommCost(%d) = %g, want 0", p, got)
		}
	}
	if got := s.CommCost(5); got != 2 {
		t.Errorf("CommCost(5) = %g, want 2", got)
	}
}

// TestResetStatsWindow: ResetStats moves the measurement baseline instead
// of rewinding counters — the post-reset Stats window is exact, and the
// world clock (Now, PhaseIndex) stays monotone across the reset so trace
// timestamps can never go backwards.
func TestResetStatsWindow(t *testing.T) {
	w := NewWorld(2, CostModel{Alpha: 1, Beta: 1, Gamma: 1})
	exchange := func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 10, nil)
		}
		w.Charge(rank, 1)
	}
	w.RunPhase(exchange)
	w.RunPhase(exchange)

	before := w.Stats()
	if before.SolveMsgs != 2 || before.Phases != 2 {
		t.Fatalf("setup window: %+v", before)
	}
	clk, ph := w.Now(), w.PhaseIndex()
	if clk != before.SimTime {
		t.Fatalf("Now() %g disagrees with Stats.SimTime %g before any reset", clk, before.SimTime)
	}

	w.ResetStats()
	if s := w.Stats(); s != (Stats{}) {
		t.Fatalf("window not empty after reset: %+v", s)
	}
	if w.Now() != clk || w.PhaseIndex() != ph {
		t.Fatalf("reset rewound the clock: Now %g->%g, phase %d->%d",
			clk, w.Now(), ph, w.PhaseIndex())
	}

	w.RunPhase(exchange)
	after := w.Stats()
	if after.SolveMsgs != 1 || after.Phases != 1 || after.SolveBytes != 10 {
		t.Errorf("post-reset window wrong: %+v", after)
	}
	if after.SimTime <= 0 {
		t.Errorf("post-reset SimTime %g, want > 0", after.SimTime)
	}
	if w.Now() <= clk {
		t.Errorf("clock not monotone across reset: %g then %g", clk, w.Now())
	}
}

// TestResetStatsTraceMonotone: trace timestamps ride the lifetime clock,
// so a mid-run ResetStats leaves the recorded event stream monotone.
func TestResetStatsTraceMonotone(t *testing.T) {
	rec := obs.NewRecorder(2)
	w := NewWorld(2, CostModel{Alpha: 1})
	w.SetTracer(rec)
	exchange := func(rank int) {
		if rank == 0 {
			w.Put(0, 1, TagSolve, 8, nil)
		}
	}
	w.RunPhase(exchange)
	w.ResetStats()
	w.RunPhase(exchange)
	w.RunPhase(exchange)

	lastTs := -1.0
	lastPhase := int64(-1)
	n := 0
	for _, e := range rec.Events() {
		if e.Kind != obs.KindPhase {
			continue
		}
		n++
		if e.Ts < lastTs {
			t.Errorf("phase event Ts went backwards: %g after %g", e.Ts, lastTs)
		}
		if e.Phase <= lastPhase {
			t.Errorf("phase index not increasing: %d after %d", e.Phase, lastPhase)
		}
		lastTs, lastPhase = e.Ts, e.Phase
	}
	if n != 3 {
		t.Errorf("recorded %d phase events, want 3", n)
	}
}
