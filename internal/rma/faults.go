package rma

// Fault injection ("chaos") for the simulated one-sided runtime.
//
// A FaultPlan installed on a World perturbs delivery the way a real
// interconnect and OS do: individual Puts are held back for extra phases,
// land twice, or arrive out of origin order; designated straggler ranks pay
// a multiplier on their compute and message costs; and ranks can be paused
// for a window of phases (descheduled — their phase function simply does
// not run, while one-sided writes to their windows keep landing and stay
// readable until they next execute an epoch, exactly as MPI_Put semantics
// allow).
//
// Every random decision is drawn from a plan-owned splitmix64 PRNG inside
// deliver(), which runs on the calling goroutine after the phase barrier on
// both engines — so a chaos run is bit-reproducible from FaultPlan.Seed and
// identical on the sequential and worker-pool engines (asserted by the
// chaos engine-equivalence tests). No math/rand global state is touched.

import "sync/atomic"

// FaultPlan describes deterministic fault injection for a World. The zero
// value injects nothing. Install it with World.InstallFaults before the
// first phase; the World copies the plan, so one plan value can seed many
// runs (each starts from Seed again).
type FaultPlan struct {
	// Seed seeds the plan's private PRNG. Two worlds given the same plan
	// see the same fault schedule.
	Seed int64
	// DelayProb is the per-message probability that a Put's delivery is
	// held back by 1..DelayMax extra phase boundaries.
	DelayProb float64
	// DelayMax bounds the delay drawn for a delayed message (phases).
	// Values < 1 are treated as 1.
	DelayMax int
	// DupProb is the per-message probability that a delivered Put lands a
	// second time in the same delivery batch (a duplicated window write;
	// the copy is flagged Message.Dup).
	DupProb float64
	// ReorderProb is the per-rank, per-boundary probability that the batch
	// of messages landing in that rank's window this boundary is shuffled
	// instead of arriving in origin-rank order.
	ReorderProb float64
	// Stragglers multiplies the cost-model compute and message terms of
	// the given ranks (simulated time only; results are unaffected).
	Stragglers map[int]float64
	// StragglerPhaseProb is the per-(rank, phase) probability of a
	// transient cost spike (OS noise, a page fault storm): the rank's cost
	// multiplier for that phase alone is scaled by phaseSpikeMult. Spikes
	// are decided by a counter-indexed hash of (Seed, rank, phase) — no
	// PRNG stream is consumed, so the schedule is identical on every
	// engine and independent of delivery order.
	StragglerPhaseProb float64
	// SpinStragglers makes straggler slowdowns real on the host: the
	// slowed rank's worker busy-spins in proportion to the extra simulated
	// compute it was charged, so wall-clock scaling studies observe the
	// stall. Results and simulated time are unaffected.
	SpinStragglers bool
	// HostDelay, when non-nil, is invoked after a rank's phase function
	// whenever its straggler multiplier exceeds 1, with the rank, phase,
	// and multiplier. Callers inject a real blocking delay (for example
	// time.Sleep, which the deterministic simulator core must not call
	// itself) to emulate externally stalled ranks — an I/O hiccup or a
	// descheduled process rather than extra compute. Unlike a CPU spin, a
	// blocked rank frees its core, so on small hosts the wall-clock
	// contrast between epoch disciplines is still observable. Results and
	// simulated time are unaffected.
	HostDelay func(rank int, phase int64, mult float64)
	// HostWorkers overrides the worker-pool size while this plan is
	// installed (0 keeps the GOMAXPROCS default). A rank blocked in
	// HostDelay parks its whole worker, so wall-clock studies
	// over-subscribe the pool to keep non-delayed ranks running —
	// mirroring MPI, where every rank is its own process and one rank's
	// stall never deschedules another. Results are bit-identical for
	// every value.
	HostWorkers int
	// Pauses deschedules ranks for windows of phases.
	Pauses []Pause
}

// Pause deschedules Rank for phases [From, To): its phase function is not
// invoked, while messages addressed to it accumulate in its window.
type Pause struct {
	Rank int
	From int
	To   int
}

// DelayPlan is the delay-only plan used by the robustness studies: each
// message is independently held back with probability prob by 1..maxDelay
// phases; nothing is duplicated, reordered, stalled, or paused.
func DelayPlan(seed int64, prob float64, maxDelay int) *FaultPlan {
	return &FaultPlan{Seed: seed, DelayProb: prob, DelayMax: maxDelay}
}

// Cloner lets the fault layer deep-copy a payload it must hold past the
// phase in which it was staged (delayed deliveries): senders reuse their
// payload buffers one phase after a normal delivery, so a held message
// would otherwise alias storage that has since been rewritten. Payloads
// that do not implement Cloner are held by reference.
type Cloner interface {
	CloneMessage() any
}

// prng is splitmix64: tiny, fast, and stable across platforms, so chaos
// schedules never depend on math/rand internals or global seeding.
type prng struct {
	s uint64
}

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *prng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (r *prng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// heldMsg is a delayed message: released at the delivery boundary whose
// phase index reaches due.
type heldMsg struct {
	due int64
	m   Message
}

// chaosState is a World's private copy of an installed plan plus its
// run state. All mutation happens in RunPhase/deliver on the calling
// goroutine; workers only read pausedNow during a phase.
type chaosState struct {
	plan FaultPlan
	rng  prng

	held       []heldMsg // delayed messages, staging order
	slow       []float64 // per-rank cost multiplier (1 = nominal)
	pausedNow  []bool    // per rank: paused during the phase just run
	anyPause   bool      // plan has at least one pause window
	lastPause  int64     // phase index at which the last pause window ends
	batchStart []int     // deliver scratch: inbox length before this boundary's landings
	dueScratch []heldMsg // releaseDue scratch, reused across boundaries

	delayed   int64 // messages held back
	duped     int64 // duplicate landings injected
	reordered int64 // delivery batches shuffled
	paused    int64 // rank-phases spent paused
}

// InstallFaults installs (a copy of) plan on the world, replacing any
// previous plan and rewinding the fault PRNG to plan.Seed. A nil plan
// removes fault injection. It must be called before the first phase.
func (w *World) InstallFaults(plan *FaultPlan) {
	if plan == nil {
		w.chaos = nil
		return
	}
	ch := &chaosState{
		plan:       *plan,
		rng:        prng{s: uint64(plan.Seed)},
		slow:       make([]float64, w.P),
		pausedNow:  make([]bool, w.P),
		batchStart: make([]int, w.P),
	}
	if ch.plan.DelayMax < 1 {
		ch.plan.DelayMax = 1
	}
	for p := range ch.slow {
		ch.slow[p] = 1
	}
	for p, f := range plan.Stragglers {
		if p >= 0 && p < w.P && f > 0 {
			ch.slow[p] = f
		}
	}
	for _, pw := range plan.Pauses {
		if pw.Rank < 0 || pw.Rank >= w.P || pw.To <= pw.From {
			continue
		}
		ch.anyPause = true
		if int64(pw.To) > ch.lastPause {
			ch.lastPause = int64(pw.To)
		}
	}
	w.chaos = ch
}

// InFlight returns the number of messages the fault layer is currently
// holding back (zero without an installed plan).
func (w *World) InFlight() int {
	if w.chaos == nil {
		return 0
	}
	return len(w.chaos.held)
}

// FaultsQuiescent reports that the fault layer can no longer change the
// course of the run on its own: no delayed message is in flight and no
// pause window is active or still ahead. Always true without an installed
// plan. Methods use it to distinguish "provably stuck" from "waiting on
// the network".
func (w *World) FaultsQuiescent() bool {
	ch := w.chaos
	if ch == nil {
		return true
	}
	return len(ch.held) == 0 && w.phases >= ch.lastPause
}

// rngFree reports that the plan draws nothing from the sequential chaos
// PRNG: no delays, duplicates, or reorders. Stragglers (constant and
// per-phase spikes) and pauses are counter-indexed, not stream-drawn, so
// an rngFree plan runs natively on the neighborhood-epoch scheduler.
func (ch *chaosState) rngFree() bool {
	return ch.plan.DelayProb <= 0 && ch.plan.DupProb <= 0 && ch.plan.ReorderProb <= 0
}

// phaseSpikeMult is the transient cost multiplier applied when a
// StragglerPhaseProb spike hits a (rank, phase).
const phaseSpikeMult = 8.0

// spikeHash maps (seed, rank, phase) to a uniform [0,1) float with a
// splitmix64 finalizer. Order-independent by construction: the same
// triple gives the same draw no matter which engine asks, or when.
func spikeHash(seed int64, p int, phase int64) float64 {
	z := uint64(seed) ^ uint64(p)*0x9e3779b97f4a7c15 ^ uint64(phase)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// slowAt returns rank p's cost multiplier for the given phase: the
// constant Stragglers factor times any per-phase spike.
//
//dslint:hotpath
func (ch *chaosState) slowAt(p int, phase int64) float64 {
	m := ch.slow[p]
	if ch.plan.StragglerPhaseProb > 0 &&
		spikeHash(ch.plan.Seed, p, phase) < ch.plan.StragglerPhaseProb {
		m *= phaseSpikeMult
	}
	return m
}

// pausedAt reports whether rank p is descheduled in the given phase. Same
// predicate markPaused evaluates, but indexed by (rank, phase) instead of
// materializing a per-phase pausedNow slice — the neighborhood engine
// asks per rank because ranks run different phases concurrently.
//
//dslint:hotpath
func (ch *chaosState) pausedAt(p int, phase int64) bool {
	if !ch.anyPause {
		return false
	}
	for _, pw := range ch.plan.Pauses {
		if pw.Rank == p && phase >= int64(pw.From) && phase < int64(pw.To) {
			return true
		}
	}
	return false
}

// spinSink absorbs hostSpin's accumulator so the spin loop cannot be
// optimized away; atomic because concurrent workers spin concurrently.
var spinSink atomic.Uint64

// hostSpin burns host CPU roughly proportional to the given flop count.
// Pure wall-clock ballast for SpinStragglers: it touches no simulator
// state, so results and simulated time are bit-identical with it on.
func hostSpin(flops float64) {
	n := int64(flops)
	var acc uint64
	for i := int64(0); i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Add(acc)
}

// hostStraggle realizes rank p's straggler multiplier for a phase in host
// time: a CPU spin proportional to the extra simulated flops under
// SpinStragglers, and/or the plan's HostDelay hook. It touches no
// simulator state, so results and simulated time are bit-identical with
// any combination enabled.
//
//dslint:hotpath
func (ch *chaosState) hostStraggle(p int, phase int64, flops float64) {
	if !ch.plan.SpinStragglers && ch.plan.HostDelay == nil {
		return
	}
	m := ch.slowAt(p, phase)
	if m <= 1 {
		return
	}
	if ch.plan.SpinStragglers {
		hostSpin((m - 1) * flops)
	}
	if ch.plan.HostDelay != nil {
		ch.plan.HostDelay(p, phase, m)
	}
}

// markPaused refreshes pausedNow for the phase about to run and reports
// whether any rank is paused in it.
func (ch *chaosState) markPaused(phase int64) bool {
	if !ch.anyPause {
		return false
	}
	for p := range ch.pausedNow {
		ch.pausedNow[p] = false
	}
	any := false
	for _, pw := range ch.plan.Pauses {
		if pw.Rank < 0 || pw.Rank >= len(ch.pausedNow) {
			continue
		}
		if phase >= int64(pw.From) && phase < int64(pw.To) {
			ch.pausedNow[pw.Rank] = true
			any = true
		}
	}
	return any
}

// fault decides the fate of one staged message at a delivery boundary.
// Returning deliver=false means the message was captured as delayed.
//
//dslint:ignore hotalloc chaos capture path: delayed messages must clone their payloads by design, and faults are never enabled on measured runs
func (ch *chaosState) fault(m *Message, phase int64) (deliver, dup bool) {
	if ch.plan.DelayProb > 0 && ch.rng.float() < ch.plan.DelayProb {
		k := 1 + ch.rng.intn(ch.plan.DelayMax)
		held := *m
		if c, ok := held.Payload.(Cloner); ok {
			held.Payload = c.CloneMessage()
		}
		ch.held = append(ch.held, heldMsg{due: phase + int64(k), m: held})
		ch.delayed++
		return false, false
	}
	if ch.plan.DupProb > 0 && ch.rng.float() < ch.plan.DupProb {
		ch.duped++
		return true, true
	}
	return true, false
}

// releaseDue moves held messages whose due boundary has arrived into out
// (staging order preserved) and compacts the held list in place.
func (ch *chaosState) releaseDue(phase int64) []heldMsg {
	if len(ch.held) == 0 {
		return nil
	}
	due := ch.dueScratch[:0]
	kept := ch.held[:0]
	for _, h := range ch.held {
		if h.due <= phase {
			due = append(due, h) //dslint:ignore hotalloc dueScratch backing array is recycled across boundaries
		} else {
			kept = append(kept, h) //dslint:ignore hotalloc appends into held's own backing array (kept = ch.held[:0]), never grows
		}
	}
	// Zero the tail so released payloads are not retained by the backing
	// array.
	for i := len(kept); i < len(ch.held); i++ {
		ch.held[i] = heldMsg{}
	}
	ch.held = kept
	ch.dueScratch = due
	return due
}
