package rma

// Neighborhood-epoch scheduler for the worker-pool engine.
//
// The barrier engine in rma.go ends every access epoch with a global
// sync.WaitGroup barrier: one slow rank stalls all P ranks, and the driver
// then spends an O(P) deliver() scan moving staged puts. That is faithful
// to MPI_Win_fence, but the paper's implementation uses the *group* flavor
// of one-sided synchronization (MPI_Win_post/start/complete/wait): a rank's
// epoch completes when the members of its post/start group — its layout
// neighbors — have completed theirs, not when the whole machine has. This
// file implements exactly that discipline inside the simulator:
//
//   - Every rank carries an atomic epoch counter, incremented when the
//     rank has executed a phase and published its staged puts.
//   - A rank may read its window for phase boundary k (and so start phase
//     k+1) as soon as every neighbor's epoch counter has passed k — it
//     never waits on non-neighbors, so distant ranks pipeline: rank 0 can
//     be two phases ahead of rank P-1 inside one RunPhases group, and a
//     straggler (including FaultPlan stragglers and pauses) delays only
//     its own neighborhood.
//   - Workers that cannot make progress on any owned rank park on
//     per-neighbor wait lists (a registered worker id plus a one-slot
//     notify channel) and are woken by the next epoch advance of the rank
//     they are blocked on. Registration re-checks the epoch under the
//     waitee's lock, so a concurrent advance can never be missed.
//
// Per-rank engine state is O(degree): staged messages live in a two-slot
// ring of per-neighbor buffers instead of the barrier engine's global
// staged/inbox scan, and all buffers keep their capacity across phases
// (arena reuse — the steady state allocates nothing).
//
// Ring depth 2 is sufficient, not just empirically safe: a rank reuses
// staging slot a&1 when it runs epoch a, and the previous user of that
// slot was epoch a-2. Running epoch a requires having assembled boundary
// a-1, which requires every neighbor's epoch ≥ a, i.e. every neighbor has
// *run* epoch a-1, which (per-rank program order: run k happens after
// assemble k-1) means every neighbor has assembled boundary a-2 — and
// assembling boundary a-2 is precisely what consumes this rank's slot
// (a-2)&1 = a&1. So every consumer is provably done before the slot is
// truncated.
//
// Results are bit-identical to the sequential and barrier engines: a phase
// function touches only its rank's state, windows are assembled in
// ascending origin-rank order exactly like deliver(), each rank's α-β-γ
// phase cost is computed with the same expression on the same values, and
// the per-phase maxima are folded into SimTime in phase order on the
// *driver* goroutine at the group join — worker scheduling can never
// perturb a float. The engine-equivalence tests assert this on the full
// method suite under -race.
//
// Fallbacks (both keep results bit-identical, only pipelining is lost):
// the scheduler declines groups when a tracer is installed (trace
// timestamps read the global clock mid-phase) and when the fault plan
// draws from the sequential chaos PRNG (delays/dups/reorders are decided
// in global staging order by design). Stragglers, phase spikes, and pauses
// are counter-indexed and run natively.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"southwell/internal/obs"
)

// Sched selects how the worker-pool engine synchronizes access epochs.
type Sched uint8

const (
	// SchedBarrier completes every epoch with a global barrier and a
	// driver-side delivery scan (MPI_Win_fence semantics; the default).
	SchedBarrier Sched = iota
	// SchedNeighbor completes a rank's epoch when its registered
	// neighborhood has completed (MPI_Win_post/start/complete/wait
	// semantics). Requires SetNeighborhoods and Parallel; RunPhases groups
	// fall back to the barrier engine whenever the scheduler cannot
	// preserve bit-identity (tracer installed, RNG-dependent fault plan).
	SchedNeighbor
)

// nbSlots is the staging-ring depth per (rank, neighbor); see the proof in
// the package comment above for why 2 is enough.
const nbSlots = 2

// nbRank is one rank's neighborhood-scheduler state. The atomic epoch and
// the waiter list are shared; everything else is touched only by the
// worker that owns the rank during a group, or by the driver at the join.
type nbRank struct {
	nbrs []int32 // neighbor ranks, ascending
	back []int32 // back[j]: index of this rank in nbrs[j]'s neighbor list

	// stage[slot][j]: puts toward nbrs[j] staged in epoch a, slot = a&1.
	// Buffers keep their capacity; payloads are nil-ed on slot reuse.
	stage [nbSlots][][]Message

	// epoch counts fully published phases: staged puts of epoch a are
	// readable once epoch > a. Monotone for the life of the world.
	epoch atomic.Int64

	mu      sync.Mutex
	waiters []int32 // worker ids to wake on the next epoch advance

	// Owner-worker state during a group.
	ran         int64 // epochs executed and published
	asm         int64 // boundaries assembled (inbox ready for epoch asm)
	cur         int64 // epoch currently executing (Put routes by cur&1)
	pausedPhase bool  // rank was paused in the last executed epoch

	costs []float64 // per group phase: this rank's α-β-γ cost
	// Accounting accumulated per rank during the group and folded into the
	// world's monotone counters at the join (plain int sums, so the fold
	// order cannot change a single bit of Stats).
	totMsgs   [numTags]int64
	totBytes  [numTags]int64
	delivered int64
	paused    int64
	blocked   int64 // wait tally: assemblies that found a neighbor not ready
}

// find returns the index of rank q in the ascending neighbor list, or -1.
//
//dslint:hotpath
func (nr *nbRank) find(q int32) int {
	lo, hi := 0, len(nr.nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nr.nbrs[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nr.nbrs) && nr.nbrs[lo] == q {
		return lo
	}
	return -1
}

// nbState is the world-level scheduler state.
type nbState struct {
	ranks  []nbRank
	base   int64 // epochs completed by every rank (advanced at each join)
	group  nbGroup
	fsBuf  []func(int) // persistent copy of the group's phase functions
	groups int64       // neighborhood groups run (wait-tally denominator)
}

// nbGroup describes one in-flight RunPhases group to the workers.
type nbGroup struct {
	fs    []func(int)
	base  int64 // epoch index of the group's first phase
	baseP int64 // world phase counter at group start (fault-plan indexing)
}

// SetNeighborhoods registers the post/start group of every rank: nbrs[p]
// lists the ranks whose windows p writes and whose epoch completion p may
// wait on, in ascending order, self excluded. The relation must be
// symmetric (q ∈ nbrs[p] ⇔ p ∈ nbrs[q]), exactly what a layout's coupling
// neighborships provide. Must be called before the first phase; under
// SchedNeighbor, Put targets outside the registered neighborhood panic —
// one-sided access epochs only cover the access group, as in MPI PSCW.
func (w *World) SetNeighborhoods(nbrs [][]int) {
	if len(nbrs) != w.P {
		panic(fmt.Sprintf("rma: SetNeighborhoods got %d lists for P=%d", len(nbrs), w.P))
	}
	nb := &nbState{ranks: make([]nbRank, w.P)}
	for p := range nb.ranks {
		nr := &nb.ranks[p]
		list := nbrs[p]
		nr.nbrs = make([]int32, len(list))
		for j, q := range list {
			if q < 0 || q >= w.P || q == p {
				panic(fmt.Sprintf("rma: SetNeighborhoods rank %d: bad neighbor %d (P=%d)", p, q, w.P))
			}
			if j > 0 && list[j-1] >= q {
				panic(fmt.Sprintf("rma: SetNeighborhoods rank %d: neighbors not ascending", p))
			}
			nr.nbrs[j] = int32(q)
		}
		for s := range nr.stage {
			nr.stage[s] = make([][]Message, len(list))
		}
	}
	for p := range nb.ranks {
		nr := &nb.ranks[p]
		nr.back = make([]int32, len(nr.nbrs))
		for j, q := range nr.nbrs {
			bj := nb.ranks[q].find(int32(p))
			if bj < 0 {
				panic(fmt.Sprintf("rma: SetNeighborhoods: asymmetric neighborhood (%d lists %d, not vice versa)", p, q))
			}
			nr.back[j] = int32(bj)
		}
	}
	w.nb = nb
}

// neighborSched reports whether the next phase group can run on the
// neighborhood-epoch engine while preserving bit-identity with the
// sequential engine.
func (w *World) neighborSched() bool {
	if w.Sched != SchedNeighbor || w.nb == nil || !w.Parallel || w.P <= 1 {
		return false
	}
	if w.trace != nil {
		// Trace timestamps read the global simulated clock, which only
		// advances at group joins; emit mid-pipeline and the timeline lies.
		return false
	}
	if ch := w.chaos; ch != nil && !ch.rngFree() {
		// Delay/dup/reorder draws consume the plan PRNG in global staging
		// order; per-neighborhood delivery would re-order the stream.
		return false
	}
	return true
}

// RunPhases executes a group of consecutive access epochs — typically the
// phases of one solver step. Under the barrier scheduler (or whenever the
// neighborhood engine must decline, see neighborSched) it is exactly
// RunPhase applied in order. Under SchedNeighbor the group runs on the
// neighborhood-epoch engine: ranks proceed phase to phase as soon as their
// own neighborhood is ready, and the group joins when every rank has
// finished every phase. Results, message statistics, and SimTime are
// bit-identical either way.
func (w *World) RunPhases(fs ...func(rank int)) {
	if w.closed.Load() {
		panic(ErrClosed)
	}
	if len(fs) == 0 {
		return
	}
	if !w.neighborSched() {
		for _, f := range fs {
			w.RunPhase(f) //dslint:ignore phaseabsorb generic group dispatch: the caller's later phase functions drain the inbox, same contract as direct RunPhase use
		}
		return
	}
	w.runNbGroup(fs)
}

// runNbGroup drives one group on the neighborhood engine: broadcast to the
// persistent workers, wait for the group barrier, then fold the per-rank
// accounting into the world's monotone counters — in deterministic order,
// on this goroutine.
func (w *World) runNbGroup(fs []func(int)) {
	nb := w.nb
	nb.fsBuf = append(nb.fsBuf[:0], fs...) //dslint:ignore hotalloc persistent group buffer keeps its capacity across steps
	g := &nb.group
	g.fs = nb.fsBuf
	g.base = nb.base
	g.baseP = w.phases
	gn := int64(len(fs))
	for p := range nb.ranks {
		nr := &nb.ranks[p]
		if int64(cap(nr.costs)) < gn {
			nr.costs = make([]float64, gn) //dslint:ignore hotalloc sized once to the largest group ever seen (methods use 2-3 phases)
		}
		nr.costs = nr.costs[:gn]
	}
	w.poolOnce.Do(w.startPool) //dslint:ignore hotalloc method value for one-time pool start; Once skips it on every later phase
	w.nbActive = true
	w.barrier.Add(len(w.workers))
	for _, ch := range w.workers {
		ch <- phaseWork{g: g}
	}
	w.barrier.Wait()
	w.nbActive = false
	nb.groups++
	if w.closed.Load() {
		// Close released parked workers mid-group; the group did not
		// complete. Fail loudly like every other use-after-Close.
		panic(ErrClosed)
	}
	// SimTime accumulates per-phase maxima in phase order here, so worker
	// scheduling can never perturb floating-point accumulation.
	for k := int64(0); k < gn; k++ {
		maxCost := 0.0
		for p := range nb.ranks {
			if c := nb.ranks[p].costs[k]; c > maxCost {
				maxCost = c
			}
		}
		w.simTime += maxCost
		w.phases++
	}
	ch := w.chaos
	for p := range nb.ranks {
		nr := &nb.ranks[p]
		for t := 0; t < int(numTags); t++ {
			w.totalMsgs[t] += nr.totMsgs[t]
			w.totalBytes[t] += nr.totBytes[t]
			nr.totMsgs[t] = 0
			nr.totBytes[t] = 0
		}
		w.delivered += nr.delivered
		nr.delivered = 0
		if ch != nil {
			ch.paused += nr.paused
		}
		nr.paused = 0
	}
	nb.base += gn
}

// nbPut stages a put on the neighborhood engine: O(log degree) routing
// into the sender's current ring slot, no global scan.
//
//dslint:hotpath
func (w *World) nbPut(from, to int, tag Tag, bytes int, payload any) {
	nr := &w.nb.ranks[from]
	j := nr.find(int32(to))
	if j < 0 {
		panic(fmt.Sprintf("rma: Put from %d to %d under SchedNeighbor: target is outside the registered post/start group", from, to))
	}
	slot := nr.cur & 1
	nr.stage[slot][j] = append(nr.stage[slot][j], Message{From: from, To: to, Tag: tag, Bytes: bytes, Payload: payload}) //dslint:ignore hotalloc ring-slot buffers keep their capacity across phases
	nr.totMsgs[tag]++
	nr.totBytes[tag] += int64(bytes)
	w.msgs[from]++
	w.bytes[from] += int64(bytes)
}

// nbRunChunk advances every owned rank through all phases of the group,
// parking on neighbor epochs when no owned rank can progress. Returns true
// if the world was stopped (Close) mid-group; the caller still signals the
// group barrier and then retires the worker.
//
//dslint:hotpath
//dslint:ignore hotalloc caller-supplied dynamic calls (phase functions, FaultPlan.HostDelay) the pools cannot resolve; the scheduler's own steady state is gated at 0 allocs/op by TestScaleAllocGate
func (w *World) nbRunChunk(id, lo, hi int, g *nbGroup) bool {
	nb := w.nb
	target := g.base + int64(len(g.fs))
	total := hi - lo
	for {
		select {
		case <-w.stop:
			return true
		default:
		}
		done := 0
		progress := false
		for p := lo; p < hi; p++ {
			nr := &nb.ranks[p]
			for nr.asm < target {
				if nr.ran == nr.asm {
					w.nbRunPhase(p, nr, g)
					progress = true
				}
				if !w.nbTryAssemble(p, nr, g) {
					nr.blocked++
					break
				}
				progress = true
			}
			if nr.asm >= target {
				done++
			}
		}
		if done >= total {
			return false
		}
		if progress {
			continue
		}
		if w.nbPark(id, lo, hi, target) {
			return true
		}
	}
}

// nbRunPhase executes one epoch for one rank: reclaim the staging slot,
// run the phase function (or skip it while paused, exactly like the
// barrier engine), publish the epoch advance, and wake parked waiters.
//
//dslint:hotpath
//dslint:ignore hotalloc caller-supplied dynamic calls (phase functions, FaultPlan.HostDelay) the pools cannot resolve; the scheduler's own steady state is gated at 0 allocs/op by TestScaleAllocGate
func (w *World) nbRunPhase(p int, nr *nbRank, g *nbGroup) {
	a := nr.ran
	slot := a & 1
	for j := range nr.stage[slot] {
		s := nr.stage[slot][j]
		for i := range s {
			s[i].Payload = nil // do not retain payloads past their consumers
		}
		nr.stage[slot][j] = s[:0]
	}
	nr.cur = a
	phase := g.baseP + (a - g.base)
	ch := w.chaos
	paused := false
	if ch != nil {
		paused = ch.pausedAt(p, phase)
	}
	if paused {
		nr.paused++
	} else {
		g.fs[a-g.base](p)
		if ch != nil {
			ch.hostStraggle(p, phase, w.flops[p])
		}
	}
	nr.pausedPhase = paused
	nr.epoch.Store(a + 1)
	nr.mu.Lock()
	for _, wid := range nr.waiters {
		select {
		case w.nbNotify[wid] <- struct{}{}:
		default: // waiter already has a pending wakeup
		}
	}
	nr.waiters = nr.waiters[:0]
	nr.mu.Unlock()
	nr.ran = a + 1
}

// nbTryAssemble assembles rank p's window for boundary nr.asm if every
// neighbor has published that epoch, landing messages in ascending origin
// order (the same deterministic order as deliver) and computing the
// rank's α-β-γ phase cost with the exact expression deliver uses.
//
//dslint:hotpath
func (w *World) nbTryAssemble(p int, nr *nbRank, g *nbGroup) bool {
	a := nr.asm
	need := a + 1
	nb := w.nb
	for _, q := range nr.nbrs {
		if nb.ranks[q].epoch.Load() < need {
			return false
		}
	}
	if !nr.pausedPhase {
		in := w.inbox[p]
		for i := range in {
			in[i].Payload = nil
		}
		w.inbox[p] = in[:0]
	}
	// A paused rank's window is retained: landed one-sided writes stay
	// readable until it next executes, exactly as MPI_Put semantics allow
	// (and exactly what the barrier deliver does).
	slot := a & 1
	var recvM, recvB int64
	for j, q := range nr.nbrs {
		msgs := nb.ranks[q].stage[slot][nr.back[j]]
		for i := range msgs {
			w.inbox[p] = append(w.inbox[p], msgs[i]) //dslint:ignore hotalloc window buffers keep their capacity across phases
			recvM++
			recvB += int64(msgs[i].Bytes)
		}
	}
	nr.delivered += recvM
	h := float64(w.msgs[p] + recvM)
	hb := float64(w.bytes[p] + recvB)
	cost := w.Model.Gamma*w.flops[p] + w.Model.Alpha*h + w.Model.Beta*hb
	if ch := w.chaos; ch != nil {
		cost *= ch.slowAt(p, g.baseP+(a-g.base))
	}
	nr.costs[a-g.base] = cost
	w.flops[p] = 0
	w.msgs[p] = 0
	w.bytes[p] = 0
	nr.asm = a + 1
	return true
}

// nbPark registers the worker on one blocking neighbor per stuck rank and
// blocks until an epoch advance (or Close) wakes it. Registration
// re-checks the epoch under the waitee's lock: an advance concurrent with
// registration is observed either by the re-check or by the notify the
// advancing rank sends afterwards, so a wakeup can never be lost. Returns
// true if the world stopped.
//
//dslint:hotpath
func (w *World) nbPark(id, lo, hi int, target int64) bool {
	nb := w.nb
	registered := false
	for p := lo; p < hi; p++ {
		nr := &nb.ranks[p]
		if nr.asm >= target || nr.ran == nr.asm {
			continue // finished, or still has a runnable phase
		}
		need := nr.asm + 1
		for _, q := range nr.nbrs {
			qr := &nb.ranks[q]
			if qr.epoch.Load() >= need {
				continue
			}
			qr.mu.Lock()
			if qr.epoch.Load() >= need {
				qr.mu.Unlock()
				return false // progress appeared; resweep without parking
			}
			qr.waiters = append(qr.waiters, int32(id)) //dslint:ignore hotalloc waiter lists keep their capacity across parks
			qr.mu.Unlock()
			registered = true
			break // one registration per stuck rank suffices
		}
	}
	if !registered {
		// Every stuck rank became unblocked while we scanned.
		return false
	}
	w.nbParks[id]++
	select {
	case <-w.nbNotify[id]:
		return false
	case <-w.stop:
		return true
	}
}

// WaitTally reports the neighborhood scheduler's wait diagnostics, or nil
// if no group ever ran on it. Counts, not seconds: the runtime is
// wall-clock-free by policy (dslint detrand/walltime), and the counts are
// scheduling-dependent diagnostics — never part of results.
func (w *World) WaitTally() *obs.WaitTally {
	if w.nb == nil || w.nb.groups == 0 {
		return nil
	}
	t := &obs.WaitTally{
		Groups:  w.nb.groups,
		Blocked: make([]int64, w.P),
	}
	for p := range w.nb.ranks {
		t.Blocked[p] = w.nb.ranks[p].blocked
	}
	for _, c := range w.nbParks {
		t.Parks += c
	}
	return t
}
