package multigrid

import (
	"math"
	"testing"

	"southwell/internal/problem"
	"southwell/internal/solvers"
	"southwell/internal/sparse"
)

func TestNewValidatesGridSize(t *testing.T) {
	if _, err := New(16, GaussSeidel{}); err == nil {
		t.Error("accepted nx not of form 2^k-1")
	}
	if _, err := New(1, GaussSeidel{}); err == nil {
		t.Error("accepted nx too small")
	}
	h, err := New(15, GaussSeidel{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 { // 15 -> 7 -> 3
		t.Errorf("levels = %d, want 3", h.Levels())
	}
}

func TestVCycleConvergesGS(t *testing.T) {
	h, err := New(63, GaussSeidel{})
	if err != nil {
		t.Fatal(err)
	}
	n := 63 * 63
	b := problem.RandomVec(n, 1)
	x := make([]float64, n)
	hist := h.Solve(b, x, 9)
	if hist[len(hist)-1] > 1e-6 {
		t.Errorf("9 V-cycles reached %g, want <= 1e-6", hist[len(hist)-1])
	}
	// Monotone decrease.
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1] {
			t.Errorf("residual grew at cycle %d: %g -> %g", i, hist[i-1], hist[i])
		}
	}
}

func TestVCycleSolvesSystem(t *testing.T) {
	h, err := New(31, GaussSeidel{})
	if err != nil {
		t.Fatal(err)
	}
	a := problem.Poisson2D(31, 31)
	n := a.N
	xTrue := problem.RandomVec(n, 2)
	b := make([]float64, n)
	a.MulVec(xTrue, b)
	x := make([]float64, n)
	h.Solve(b, x, 20)
	diff := 0.0
	for i := range x {
		diff += (x[i] - xTrue[i]) * (x[i] - xTrue[i])
	}
	if math.Sqrt(diff) > 1e-6*sparse.Norm2(xTrue) {
		t.Errorf("V-cycle solution error %g", math.Sqrt(diff))
	}
}

func TestVCycleConvergesDistSW(t *testing.T) {
	for _, frac := range []float64{1, 0.5} {
		h, err := New(63, DistSW{SweepFraction: frac, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n := 63 * 63
		b := problem.RandomVec(n, 3)
		x := make([]float64, n)
		hist := h.Solve(b, x, 9)
		if hist[len(hist)-1] > 1e-5 {
			t.Errorf("frac %g: 9 V-cycles reached %g", frac, hist[len(hist)-1])
		}
	}
}

// Figure 6 headline: convergence after 9 V-cycles is grid-size independent
// for both GS and Distributed Southwell smoothing, and Distributed
// Southwell is at least as effective per relaxation.
func TestGridIndependentConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep is slow in -short mode")
	}
	for _, sm := range []Smoother{GaussSeidel{}, DistSW{SweepFraction: 0.5, Seed: 1}, DistSW{Seed: 1}} {
		var finals []float64
		for _, nx := range []int{15, 31, 63, 127} {
			h, err := New(nx, sm)
			if err != nil {
				t.Fatal(err)
			}
			n := nx * nx
			b := problem.RandomVec(n, 4)
			x := make([]float64, n)
			hist := h.Solve(b, x, 9)
			finals = append(finals, hist[len(hist)-1])
		}
		// All grids converge well.
		for i, f := range finals {
			if f > 1e-5 {
				t.Errorf("%s: grid %d final %g", sm.Name(), i, f)
			}
		}
		// Grid independence: largest/smallest within ~2.5 orders of
		// magnitude (the paper's Figure 6 spans about one order).
		lo, hi := finals[0], finals[0]
		for _, f := range finals {
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
		if hi/lo > 300 {
			t.Errorf("%s: convergence not grid-independent: range %g..%g", sm.Name(), lo, hi)
		}
	}
}

func TestDistSWSmootherExactBudget(t *testing.T) {
	// The DistSW smoother must relax exactly its budget; verify via the
	// solver trace on a standalone call.
	a := problem.Poisson2D(20, 20)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	b, x := problem.RandomBSystem(a, 5)
	budget := a.N/2 + 7
	tr, _ := solversDistSW(a, b, x, budget)
	if tr.TotalRelaxations() != budget {
		t.Errorf("relaxations = %d, want exactly %d", tr.TotalRelaxations(), budget)
	}
}

func TestRestrictProlongShapes(t *testing.T) {
	// Restriction of a constant-1 residual on the fine grid gives 4 at
	// interior coarse points (full weighting sums to 1, times the h²
	// rediscretization factor 4).
	nf, nc := 7, 3
	rf := make([]float64, nf*nf)
	for i := range rf {
		rf[i] = 1
	}
	rc := make([]float64, nc*nc)
	restrict(rf, nf, rc, nc)
	center := rc[1*nc+1]
	if math.Abs(center-4) > 1e-12 {
		t.Errorf("center restriction = %g, want 4", center)
	}
	// Prolongation of a delta at the coarse center adds 1 at the matching
	// fine point and 1/4 at diagonal neighbors.
	ec := make([]float64, nc*nc)
	ec[1*nc+1] = 1
	xf := make([]float64, nf*nf)
	prolongAdd(ec, nc, xf, nf)
	if xf[3*nf+3] != 1 {
		t.Errorf("prolong center = %g, want 1", xf[3*nf+3])
	}
	if xf[2*nf+2] != 0.25 {
		t.Errorf("prolong diagonal = %g, want 0.25", xf[2*nf+2])
	}
	if xf[3*nf+2] != 0.5 {
		t.Errorf("prolong edge = %g, want 0.5", xf[3*nf+2])
	}
}

func TestSmootherNames(t *testing.T) {
	if (GaussSeidel{}).Name() != "GS" {
		t.Error("GS name")
	}
	if (DistSW{}).Name() != "Dist SW" {
		t.Error("DistSW name")
	}
	if (DistSW{SweepFraction: 0.5}).Name() != "Dist SW 0.5 sweep" {
		t.Error("DistSW half-sweep name")
	}
}

// solversDistSW exposes the exact-budget scalar solver for the budget test.
func solversDistSW(a *sparse.CSR, b, x []float64, budget int) (*solvers.Trace, solvers.DistStats) {
	return solvers.DistributedSouthwell(a, b, x, solvers.Options{
		MaxRelax: budget, ExactBudget: true, Seed: 3,
	})
}
