// Package multigrid implements geometric multigrid for the 2D Poisson
// equation on square grids, reproducing the smoothing experiment of the
// paper's §4.1 (Figure 6): V-cycles with one pre- and one post-smoothing
// step, grids from 15×15 up to 255×255 coarsened level by level down to a
// 3×3 grid solved exactly, and pluggable smoothers — Gauss-Seidel or the
// scalar Distributed Southwell method with an exact relaxation budget.
package multigrid

import (
	"fmt"

	"southwell/internal/dense"
	"southwell/internal/problem"
	"southwell/internal/solvers"
	"southwell/internal/sparse"
)

// Smoother applies a fixed relaxation budget to A x = b, updating x.
type Smoother interface {
	// Smooth relaxes approximately (or exactly, if the smoother supports
	// it) budget rows of the system.
	Smooth(a *sparse.CSR, b, x []float64, budget int)
	// Name identifies the smoother in reports.
	Name() string
}

// GaussSeidel smooths with natural-order Gauss-Seidel sweeps.
type GaussSeidel struct{}

// Name implements Smoother.
func (GaussSeidel) Name() string { return "GS" }

// Smooth implements Smoother. The budget is rounded up to whole rows by
// cycling through the grid in natural order, exactly budget relaxations.
func (GaussSeidel) Smooth(a *sparse.CSR, b, x []float64, budget int) {
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	n := a.N
	for done := 0; done < budget; {
		for i := 0; i < n && done < budget; i++ {
			cols, vals := a.Row(i)
			var aii float64
			for k, j := range cols {
				if j == i {
					aii = vals[k]
					break
				}
			}
			d := r[i] / aii
			x[i] += d
			for k, j := range cols {
				r[j] -= vals[k] * d
			}
			done++
		}
	}
}

// DistSW smooths with the scalar Distributed Southwell method, relaxing
// exactly budget rows (a random subset of the final parallel step's
// selection is used to land on the budget, as in §4.1).
type DistSW struct {
	// SweepFraction scales the budget: 1 matches the caller's budget ("1
	// sweep"), 0.5 is the paper's "1/2 sweep". Zero means 1.
	SweepFraction float64
	// Seed drives the final-step random subset.
	Seed int64
}

// Name implements Smoother.
func (s DistSW) Name() string {
	// Exact sentinel values: 0 (default) and 1 are assigned literals, never
	// computed.
	if s.SweepFraction != 0 && s.SweepFraction != 1 { //dslint:ignore floatcmp

		return fmt.Sprintf("Dist SW %g sweep", s.SweepFraction)
	}
	return "Dist SW"
}

// Smooth implements Smoother.
func (s DistSW) Smooth(a *sparse.CSR, b, x []float64, budget int) {
	frac := s.SweepFraction
	if frac == 0 {
		frac = 1
	}
	n := int(float64(budget) * frac)
	if n < 1 {
		n = 1
	}
	solvers.DistributedSouthwell(a, b, x, solvers.Options{
		MaxRelax:    n,
		ExactBudget: true,
		Seed:        s.Seed,
	})
}

// level is one grid in the hierarchy.
type level struct {
	nx int // interior grid dimension (nx × nx unknowns)
	a  *sparse.CSR
	// scratch vectors: b is the restricted right-hand side handed to this
	// level (distinct from r, which the level uses for its own residuals —
	// sharing them would let the residual computation destroy its RHS).
	b, r, e []float64
}

// Hierarchy is a V-cycle solver for the 2D Poisson problem on an nx×nx
// interior grid, nx = 2^k - 1.
type Hierarchy struct {
	levels []*level
	coarse *dense.Cholesky
	smooth Smoother
}

// New builds the hierarchy for an nx×nx interior grid (nx = 2^k - 1 >= 3),
// rediscretizing the 5-point operator on every level down to 3×3, where a
// dense Cholesky factorization provides the exact solve.
func New(nx int, smoother Smoother) (*Hierarchy, error) {
	if nx < 3 || (nx+1)&nx != 0 {
		return nil, fmt.Errorf("multigrid: nx = %d, want 2^k - 1 >= 3", nx)
	}
	h := &Hierarchy{smooth: smoother}
	for d := nx; d >= 3; d = (d - 1) / 2 {
		lv := &level{
			nx: d,
			a:  problem.Poisson2D(d, d),
			b:  make([]float64, d*d),
			r:  make([]float64, d*d),
			e:  make([]float64, d*d),
		}
		h.levels = append(h.levels, lv)
	}
	last := h.levels[len(h.levels)-1]
	dm := dense.NewMatrix(last.a.N)
	for i := 0; i < last.a.N; i++ {
		cols, vals := last.a.Row(i)
		for k, j := range cols {
			dm.Set(i, j, vals[k])
		}
	}
	ch, err := dense.FactorCholesky(dm)
	if err != nil {
		return nil, fmt.Errorf("multigrid: coarse solve: %v", err)
	}
	h.coarse = ch
	return h, nil
}

// Levels returns the number of grids in the hierarchy.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// VCycle performs one V(1,1) cycle on the finest level, updating x.
func (h *Hierarchy) VCycle(b, x []float64) {
	h.cycle(0, b, x)
}

func (h *Hierarchy) cycle(k int, b, x []float64) {
	lv := h.levels[k]
	if k == len(h.levels)-1 {
		h.coarse.Solve(b, x)
		return
	}
	h.smooth.Smooth(lv.a, b, x, lv.a.N) // pre-smoothing: one sweep budget
	lv.a.Residual(b, x, lv.r)
	next := h.levels[k+1]
	restrict(lv.r, lv.nx, next.b, next.nx)
	for i := range next.e {
		next.e[i] = 0
	}
	h.cycle(k+1, next.b, next.e)
	prolongAdd(next.e, next.nx, x, lv.nx)
	h.smooth.Smooth(lv.a, b, x, lv.a.N) // post-smoothing
}

// Solve runs `cycles` V-cycles and returns the relative residual norm
// ‖r‖/‖r⁰‖ after each cycle.
func (h *Hierarchy) Solve(b, x []float64, cycles int) []float64 {
	fine := h.levels[0]
	r0 := fine.a.ResidualNorm2(b, x, fine.r)
	if r0 == 0 {
		return make([]float64, cycles)
	}
	out := make([]float64, 0, cycles)
	for c := 0; c < cycles; c++ {
		h.VCycle(b, x)
		out = append(out, fine.a.ResidualNorm2(b, x, fine.r)/r0)
	}
	return out
}

// restrict applies full weighting from an nf×nf interior grid to the
// nc×nc coarse grid (nf = 2*nc + 1): coarse point (I,J) sits at fine point
// (2I+1, 2J+1), and the stencil is [1 2 1; 2 4 2; 1 2 1]/16 with Dirichlet
// zeros outside.
func restrict(rf []float64, nf int, rc []float64, nc int) {
	at := func(i, j int) float64 {
		if i < 0 || j < 0 || i >= nf || j >= nf {
			return 0
		}
		return rf[j*nf+i]
	}
	for cj := 0; cj < nc; cj++ {
		for ci := 0; ci < nc; ci++ {
			fi, fj := 2*ci+1, 2*cj+1
			v := 4*at(fi, fj) +
				2*(at(fi-1, fj)+at(fi+1, fj)+at(fi, fj-1)+at(fi, fj+1)) +
				at(fi-1, fj-1) + at(fi+1, fj-1) + at(fi-1, fj+1) + at(fi+1, fj+1)
			rc[cj*nc+ci] = v / 16 * 4 // rediscretization scaling: R = P^T/4, times h²-ratio 4
		}
	}
}

// prolongAdd adds the bilinear interpolation of the nc×nc coarse correction
// into the nf×nf fine vector (nf = 2*nc + 1).
func prolongAdd(ec []float64, nc int, xf []float64, nf int) {
	at := func(i, j int) float64 {
		if i < 0 || j < 0 || i >= nc || j >= nc {
			return 0
		}
		return ec[j*nc+i]
	}
	for fj := 0; fj < nf; fj++ {
		for fi := 0; fi < nf; fi++ {
			// Fine point (fi, fj) sits between coarse points; classify by
			// parity. Coarse point (ci,cj) is at fine (2ci+1, 2cj+1).
			oddI := fi%2 == 1
			oddJ := fj%2 == 1
			ci := (fi - 1) / 2
			cj := (fj - 1) / 2
			var v float64
			switch {
			case oddI && oddJ:
				v = at(ci, cj)
			case oddI && !oddJ:
				v = 0.5 * (at(ci, fj/2-1) + at(ci, fj/2))
			case !oddI && oddJ:
				v = 0.5 * (at(fi/2-1, cj) + at(fi/2, cj))
			default:
				v = 0.25 * (at(fi/2-1, fj/2-1) + at(fi/2, fj/2-1) + at(fi/2-1, fj/2) + at(fi/2, fj/2))
			}
			xf[fj*nf+fi] += v
		}
	}
}
