package bench

import (
	"io"

	"southwell/internal/core"
	"southwell/internal/dmem"
)

// fig7Matrices are the four problems of Figure 7, chosen by the paper for
// their distinct Block Jacobi behaviours: converges-then-diverges
// (Geo_1438, Hook_1498), never reaches the target (bone010), and never
// diverges (af_5_k101).
func fig7Matrices(quick bool) []string {
	if quick {
		return []string{"Hook_1498", "af_5_k101"}
	}
	return []string{"Geo_1438", "Hook_1498", "bone010", "af_5_k101"}
}

// Fig7 regenerates Figure 7: per-step series of residual norm against
// simulated wall-clock time, communication cost, and parallel step for
// Block Jacobi, Parallel Southwell, and Distributed Southwell on four
// representative problems.
func Fig7(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(50)
	if err := prefetch(cfg, suiteJobs(fig7Matrices(cfg.Quick), tableMethods, []int{ranks}, steps)); err != nil {
		return err
	}
	fprintf(w, "# Figure 7: residual norm vs time/comm/step, %d ranks, %d steps\n", ranks, steps)
	fprintf(w, "# matrix method step sim_time comm_cost residual_norm\n")
	for _, name := range fig7Matrices(cfg.Quick) {
		for _, m := range tableMethods {
			res, err := runSuite(cfg, name, m, ranks, steps)
			if err != nil {
				return err
			}
			for _, h := range res.History {
				fprintf(w, "%-12s %-3s %3d %10.6f %10.2f %12.5g\n",
					name, methodTag(m), h.Step, h.SimTime,
					float64(h.TotalMsgs())/float64(ranks), h.ResNorm)
			}
		}
	}
	return nil
}

func methodTag(m core.DistMethod) string {
	switch m {
	case core.BlockJacobi:
		return "BJ"
	case core.ParallelSWD:
		return "PS"
	case core.DistSWD:
		return "DS"
	case core.Piggyback2016:
		return "PB"
	}
	return string(m)
}

// scalingRanks is the process-count sweep of Figures 8 and 9 (the paper
// sweeps 32..8192 on matrices 50-100x larger).
func scalingRanks(quick bool) []int {
	if quick {
		return []int{8, 32, 128}
	}
	return []int{8, 16, 32, 64, 128, 256, 512}
}

// fig89Matrices are the six problems of Figures 8 and 9.
func fig89Matrices(quick bool) []string {
	if quick {
		return []string{"msdoor", "af_5_k101"}
	}
	return []string{"Flan_1565", "ldoor", "StocF-1465", "inline_1", "bone010", "Hook_1498"}
}

// Fig8 regenerates Figure 8: simulated wall-clock time to reach ‖r‖ = 0.1
// as a function of the rank count. † marks (matrix, ranks, method) runs
// that never reached the target (usually Block Jacobi divergence).
func Fig8(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	steps := cfg.stepsOr(60)
	if err := prefetch(cfg, suiteJobs(fig89Matrices(cfg.Quick), tableMethods, scalingRanks(cfg.Quick), steps)); err != nil {
		return err
	}
	fprintf(w, "# Figure 8: sim wall-clock time to ||r||=%.1f vs ranks (budget %d steps)\n", Target, steps)
	fprintf(w, "%-12s %6s | %10s %10s %10s\n", "matrix", "ranks", "BJ", "PS", "DS")
	for _, name := range fig89Matrices(cfg.Quick) {
		for _, p := range scalingRanks(cfg.Quick) {
			var cells [3]string
			for i, m := range tableMethods {
				res, err := runSuite(cfg, name, m, p, steps)
				if err != nil {
					return err
				}
				if _, ok := res.StepsToNorm(Target); ok {
					tm, _ := res.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return h.SimTime })
					cells[i] = dagger(tm, true, "%10.5f")
				} else {
					cells[i] = "†"
				}
			}
			fprintf(w, "%-12s %6d | %10s %10s %10s\n", name, p, cells[0], cells[1], cells[2])
		}
	}
	return nil
}

// Fig9 regenerates Figure 9: the residual norm after 50 parallel steps as
// a function of the rank count. Values above 1 indicate divergence; the
// paper's claim is that Block Jacobi degrades (often catastrophically)
// with more ranks while Parallel and Distributed Southwell degrade mildly.
func Fig9(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	steps := cfg.stepsOr(50)
	if err := prefetch(cfg, suiteJobs(fig89Matrices(cfg.Quick), tableMethods, scalingRanks(cfg.Quick), steps)); err != nil {
		return err
	}
	fprintf(w, "# Figure 9: residual norm after %d steps vs ranks\n", steps)
	fprintf(w, "%-12s %6s | %12s %12s %12s\n", "matrix", "ranks", "BJ", "PS", "DS")
	for _, name := range fig89Matrices(cfg.Quick) {
		for _, p := range scalingRanks(cfg.Quick) {
			var vals [3]float64
			for i, m := range tableMethods {
				res, err := runSuite(cfg, name, m, p, steps)
				if err != nil {
					return err
				}
				vals[i] = res.Final().ResNorm
			}
			fprintf(w, "%-12s %6d | %12.5g %12.5g %12.5g\n", name, p, vals[0], vals[1], vals[2])
		}
	}
	return nil
}

// Deadlock is an extra experiment (beyond the paper's tables) documenting
// the §2.4 deadlock claim: the 2016 piggyback-only variant deadlocks on
// the test problems while Distributed Southwell pushes past the same
// point.
func Deadlock(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	if err := prefetch(cfg, suiteJobs(cfg.suiteNames(), []core.DistMethod{core.Piggyback2016}, []int{ranks}, 500)); err != nil {
		return err
	}
	fprintf(w, "# Deadlock study: 2016 piggyback variant vs Distributed Southwell, %d ranks\n", ranks)
	fprintf(w, "%-12s | %9s %12s | %12s\n", "matrix", "dl_step", "dl_norm", "DS norm@same")
	for _, name := range cfg.suiteNames() {
		pb, err := runSuite(cfg, name, core.Piggyback2016, ranks, 500)
		if err != nil {
			return err
		}
		if !pb.Deadlocked {
			fprintf(w, "%-12s | %9s %12.5g | %12s\n", name, "none", pb.Final().ResNorm, "-")
			continue
		}
		ds, err := runSuite(cfg, name, core.DistSWD, ranks, pb.DeadlockStep)
		if err != nil {
			return err
		}
		fprintf(w, "%-12s | %9d %12.5g | %12.5g\n", name, pb.DeadlockStep, pb.Final().ResNorm, ds.Final().ResNorm)
	}
	return nil
}
