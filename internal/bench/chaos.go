package bench

import (
	"fmt"
	"io"

	"southwell/internal/core"
	"southwell/internal/rma"
)

// chaosLevel is one fault intensity of the robustness sweep: every message
// is independently held back with probability prob by 1..max extra phases.
type chaosLevel struct {
	prob float64
	max  int
}

// chaosLevels is the intensity ladder of the Chaos study, from a perfect
// network to half of all messages delayed by up to 4 phases (more than a
// full parallel step for the three-phase methods).
var chaosLevels = []chaosLevel{{0, 0}, {0.1, 2}, {0.25, 3}, {0.5, 4}}

func (c Config) chaosSeed() int64 {
	if c.ChaosSeed != 0 {
		return c.ChaosSeed
	}
	return 1
}

// withDelay returns a config copy whose runs see delay faults at the given
// level (the zero level is the unmodified perfect network).
func (c Config) withDelay(lv chaosLevel) Config {
	if lv.prob > 0 {
		c.Faults = rma.DelayPlan(c.chaosSeed(), lv.prob, lv.max)
	}
	return c
}

// Chaos is the robustness study introduced with the fault-injection layer
// (no paper counterpart): it sweeps delay-fault intensity over the suite
// and reports, per (matrix, intensity, method), the parallel steps to the
// paper's 0.1 target and the stagnation-watchdog verdict. It extends the
// §2.4 dichotomy to imperfect networks: Distributed Southwell keeps
// converging without ever tripping the watchdog (late estimates are
// corrected by the next explicit update), while the 2016 piggyback variant
// still stagnates and is detected.
func Chaos(out io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(120)
	methods := []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD, core.Piggyback2016}
	fprintf(out, "# Chaos robustness study: independent per-message delivery delays\n")
	fprintf(out, "# plan: rma.DelayPlan(seed=%d, prob, max); %d ranks, %d-step budget, target %.2g\n",
		cfg.chaosSeed(), ranks, steps, Target)
	fprintf(out, "# cell: steps to target (log-interpolated, † = not reached) + verdict\n")
	fprintf(out, "# verdict: ok = converging, dl@s = watchdog stop at step s\n")
	fprintf(out, "%-12s %-13s", "matrix", "delay(p,max)")
	for _, m := range methods {
		fprintf(out, " | %14s", string(m))
	}
	fprintf(out, "\n")
	for _, lv := range chaosLevels {
		c := cfg.withDelay(lv)
		if err := prefetch(c, suiteJobs(c.suiteNames(), methods, []int{ranks}, steps)); err != nil {
			return err
		}
	}
	for _, name := range cfg.suiteNames() {
		for _, lv := range chaosLevels {
			c := cfg.withDelay(lv)
			fprintf(out, "%-12s p=%.2f,k=%-3d", name, lv.prob, lv.max)
			for _, m := range methods {
				res, err := runSuite(c, name, m, ranks, steps)
				if err != nil {
					return err
				}
				s, ok := res.StepsToNorm(Target)
				verdict := "ok"
				if res.Deadlocked {
					verdict = fmt.Sprintf("dl@%d", res.DeadlockStep)
				}
				fprintf(out, " | %6s %7s", dagger(s, ok, "%.1f"), verdict)
			}
			fprintf(out, "\n")
		}
	}
	return nil
}
