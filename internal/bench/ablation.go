package bench

import (
	"io"

	"southwell/internal/dmem"
	"southwell/internal/problem"
)

// Ablation runs the design-choice studies listed in DESIGN.md §6 on a few
// suite matrices: Distributed Southwell against (a) a variant without the
// communication-free ghost-layer estimate improvement and (b) variants
// with a slackened explicit-update trigger Γ̃ > (1+τ)·‖r‖. The table shows
// what each mechanism buys: the ghost layer removes wasted relaxations
// (and their solve messages); the exact trigger balances residual-update
// traffic against estimate staleness. A second table ablates the local
// subdomain solver (DESIGN.md §10): one Gauss-Seidel sweep (the paper's
// setting) against the exact sparse-LDLᵀ direct solve and the per-rank
// auto crossover, with simulated time charged at each backend's real
// per-solve cost.
func Ablation(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(50)
	names := []string{"Hook_1498", "msdoor", "af_5_k101"}
	if !cfg.Quick {
		names = append(names, "Serena", "ldoor")
	}
	variants := []struct {
		label string
		opts  dmem.DistSWOptions
	}{
		{"paper", dmem.DistSWOptions{}},
		{"no-ghost", dmem.DistSWOptions{NoGhostEstimate: true}},
		{"slack-0.1", dmem.DistSWOptions{UpdateSlack: 0.1}},
		{"slack-0.5", dmem.DistSWOptions{UpdateSlack: 0.5}},
	}
	fprintf(w, "# Ablations: Distributed Southwell design choices, %d ranks, %d steps\n", ranks, steps)
	fprintf(w, "%-12s %-10s | %9s %9s %8s %8s | %12s\n",
		"matrix", "variant", "solve/p", "res/p", "relax/n", "active", "final ||r||")
	for _, name := range names {
		a, err := matrixFor(name)
		if err != nil {
			return err
		}
		part := partitionFor(name, a, ranks, cfg.seed())
		for _, v := range variants {
			l, err := dmem.NewLayout(a, part, ranks)
			if err != nil {
				return err
			}
			b, x := problem.ZeroBSystem(a, cfg.seed())
			res := dmem.DistributedSouthwellOpt(l, b, x, dmem.Config{Steps: steps}, v.opts)
			fin := res.Final()
			fprintf(w, "%-12s %-10s | %9.2f %9.2f %8.2f %8.3f | %12.5g\n",
				name, v.label,
				float64(res.Stats.SolveMsgs)/float64(ranks),
				float64(res.Stats.ResMsgs)/float64(ranks),
				float64(fin.Relaxations)/float64(res.N),
				res.ActiveFraction, fin.ResNorm)
		}
	}

	locals := []struct {
		label string
		local dmem.LocalSolver
	}{
		{"gs", dmem.LocalGS},
		{"direct", dmem.LocalDirect},
		{"auto", dmem.LocalAuto},
	}
	fprintf(w, "\n# Local-solver ablation: Distributed Southwell, %d ranks, %d steps\n", ranks, steps)
	fprintf(w, "%-12s %-8s | %9s %8s %8s | %12s %12s\n",
		"matrix", "local", "solve/p", "relax/n", "active", "final ||r||", "sim time")
	for _, name := range names {
		a, err := matrixFor(name)
		if err != nil {
			return err
		}
		part := partitionFor(name, a, ranks, cfg.seed())
		for _, lv := range locals {
			l, err := dmem.NewLayout(a, part, ranks)
			if err != nil {
				return err
			}
			b, x := problem.ZeroBSystem(a, cfg.seed())
			res := dmem.DistributedSouthwell(l, b, x, dmem.Config{Steps: steps, Local: lv.local})
			fin := res.Final()
			fprintf(w, "%-12s %-8s | %9.2f %8.2f %8.3f | %12.5g %12.4g\n",
				name, lv.label,
				float64(res.Stats.SolveMsgs)/float64(ranks),
				float64(fin.Relaxations)/float64(res.N),
				res.ActiveFraction, fin.ResNorm, fin.SimTime)
		}
	}
	return nil
}
