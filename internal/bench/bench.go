// Package bench regenerates every table and figure of the paper's
// evaluation (Figures 2, 5, 6, 7, 8, 9 and Tables 2, 3, 4) on the
// synthetic suite and simulated runtime, printing rows/series in the same
// layout the paper reports. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package bench

import (
	"fmt"
	"io"
	"sync"

	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

// Config scales the experiments. The zero value reproduces the defaults
// used in EXPERIMENTS.md.
type Config struct {
	// Ranks is the simulated process count for suite experiments
	// (default 256 — the paper's 8192 scaled with matrix size).
	Ranks int
	// Steps is the per-run parallel-step budget (default 60 for the
	// to-target tables, 50 for per-step and figure experiments; see
	// EXPERIMENTS.md for why the to-target budget is 60 here vs the
	// paper's 50).
	Steps int
	// Quick shrinks the experiment (fewer matrices, fewer rank counts)
	// for tests and smoke runs.
	Quick bool
	// Seed drives initial guesses and partitions.
	Seed int64
}

func (c Config) ranks() int {
	if c.Ranks > 0 {
		return c.Ranks
	}
	if c.Quick {
		return 64
	}
	return 256
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) stepsOr(def int) int {
	if c.Steps > 0 {
		return c.Steps
	}
	return def
}

// Target is the paper's accuracy target for Tables 2-3 and Figure 8.
const Target = 0.1

// suiteNames returns the matrices a config runs.
func (c Config) suiteNames() []string {
	if c.Quick {
		return []string{"Hook_1498", "msdoor", "af_5_k101"}
	}
	return problem.SuiteNames()
}

// runKey caches distributed runs shared between tables.
type runKey struct {
	name   string
	method core.DistMethod
	ranks  int
	steps  int
	seed   int64
}

var (
	runMu    sync.Mutex
	runCache = map[runKey]*dmem.Result{}
	matMu    sync.Mutex
	matCache = map[string]*sparse.CSR{}
	partMu   sync.Mutex
	pCache   = map[string][]int{}
)

// matrixFor builds (and caches) a scaled suite matrix.
func matrixFor(name string) (*sparse.CSR, error) {
	matMu.Lock()
	defer matMu.Unlock()
	if a, ok := matCache[name]; ok {
		return a, nil
	}
	e, ok := problem.SuiteByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown suite matrix %q", name)
	}
	a := e.Build()
	matCache[name] = a
	return a, nil
}

func partitionFor(name string, a *sparse.CSR, ranks int, seed int64) []int {
	key := fmt.Sprintf("%s/%d/%d", name, ranks, seed)
	partMu.Lock()
	defer partMu.Unlock()
	if p, ok := pCache[key]; ok {
		return p
	}
	p := partition.Partition(a, ranks, partition.Options{Seed: seed})
	pCache[key] = p
	return p
}

// runSuite runs (with caching) one method on one suite matrix.
func runSuite(name string, method core.DistMethod, ranks, steps int, seed int64) (*dmem.Result, error) {
	key := runKey{name, method, ranks, steps, seed}
	runMu.Lock()
	if r, ok := runCache[key]; ok {
		runMu.Unlock()
		return r, nil
	}
	runMu.Unlock()

	a, err := matrixFor(name)
	if err != nil {
		return nil, err
	}
	part := partitionFor(name, a, ranks, seed)
	b, x := problem.ZeroBSystem(a, seed)
	res, err := core.SolveDistributed(a, b, x, core.DistOptions{
		Method: method, Ranks: ranks, Steps: steps, Part: part,
	})
	if err != nil {
		return nil, err
	}
	runMu.Lock()
	runCache[key] = res
	runMu.Unlock()
	return res, nil
}

// ResetCaches clears memoized matrices and runs (for benchmarks that must
// measure cold work).
func ResetCaches() {
	runMu.Lock()
	runCache = map[runKey]*dmem.Result{}
	runMu.Unlock()
	matMu.Lock()
	matCache = map[string]*sparse.CSR{}
	matMu.Unlock()
	partMu.Lock()
	pCache = map[string][]int{}
	partMu.Unlock()
}

// dagger formats a float with a † for missing values, like the paper.
func dagger(v float64, ok bool, format string) string {
	if !ok {
		return "†"
	}
	return fmt.Sprintf(format, v)
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
