// Package bench regenerates every table and figure of the paper's
// evaluation (Figures 2, 5, 6, 7, 8, 9 and Tables 2, 3, 4) on the
// synthetic suite and simulated runtime, printing rows/series in the same
// layout the paper reports. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// The suite drivers support two axes of real parallelism on top of the
// simulated one: Config.Par fans independent (matrix, method) runs out over
// bounded workers, and Config.Goroutines runs each simulated world on the
// rma worker-pool engine. Both are bit-identical to the sequential paths
// (runs are cached by key and each world is deterministic), so table output
// does not depend on either setting.
package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/obs"
	"southwell/internal/parallel"
	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/rma"
	"southwell/internal/sparse"
)

// Config scales the experiments. The zero value reproduces the defaults
// used in EXPERIMENTS.md.
type Config struct {
	// Ranks is the simulated process count for suite experiments
	// (default 256 — the paper's 8192 scaled with matrix size).
	Ranks int
	// Steps is the per-run parallel-step budget (default 60 for the
	// to-target tables, 50 for per-step and figure experiments; see
	// EXPERIMENTS.md for why the to-target budget is 60 here vs the
	// paper's 50).
	Steps int
	// Quick shrinks the experiment (fewer matrices, fewer rank counts)
	// for tests and smoke runs.
	Quick bool
	// Seed drives initial guesses and partitions.
	Seed int64
	// Par bounds how many suite runs execute concurrently: the table and
	// figure drivers fan their (matrix, method, ranks) runs out over Par
	// worker goroutines, each running its own simulated world. 0 or 1 runs
	// sequentially. Output is identical for every value of Par.
	Par int
	// Goroutines runs each simulated world on the rma worker-pool engine
	// (bit-identical results; see the dmem engine-equivalence tests).
	Goroutines bool
	// Sched selects the pool engine's epoch discipline when Goroutines is
	// set (rma.SchedNeighbor pipelines phases per neighborhood). Like Par
	// and Goroutines it never changes results, so it is excluded from the
	// run-cache key.
	Sched rma.Sched
	// Dense disables the active-set step engine (see core.DistOptions).
	// Bit-identical either way, so it too stays out of the run-cache key.
	Dense bool
	// LogW, when non-nil, receives verbose driver progress: cells skipped
	// via the run cache and setups shared via the setup cache (-v in
	// cmd/benchtables). Logging never changes results.
	LogW io.Writer
	// Local selects the subdomain solver for suite runs (default
	// dmem.LocalGS, the paper's setting).
	Local dmem.LocalSolver
	// Model overrides the α-β-γ cost model (nil = rma.DefaultCostModel()).
	Model *rma.CostModel
	// Faults, when non-nil, injects deterministic faults into every suite
	// run (see rma.FaultPlan). The Chaos driver varies plans per run by
	// adjusting this field on its per-run config copies.
	Faults *rma.FaultPlan
	// ChaosSeed seeds the delay plans the Chaos driver builds (default 1).
	ChaosSeed int64
	// KernelWorkers resizes the shared numerical-kernel pool
	// (parallel.SetDefaultWorkers) for the duration of a driver run: -1
	// forces sequential kernels, 0 leaves the pool as configured (the
	// default). Like Par and Goroutines, it never changes results — the
	// kernels are bit-identical for every worker count (see
	// internal/parallel). The drivers restore the previous width on return
	// (pushKernelWorkers), so the setting never leaks into the caller's
	// process or across suite runs.
	KernelWorkers int
	// TraceDir, when non-empty, makes every non-cached suite run record a
	// structured event trace (internal/obs) and write it as Chrome
	// trace-event JSON — one <run>.trace.json per (matrix, method, ranks,
	// steps) — into this directory. Tracing never changes results.
	TraceDir string
	// MetricsDir, like TraceDir, but writes the plain-text per-rank /
	// per-step metrics summary as <run>.metrics.txt.
	MetricsDir string
}

// pushKernelWorkers resizes the shared kernel pool per the config and
// returns a restore function for the previous width; the drivers defer it
// so the process-global pool configuration cannot leak out of a driver
// call. KernelWorkers == 0 means "leave it alone" (the restore is a no-op)
// so a zero-value Config composes with callers that configured the pool
// themselves.
func (c Config) pushKernelWorkers() func() {
	if c.KernelWorkers == 0 {
		return func() {}
	}
	prev := parallel.Default().Workers()
	n := c.KernelWorkers
	if n < 0 {
		n = 1
	}
	parallel.SetDefaultWorkers(n)
	return func() { parallel.SetDefaultWorkers(prev) }
}

func (c Config) ranks() int {
	if c.Ranks > 0 {
		return c.Ranks
	}
	if c.Quick {
		return 64
	}
	return 256
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) stepsOr(def int) int {
	if c.Steps > 0 {
		return c.Steps
	}
	return def
}

func (c Config) par() int {
	if c.Par > 1 {
		return c.Par
	}
	return 1
}

// Target is the paper's accuracy target for Tables 2-3 and Figure 8.
const Target = 0.1

// suiteNames returns the matrices a config runs.
func (c Config) suiteNames() []string {
	if c.Quick {
		return []string{"Hook_1498", "msdoor", "af_5_k101"}
	}
	return problem.SuiteNames()
}

// runKey caches distributed runs shared between tables. Every
// result-changing setting is part of the key: matrix, method, ranks, step
// budget, seed, local solver, the *resolved* cost model (so nil and an
// explicit default are one entry), and the fault plan (canonicalized to a
// string — FaultPlan holds a map and a slice and is not comparable). Only
// the engine flags (Par, Goroutines) are deliberately excluded: they do
// not change results.
type runKey struct {
	name   string
	method core.DistMethod
	ranks  int
	steps  int
	seed   int64
	local  dmem.LocalSolver
	model  rma.CostModel
	chaos  string
}

func (c Config) costModel() rma.CostModel {
	if c.Model == nil {
		return rma.DefaultCostModel()
	}
	return *c.Model
}

// chaosKey canonicalizes a fault plan for the run cache. fmt prints map
// keys in sorted order, so the representation is deterministic.
func chaosKey(p *rma.FaultPlan) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("%+v", *p)
}

var (
	runMu    sync.Mutex
	runCache = map[runKey]*dmem.Result{}
	matMu    sync.Mutex
	matCache = map[string]*sparse.CSR{}
	partMu   sync.Mutex
	pCache   = map[string][]int{}
	setupMu  sync.Mutex
	sCache   = map[setupKey]*dmem.Setup{}
)

// logf writes verbose driver progress to cfg.LogW, if configured.
func (c Config) logf(format string, args ...any) {
	if c.LogW != nil {
		fmt.Fprintf(c.LogW, format, args...)
	}
}

// matrixFor builds (and caches) a scaled suite matrix. The build runs
// outside the cache lock so concurrent workers on different matrices do
// not serialize; two workers racing on the same name both build, and the
// first store wins (the builds are deterministic and identical).
func matrixFor(name string) (*sparse.CSR, error) {
	matMu.Lock()
	if a, ok := matCache[name]; ok {
		matMu.Unlock()
		return a, nil
	}
	matMu.Unlock()
	e, ok := problem.SuiteByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown suite matrix %q", name)
	}
	a := e.Build()
	matMu.Lock()
	defer matMu.Unlock()
	if prev, ok := matCache[name]; ok {
		return prev, nil
	}
	matCache[name] = a
	return a, nil
}

func partitionFor(name string, a *sparse.CSR, ranks int, seed int64) []int {
	key := fmt.Sprintf("%s/%d/%d", name, ranks, seed)
	partMu.Lock()
	if p, ok := pCache[key]; ok {
		partMu.Unlock()
		return p
	}
	partMu.Unlock()
	p := partition.Partition(a, ranks, partition.Options{Seed: seed})
	partMu.Lock()
	defer partMu.Unlock()
	if prev, ok := pCache[key]; ok {
		return prev
	}
	pCache[key] = p
	return p
}

// setupKey identifies one shared preprocessing unit: everything that
// changes the partition, layout, or local factorizations — and nothing
// else. Model and Faults are deliberately absent: they shape the *run*
// (runKey distinguishes them) but not the setup, so every method, cost
// model, and fault plan on the same (matrix, ranks, seed, local) cell
// shares one setup.
type setupKey struct {
	name  string
	ranks int
	seed  int64
	local dmem.LocalSolver
}

// setupFor builds (and caches) the shared (partition, layout, local
// factorization) preprocessing of one suite cell. Same locking idiom as
// matrixFor: build outside the lock, first store wins.
func setupFor(name string, ranks int, seed int64, local dmem.LocalSolver) (*dmem.Setup, error) {
	key := setupKey{name: name, ranks: ranks, seed: seed, local: local}
	setupMu.Lock()
	if s, ok := sCache[key]; ok {
		setupMu.Unlock()
		return s, nil
	}
	setupMu.Unlock()
	a, err := matrixFor(name)
	if err != nil {
		return nil, err
	}
	part := partitionFor(name, a, ranks, seed)
	l, err := dmem.NewLayout(a, part, ranks)
	if err != nil {
		return nil, err
	}
	s, err := dmem.NewSetup(l, local)
	if err != nil {
		return nil, err
	}
	setupMu.Lock()
	defer setupMu.Unlock()
	if prev, ok := sCache[key]; ok {
		return prev, nil
	}
	sCache[key] = s
	return s, nil
}

// keyFor is the run-cache key of one suite cell under this config.
func (c Config) keyFor(name string, method core.DistMethod, ranks, steps int) runKey {
	return runKey{
		name: name, method: method, ranks: ranks, steps: steps,
		seed: c.seed(), local: c.Local, model: c.costModel(),
		chaos: chaosKey(c.Faults),
	}
}

// runSuite runs (with caching) one method on one suite matrix, using the
// config's seed and world engine. Partitioning, layout construction, and
// local factorization go through the setup cache, so every method/table
// cell on the same (matrix, ranks) pays for them exactly once.
func runSuite(cfg Config, name string, method core.DistMethod, ranks, steps int) (*dmem.Result, error) {
	key := cfg.keyFor(name, method, ranks, steps)
	runMu.Lock()
	if r, ok := runCache[key]; ok {
		runMu.Unlock()
		return r, nil
	}
	runMu.Unlock()

	setup, err := setupFor(name, ranks, cfg.seed(), cfg.Local)
	if err != nil {
		return nil, err
	}
	a := setup.Layout.A
	b, x := problem.ZeroBSystem(a, cfg.seed())
	opt := core.DistOptions{
		Method: method, Ranks: ranks, Steps: steps, Setup: setup,
		Parallel: cfg.Goroutines, Sched: cfg.Sched, Dense: cfg.Dense,
		Local: cfg.Local, Model: cfg.Model, Faults: cfg.Faults,
	}
	// Trace hook: any table/figure run can dump its per-rank timeline.
	// Cached runs skip this path, so each run key is exported exactly once
	// (by whichever call executed the world). No kernel-pool snapshot is
	// attached here: the pool counters are process-global, so a per-run
	// delta is only well-defined when exactly one run is in flight — under
	// the -par prefetch driver it would absorb concurrent runs' regions
	// and the exported bytes would stop being a pure function of the run
	// (cmd/dsouthwell, which solves exactly once per process, keeps it).
	var rec *obs.Recorder
	if cfg.TraceDir != "" || cfg.MetricsDir != "" {
		rec = obs.NewRecorder(ranks)
		rec.SetLabel(traceBase(key))
		opt.Trace = rec
	}
	res, err := core.SolveDistributed(a, b, x, opt)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		if err := exportRun(cfg, key, rec); err != nil {
			return nil, err
		}
	}
	runMu.Lock()
	defer runMu.Unlock()
	if prev, ok := runCache[key]; ok {
		return prev, nil
	}
	runCache[key] = res
	return res, nil
}

// traceBase is the per-run file stem: matrix, method, ranks, and step
// budget, plus a short hash of the fault plan when one is installed (the
// Chaos driver runs several plans over the same key prefix).
func traceBase(key runKey) string {
	base := fmt.Sprintf("%s_%s_p%d_s%d", key.name, key.method, key.ranks, key.steps)
	if key.chaos != "" {
		h := fnv.New32a()
		io.WriteString(h, key.chaos)
		base = fmt.Sprintf("%s_chaos%08x", base, h.Sum32())
	}
	return base
}

// exportRun writes a run's trace and/or metrics files per the config.
func exportRun(cfg Config, key runKey, rec *obs.Recorder) error {
	base := traceBase(key)
	write := func(dir, suffix string, fn func(io.Writer) error) error {
		if dir == "" {
			return nil
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, base+suffix))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(cfg.TraceDir, ".trace.json", rec.WriteTrace); err != nil {
		return err
	}
	return write(cfg.MetricsDir, ".metrics.txt", rec.WriteMetrics)
}

// runJob identifies one suite run for the concurrent driver.
type runJob struct {
	name   string
	method core.DistMethod
	ranks  int
	steps  int
}

// suiteJobs is the cross product names × rankCounts × methods at a fixed
// step budget, in deterministic order.
func suiteJobs(names []string, methods []core.DistMethod, rankCounts []int, steps int) []runJob {
	jobs := make([]runJob, 0, len(names)*len(rankCounts)*len(methods))
	for _, name := range names {
		for _, r := range rankCounts {
			for _, m := range methods {
				jobs = append(jobs, runJob{name: name, method: m, ranks: r, steps: steps})
			}
		}
	}
	return jobs
}

// prefetch executes the given runs with up to cfg.par() concurrent worlds,
// populating the run cache so the table printers read memoized results in
// their own (deterministic) order. A no-op when Par <= 1: the printers
// compute lazily through runSuite exactly as before (which still shares
// setups through the setup cache).
func prefetch(cfg Config, jobs []runJob) error {
	par := cfg.par()
	if par <= 1 || len(jobs) <= 1 {
		return nil
	}
	// Drop jobs whose results are already cached (Tables 2-4 overlap on the
	// to-target step budget): no world needs to run for them at all.
	fresh := jobs[:0:0]
	for _, j := range jobs {
		key := cfg.keyFor(j.name, j.method, j.ranks, j.steps)
		runMu.Lock()
		_, hit := runCache[key]
		runMu.Unlock()
		if hit {
			cfg.logf("bench: cache skip %s %s p=%d steps=%d\n", j.name, j.method, j.ranks, j.steps)
			continue
		}
		fresh = append(fresh, j)
	}
	if len(fresh) == 0 {
		return nil
	}
	// Stage 1: distinct (matrix, ranks) setups — matrix generation,
	// partitioning, layout, and local factorization each happen once, in
	// parallel, through the setup cache; every method cell then shares the
	// result immutably.
	type prepKey struct {
		name  string
		ranks int
	}
	var preps []prepKey
	seen := map[prepKey]bool{}
	for _, j := range fresh {
		k := prepKey{j.name, j.ranks}
		if !seen[k] {
			seen[k] = true
			preps = append(preps, k)
		}
	}
	if err := forEachPar(par, len(preps), func(i int) error {
		setupMu.Lock()
		_, hit := sCache[setupKey{name: preps[i].name, ranks: preps[i].ranks, seed: cfg.seed(), local: cfg.Local}]
		setupMu.Unlock()
		if hit {
			cfg.logf("bench: setup cache hit %s p=%d\n", preps[i].name, preps[i].ranks)
		}
		_, err := setupFor(preps[i].name, preps[i].ranks, cfg.seed(), cfg.Local)
		return err
	}); err != nil {
		return err
	}
	// Stage 2: the runs themselves, one simulated world per worker slot.
	return forEachPar(par, len(fresh), func(i int) error {
		_, err := runSuite(cfg, fresh[i].name, fresh[i].method, fresh[i].ranks, fresh[i].steps)
		return err
	})
}

// forEachPar runs fn(i) for i in [0, n) over up to par worker goroutines
// and returns the lowest-index error, if any.
func forEachPar(par, n int, fn func(i int) error) error {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ResetCaches clears memoized matrices and runs (for benchmarks that must
// measure cold work).
func ResetCaches() {
	runMu.Lock()
	runCache = map[runKey]*dmem.Result{}
	runMu.Unlock()
	matMu.Lock()
	matCache = map[string]*sparse.CSR{}
	matMu.Unlock()
	partMu.Lock()
	pCache = map[string][]int{}
	partMu.Unlock()
	setupMu.Lock()
	sCache = map[setupKey]*dmem.Setup{}
	setupMu.Unlock()
}

// dagger formats a float with a † for missing values, like the paper.
func dagger(v float64, ok bool, format string) string {
	if !ok {
		return "†"
	}
	return fmt.Sprintf(format, v)
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
