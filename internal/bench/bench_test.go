package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/parallel"
	"southwell/internal/rma"
)

func quickCfg() Config { return Config{Quick: true, Ranks: 32, Seed: 1} }

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"GS", "SW", "Par SW", "MC GS", "Jacobi"} {
		if !strings.Contains(out, m) {
			t.Errorf("Fig2 missing series %q", m)
		}
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dist SW") {
		t.Error("Fig5 missing Distributed Southwell series")
	}
	if !strings.Contains(buf.String(), "0.6") {
		t.Error("Fig5 missing sweet-spot summary")
	}
}

func TestFig6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GS") || !strings.Contains(out, "Dist SW 0.5 sweep") {
		t.Errorf("Fig6 missing columns:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Error("Fig6 too few rows")
	}
}

func TestTablesAndFigsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	cfg := quickCfg()
	for name, fn := range map[string]func(*bytes.Buffer) error{
		"table2": func(b *bytes.Buffer) error { return Table2(b, cfg) },
		"table3": func(b *bytes.Buffer) error { return Table3(b, cfg) },
		"table4": func(b *bytes.Buffer) error { return Table4(b, cfg) },
		"fig7":   func(b *bytes.Buffer) error { return Fig7(b, cfg) },
		"fig8":   func(b *bytes.Buffer) error { return Fig8(b, cfg) },
		"fig9":   func(b *bytes.Buffer) error { return Fig9(b, cfg) },
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
		for _, m := range cfg.suiteNames()[:1] {
			if name[0] == 't' && !strings.Contains(buf.String(), m) {
				t.Errorf("%s missing matrix %s", name, m)
			}
		}
	}
}

func TestRunCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	cfg := quickCfg()
	r1, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache miss for identical run")
	}
	ResetCaches()
	r3, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r3 {
		t.Error("cache not cleared")
	}
}

func TestRunSuiteUnknownMatrix(t *testing.T) {
	if _, err := runSuite(Config{Seed: 1}, "nope", core.DistSWD, 4, 5); err == nil {
		t.Error("unknown matrix accepted")
	}
}

// TestParDriverDeterministic checks that the bounded-concurrency driver and
// the worker-pool world engine leave table output bit-identical to the
// sequential path.
func TestParDriverDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	render := func(cfg Config) string {
		ResetCaches()
		defer ResetCaches()
		var buf bytes.Buffer
		if err := Table4(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		if err := Table3(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(quickCfg())
	parCfg := quickCfg()
	parCfg.Par = 4
	parCfg.Goroutines = true
	par := render(parCfg)
	if seq != par {
		t.Errorf("parallel driver changed table output:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestKernelWorkersRestored: a driver run with KernelWorkers set must not
// leak the width into the process-global kernel pool. Historically
// applyKernelWorkers called parallel.SetDefaultWorkers and never restored,
// so one suite run reconfigured every later kernel in the process.
func TestKernelWorkersRestored(t *testing.T) {
	prev := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(prev)
	parallel.SetDefaultWorkers(3)

	cfg := quickCfg()
	cfg.KernelWorkers = 2
	var buf bytes.Buffer
	if err := Fig2(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if got := parallel.Default().Workers(); got != 3 {
		t.Errorf("kernel pool width leaked: got %d after driver, want 3", got)
	}

	// KernelWorkers == 0 must leave the pool entirely alone.
	restore := Config{}.pushKernelWorkers()
	if got := parallel.Default().Workers(); got != 3 {
		t.Errorf("KernelWorkers=0 resized the pool to %d", got)
	}
	restore()

	// And -1 must force sequential kernels for the driver's duration only.
	restore = Config{KernelWorkers: -1}.pushKernelWorkers()
	if got := parallel.Default().Workers(); got != 1 {
		t.Errorf("KernelWorkers=-1 gave width %d, want 1", got)
	}
	restore()
	if got := parallel.Default().Workers(); got != 3 {
		t.Errorf("restore after -1 gave width %d, want 3", got)
	}
}

// TestTraceHook: a run with TraceDir/MetricsDir set dumps its per-run
// trace-event JSON and metrics summary, and the recorded run is
// bit-identical to an untraced one.
func TestTraceHook(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	ResetCaches()
	defer ResetCaches()
	dir := t.TempDir()
	cfg := quickCfg()
	ref, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	ResetCaches()
	cfg.TraceDir = dir
	cfg.MetricsDir = dir
	traced, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.History) != len(ref.History) {
		t.Fatalf("tracing changed the run: %d vs %d steps", len(traced.History), len(ref.History))
	}
	for i := range ref.History {
		if traced.History[i] != ref.History[i] {
			t.Fatalf("tracing changed step %d: %+v vs %+v", i, traced.History[i], ref.History[i])
		}
	}
	base := fmt.Sprintf("af_5_k101_ds_p%d_s10", cfg.ranks())
	tj, err := os.ReadFile(filepath.Join(dir, base+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(tj, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if _, ok := parsed["traceEvents"].([]any); !ok {
		t.Error("trace file missing traceEvents array")
	}
	mt, err := os.ReadFile(filepath.Join(dir, base+".metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mt), "# per-rank") {
		t.Errorf("metrics summary missing per-rank table:\n%s", mt)
	}
	// No kernel-pool line from suite runs: the pool counters are
	// process-global, so a per-run delta under the -par prefetch driver
	// would absorb concurrent runs and the file would differ between
	// sequential and concurrent drivers.
	if strings.Contains(string(mt), "kernel pool") {
		t.Errorf("suite metrics carries a kernel-pool snapshot (driver-concurrency dependent):\n%s", mt)
	}
}

// TestTraceExportDriverInvariant: the exported trace and metrics bytes
// for one run key must not depend on the suite driver's concurrency.
func TestTraceExportDriverInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	export := func(par int, goroutines bool) (trace, metrics []byte) {
		t.Helper()
		ResetCaches()
		defer ResetCaches()
		dir := t.TempDir()
		cfg := quickCfg()
		cfg.Par = par
		cfg.Goroutines = goroutines
		cfg.TraceDir = dir
		cfg.MetricsDir = dir
		var buf bytes.Buffer
		if err := Table2(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		base := fmt.Sprintf("af_5_k101_ds_p%d_s%d", cfg.ranks(), cfg.stepsOr(60))
		tj, err := os.ReadFile(filepath.Join(dir, base+".trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		mt, err := os.ReadFile(filepath.Join(dir, base+".metrics.txt"))
		if err != nil {
			t.Fatal(err)
		}
		return tj, mt
	}
	seqTrace, seqMet := export(0, false)
	parTrace, parMet := export(4, true)
	if !bytes.Equal(seqTrace, parTrace) {
		t.Error("trace export differs between sequential and concurrent drivers")
	}
	if !bytes.Equal(seqMet, parMet) {
		t.Error("metrics export differs between sequential and concurrent drivers")
	}
}

func TestDagger(t *testing.T) {
	if dagger(1.5, true, "%.1f") != "1.5" {
		t.Error("dagger formats value")
	}
	if dagger(0, false, "%.1f") != "†" {
		t.Error("dagger symbol")
	}
}

func TestAblationOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	var buf bytes.Buffer
	if err := Ablation(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"paper", "no-ghost", "slack-0.5"} {
		if !strings.Contains(buf.String(), label) {
			t.Errorf("ablation missing variant %q", label)
		}
	}
}

// TestRunCacheKeyedByConfig: every result-changing config field must reach
// the cache key. Historically Local, Model, and the fault plan were
// omitted, so e.g. a Gauss-Seidel run poisoned the cache for a later
// direct-solver table. Two runs differing in exactly one such field must
// not share a cache entry.
func TestRunCacheKeyedByConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	ResetCaches()
	defer ResetCaches()
	base := quickCfg()
	run := func(cfg Config) *dmem.Result {
		t.Helper()
		r, err := runSuite(cfg, "af_5_k101", core.DistSWD, base.ranks(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(base)

	local := base
	local.Local = dmem.LocalDirect
	if run(local) == ref {
		t.Error("configs differing only in Local share a cache entry")
	}
	model := base
	model.Model = &rma.CostModel{Alpha: 1, Beta: 1, Gamma: 1}
	if run(model) == ref {
		t.Error("configs differing only in Model share a cache entry")
	}
	chaos := base
	chaos.Faults = rma.DelayPlan(1, 0.25, 3)
	if run(chaos) == ref {
		t.Error("configs differing only in Faults share a cache entry")
	}
	// nil Model and an explicit default model are the same run and must
	// share one entry.
	def := base
	def.Model = &rma.CostModel{}
	*def.Model = rma.DefaultCostModel()
	if run(def) != ref {
		t.Error("nil cost model and explicit default did not share a cache entry")
	}
	if run(base) != ref {
		t.Error("base config no longer hits its own cache entry")
	}
}

// TestChaosOutput: the robustness table renders every method column and the
// paper's dichotomy — Distributed Southwell "ok" on every row, the 2016
// piggyback variant detected as stagnated under faults.
func TestChaosOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	ResetCaches()
	defer ResetCaches()
	var buf bytes.Buffer
	if err := Chaos(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"bj", "ps", "ds", "pb16", "delay"} {
		if !strings.Contains(out, col) {
			t.Errorf("chaos table missing %q:\n%s", col, out)
		}
	}
	// Columns after the row label: bj | ps | ds | pb16.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") || !strings.Contains(line, " | ") || strings.Contains(line, "matrix") {
			continue
		}
		cells := strings.Split(line, " | ")
		if len(cells) != 5 {
			t.Fatalf("chaos row has %d cells, want 5: %q", len(cells), line)
		}
		rows++
		if strings.Contains(cells[3], "dl@") {
			t.Errorf("Distributed Southwell tripped the watchdog: %q", line)
		}
		if !strings.Contains(cells[4], "dl@") {
			t.Errorf("Piggyback2016 not detected as stagnated: %q", line)
		}
	}
	if want := len(quickCfg().suiteNames()) * len(chaosLevels); rows != want {
		t.Errorf("chaos table has %d data rows, want %d", rows, want)
	}
}
