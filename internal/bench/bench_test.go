package bench

import (
	"bytes"
	"strings"
	"testing"

	"southwell/internal/core"
)

func quickCfg() Config { return Config{Quick: true, Ranks: 32, Seed: 1} }

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"GS", "SW", "Par SW", "MC GS", "Jacobi"} {
		if !strings.Contains(out, m) {
			t.Errorf("Fig2 missing series %q", m)
		}
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dist SW") {
		t.Error("Fig5 missing Distributed Southwell series")
	}
	if !strings.Contains(buf.String(), "0.6") {
		t.Error("Fig5 missing sweet-spot summary")
	}
}

func TestFig6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GS") || !strings.Contains(out, "Dist SW 0.5 sweep") {
		t.Errorf("Fig6 missing columns:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Error("Fig6 too few rows")
	}
}

func TestTablesAndFigsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	cfg := quickCfg()
	for name, fn := range map[string]func(*bytes.Buffer) error{
		"table2": func(b *bytes.Buffer) error { return Table2(b, cfg) },
		"table3": func(b *bytes.Buffer) error { return Table3(b, cfg) },
		"table4": func(b *bytes.Buffer) error { return Table4(b, cfg) },
		"fig7":   func(b *bytes.Buffer) error { return Fig7(b, cfg) },
		"fig8":   func(b *bytes.Buffer) error { return Fig8(b, cfg) },
		"fig9":   func(b *bytes.Buffer) error { return Fig9(b, cfg) },
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
		for _, m := range cfg.suiteNames()[:1] {
			if name[0] == 't' && !strings.Contains(buf.String(), m) {
				t.Errorf("%s missing matrix %s", name, m)
			}
		}
	}
}

func TestRunCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	cfg := quickCfg()
	r1, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache miss for identical run")
	}
	ResetCaches()
	r3, err := runSuite(cfg, "af_5_k101", core.DistSWD, cfg.ranks(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r3 {
		t.Error("cache not cleared")
	}
}

func TestRunSuiteUnknownMatrix(t *testing.T) {
	if _, err := runSuite(Config{Seed: 1}, "nope", core.DistSWD, 4, 5); err == nil {
		t.Error("unknown matrix accepted")
	}
}

// TestParDriverDeterministic checks that the bounded-concurrency driver and
// the worker-pool world engine leave table output bit-identical to the
// sequential path.
func TestParDriverDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	render := func(cfg Config) string {
		ResetCaches()
		defer ResetCaches()
		var buf bytes.Buffer
		if err := Table4(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		if err := Table3(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(quickCfg())
	parCfg := quickCfg()
	parCfg.Par = 4
	parCfg.Goroutines = true
	par := render(parCfg)
	if seq != par {
		t.Errorf("parallel driver changed table output:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

func TestDagger(t *testing.T) {
	if dagger(1.5, true, "%.1f") != "1.5" {
		t.Error("dagger formats value")
	}
	if dagger(0, false, "%.1f") != "†" {
		t.Error("dagger symbol")
	}
}

func TestAblationOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	var buf bytes.Buffer
	if err := Ablation(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"paper", "no-ghost", "slack-0.5"} {
		if !strings.Contains(buf.String(), label) {
			t.Errorf("ablation missing variant %q", label)
		}
	}
}
