package bench

import (
	"io"

	"southwell/internal/core"
	"southwell/internal/problem"
	"southwell/internal/solvers"
	"southwell/internal/sparse"
)

// fig2Problem returns the small finite element problem of §2.3 (or a
// smaller one in quick mode), scaled to unit diagonal.
func fig2Problem(quick bool) *sparse.CSR {
	var a *sparse.CSR
	if quick {
		a = problem.FEM2D(20, 0.35, 20170713)
	} else {
		a = problem.Fig2FEM()
	}
	if _, err := sparse.Scale(a); err != nil {
		panic("bench: FEM problem not SPD: " + err.Error())
	}
	return a
}

// scalarSeries runs one scalar method for three sweeps on the Figure 2
// problem and returns its trace.
func scalarSeries(a *sparse.CSR, m core.ScalarMethod, seed int64) *solvers.Trace {
	b, x := problem.RandomBSystem(a, seed)
	tr, _, err := core.SolveScalar(a, b, x, core.ScalarOptions{Method: m, MaxRelax: 3 * a.N})
	if err != nil {
		panic(err)
	}
	return tr
}

// writeSeries prints a downsampled (cumRelax, resNorm) series, one line per
// point, prefixed with the method name — the data behind a convergence
// curve. Parallel-step boundaries are every printed point for parallel
// methods; for sequential methods points are thinned to ~maxPoints.
func writeSeries(w io.Writer, tr *solvers.Trace, maxPoints int) {
	steps := tr.Steps
	stride := 1
	if len(steps) > maxPoints {
		stride = len(steps) / maxPoints
	}
	for i := 0; i < len(steps); i += stride {
		s := steps[i]
		fprintf(w, "%-8s %8d %12.6f\n", tr.Method, s.CumRelax, s.ResNorm)
	}
	if (len(steps)-1)%stride != 0 {
		s := steps[len(steps)-1]
		fprintf(w, "%-8s %8d %12.6f\n", tr.Method, s.CumRelax, s.ResNorm)
	}
}

// Fig2 regenerates Figure 2: convergence (residual norm vs relaxations)
// of Gauss-Seidel, Sequential Southwell, Parallel Southwell, Multicolor
// Gauss-Seidel, and Jacobi on the small finite element problem, three
// sweeps each.
func Fig2(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	a := fig2Problem(cfg.Quick)
	fprintf(w, "# Figure 2: convergence on FEM problem (n=%d), 3 sweeps\n", a.N)
	fprintf(w, "# method  relaxations  residual_norm\n")
	for _, m := range []core.ScalarMethod{core.GaussSeidel, core.SequentialSW, core.ParallelSW, core.MulticolorGS, core.Jacobi} {
		tr := scalarSeries(a, m, cfg.seed())
		writeSeries(w, tr, 40)
	}
	return nil
}

// Fig5 regenerates Figure 5: Figure 2's problem with scalar Distributed
// Southwell added (all methods in scalar form).
func Fig5(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	a := fig2Problem(cfg.Quick)
	fprintf(w, "# Figure 5: convergence on FEM problem (n=%d) incl. Distributed Southwell\n", a.N)
	fprintf(w, "# method  relaxations  residual_norm\n")
	for _, m := range []core.ScalarMethod{core.SequentialSW, core.ParallelSW, core.MulticolorGS, core.DistributedSW} {
		tr := scalarSeries(a, m, cfg.seed())
		writeSeries(w, tr, 40)
	}
	// Parallel-step counts at the paper's "sweet spot" accuracy.
	fprintf(w, "# steps and relaxations to reach residual norm 0.6:\n")
	for _, m := range []core.ScalarMethod{core.SequentialSW, core.ParallelSW, core.MulticolorGS, core.DistributedSW} {
		b, x := problem.RandomBSystem(a, cfg.seed())
		tr, _, err := core.SolveScalar(a, b, x, core.ScalarOptions{Method: m, MaxRelax: 3 * a.N, TargetNorm: 0.6})
		if err != nil {
			return err
		}
		rel, ok := tr.RelaxAtNorm(0.6)
		fprintf(w, "# %-8s steps=%5d relax=%s\n", tr.Method, tr.NumSteps(), dagger(float64(rel), ok, "%6.0f"))
	}
	return nil
}
