package bench

import (
	"fmt"
	"testing"

	"southwell/internal/core"
)

// BenchmarkSuiteDS measures cold Distributed Southwell runs over the quick
// suite (the three-matrix smoke configuration) — the unit of work every
// table row performs. The par variants exercise the bounded-concurrency
// driver (prefetch), the goroutines variants the rma worker-pool engine.
func BenchmarkSuiteDS(b *testing.B) {
	for _, v := range []struct {
		name       string
		par        int
		goroutines bool
	}{
		{"seq", 1, false},
		{"par4", 4, false},
		{"par4+pool", 4, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			cfg := quickCfg()
			cfg.Par = v.par
			cfg.Goroutines = v.goroutines
			jobs := suiteJobs(cfg.suiteNames(), []core.DistMethod{core.DistSWD}, []int{cfg.ranks()}, 50)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ResetCaches()
				if err := prefetch(cfg, jobs); err != nil {
					b.Fatal(err)
				}
				for _, j := range jobs {
					if _, err := runSuite(cfg, j.name, j.method, j.ranks, j.steps); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestForEachPar checks the bounded fan-out helper: every index runs
// exactly once and the lowest-index error wins.
func TestForEachPar(t *testing.T) {
	for _, par := range []int{0, 1, 3, 8, 100} {
		hits := make([]int, 37)
		if err := forEachPar(par, len(hits), func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("par=%d: index %d ran %d times", par, i, h)
			}
		}
	}
	wantErr := fmt.Errorf("boom")
	err := forEachPar(4, 10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if err.Error() != "boom at 3" {
		t.Fatalf("want lowest-index error, got %v (not %v-style)", err, wantErr)
	}
}
