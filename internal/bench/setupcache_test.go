package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"southwell/internal/core"
	"southwell/internal/dmem"
	"southwell/internal/problem"
	"southwell/internal/rma"
)

// TestSetupCacheHitIsIdentical: a second setupFor on the same cell returns
// the identical object — same *Setup, same *Layout, same shared
// factorizations — not a rebuilt copy.
func TestSetupCacheHitIsIdentical(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	s1, err := setupFor("af_5_k101", 16, 1, dmem.LocalDirect)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := setupFor("af_5_k101", 16, 1, dmem.LocalDirect)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("cache hit returned a different *Setup")
	}
	if s1.Layout != s2.Layout {
		t.Fatal("cache hit returned a different *Layout")
	}
	for p := 0; p < s1.Layout.P; p++ {
		if s1.Factor(p) == nil || s1.Factor(p) != s2.Factor(p) {
			t.Fatalf("rank %d factorization not shared", p)
		}
	}
}

// TestSetupCacheKeys: the setup key distinguishes exactly the inputs that
// change the preprocessing (matrix, ranks, seed, local solver); the run
// cache on top of it distinguishes Model and Faults the way runKey always
// has, while those runs still share a single setup.
func TestSetupCacheKeys(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	base, err := setupFor("af_5_k101", 16, 1, dmem.LocalGS)
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]setupKey{
		"ranks": {name: "af_5_k101", ranks: 8, seed: 1, local: dmem.LocalGS},
		"seed":  {name: "af_5_k101", ranks: 16, seed: 2, local: dmem.LocalGS},
		"local": {name: "af_5_k101", ranks: 16, seed: 1, local: dmem.LocalDirect},
	} {
		s, err := setupFor(other.name, other.ranks, other.seed, other.local)
		if err != nil {
			t.Fatal(err)
		}
		if s == base {
			t.Errorf("%s: differing %s mapped to the same setup", other.name, name)
		}
	}
	// Seed-matching GS and Direct setups share the layout-defining inputs
	// but not the factorizations; they still share the cached partition.
	direct, _ := setupFor("af_5_k101", 16, 1, dmem.LocalDirect)
	if base.Factor(0) != nil {
		t.Error("LocalGS setup carries factorizations")
	}
	if direct.Factor(0) == nil {
		t.Error("LocalDirect setup carries no factorizations")
	}

	// Model/Faults vary the run, not the setup: two runs differing only in
	// cost model / fault plan get distinct run-cache entries but one setup.
	cfgA := Config{Ranks: 16, Seed: 1}
	cfgB := Config{Ranks: 16, Seed: 1, Model: &rma.CostModel{Alpha: 1}}
	cfgC := Config{Ranks: 16, Seed: 1, Faults: &rma.FaultPlan{Seed: 3, Stragglers: map[int]float64{0: 2}}}
	if cfgA.keyFor("af_5_k101", core.DistSWD, 16, 5) == cfgB.keyFor("af_5_k101", core.DistSWD, 16, 5) {
		t.Error("run key does not distinguish cost models")
	}
	if cfgA.keyFor("af_5_k101", core.DistSWD, 16, 5) == cfgC.keyFor("af_5_k101", core.DistSWD, 16, 5) {
		t.Error("run key does not distinguish fault plans")
	}
	setupMu.Lock()
	before := len(sCache)
	setupMu.Unlock()
	for _, cfg := range []Config{cfgA, cfgB, cfgC} {
		if _, err := runSuite(cfg, "af_5_k101", core.DistSWD, 16, 5); err != nil {
			t.Fatal(err)
		}
	}
	setupMu.Lock()
	after := len(sCache)
	_, cellCached := sCache[setupKey{name: "af_5_k101", ranks: 16, seed: 1, local: dmem.LocalGS}]
	setupMu.Unlock()
	if !cellCached {
		t.Error("model/fault variants did not populate the shared setup for their cell")
	}
	if after != before {
		// The GS cell was cached up front (base); the three run variants
		// must all have reused it rather than building new setups.
		t.Errorf("model/fault variants grew the setup cache by %d, want 0", after-before)
	}
	runMu.Lock()
	nRuns := len(runCache)
	runMu.Unlock()
	if nRuns != 3 {
		t.Errorf("run cache holds %d entries, want 3", nRuns)
	}
}

// TestSetupSharedAcrossMethodsNoMutation: every method and both engines run
// concurrently off one LocalDirect setup; under -race this pins that no run
// writes to shared setup state, and every result stays bit-identical to a
// run that built its own setup privately.
func TestSetupSharedAcrossMethodsNoMutation(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	const name, ranks, steps = "af_5_k101", 24, 8
	methods := []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD}

	// Private baselines: fresh setup per run, sequential engine.
	baseline := map[core.DistMethod]*dmem.Result{}
	for _, m := range methods {
		ResetCaches()
		r, err := runSuite(Config{Ranks: ranks, Seed: 1, Local: dmem.LocalDirect}, name, m, ranks, steps)
		if err != nil {
			t.Fatal(err)
		}
		baseline[m] = r
	}

	ResetCaches()
	var wg sync.WaitGroup
	results := make([]*dmem.Result, 2*len(methods))
	errs := make([]error, 2*len(methods))
	for i, m := range methods {
		for j, cfg := range []Config{
			{Ranks: ranks, Seed: 1, Local: dmem.LocalDirect},
			{Ranks: ranks, Seed: 1, Local: dmem.LocalDirect, Goroutines: true, Sched: rma.SchedNeighbor},
		} {
			wg.Add(1)
			go func(slot int, m core.DistMethod, cfg Config) {
				defer wg.Done()
				// Bypass the run cache's dedup by running the world directly:
				// every goroutine must really solve, all off one shared setup.
				setup, err := setupFor(name, ranks, cfg.seed(), cfg.Local)
				if err != nil {
					errs[slot] = err
					return
				}
				b, x := problem.ZeroBSystem(setup.Layout.A, cfg.seed())
				results[slot], errs[slot] = core.SolveDistributed(setup.Layout.A, b, x, core.DistOptions{
					Method: m, Ranks: ranks, Steps: steps, Setup: setup,
					Parallel: cfg.Goroutines, Sched: cfg.Sched, Local: cfg.Local,
				})
			}(2*i+j, m, cfg)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	for i, m := range methods {
		for j := 0; j < 2; j++ {
			got := results[2*i+j]
			want := baseline[m]
			if len(got.History) != len(want.History) {
				t.Fatalf("%s engine %d: history length %d vs %d", m, j, len(got.History), len(want.History))
			}
			for s := range want.History {
				if got.History[s] != want.History[s] {
					t.Fatalf("%s engine %d: step %d differs", m, j, s)
				}
			}
			for k := range want.X {
				if got.X[k] != want.X[k] {
					t.Fatalf("%s engine %d: solution differs at %d", m, j, k)
				}
			}
		}
	}
}

// TestPrefetchLogsCacheSkips: a second prefetch over the same jobs reports
// every cell as cache-skipped in verbose output and runs nothing.
func TestPrefetchLogsCacheSkips(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	cfg := Config{Ranks: 16, Seed: 1, Par: 2}
	jobs := suiteJobs([]string{"af_5_k101"}, []core.DistMethod{core.BlockJacobi, core.DistSWD}, []int{16}, 5)
	if err := prefetch(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	cfg.LogW = &log
	if err := prefetch(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(log.String(), "cache skip"); n != len(jobs) {
		t.Errorf("verbose log reported %d cache skips, want %d:\n%s", n, len(jobs), log.String())
	}
}
