package bench

import (
	"io"

	"southwell/internal/core"
	"southwell/internal/dmem"
)

// tableMethods are the three methods of Tables 2-4, paper order.
var tableMethods = []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD}

// toTargetStats interpolates a run's cumulative metrics at the moment the
// residual first reaches Target.
type toTargetStats struct {
	ok       bool
	simTime  float64
	commCost float64
	steps    float64
	relaxN   float64
	active   float64
}

func atTarget(res *dmem.Result) toTargetStats {
	st := toTargetStats{}
	steps, ok := res.StepsToNorm(Target)
	if !ok {
		return st
	}
	st.ok = true
	st.steps = steps
	st.simTime, _ = res.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return h.SimTime })
	msgs, _ := res.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return float64(h.TotalMsgs()) })
	st.commCost = msgs / float64(res.P)
	relax, _ := res.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return float64(h.Relaxations) })
	st.relaxN = relax / float64(res.N)
	// Active fraction averaged over the steps up to the crossing.
	whole := int(steps)
	sum := 0.0
	cnt := 0
	for _, h := range res.History[1:] {
		if h.Step > whole {
			break
		}
		sum += float64(h.RelaxedRanks)
		cnt++
	}
	if cnt > 0 {
		st.active = sum / float64(cnt) / float64(res.P)
	}
	return st
}

// Table2 regenerates Table 2: for each suite matrix and each of Block
// Jacobi, Parallel Southwell, Distributed Southwell — simulated wall-clock
// time, communication cost, parallel steps, relaxations/n, and active
// processes, all linearly interpolated (on log10 ‖r‖) at the first crossing
// of ‖r‖₂ = 0.1. † marks runs that never reached the target within the
// step budget.
func Table2(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(60)
	if err := prefetch(cfg, suiteJobs(cfg.suiteNames(), tableMethods, []int{ranks}, steps)); err != nil {
		return err
	}
	fprintf(w, "# Table 2: reducing ||r||2 to %.1f with %d simulated ranks, budget %d steps\n", Target, ranks, steps)
	fprintf(w, "%-12s | %27s | %30s | %23s | %20s | %20s\n",
		"Matrix", "Wall-clock time (sim s)", "Communication cost", "Parallel steps", "Relaxations/n", "Active processes")
	fprintf(w, "%-12s | %8s %8s %9s | %9s %9s %9s | %7s %7s %7s | %6s %6s %6s | %6s %6s %6s\n",
		"", "BJ", "PS", "DS", "BJ", "PS", "DS", "BJ", "PS", "DS", "BJ", "PS", "DS", "BJ", "PS", "DS")
	for _, name := range cfg.suiteNames() {
		var st [3]toTargetStats
		for i, m := range tableMethods {
			res, err := runSuite(cfg, name, m, ranks, steps)
			if err != nil {
				return err
			}
			st[i] = atTarget(res)
		}
		fprintf(w, "%-12s | %8s %8s %9s | %9s %9s %9s | %7s %7s %7s | %6s %6s %6s | %6s %6s %6s\n",
			name,
			dagger(st[0].simTime, st[0].ok, "%8.4f"), dagger(st[1].simTime, st[1].ok, "%8.4f"), dagger(st[2].simTime, st[2].ok, "%9.4f"),
			dagger(st[0].commCost, st[0].ok, "%9.2f"), dagger(st[1].commCost, st[1].ok, "%9.2f"), dagger(st[2].commCost, st[2].ok, "%9.2f"),
			dagger(st[0].steps, st[0].ok, "%7.2f"), dagger(st[1].steps, st[1].ok, "%7.2f"), dagger(st[2].steps, st[2].ok, "%7.2f"),
			dagger(st[0].relaxN, st[0].ok, "%6.2f"), dagger(st[1].relaxN, st[1].ok, "%6.2f"), dagger(st[2].relaxN, st[2].ok, "%6.2f"),
			dagger(st[0].active, st[0].ok, "%6.3f"), dagger(st[1].active, st[1].ok, "%6.3f"), dagger(st[2].active, st[2].ok, "%6.3f"))
	}
	return nil
}

// Table3 regenerates Table 3: the communication-cost breakdown (solve
// messages vs explicit residual-update messages, each divided by the rank
// count) for Parallel Southwell and Distributed Southwell at the ‖r‖ = 0.1
// crossing. The paper's headline: "Res comm" dominates PS and is the cost
// DS removes.
func Table3(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(60)
	if err := prefetch(cfg, suiteJobs(cfg.suiteNames(), []core.DistMethod{core.ParallelSWD, core.DistSWD}, []int{ranks}, steps)); err != nil {
		return err
	}
	fprintf(w, "# Table 3: communication breakdown at ||r||2 = %.1f, %d ranks\n", Target, ranks)
	fprintf(w, "%-12s | %21s | %21s\n", "Matrix", "Solve comm", "Res comm")
	fprintf(w, "%-12s | %10s %10s | %10s %10s\n", "", "PS", "DS", "PS", "DS")
	for _, name := range cfg.suiteNames() {
		type split struct {
			ok         bool
			solve, res float64
		}
		var sp [2]split
		for i, m := range []core.DistMethod{core.ParallelSWD, core.DistSWD} {
			r, err := runSuite(cfg, name, m, ranks, steps)
			if err != nil {
				return err
			}
			if _, ok := r.StepsToNorm(Target); ok {
				sp[i].ok = true
				s, _ := r.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return float64(h.SolveMsgs) })
				e, _ := r.InterpAtNorm(Target, func(h dmem.StepStats) float64 { return float64(h.ResMsgs) })
				sp[i].solve = s / float64(ranks)
				sp[i].res = e / float64(ranks)
			}
		}
		fprintf(w, "%-12s | %10s %10s | %10s %10s\n", name,
			dagger(sp[0].solve, sp[0].ok, "%10.3f"), dagger(sp[1].solve, sp[1].ok, "%10.3f"),
			dagger(sp[0].res, sp[0].ok, "%10.3f"), dagger(sp[1].res, sp[1].ok, "%10.3f"))
	}
	return nil
}

// Table4 regenerates Table 4: mean per-parallel-step simulated wall-clock
// time and communication cost over a fixed 50-step run, for BJ, PS, DS.
// Expected shape: BJ > PS > DS per step.
func Table4(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	ranks := cfg.ranks()
	steps := cfg.stepsOr(50)
	if err := prefetch(cfg, suiteJobs(cfg.suiteNames(), tableMethods, []int{ranks}, steps)); err != nil {
		return err
	}
	fprintf(w, "# Table 4: per-parallel-step means over %d steps, %d ranks\n", steps, ranks)
	fprintf(w, "%-12s | %29s | %27s\n", "Matrix", "Wall-clock time (sim s)", "Communication cost")
	fprintf(w, "%-12s | %9s %9s %9s | %8s %8s %8s\n", "", "BJ", "PS", "DS", "BJ", "PS", "DS")
	for _, name := range cfg.suiteNames() {
		var times, comms [3]float64
		for i, m := range tableMethods {
			res, err := runSuite(cfg, name, m, ranks, steps)
			if err != nil {
				return err
			}
			fin := res.Final()
			nsteps := float64(fin.Step)
			times[i] = fin.SimTime / nsteps
			comms[i] = float64(fin.TotalMsgs()) / float64(ranks) / nsteps
		}
		fprintf(w, "%-12s | %9.6f %9.6f %9.6f | %8.3f %8.3f %8.3f\n",
			name, times[0], times[1], times[2], comms[0], comms[1], comms[2])
	}
	return nil
}
