package bench

import (
	"io"

	"southwell/internal/multigrid"
	"southwell/internal/problem"
)

// Fig6 regenerates Figure 6: relative residual norm after 9 V-cycles of
// multigrid on the 2D Poisson equation, for grid dimensions 15..255, with
// Gauss-Seidel (1 sweep) vs Distributed Southwell (1/2 sweep and 1 sweep)
// smoothing. The expected shape: all three curves are flat (grid-size
// independent) and Distributed Southwell is at least as effective per
// relaxation as Gauss-Seidel.
func Fig6(w io.Writer, cfg Config) error {
	defer cfg.pushKernelWorkers()()
	grids := []int{15, 31, 63, 127, 255}
	if cfg.Quick {
		grids = []int{15, 31, 63}
	}
	smoothers := []multigrid.Smoother{
		multigrid.GaussSeidel{},
		multigrid.DistSW{SweepFraction: 0.5, Seed: cfg.seed()},
		multigrid.DistSW{SweepFraction: 1, Seed: cfg.seed()},
	}
	fprintf(w, "# Figure 6: rel. residual norm after 9 V-cycles, 2D Poisson\n")
	fprintf(w, "%-8s", "grid")
	for _, s := range smoothers {
		fprintf(w, " %18s", s.Name())
	}
	fprintf(w, "\n")
	for _, nx := range grids {
		fprintf(w, "%-8d", nx)
		for _, s := range smoothers {
			h, err := multigrid.New(nx, s)
			if err != nil {
				return err
			}
			n := nx * nx
			b := problem.RandomVec(n, cfg.seed())
			x := make([]float64, n)
			hist := h.Solve(b, x, 9)
			fprintf(w, " %18.3e", hist[len(hist)-1])
		}
		fprintf(w, "\n")
	}
	return nil
}
