package sparse

import (
	"fmt"
	"math"
)

// Scale symmetrically scales the matrix in place so that it has a unit
// diagonal: A <- D^{-1/2} A D^{-1/2} with D = diag(A). This is the scaling
// used throughout the paper (§2.2, §4.2); under it the Gauss-Southwell rule
// |r_i / a_ii| coincides with the Southwell rule |r_i|.
//
// It returns the scaling vector s with s_i = 1/sqrt(a_ii), so that a system
// A x = b becomes (SAS)(S^{-1}x) = S b. An error is returned if any
// diagonal entry is missing or non-positive (the paper's matrices are SPD).
func Scale(a *CSR) (s []float64, err error) {
	s = make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		d := a.At(i, i)
		if d <= 0 {
			return nil, fmt.Errorf("sparse: Scale: diagonal entry %d is %g, want positive", i, d)
		}
		s[i] = 1 / math.Sqrt(d)
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			a.Val[k] *= s[i] * s[a.Col[k]]
		}
	}
	return s, nil
}

// ScaleVec applies the right-hand-side scaling b <- S b in place, where s is
// the vector returned by Scale.
func ScaleVec(b, s []float64) {
	for i := range b {
		b[i] *= s[i]
	}
}

// UnscaleSolution recovers the solution of the original system from the
// solution y of the scaled system: x = S y, in place.
func UnscaleSolution(y, s []float64) {
	for i := range y {
		y[i] *= s[i]
	}
}
