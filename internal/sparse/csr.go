// Package sparse provides compressed sparse row (CSR) matrices, coordinate
// (COO) builders, Matrix Market I/O, and the small set of sparse linear
// algebra kernels needed by the Southwell family of iterative methods:
// sparse matrix-vector products, residual evaluation, symmetric diagonal
// scaling, and graph views of the nonzero structure.
//
// All matrices in this repository are square and, for the iterative methods
// of the paper, symmetric positive definite with unit diagonal after
// scaling (see Scale). CSR stores explicit zeros if they are inserted;
// builders never insert them.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a square sparse matrix in compressed sparse row format.
// Row i occupies Col[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]],
// with column indices strictly increasing within a row.
type CSR struct {
	N      int       // matrix dimension (rows == cols)
	RowPtr []int     // length N+1
	Col    []int     // length nnz
	Val    []float64 // length nnz
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Col) }

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		RowPtr: make([]int, len(a.RowPtr)),
		Col:    make([]int, len(a.Col)),
		Val:    make([]float64, len(a.Val)),
	}
	copy(b.RowPtr, a.RowPtr)
	copy(b.Col, a.Col)
	copy(b.Val, a.Val)
	return b
}

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage. The caller must not modify the column indices.
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// At returns the entry (i, j), or zero if it is not stored.
// It runs in O(log nnz(row i)) time.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Diag returns a copy of the diagonal of the matrix.
func (a *CSR) Diag() []float64 {
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// MulVec computes y = A*x. y must have length N and may not alias x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: n=%d len(x)=%d len(y)=%d", a.N, len(x), len(y)))
	}
	for i := 0; i < a.N; i++ {
		sum := 0.0
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		y[i] = sum
	}
}

// Residual computes r = b - A*x into r (length N).
func (a *CSR) Residual(b, x, r []float64) {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// Transpose returns the transpose of the matrix.
func (a *CSR) Transpose() *CSR {
	n := a.N
	cnt := make([]int, n+1)
	for _, j := range a.Col {
		cnt[j+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	t := &CSR{
		N:      n,
		RowPtr: cnt,
		Col:    make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	next := make([]int, n)
	copy(next, t.RowPtr[:n])
	for i := 0; i < n; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := a.Col[k]
			p := next[j]
			next[j]++
			t.Col[p] = i
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// IsStructurallySymmetric reports whether the nonzero pattern is symmetric.
func (a *CSR) IsStructurallySymmetric() bool {
	t := a.Transpose()
	for i := range a.Col {
		if a.Col[i] != t.Col[i] {
			return false
		}
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether the matrix is numerically symmetric to within
// absolute tolerance tol on every entry.
func (a *CSR) IsSymmetric(tol float64) bool {
	t := a.Transpose()
	if len(t.Col) != len(a.Col) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != t.Col[k] || math.Abs(a.Val[k]-t.Val[k]) > tol {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of the CSR format: monotone row
// pointers, in-range and strictly increasing column indices, and finite
// values. It returns a descriptive error for the first violation found.
func (a *CSR) Validate() error {
	if a.N < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 {
		return errors.New("sparse: RowPtr[0] != 0")
	}
	if a.RowPtr[a.N] != len(a.Col) || len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: nnz mismatch: RowPtr[N]=%d len(Col)=%d len(Val)=%d", a.RowPtr[a.N], len(a.Col), len(a.Val))
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if hi < lo {
			return fmt.Errorf("sparse: row %d has negative length", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := a.Col[k]
			if j < 0 || j >= a.N {
				return fmt.Errorf("sparse: row %d: column %d out of range", i, j)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d: columns not strictly increasing at position %d", i, k)
			}
			prev = j
			if math.IsNaN(a.Val[k]) || math.IsInf(a.Val[k], 0) {
				return fmt.Errorf("sparse: row %d col %d: non-finite value", i, j)
			}
		}
	}
	return nil
}

// Neighbors returns the off-diagonal column indices of row i, i.e. the
// neighborhood N_i of the paper, as a freshly allocated slice.
func (a *CSR) Neighbors(i int) []int {
	cols, _ := a.Row(i)
	out := make([]int, 0, len(cols))
	for _, j := range cols {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// MaxDegree returns the maximum number of off-diagonal entries in any row.
func (a *CSR) MaxDegree() int {
	maxd := 0
	for i := 0; i < a.N; i++ {
		d := 0
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j != i {
				d++
			}
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Bandwidth returns the maximum |i-j| over stored entries.
func (a *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
