// Package sparse provides compressed sparse row (CSR) matrices, coordinate
// (COO) builders, Matrix Market I/O, and the small set of sparse linear
// algebra kernels needed by the Southwell family of iterative methods:
// sparse matrix-vector products, residual evaluation, symmetric diagonal
// scaling, and graph views of the nonzero structure.
//
// All matrices in this repository are square and, for the iterative methods
// of the paper, symmetric positive definite with unit diagonal after
// scaling (see Scale). CSR stores explicit zeros if they are inserted;
// builders never insert them.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"southwell/internal/parallel"
)

// CSR is a square sparse matrix in compressed sparse row format.
// Row i occupies Col[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]],
// with column indices strictly increasing within a row.
type CSR struct {
	N      int       // matrix dimension (rows == cols)
	RowPtr []int     // length N+1
	Col    []int     // length nnz
	Val    []float64 // length nnz
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Col) }

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		RowPtr: make([]int, len(a.RowPtr)),
		Col:    make([]int, len(a.Col)),
		Val:    make([]float64, len(a.Val)),
	}
	copy(b.RowPtr, a.RowPtr)
	copy(b.Col, a.Col)
	copy(b.Val, a.Val)
	return b
}

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage. The caller must not modify the column indices.
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// At returns the entry (i, j), or zero if it is not stored.
// It runs in O(log nnz(row i)) time.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Diag returns a copy of the diagonal of the matrix. Columns within a row
// are sorted, so a linear scan that stops at the first column >= i visits
// only the sub-diagonal entries of each row — no per-row binary search.
func (a *CSR) Diag() []float64 {
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j >= i {
				if j == i {
					d[i] = a.Val[k]
				}
				break
			}
		}
	}
	return d
}

// Transpose returns the transpose of the matrix, built by a per-shard
// counting sort over NNZ-balanced source-row ranges: each shard counts its
// entries per target row, a sequential pass lays out per-(target row,
// shard) base offsets, and the shards scatter in parallel. Offsets are
// ordered by shard and shards are contiguous source ranges, so entries of a
// target row land in ascending source-row order — exactly the layout of the
// sequential algorithm — for any worker count.
func (a *CSR) Transpose() *CSR {
	n := a.N
	nnz := a.NNZ()
	ns := parallel.Blocks(nnz, convShardGrain, maxConvShards)
	t := &CSR{
		N:      n,
		RowPtr: make([]int, n+1),
		Col:    make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	shards := parallel.SplitNNZ(a.RowPtr, ns, make([]parallel.Range, 0, ns))
	cnt := make([]int, ns*n)
	runBlocks(ns, func(s int) {
		c := cnt[s*n : (s+1)*n]
		rg := shards[s]
		for k := a.RowPtr[rg.Lo]; k < a.RowPtr[rg.Hi]; k++ {
			c[a.Col[k]]++
		}
	})
	pos := 0
	for j := 0; j < n; j++ {
		t.RowPtr[j] = pos
		for s := 0; s < ns; s++ {
			v := cnt[s*n+j]
			cnt[s*n+j] = pos
			pos += v
		}
	}
	t.RowPtr[n] = pos
	runBlocks(ns, func(s int) {
		off := cnt[s*n : (s+1)*n]
		rg := shards[s]
		for i := rg.Lo; i < rg.Hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.Col[k]
				p := off[j]
				off[j] = p + 1
				t.Col[p] = i
				t.Val[p] = a.Val[k]
			}
		}
	})
	return t
}

// IsStructurallySymmetric reports whether the nonzero pattern is symmetric.
func (a *CSR) IsStructurallySymmetric() bool {
	t := a.Transpose()
	for i := range a.Col {
		if a.Col[i] != t.Col[i] {
			return false
		}
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether the matrix is numerically symmetric to within
// absolute tolerance tol on every entry.
func (a *CSR) IsSymmetric(tol float64) bool {
	t := a.Transpose()
	if len(t.Col) != len(a.Col) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != t.Col[k] || math.Abs(a.Val[k]-t.Val[k]) > tol {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of the CSR format: monotone row
// pointers, in-range and strictly increasing column indices, and finite
// values. It returns a descriptive error for the first violation found.
func (a *CSR) Validate() error {
	if a.N < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 {
		return errors.New("sparse: RowPtr[0] != 0")
	}
	if a.RowPtr[a.N] != len(a.Col) || len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: nnz mismatch: RowPtr[N]=%d len(Col)=%d len(Val)=%d", a.RowPtr[a.N], len(a.Col), len(a.Val))
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if hi < lo {
			return fmt.Errorf("sparse: row %d has negative length", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := a.Col[k]
			if j < 0 || j >= a.N {
				return fmt.Errorf("sparse: row %d: column %d out of range", i, j)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d: columns not strictly increasing at position %d", i, k)
			}
			prev = j
			if math.IsNaN(a.Val[k]) || math.IsInf(a.Val[k], 0) {
				return fmt.Errorf("sparse: row %d col %d: non-finite value", i, j)
			}
		}
	}
	return nil
}

// Neighbors returns the off-diagonal column indices of row i, i.e. the
// neighborhood N_i of the paper, as a freshly allocated slice.
func (a *CSR) Neighbors(i int) []int {
	cols, _ := a.Row(i)
	out := make([]int, 0, len(cols))
	for _, j := range cols {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// MaxDegree returns the maximum number of off-diagonal entries in any row.
func (a *CSR) MaxDegree() int {
	maxd := 0
	for i := 0; i < a.N; i++ {
		d := 0
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j != i {
				d++
			}
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Bandwidth returns the maximum |i-j| over stored entries.
func (a *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
