package sparse

import (
	"fmt"
	"math"
	"sync"

	"southwell/internal/parallel"
)

// Block-decomposition policy for the parallel kernels. All three constants
// are pure functions of the workload, never of the worker count — see the
// determinism contract in package parallel. mulGrainNNZ sizes SpMV/residual
// blocks by nonzeros (outputs are elementwise, so any split is bit-exact);
// normGrainLen sizes reduction blocks by vector length, and is shared by
// SumSquares, Norm2, and ResidualNorm2 so the fused kernel's partial-sum
// grouping matches Norm2's exactly.
const (
	mulGrainNNZ   = 32768
	normGrainLen  = 16384
	maxKernBlocks = 64

	// Format conversions (COO.ToCSR, CSR.Transpose) shard by entry count.
	// Each shard carries an n-sized counter array, so the shard cap is much
	// lower than the kernel block cap.
	convShardGrain = 65536
	maxConvShards  = 8

	// Per-row cleanup passes in ToCSR block by row count.
	rowBlockGrain = 8192
)

// kernScratch owns the reusable state of one in-flight kernel invocation:
// the block ranges, the per-block partial sums, and parallel.Tasks whose
// closures are bound once at construction. Scratches are recycled through a
// free list, so steady-state kernel calls allocate nothing.
type kernScratch struct {
	a          *CSR
	x, y, b, r []float64 // MulVec / Residual / ResidualNorm2 operands
	v          []float64 // SumSquares operand

	ranges  []parallel.Range
	partial []float64

	mulTask   parallel.Task
	residTask parallel.Task
	rnormTask parallel.Task
	sumsqTask parallel.Task
}

// newKernScratch allocates a scratch and binds its task closures once.
//
//dslint:ignore hotalloc cold path: runs only when the free list is empty; the scratch and its closures are recycled via kernFree
func newKernScratch() *kernScratch {
	s := &kernScratch{}
	s.mulTask.F = func(b int) {
		rg := s.ranges[b]
		mulRange(s.a, s.x, s.y, rg.Lo, rg.Hi)
	}
	s.residTask.F = func(b int) {
		rg := s.ranges[b]
		residRange(s.a, s.b, s.x, s.r, rg.Lo, rg.Hi)
	}
	s.rnormTask.F = func(b int) {
		rg := s.ranges[b]
		s.partial[b] = residSumSqRange(s.a, s.b, s.x, s.r, rg.Lo, rg.Hi)
	}
	s.sumsqTask.F = func(b int) {
		rg := s.ranges[b]
		s.partial[b] = sumSqRange(s.v, rg.Lo, rg.Hi)
	}
	return s
}

// kernFree recycles scratches. A plain mutex-guarded free list rather than
// sync.Pool: the GC may empty a sync.Pool at any time, which would make the
// allocs/op regression gate (BENCH_kernels.json) flaky instead of exact.
// The list's length is bounded by the peak number of concurrent kernel
// calls, which is small.
var kernFree struct {
	mu   sync.Mutex
	list []*kernScratch
}

func getKern() *kernScratch {
	kernFree.mu.Lock()
	var s *kernScratch
	if n := len(kernFree.list); n > 0 {
		s = kernFree.list[n-1]
		kernFree.list[n-1] = nil
		kernFree.list = kernFree.list[:n-1]
	}
	kernFree.mu.Unlock()
	if s == nil {
		s = newKernScratch()
	}
	return s
}

func putKern(s *kernScratch) {
	s.a, s.x, s.y, s.b, s.r, s.v = nil, nil, nil, nil, nil, nil
	kernFree.mu.Lock()
	kernFree.list = append(kernFree.list, s) //dslint:ignore hotalloc free-list push, bounded by peak concurrent kernel calls
	kernFree.mu.Unlock()
}

// growPartial returns p with length nb, reusing its storage when possible.
func growPartial(p []float64, nb int) []float64 {
	if cap(p) < nb {
		return make([]float64, nb) //dslint:ignore hotalloc one-time growth to the block cap; storage is reused across calls
	}
	return p[:nb]
}

// runBlocks executes f over nb blocks on the shared pool with a throwaway
// task. For setup-path parallelism (format conversion, assembly) where a
// per-call closure allocation is irrelevant; steady-state kernels use the
// pre-bound tasks in kernScratch instead.
func runBlocks(nb int, f func(b int)) {
	var t parallel.Task
	t.F = f
	parallel.Default().Run(&t, nb)
}

// mulRange computes y[i] = (A x)_i for i in [lo, hi).
func mulRange(a *CSR, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		y[i] = sum
	}
}

// residRange computes r[i] = b[i] - (A x)_i for i in [lo, hi) in one pass.
// The row product accumulates first and is subtracted once, so the result
// is bit-identical to MulVec followed by an elementwise subtraction (e.g.
// a consistent system built via MulVec yields an exactly-zero residual).
func residRange(a *CSR, b, x, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		r[i] = b[i] - sum
	}
}

// residSumSqRange is residRange fused with the block's partial Σ r_i²,
// accumulated in ascending i — the same order sumSqRange uses, so the fused
// kernel's partials equal Norm2's partials bit for bit.
func residSumSqRange(a *CSR, b, x, r []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		ri := b[i] - sum
		r[i] = ri
		s += ri * ri
	}
	return s
}

// sumSqRange returns Σ x_i² over [lo, hi) in ascending order.
func sumSqRange(x []float64, lo, hi int) float64 {
	s := 0.0
	for _, v := range x[lo:hi] {
		s += v * v
	}
	return s
}

// MulVec computes y = A*x. y must have length N and may not alias x.
// Rows are processed in NNZ-balanced blocks on the shared kernel pool; the
// output is elementwise, so the result is bit-identical for any worker
// count. Steady-state calls allocate nothing.
//
//dslint:hotpath
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: n=%d len(x)=%d len(y)=%d", a.N, len(x), len(y)))
	}
	p := parallel.Default()
	nb := parallel.Blocks(a.NNZ(), mulGrainNNZ, maxKernBlocks)
	if p.Workers() <= 1 || nb <= 1 {
		mulRange(a, x, y, 0, a.N)
		return
	}
	s := getKern()
	s.a, s.x, s.y = a, x, y
	s.ranges = parallel.SplitNNZ(a.RowPtr, nb, s.ranges[:0])
	p.Run(&s.mulTask, nb)
	putKern(s)
}

// Residual computes r = b - A*x into r (length N) in a single fused pass
// over the matrix. Like MulVec, the result is elementwise and bit-identical
// for any worker count, with zero steady-state allocations.
//
//dslint:hotpath
func (a *CSR) Residual(b, x, r []float64) {
	if len(b) != a.N || len(x) != a.N || len(r) != a.N {
		panic(fmt.Sprintf("sparse: Residual dimension mismatch: n=%d len(b)=%d len(x)=%d len(r)=%d", a.N, len(b), len(x), len(r)))
	}
	p := parallel.Default()
	nb := parallel.Blocks(a.NNZ(), mulGrainNNZ, maxKernBlocks)
	if p.Workers() <= 1 || nb <= 1 {
		residRange(a, b, x, r, 0, a.N)
		return
	}
	s := getKern()
	s.a, s.b, s.x, s.r = a, b, x, r
	s.ranges = parallel.SplitNNZ(a.RowPtr, nb, s.ranges[:0])
	p.Run(&s.residTask, nb)
	putKern(s)
}

// ResidualNorm2 computes r = b - A*x and returns ‖r‖₂ in one pass over the
// matrix — the fused kernel every solver's convergence check wants, saving
// a second sweep of r. The norm is reduced over length-balanced blocks
// (fixed count, a function of N only) with per-block partials combined in
// ascending block order, so the result equals Norm2(r) after Residual
// exactly, and is bit-identical for any worker count including 1.
// Steady-state calls allocate nothing.
//
//dslint:hotpath
func (a *CSR) ResidualNorm2(b, x, r []float64) float64 {
	if len(b) != a.N || len(x) != a.N || len(r) != a.N {
		panic(fmt.Sprintf("sparse: ResidualNorm2 dimension mismatch: n=%d len(b)=%d len(x)=%d len(r)=%d", a.N, len(b), len(x), len(r)))
	}
	nb := parallel.Blocks(a.N, normGrainLen, maxKernBlocks)
	if nb <= 1 {
		return math.Sqrt(residSumSqRange(a, b, x, r, 0, a.N))
	}
	// The blocked path runs whenever nb > 1 — even on a width-1 pool, where
	// Run executes the blocks inline — so the partial-sum grouping depends
	// only on N, never on the worker count.
	s := getKern()
	s.a, s.b, s.x, s.r = a, b, x, r
	s.ranges = parallel.SplitN(a.N, nb, s.ranges[:0])
	s.partial = growPartial(s.partial, nb)
	parallel.Default().Run(&s.rnormTask, nb)
	sum := 0.0
	for _, v := range s.partial[:nb] {
		sum += v
	}
	putKern(s)
	return math.Sqrt(sum)
}

// SumSquares returns Σ x_i², reduced over the same fixed, length-keyed
// block decomposition as ResidualNorm2 with partials combined in block
// order: bit-identical for any worker count, and exactly the value
// ResidualNorm2 squares. Steady-state calls allocate nothing.
//
//dslint:hotpath
func SumSquares(x []float64) float64 {
	nb := parallel.Blocks(len(x), normGrainLen, maxKernBlocks)
	if nb <= 1 {
		return sumSqRange(x, 0, len(x))
	}
	s := getKern()
	s.v = x
	s.ranges = parallel.SplitN(len(x), nb, s.ranges[:0])
	s.partial = growPartial(s.partial, nb)
	parallel.Default().Run(&s.sumsqTask, nb)
	sum := 0.0
	for _, v := range s.partial[:nb] {
		sum += v
	}
	putKern(s)
	return sum
}
