// Property tests for the parallel kernel layer: every kernel must be
// bit-identical to its one-worker result for worker counts {1, 2, 4, 7},
// and the fused ResidualNorm2 must equal Residual followed by Norm2
// exactly. External test package so FEM matrices from internal/problem can
// be used without an import cycle.
package sparse_test

import (
	"math"
	"math/rand"
	"testing"

	"southwell/internal/parallel"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

var kernelWidths = []int{1, 2, 4, 7}

// withWorkers runs f with the shared pool at each width in kernelWidths,
// restoring the original width afterwards.
func withWorkers(t *testing.T, f func(t *testing.T, w int)) {
	t.Helper()
	orig := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(orig)
	for _, w := range kernelWidths {
		parallel.SetDefaultWorkers(w)
		f(t, w)
	}
}

// testMatrices returns the named matrix set of the issue: random (with
// duplicate and zero insertions), tridiagonal (large enough to exercise
// multi-block reductions), and FEM.
func testMatrices(tb testing.TB) map[string]*sparse.CSR {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))

	tri := sparse.NewCOO(50000, 3*50000)
	for i := 0; i < tri.N; i++ {
		tri.Add(i, i, 2)
		if i > 0 {
			tri.Add(i, i-1, -1)
		}
		if i < tri.N-1 {
			tri.Add(i, i+1, -1)
		}
	}

	rnd := sparse.NewCOO(3000, 12*3000)
	for i := 0; i < rnd.N; i++ {
		rnd.Add(i, i, 4+rng.Float64())
		for e := 0; e < 8; e++ {
			j := rng.Intn(rnd.N)
			rnd.Add(i, j, rng.NormFloat64())
		}
		// Duplicates and explicit zeros, to exercise insertion-order
		// summation and the zero-drop rule.
		rnd.Add(i, rng.Intn(rnd.N), 0)
		j := rng.Intn(rnd.N)
		v := rng.NormFloat64()
		rnd.Add(i, j, v)
		rnd.Add(i, j, -v) // sums to exactly zero: dropped unless diagonal
	}

	return map[string]*sparse.CSR{
		"tridiag50k": tri.ToCSR(),
		"random3k":   rnd.ToCSR(),
		"fem150":     problem.FEM2D(150, 0.35, 7),
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// refMulVecDense is an order-independent correctness reference (compared
// with tolerance, not bitwise).
func refMulVec(a *sparse.CSR, x []float64) []float64 {
	y := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
	}
	return y
}

func TestKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	mats := testMatrices(t)
	rng := rand.New(rand.NewSource(99))
	for name, a := range mats {
		x := randVec(rng, a.N)
		b := randVec(rng, a.N)

		// References at one worker.
		parallel.SetDefaultWorkers(1)
		refY := make([]float64, a.N)
		a.MulVec(x, refY)
		refR := make([]float64, a.N)
		a.Residual(b, x, refR)
		refRN := make([]float64, a.N)
		refNorm := a.ResidualNorm2(b, x, refRN)
		refSS := sparse.SumSquares(refR)

		withWorkers(t, func(t *testing.T, w int) {
			y := make([]float64, a.N)
			a.MulVec(x, y)
			r := make([]float64, a.N)
			a.Residual(b, x, r)
			rn := make([]float64, a.N)
			norm := a.ResidualNorm2(b, x, rn)
			ss := sparse.SumSquares(r)
			for i := range y {
				if y[i] != refY[i] {
					t.Fatalf("%s width %d: MulVec[%d] = %x, want %x", name, w, i, y[i], refY[i])
				}
				if r[i] != refR[i] {
					t.Fatalf("%s width %d: Residual[%d] = %x, want %x", name, w, i, r[i], refR[i])
				}
				if rn[i] != refRN[i] {
					t.Fatalf("%s width %d: ResidualNorm2 r[%d] = %x, want %x", name, w, i, rn[i], refRN[i])
				}
			}
			if norm != refNorm {
				t.Fatalf("%s width %d: ResidualNorm2 = %x, want %x", name, w, norm, refNorm)
			}
			if ss != refSS {
				t.Fatalf("%s width %d: SumSquares = %x, want %x", name, w, ss, refSS)
			}
		})
	}
}

func TestFusedResidualNormExact(t *testing.T) {
	mats := testMatrices(t)
	rng := rand.New(rand.NewSource(3))
	withWorkers(t, func(t *testing.T, w int) {
		for name, a := range mats {
			x := randVec(rng, a.N)
			b := randVec(rng, a.N)
			r1 := make([]float64, a.N)
			a.Residual(b, x, r1)
			want := sparse.Norm2(r1)
			r2 := make([]float64, a.N)
			got := a.ResidualNorm2(b, x, r2)
			if got != want {
				t.Errorf("%s width %d: ResidualNorm2 = %x, Residual+Norm2 = %x", name, w, got, want)
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("%s width %d: r[%d] differs: %x vs %x", name, w, i, r1[i], r2[i])
				}
			}
		}
	})
}

func TestKernelsCorrectness(t *testing.T) {
	mats := testMatrices(t)
	rng := rand.New(rand.NewSource(5))
	for name, a := range mats {
		x := randVec(rng, a.N)
		b := randVec(rng, a.N)
		want := refMulVec(a, x)
		y := make([]float64, a.N)
		a.MulVec(x, y)
		r := make([]float64, a.N)
		norm := a.ResidualNorm2(b, x, r)
		nsq := 0.0
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: MulVec[%d] = %g, want %g", name, i, y[i], want[i])
			}
			d := b[i] - want[i]
			if math.Abs(r[i]-d) > 1e-9*(1+math.Abs(d)) {
				t.Fatalf("%s: Residual[%d] = %g, want %g", name, i, r[i], d)
			}
			nsq += d * d
		}
		if math.Abs(norm-math.Sqrt(nsq)) > 1e-9*(1+math.Sqrt(nsq)) {
			t.Errorf("%s: ResidualNorm2 = %g, want %g", name, norm, math.Sqrt(nsq))
		}
	}
}

// refToCSR accumulates duplicates per (row, col) in insertion order — the
// documented ToCSR semantics — then applies the zero-drop rule. Compared
// bitwise.
func refToCSR(c *sparse.COO) *sparse.CSR {
	type ent struct {
		col int
		val float64
	}
	rows := make([][]ent, c.N)
	for e := range c.Rows {
		i, j, v := c.Rows[e], c.Cols[e], c.Vals[e]
		found := false
		for k := range rows[i] {
			if rows[i][k].col == j {
				rows[i][k].val += v
				found = true
				break
			}
		}
		if !found {
			rows[i] = append(rows[i], ent{j, v})
		}
	}
	a := &sparse.CSR{N: c.N, RowPtr: make([]int, c.N+1)}
	for i, row := range rows {
		// insertion sort by column
		for p := 1; p < len(row); p++ {
			e := row[p]
			q := p - 1
			for q >= 0 && row[q].col > e.col {
				row[q+1] = row[q]
				q--
			}
			row[q+1] = e
		}
		for _, e := range row {
			if e.val != 0 || e.col == i {
				a.Col = append(a.Col, e.col)
				a.Val = append(a.Val, e.val)
			}
		}
		a.RowPtr[i+1] = len(a.Col)
	}
	return a
}

func csrEqualExact(t *testing.T, name string, got, want *sparse.CSR) {
	t.Helper()
	if got.N != want.N || len(got.Col) != len(want.Col) {
		t.Fatalf("%s: shape mismatch: n=%d nnz=%d, want n=%d nnz=%d", name, got.N, len(got.Col), want.N, len(want.Col))
	}
	for i := range got.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("%s: RowPtr[%d] = %d, want %d", name, i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for k := range got.Col {
		if got.Col[k] != want.Col[k] || got.Val[k] != want.Val[k] {
			t.Fatalf("%s: entry %d = (%d, %x), want (%d, %x)", name, k, got.Col[k], got.Val[k], want.Col[k], want.Val[k])
		}
	}
}

// randomCOO builds a builder with duplicates, zeros, and cancelling pairs.
func randomCOO(rng *rand.Rand, n, epr int) *sparse.COO {
	c := sparse.NewCOO(n, epr*n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1+rng.Float64())
		for e := 0; e < epr; e++ {
			j := rng.Intn(n)
			v := rng.NormFloat64()
			c.Add(i, j, v)
			switch rng.Intn(4) {
			case 0:
				c.Add(i, j, rng.NormFloat64()) // duplicate
			case 1:
				c.Add(i, j, -v) // cancels to exactly zero
			case 2:
				c.Add(i, rng.Intn(n), 0) // explicit zero
			}
		}
	}
	return c
}

func TestToCSRMatchesReferenceAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	small := randomCOO(rng, 200, 6)
	big := randomCOO(rng, 20000, 10) // > convShardGrain entries: multi-shard
	for name, c := range map[string]*sparse.COO{"small": small, "big": big} {
		want := refToCSR(c)
		withWorkers(t, func(t *testing.T, w int) {
			got := c.ToCSR()
			if err := got.Validate(); err != nil {
				t.Fatalf("%s width %d: invalid CSR: %v", name, w, err)
			}
			csrEqualExact(t, name, got, want)
		})
	}
}

// refTranspose is the sequential counting-sort transpose the parallel
// version must reproduce exactly.
func refTranspose(a *sparse.CSR) *sparse.CSR {
	n := a.N
	t := &sparse.CSR{
		N:      n,
		RowPtr: make([]int, n+1),
		Col:    make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, j := range a.Col {
		t.RowPtr[j+1]++
	}
	for i := 0; i < n; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, n)
	copy(next, t.RowPtr[:n])
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			t.Col[next[j]] = i
			t.Val[next[j]] = a.Val[k]
			next[j]++
		}
	}
	return t
}

func TestTransposeMatchesReferenceAcrossWorkers(t *testing.T) {
	for name, a := range testMatrices(t) {
		want := refTranspose(a)
		withWorkers(t, func(t *testing.T, w int) {
			got := a.Transpose()
			if err := got.Validate(); err != nil {
				t.Fatalf("%s width %d: invalid transpose: %v", name, w, err)
			}
			csrEqualExact(t, name, got, want)
		})
	}
}

func TestDiagLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, a := range testMatrices(t) {
		d := a.Diag()
		for i := 0; i < a.N; i++ {
			if want := a.At(i, i); d[i] != want {
				t.Fatalf("%s: Diag[%d] = %g, want %g", name, i, d[i], want)
			}
		}
		_ = rng
	}
	// A matrix with missing diagonal entries.
	c := sparse.NewCOO(5, 8)
	c.Add(0, 1, 1)
	c.Add(1, 1, 3)
	c.Add(2, 4, 2)
	c.Add(4, 0, 1)
	a := c.ToCSR()
	want := []float64{0, 3, 0, 0, 0}
	for i, v := range a.Diag() {
		if v != want[i] {
			t.Fatalf("Diag[%d] = %g, want %g", i, v, want[i])
		}
	}
}
