package sparse

import "math"

// Norm2 returns the Euclidean norm of x, reduced over the fixed block
// decomposition of SumSquares so the value is bit-identical for any worker
// count and exactly equals what CSR.ResidualNorm2 reports for the same
// vector.
func Norm2(x []float64) float64 {
	// Two-pass scaling is unnecessary here: all residuals in this code are
	// normalized to ‖r⁰‖=1, far from overflow.
	return math.Sqrt(SumSquares(x))
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ScaleBy multiplies x by alpha in place.
func ScaleBy(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// NormalizeResidual scales x (when b is zero) or b (when x is zero) in place
// so that the initial residual r = b - A x has unit 2-norm, exactly as the
// paper's driver does (§4.2, artifact appendix). It returns the norm it
// divided by. If the initial residual is exactly zero it returns 0 and
// leaves the vectors untouched.
func NormalizeResidual(a *CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	nrm := a.ResidualNorm2(b, x, r)
	if nrm == 0 {
		return 0
	}
	inv := 1 / nrm
	for i := range x {
		x[i] *= inv
	}
	for i := range b {
		b[i] *= inv
	}
	return nrm
}
