package sparse_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"southwell/internal/parallel"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

// benchMat lazily builds the 100k-row FEM matrix of the acceptance
// criteria (m=318 gives (m-1)² = 100489 interior nodes) plus operand
// vectors, shared across sub-benchmarks.
var benchMat struct {
	once       sync.Once
	a          *sparse.CSR
	x, y, b, r []float64
}

func benchSystem() (*sparse.CSR, []float64, []float64, []float64, []float64) {
	benchMat.once.Do(func() {
		a := problem.FEM2D(318, 0.35, 1)
		benchMat.a = a
		benchMat.x = make([]float64, a.N)
		benchMat.y = make([]float64, a.N)
		benchMat.b = make([]float64, a.N)
		benchMat.r = make([]float64, a.N)
		for i := 0; i < a.N; i++ {
			benchMat.x[i] = float64(i%97) / 97
			benchMat.b[i] = float64(i%31) / 31
		}
	})
	return benchMat.a, benchMat.x, benchMat.y, benchMat.b, benchMat.r
}

// BenchmarkKernels measures the steady-state numerical kernels on the
// 100k-row FEM matrix at one worker and at GOMAXPROCS workers. allocs_op
// is the machine-independent regression gate (BENCH_kernels.json); ns_op
// demonstrates the multi-core win.
func BenchmarkKernels(b *testing.B) {
	a, x, y, rhs, r := benchSystem()
	orig := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(orig)

	widths := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		widths = append(widths, g)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			parallel.SetDefaultWorkers(w)
			kernels := []struct {
				name string
				f    func()
			}{
				{"MulVec", func() { a.MulVec(x, y) }},
				{"Residual", func() { a.Residual(rhs, x, r) }},
				{"ResidualNorm2", func() { _ = a.ResidualNorm2(rhs, x, r) }},
				{"Norm2", func() { _ = sparse.Norm2(r) }},
			}
			for _, k := range kernels {
				b.Run(k.name, func(b *testing.B) {
					k.f() // warm the scratch free list
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						k.f()
					}
				})
			}
		})
	}
}

// BenchmarkSetup measures the concurrent setup paths: FEM assembly
// (problem generation + COO→CSR conversion) and Transpose.
func BenchmarkSetup(b *testing.B) {
	a, _, _, _, _ := benchSystem()
	b.Run("FEM2D-100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = problem.FEM2D(318, 0.35, 1)
		}
	})
	b.Run("Transpose-100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Transpose()
		}
	})
}

// kernelGate mirrors the "gate" object of BENCH_kernels.json: kernel name
// to maximum allowed steady-state allocations per call.
type kernelGate struct {
	Gate map[string]float64 `json:"gate"`
}

// TestKernelAllocGate is the machine-independent regression gate: each
// steady-state kernel must allocate no more than BENCH_kernels.json
// records (zero). The matrix is large enough that every kernel takes its
// blocked multi-shard path.
func TestKernelAllocGate(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_kernels.json")
	if err != nil {
		t.Fatalf("reading BENCH_kernels.json: %v", err)
	}
	var g kernelGate
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing BENCH_kernels.json: %v", err)
	}
	if len(g.Gate) == 0 {
		t.Fatal("BENCH_kernels.json has no gate entries")
	}

	a := problem.FEM2D(150, 0.35, 1) // 22201 rows: blocked paths everywhere
	x := make([]float64, a.N)
	rhs := make([]float64, a.N)
	y := make([]float64, a.N)
	r := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%13) / 13
		rhs[i] = float64(i%7) / 7
	}
	orig := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(orig)
	parallel.SetDefaultWorkers(4)

	kernels := map[string]func(){
		"MulVec":        func() { a.MulVec(x, y) },
		"Residual":      func() { a.Residual(rhs, x, r) },
		"ResidualNorm2": func() { _ = a.ResidualNorm2(rhs, x, r) },
		"Norm2":         func() { _ = sparse.Norm2(r) },
		"SumSquares":    func() { _ = sparse.SumSquares(r) },
	}
	for name, limit := range g.Gate {
		f, ok := kernels[name]
		if !ok {
			t.Errorf("BENCH_kernels.json gates unknown kernel %q", name)
			continue
		}
		f() // warm the scratch free list outside the measurement
		if got := testing.AllocsPerRun(20, f); got > limit {
			t.Errorf("%s allocates %.1f/op in steady state, gate is %.0f", name, got, limit)
		}
	}
}
