package sparse

import (
	"fmt"

	"southwell/internal/parallel"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed when converting to CSR.
type COO struct {
	N    int
	Rows []int
	Cols []int
	Vals []float64
}

// NewCOO returns an empty builder for an n-by-n matrix with capacity hint cap.
func NewCOO(n, capHint int) *COO {
	return &COO{
		N:    n,
		Rows: make([]int, 0, capHint),
		Cols: make([]int, 0, capHint),
		Vals: make([]float64, 0, capHint),
	}
}

// Add appends entry (i, j) += v. It panics on out-of-range indices, which
// always indicates a bug in a generator rather than recoverable input.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for n=%d", i, j, c.N))
	}
	c.Rows = append(c.Rows, i)
	c.Cols = append(c.Cols, j)
	c.Vals = append(c.Vals, v)
}

// AddSym appends (i,j) += v and, when i != j, (j,i) += v.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of (possibly duplicate) entries added so far.
func (c *COO) NNZ() int { return len(c.Rows) }

// ToCSR converts the builder to CSR, summing duplicates in insertion order
// and dropping exact zeros that result from cancellation of duplicates
// (entries added as zero are kept only if their sum is nonzero, except on
// the diagonal, which is always kept so iterative methods can divide by a
// stored a_ii).
//
// The conversion is a stable per-shard counting sort instead of a
// comparison sort: the entry list is cut into a fixed number of contiguous
// shards (a function of the entry count only), each shard counts its
// entries per row, a sequential pass lays out per-(row, shard) base
// offsets, and the shards scatter in parallel. Because offsets are ordered
// by shard and shards are contiguous, every row receives its entries in
// global insertion order; a stable per-row sort by column then keeps
// duplicates adjacent in insertion order, making the summation order — and
// therefore the result — well defined and bit-identical for any worker
// count.
func (c *COO) ToCSR() *CSR {
	n := c.N
	m := len(c.Rows)
	ns := parallel.Blocks(m, convShardGrain, maxConvShards)
	shards := parallel.SplitN(m, ns, make([]parallel.Range, 0, ns))

	// Phase 1: per-shard row counts.
	cnt := make([]int, ns*n)
	runBlocks(ns, func(s int) {
		cn := cnt[s*n : (s+1)*n]
		rg := shards[s]
		for e := rg.Lo; e < rg.Hi; e++ {
			cn[c.Rows[e]]++
		}
	})

	// Phase 2 (sequential): convert counts to per-(row, shard) base offsets
	// in row-major, shard-minor order, recording each row's start.
	rowStart := make([]int, n+1)
	pos := 0
	for i := 0; i < n; i++ {
		rowStart[i] = pos
		for s := 0; s < ns; s++ {
			v := cnt[s*n+i]
			cnt[s*n+i] = pos
			pos += v
		}
	}
	rowStart[n] = pos

	// Phase 3: stable parallel scatter into row-grouped order.
	tmpCol := make([]int, m)
	tmpVal := make([]float64, m)
	runBlocks(ns, func(s int) {
		off := cnt[s*n : (s+1)*n]
		rg := shards[s]
		for e := rg.Lo; e < rg.Hi; e++ {
			i := c.Rows[e]
			p := off[i]
			off[i] = p + 1
			tmpCol[p] = c.Cols[e]
			tmpVal[p] = c.Vals[e]
		}
	})

	// Phase 4: per-row stable sort by column, duplicate summation in
	// insertion order, zero dropping, and in-place compaction. Rows are
	// independent, so row blocks run in parallel. kept[i+1] holds row i's
	// surviving entry count and becomes RowPtr after a prefix sum.
	kept := make([]int, n+1)
	nrb := parallel.Blocks(n, rowBlockGrain, maxKernBlocks)
	rowBlocks := parallel.SplitN(n, nrb, make([]parallel.Range, 0, nrb))
	runBlocks(nrb, func(b int) {
		rg := rowBlocks[b]
		for i := rg.Lo; i < rg.Hi; i++ {
			cols := tmpCol[rowStart[i]:rowStart[i+1]]
			vals := tmpVal[rowStart[i]:rowStart[i+1]]
			// Stable insertion sort: rows are short (bounded by the
			// stencil/element valence), and stability keeps duplicate
			// entries in insertion order.
			for p := 1; p < len(cols); p++ {
				cj, vj := cols[p], vals[p]
				q := p - 1
				for q >= 0 && cols[q] > cj {
					cols[q+1] = cols[q]
					vals[q+1] = vals[q]
					q--
				}
				cols[q+1] = cj
				vals[q+1] = vj
			}
			w := 0
			for k := 0; k < len(cols); {
				j := cols[k]
				v := vals[k]
				for k++; k < len(cols) && cols[k] == j; k++ {
					v += vals[k]
				}
				if v != 0 || j == i {
					cols[w] = j
					vals[w] = v
					w++
				}
			}
			kept[i+1] = w
		}
	})

	// Phase 5 (sequential): prefix sum of kept counts.
	for i := 0; i < n; i++ {
		kept[i+1] += kept[i]
	}

	// Phase 6: parallel compaction into the final arrays.
	a := &CSR{
		N:      n,
		RowPtr: kept,
		Col:    make([]int, kept[n]),
		Val:    make([]float64, kept[n]),
	}
	runBlocks(nrb, func(b int) {
		rg := rowBlocks[b]
		for i := rg.Lo; i < rg.Hi; i++ {
			copy(a.Col[kept[i]:kept[i+1]], tmpCol[rowStart[i]:])
			copy(a.Val[kept[i]:kept[i+1]], tmpVal[rowStart[i]:])
		}
	})
	return a
}
