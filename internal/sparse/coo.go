package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed when converting to CSR.
type COO struct {
	N    int
	Rows []int
	Cols []int
	Vals []float64
}

// NewCOO returns an empty builder for an n-by-n matrix with capacity hint cap.
func NewCOO(n, capHint int) *COO {
	return &COO{
		N:    n,
		Rows: make([]int, 0, capHint),
		Cols: make([]int, 0, capHint),
		Vals: make([]float64, 0, capHint),
	}
}

// Add appends entry (i, j) += v. It panics on out-of-range indices, which
// always indicates a bug in a generator rather than recoverable input.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for n=%d", i, j, c.N))
	}
	c.Rows = append(c.Rows, i)
	c.Cols = append(c.Cols, j)
	c.Vals = append(c.Vals, v)
}

// AddSym appends (i,j) += v and, when i != j, (j,i) += v.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of (possibly duplicate) entries added so far.
func (c *COO) NNZ() int { return len(c.Rows) }

// ToCSR converts the builder to CSR, summing duplicates and dropping exact
// zeros that result from cancellation of duplicates (entries added as zero
// are kept only if their sum is nonzero).
func (c *COO) ToCSR() *CSR {
	n := c.N
	perm := make([]int, len(c.Rows))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		px, py := perm[x], perm[y]
		if c.Rows[px] != c.Rows[py] {
			return c.Rows[px] < c.Rows[py]
		}
		return c.Cols[px] < c.Cols[py]
	})

	a := &CSR{
		N:      n,
		RowPtr: make([]int, n+1),
		Col:    make([]int, 0, len(perm)),
		Val:    make([]float64, 0, len(perm)),
	}
	lastRow, lastCol := -1, -1
	for _, p := range perm {
		i, j, v := c.Rows[p], c.Cols[p], c.Vals[p]
		if i == lastRow && j == lastCol {
			a.Val[len(a.Val)-1] += v
			continue
		}
		a.Col = append(a.Col, j)
		a.Val = append(a.Val, v)
		lastRow, lastCol = i, j
		a.RowPtr[i+1]++
	}
	// Drop entries that summed to exactly zero, keeping the diagonal so
	// iterative methods can always divide by a stored a_ii.
	w := 0
	k := 0
	for i := 0; i < n; i++ {
		cnt := a.RowPtr[i+1]
		kept := 0
		for c2 := 0; c2 < cnt; c2++ {
			if a.Val[k] != 0 || a.Col[k] == i {
				a.Col[w] = a.Col[k]
				a.Val[w] = a.Val[k]
				w++
				kept++
			}
			k++
		}
		a.RowPtr[i+1] = kept
	}
	a.Col = a.Col[:w]
	a.Val = a.Val[:w]
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}
