package sparse

// Mul returns the sparse product C = A*B using Gustavson's row-by-row
// algorithm. Entries that cancel to exactly zero are kept out of the result
// unless they are diagonal (matching COO.ToCSR policy).
//
// It is used to build higher-order operators (e.g. the discrete biharmonic
// L*L used by the synthetic structural matrices in internal/problem) and
// Galerkin-style products in tests.
func Mul(a, b *CSR) *CSR {
	if a.N != b.N {
		panic("sparse: Mul dimension mismatch")
	}
	n := a.N
	c := &CSR{N: n, RowPtr: make([]int, n+1)}

	acc := make([]float64, n) // dense accumulator for one row
	marker := make([]int, n)  // marker[j] == i+1 when acc[j] is live for row i
	idx := make([]int, 0, n)  // live column indices for one row

	for i := 0; i < n; i++ {
		idx = idx[:0]
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for ka := alo; ka < ahi; ka++ {
			k := a.Col[ka]
			av := a.Val[ka]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for kb := blo; kb < bhi; kb++ {
				j := b.Col[kb]
				if marker[j] != i+1 {
					marker[j] = i + 1
					acc[j] = 0
					idx = append(idx, j)
				}
				acc[j] += av * b.Val[kb]
			}
		}
		// Gather in sorted column order.
		insertionSortInts(idx)
		for _, j := range idx {
			if acc[j] == 0 && j != i {
				continue
			}
			c.Col = append(c.Col, j)
			c.Val = append(c.Val, acc[j])
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c
}

// Add returns alpha*A + beta*B for same-shaped square matrices.
func Add(a, b *CSR, alpha, beta float64) *CSR {
	if a.N != b.N {
		panic("sparse: Add dimension mismatch")
	}
	n := a.N
	c := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		ka, kaEnd := a.RowPtr[i], a.RowPtr[i+1]
		kb, kbEnd := b.RowPtr[i], b.RowPtr[i+1]
		for ka < kaEnd || kb < kbEnd {
			var j int
			var v float64
			switch {
			case kb >= kbEnd || (ka < kaEnd && a.Col[ka] < b.Col[kb]):
				j, v = a.Col[ka], alpha*a.Val[ka]
				ka++
			case ka >= kaEnd || b.Col[kb] < a.Col[ka]:
				j, v = b.Col[kb], beta*b.Val[kb]
				kb++
			default:
				j, v = a.Col[ka], alpha*a.Val[ka]+beta*b.Val[kb]
				ka++
				kb++
			}
			if v != 0 || j == i {
				c.Col = append(c.Col, j)
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c
}

// insertionSortInts sorts small integer slices in place; rows of sparse
// products are short, so this beats sort.Ints on the hot path.
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
