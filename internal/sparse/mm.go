package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market "coordinate real" matrix from r.
// Both "general" and "symmetric" symmetry fields are supported; symmetric
// files store the lower triangle and are expanded on read. Pattern files are
// read with all values set to 1. Only square matrices are accepted, since
// every consumer in this repository solves Ax=b.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	field, symm := header[3], header[4]
	if field != "real" && field != "integer" && field != "pattern" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", field)
	}
	if symm != "general" && symm != "symmetric" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symm)
	}

	// Skip comments, find size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("sparse: non-square MatrixMarket matrix %dx%d", rows, cols)
	}

	coo := NewCOO(rows, nnz*2)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		i--
		j--
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) out of range", i+1, j+1)
		}
		coo.Add(i, j, v)
		if symm == "symmetric" && i != j {
			coo.Add(j, i, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket: %v", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket declared %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket writes the matrix in "coordinate real general" format.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.N, a.N, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.Col[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
