package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func denseOf(a *CSR) [][]float64 {
	d := make([][]float64, a.N)
	for i := range d {
		d[i] = make([]float64, a.N)
		cols, vals := a.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSym(20, 0.3, rng)
	b := randomSym(20, 0.3, rng)
	c := Mul(a, b)
	if err := c.Validate(); err != nil {
		t.Fatalf("product invalid: %v", err)
	}
	da, db := denseOf(a), denseOf(b)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			want := 0.0
			for k := 0; k < a.N; k++ {
				want += da[i][k] * db[k][j]
			}
			if math.Abs(c.At(i, j)-want) > 1e-10 {
				t.Fatalf("C[%d,%d] = %g, want %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSym(25, 0.2, rng)
	b := randomSym(25, 0.25, rng)
	c := Add(a, b, 2.5, -1.5)
	if err := c.Validate(); err != nil {
		t.Fatalf("sum invalid: %v", err)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			want := 2.5*a.At(i, j) - 1.5*b.At(i, j)
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("C[%d,%d] = %g, want %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestMulTridiagSquare(t *testing.T) {
	// (tridiag)^2 is the pentadiagonal 1D biharmonic [1 -4 6 -4 1]
	// (with boundary rows clipped).
	a := tridiag(8)
	c := Mul(a, a)
	if got := c.At(4, 4); got != 6 {
		t.Errorf("center = %g, want 6", got)
	}
	if got := c.At(4, 3); got != -4 {
		t.Errorf("off1 = %g, want -4", got)
	}
	if got := c.At(4, 6); got != 1 {
		t.Errorf("off2 = %g, want 1", got)
	}
	if !c.IsSymmetric(1e-14) {
		t.Error("square of symmetric matrix must be symmetric")
	}
}

// Property: (A*x computed via Mul(A,A)) equals A*(A*x).
func TestQuickMulAssociatesWithMulVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		a := randomSym(n, 0.3, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		tmp := make([]float64, n)
		a.MulVec(x, tmp)
		a.MulVec(tmp, y1)
		y2 := make([]float64, n)
		Mul(a, a).MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
