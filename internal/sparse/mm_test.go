package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSym(30, 0.2, rng)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != a.N || b.NNZ() != a.NNZ() {
		t.Fatalf("round trip shape: n=%d nnz=%d, want n=%d nnz=%d", b.N, b.NNZ(), a.N, a.NNZ())
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] || math.Abs(a.Val[k]-b.Val[k]) > 1e-15 {
			t.Fatalf("round trip entry %d mismatch", k)
		}
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 2 2.0
3 3 2.0
2 1 -1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Error("symmetric entry not mirrored")
	}
	if a.NNZ() != 5 {
		t.Errorf("nnz = %d, want 5", a.NNZ())
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Error("pattern values should be 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%MatrixMarket matrix array real general\n2 2 1\n1 1 1\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n1 1 1\n",
		"nonsquare":      "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n",
		"short entries":  "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"range":          "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad row index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\nq 1 1\n",
		"truncated line": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
