package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tridiag returns the n-by-n [-1 2 -1] matrix.
func tridiag(n int) *CSR {
	c := NewCOO(n, 3*n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// randomSym returns a random symmetric diagonally dominant matrix.
func randomSym(n int, density float64, rng *rand.Rand) *CSR {
	c := NewCOO(n, int(float64(n*n)*density)+n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				c.AddSym(i, j, v)
				diag[i] += math.Abs(v)
				diag[j] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, diag[i]+1)
	}
	return c.ToCSR()
}

func TestCSRValidate(t *testing.T) {
	a := tridiag(10)
	if err := a.Validate(); err != nil {
		t.Fatalf("tridiag(10) invalid: %v", err)
	}
	if a.NNZ() != 28 {
		t.Errorf("tridiag(10) nnz = %d, want 28", a.NNZ())
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*CSR)
	}{
		{"bad rowptr0", func(a *CSR) { a.RowPtr[0] = 1 }},
		{"nonmonotone rowptr", func(a *CSR) { a.RowPtr[3] = a.RowPtr[4] + 1 }},
		{"col out of range", func(a *CSR) { a.Col[0] = a.N }},
		{"negative col", func(a *CSR) { a.Col[0] = -1 }},
		{"unsorted cols", func(a *CSR) { a.Col[1], a.Col[2] = a.Col[2], a.Col[1] }},
		{"nan value", func(a *CSR) { a.Val[0] = math.NaN() }},
		{"nnz mismatch", func(a *CSR) { a.RowPtr[a.N]++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tridiag(8)
			tc.corrupt(a)
			if err := a.Validate(); err == nil {
				t.Error("Validate accepted corrupt matrix")
			}
		})
	}
}

func TestAt(t *testing.T) {
	a := tridiag(5)
	if got := a.At(2, 2); got != 2 {
		t.Errorf("At(2,2) = %g, want 2", got)
	}
	if got := a.At(2, 3); got != -1 {
		t.Errorf("At(2,3) = %g, want -1", got)
	}
	if got := a.At(0, 4); got != 0 {
		t.Errorf("At(0,4) = %g, want 0", got)
	}
}

func TestMulVec(t *testing.T) {
	a := tridiag(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(x, y)
	want := []float64{0, 0, 0, 5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestResidual(t *testing.T) {
	a := tridiag(6)
	x := []float64{1, 1, 1, 1, 1, 1}
	b := make([]float64, 6)
	r := make([]float64, 6)
	a.Residual(b, x, r)
	// A*ones = [1 0 0 0 0 1], so r = -that.
	want := []float64{-1, 0, 0, 0, 0, -1}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-14 {
			t.Errorf("r[%d] = %g, want %g", i, r[i], want[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSym(30, 0.2, rng)
	tt := a.Transpose().Transpose()
	if err := tt.Validate(); err != nil {
		t.Fatalf("transpose^2 invalid: %v", err)
	}
	for k := range a.Col {
		if a.Col[k] != tt.Col[k] || a.Val[k] != tt.Val[k] {
			t.Fatalf("transpose not an involution at entry %d", k)
		}
	}
}

func TestSymmetryChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSym(25, 0.3, rng)
	if !a.IsStructurallySymmetric() {
		t.Error("randomSym not structurally symmetric")
	}
	if !a.IsSymmetric(0) {
		t.Error("randomSym not numerically symmetric")
	}
	// Break symmetry numerically.
	b := a.Clone()
	for k := range b.Col {
		if b.Col[k] != 0 {
			continue
		}
		// first off-diagonal in column 0
		if b.RowPtr[0+1] <= k { // entry not in row 0, so (i,0) with i>0
			b.Val[k] += 0.5
			break
		}
	}
	if b.IsSymmetric(1e-12) {
		t.Error("IsSymmetric failed to detect asymmetry")
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(3, 8)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 2, 5)
	c.Add(1, 2, -5) // cancels to zero: dropped
	c.Add(2, 2, 4)
	a := c.ToCSR()
	if got := a.At(0, 0); got != 3 {
		t.Errorf("duplicate sum = %g, want 3", got)
	}
	if got := a.At(1, 2); got != 0 {
		t.Errorf("cancelled entry = %g, want 0", got)
	}
	cols, _ := a.Row(1)
	if len(cols) != 0 {
		t.Errorf("cancelled entry not dropped: row 1 has %d entries", len(cols))
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid after dedup: %v", err)
	}
}

func TestCOOKeepsZeroDiagonal(t *testing.T) {
	c := NewCOO(2, 4)
	c.Add(0, 0, 0)
	c.Add(1, 1, 1)
	a := c.ToCSR()
	cols, _ := a.Row(0)
	if len(cols) != 1 || cols[0] != 0 {
		t.Error("explicit zero diagonal should be kept")
	}
}

func TestScaleUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSym(40, 0.15, rng)
	s, err := Scale(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N; i++ {
		if d := a.At(i, i); math.Abs(d-1) > 1e-12 {
			t.Fatalf("diagonal %d = %g after Scale", i, d)
		}
	}
	if !a.IsSymmetric(1e-12) {
		t.Error("Scale broke symmetry")
	}
	if len(s) != a.N {
		t.Errorf("scale vector length %d", len(s))
	}
}

func TestScaleRejectsBadDiagonal(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, -2)
	a := c.ToCSR()
	if _, err := Scale(a); err == nil {
		t.Error("Scale accepted negative diagonal")
	}
}

func TestScaleSolutionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSym(20, 0.3, rng)
	orig := a.Clone()
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	orig.MulVec(xTrue, b)

	s, err := Scale(a)
	if err != nil {
		t.Fatal(err)
	}
	bs := CopyVec(b)
	ScaleVec(bs, s)
	// Scaled system solution is y = S^{-1} x, i.e. y_i = x_i / s_i.
	y := make([]float64, a.N)
	for i := range y {
		y[i] = xTrue[i] / s[i]
	}
	r := make([]float64, a.N)
	a.Residual(bs, y, r)
	if n := Norm2(r); n > 1e-10 {
		t.Errorf("scaled system residual %g", n)
	}
	UnscaleSolution(y, s)
	for i := range y {
		if math.Abs(y[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("unscaled solution mismatch at %d", i)
		}
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Errorf("NormInf = %g", NormInf(x))
	}
	y := []float64{1, 1}
	if Dot(x, y) != -1 {
		t.Errorf("Dot = %g", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != -7 {
		t.Errorf("Axpy = %v", y)
	}
	ScaleBy(0.5, y)
	if y[0] != 3.5 {
		t.Errorf("ScaleBy = %v", y)
	}
	Fill(y, 9)
	if y[0] != 9 || y[1] != 9 {
		t.Errorf("Fill = %v", y)
	}
	z := CopyVec(y)
	z[0] = 0
	if y[0] != 9 {
		t.Error("CopyVec aliases")
	}
}

func TestNormalizeResidual(t *testing.T) {
	a := tridiag(16)
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	NormalizeResidual(a, b, x)
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	if n := Norm2(r); math.Abs(n-1) > 1e-12 {
		t.Errorf("normalized residual norm = %g, want 1", n)
	}
	// Zero residual case: returns 0, leaves inputs alone.
	zero := make([]float64, a.N)
	if got := NormalizeResidual(a, zero, zero); got != 0 {
		t.Errorf("zero-residual normalize returned %g", got)
	}
}

func TestNeighborsAndDegrees(t *testing.T) {
	a := tridiag(5)
	nb := a.Neighbors(2)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(2) = %v", nb)
	}
	if a.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", a.MaxDegree())
	}
	if a.Bandwidth() != 1 {
		t.Errorf("Bandwidth = %d", a.Bandwidth())
	}
}

// Property: for random symmetric matrices, MulVec agrees with the transpose,
// and Scale always yields a unit diagonal while preserving symmetry.
func TestQuickSymmetricScaleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := randomSym(n, 0.1+0.4*rng.Float64(), rng)
		if err := a.Validate(); err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(x, y1)
		a.Transpose().MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10 {
				return false
			}
		}
		if _, err := Scale(a); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(a.At(i, i)-1) > 1e-12 {
				return false
			}
		}
		return a.IsSymmetric(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: COO->CSR conversion is invariant under permutation of insertions.
func TestQuickCOOOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		type ent struct {
			i, j int
			v    float64
		}
		var ents []ent
		for i := 0; i < n; i++ {
			ents = append(ents, ent{i, i, 1 + rng.Float64()})
		}
		m := rng.Intn(4 * n)
		for k := 0; k < m; k++ {
			ents = append(ents, ent{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
		}
		build := func(order []int) *CSR {
			c := NewCOO(n, len(order))
			for _, idx := range order {
				c.Add(ents[idx].i, ents[idx].j, ents[idx].v)
			}
			return c.ToCSR()
		}
		ord1 := rng.Perm(len(ents))
		ord2 := rng.Perm(len(ents))
		a1, a2 := build(ord1), build(ord2)
		if a1.NNZ() != a2.NNZ() {
			return false
		}
		for k := range a1.Col {
			if a1.Col[k] != a2.Col[k] || math.Abs(a1.Val[k]-a2.Val[k]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
