// Package dense provides small dense linear algebra: LU with partial
// pivoting and Cholesky factorization with triangular solves. It backs the
// exact coarse-grid solve in the multigrid cycle and the optional direct
// local subdomain solver (the role PARDISO plays in the paper's artifact).
package dense

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewMatrix returns a zero n-by-n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M x.
func (m *Matrix) MulVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// LU is an LU factorization with partial pivoting: P A = L U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the factorization. It fails on (numerically) singular
// matrices.
func FactorLU(a *Matrix) (*LU, error) {
	n := a.N
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot.
		p := k
		maxv := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("dense: singular matrix at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return f, nil
}

// Solve computes x with A x = b. b is not modified; x may alias b.
func (f *LU) Solve(b, x []float64) {
	f.SolveWith(b, x, make([]float64, f.lu.N))
}

// SolveWith is Solve with a caller-provided scratch vector y (length N),
// so repeated solves against one factorization allocate nothing. y may not
// alias b or x.
func (f *LU) SolveWith(b, x, y []float64) {
	n := f.lu.N
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward: L y' = y (unit lower).
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * y[j]
		}
		y[i] = s
	}
	// Backward: U x = y'.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * y[j]
		}
		y[i] = s / f.lu.At(i, i)
	}
	copy(x, y)
}

// Cholesky is the lower-triangular factor of an SPD matrix: A = L Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the factorization, failing if the matrix is not
// positive definite (within roundoff).
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	n := a.N
	l := NewMatrix(n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, errors.New("dense: matrix not positive definite")
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve computes x with A x = b; x may alias b.
func (c *Cholesky) Solve(b, x []float64) {
	n := c.l.N
	y := make([]float64, n)
	copy(y, b)
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	copy(x, y)
}
