package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSPD(n int, rng *rand.Rand) *Matrix {
	// A = B Bᵀ + n I is SPD.
	b := NewMatrix(n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, float64(n))
	}
	return a
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 12
	a := NewMatrix(n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 5)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xTrue, b)

	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	f.Solve(b, x)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{3, 7}, x)
	if math.Abs(x[0]-7) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(3) // all zeros
	if _, err := FactorLU(a); err == nil {
		t.Error("FactorLU accepted singular matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(10, rng)
	xTrue := make([]float64, 10)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 10)
	a.MulVec(xTrue, b)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 10)
	c.Solve(b, x)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := FactorCholesky(a); err == nil {
		t.Error("FactorCholesky accepted indefinite matrix")
	}
}

func TestSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(6, rng)
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, 6)
	c.Solve(b, x1)
	x2 := append([]float64(nil), b...)
	c.Solve(x2, x2) // aliased
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("aliased solve differs")
		}
	}
}

// Property: LU and Cholesky agree on SPD systems.
func TestQuickLUCholeskyAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := FactorLU(a)
		if err != nil {
			return false
		}
		ch, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		lu.Solve(b, x1)
		ch.Solve(b, x2)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
