package solvers

import (
	"math"
	"testing"

	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func TestSequentialAdaptiveConverges(t *testing.T) {
	a := problem.Poisson2D(20, 20)
	b, x := testSystem(t, a, 21)
	tr := SequentialAdaptiveRelaxation(a, b, x, AdaptiveOptions{
		Options: Options{MaxRelax: 50 * a.N},
		Theta:   1e-4,
	})
	if tr.Final().ResNorm > 0.05 {
		t.Errorf("final norm %g", tr.Final().ResNorm)
	}
	if got := exactNorm(a, b, x); math.Abs(got-tr.Final().ResNorm) > 1e-8 {
		t.Errorf("trace norm %g != exact %g", tr.Final().ResNorm, got)
	}
}

func TestSequentialAdaptiveStopsWhenSetEmpties(t *testing.T) {
	a := problem.Poisson2D(10, 10)
	b, x := testSystem(t, a, 22)
	// Large threshold: almost everything is insignificant, so the active
	// set drains quickly and the method stops well short of the budget.
	tr := SequentialAdaptiveRelaxation(a, b, x, AdaptiveOptions{
		Options: Options{MaxRelax: 1000 * a.N},
		Theta:   10,
	})
	if tr.TotalRelaxations() >= 1000*a.N {
		t.Error("did not stop on empty active set")
	}
}

func TestSimultaneousAdaptiveConvergesOnMMatrix(t *testing.T) {
	a := problem.Poisson2D(20, 20)
	b, x := testSystem(t, a, 23)
	tr := SimultaneousAdaptiveRelaxation(a, b, x, AdaptiveOptions{
		Options: Options{MaxRelax: 100 * a.N},
		Theta:   1e-4,
	})
	if tr.Final().ResNorm > 0.05 {
		t.Errorf("final norm %g", tr.Final().ResNorm)
	}
	if got := exactNorm(a, b, x); math.Abs(got-tr.Final().ResNorm) > 1e-8 {
		t.Errorf("trace norm mismatch: %g vs %g", tr.Final().ResNorm, got)
	}
}

// The paper's §5 point: threshold methods, like Jacobi, are not guaranteed
// to converge for all SPD matrices, unlike Multicolor GS and Parallel
// Southwell which relax independent sets. The scaled biharmonic operator
// (spectral radius > 2) separates them.
func TestSimultaneousAdaptiveCanDiverge(t *testing.T) {
	build := func() (*sparse.CSR, []float64, []float64) {
		a := problem.Biharmonic2D(20, 20)
		if _, err := sparse.Scale(a); err != nil {
			t.Fatal(err)
		}
		b, x := problem.RandomBSystem(a, 24)
		return a, b, x
	}
	a, b, x := build()
	sim := SimultaneousAdaptiveRelaxation(a, b, x, AdaptiveOptions{
		Options: Options{MaxRelax: 60 * a.N},
		Theta:   1e-12,
	})
	if sim.Final().ResNorm < 1 {
		t.Skipf("simultaneous adaptive did not diverge here (%g); spectrum too tame", sim.Final().ResNorm)
	}
	// Parallel Southwell stays convergent on the same system.
	a2, b2, x2 := build()
	ps := ParallelSouthwell(a2, b2, x2, Options{MaxRelax: 10 * a2.N})
	if ps.Final().ResNorm >= 1 {
		t.Errorf("Parallel Southwell diverged too: %g", ps.Final().ResNorm)
	}
}

func TestAdaptiveDefaultTheta(t *testing.T) {
	r := []float64{0.5, -2, 0.25}
	opt := AdaptiveOptions{}
	if got := opt.theta(r); math.Abs(got-0.02) > 1e-15 {
		t.Errorf("default theta = %g, want 0.02", got)
	}
	opt.Theta = 0.5
	if opt.theta(r) != 0.5 {
		t.Error("explicit theta ignored")
	}
}
