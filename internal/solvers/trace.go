// Package solvers implements the shared-memory scalar iterative methods of
// the paper: Jacobi, Gauss-Seidel, Multicolor Gauss-Seidel, Sequential
// Southwell, Parallel Southwell, and the scalar form of Distributed
// Southwell (one equation per simulated process, §3 and Figure 5).
//
// All methods assume a symmetric matrix (so row i doubles as column i when
// propagating a relaxation to neighboring residuals) with nonzero diagonal;
// the paper additionally scales systems to unit diagonal, but these
// routines divide by a_ii and work for any symmetric matrix with nonzero
// diagonal.
//
// Every solver maintains the residual vector incrementally and returns a
// Trace: one record per parallel step, carrying the cumulative relaxation
// count and residual norm — exactly the data plotted in Figures 2 and 5.
package solvers

import (
	"math/rand"

	"southwell/internal/sparse"
)

// StepRecord is the state at the end of one parallel step.
type StepRecord struct {
	Step        int     // parallel step index, starting at 1
	Relaxations int     // relaxations performed during this step
	CumRelax    int     // total relaxations so far
	ResNorm     float64 // ‖r‖₂ after the step
}

// Trace is the convergence history of a solve. For sequential methods
// (Gauss-Seidel, Sequential Southwell) every relaxation is its own parallel
// step; for parallel methods a step may relax many rows.
type Trace struct {
	Method string
	Steps  []StepRecord
}

// Final returns the last record, or a zero record if nothing ran.
func (t *Trace) Final() StepRecord {
	if len(t.Steps) == 0 {
		return StepRecord{}
	}
	return t.Steps[len(t.Steps)-1]
}

// TotalRelaxations returns the cumulative relaxation count.
func (t *Trace) TotalRelaxations() int { return t.Final().CumRelax }

// NumSteps returns the number of parallel steps taken.
func (t *Trace) NumSteps() int { return len(t.Steps) }

// RelaxAtNorm returns the smallest cumulative relaxation count at which the
// residual norm fell to target or below, and ok=false if it never did.
func (t *Trace) RelaxAtNorm(target float64) (int, bool) {
	for _, s := range t.Steps {
		if s.ResNorm <= target {
			return s.CumRelax, true
		}
	}
	return 0, false
}

// Options controls solver termination. The zero value means "run one sweep
// (n relaxations) with no target".
type Options struct {
	// MaxRelax stops after this many relaxations (0 = n, one sweep).
	MaxRelax int
	// MaxSteps stops after this many parallel steps (0 = no limit).
	MaxSteps int
	// TargetNorm stops once ‖r‖₂ <= TargetNorm (0 = no target).
	TargetNorm float64
	// ExactBudget makes parallel Southwell-type methods hit MaxRelax
	// exactly: in the final parallel step a random subset of the selected
	// rows is relaxed (§4.1 of the paper, used for multigrid smoothing
	// comparisons). Seed drives the subset choice.
	ExactBudget bool
	Seed        int64
	// Rand, when non-nil, supplies the stream for the ExactBudget subset
	// choice instead of one freshly derived from Seed. Callers composing
	// several randomized stages (e.g. multigrid cycles) can pass a shared
	// explicitly seeded stream so the whole run is reproducible from one
	// seed without coordinating per-stage Seed values.
	Rand *rand.Rand
}

// rng returns the caller-provided stream, or one seeded from Seed.
func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed))
}

func (o Options) maxRelax(n int) int {
	if o.MaxRelax > 0 {
		return o.MaxRelax
	}
	return n
}

func (o Options) done(rec StepRecord, n int) bool {
	if rec.CumRelax >= o.maxRelax(n) {
		return true
	}
	if o.MaxSteps > 0 && rec.Step >= o.MaxSteps {
		return true
	}
	if o.TargetNorm > 0 && rec.ResNorm <= o.TargetNorm {
		return true
	}
	return false
}

// state carries the vectors every scalar solver updates.
type state struct {
	a      *sparse.CSR
	x, r   []float64
	normSq float64
	relax  int // cumulative relaxations
}

func newState(a *sparse.CSR, b, x []float64) *state {
	s := &state{a: a, x: x, r: make([]float64, a.N)}
	a.Residual(b, x, s.r)
	s.normSq = sparse.SumSquares(s.r)
	return s
}

// relaxRow relaxes row i: x_i += r_i/a_ii and propagates the change to all
// residuals coupled to column i (row i, by symmetry), keeping normSq
// current. It returns the applied update d.
func (s *state) relaxRow(i int) float64 {
	cols, vals := s.a.Row(i)
	var aii float64
	for k, j := range cols {
		if j == i {
			aii = vals[k]
			break
		}
	}
	d := s.r[i] / aii
	s.x[i] += d
	for k, j := range cols {
		old := s.r[j]
		s.r[j] = old - vals[k]*d
		s.normSq += s.r[j]*s.r[j] - old*old
	}
	s.relax++
	return d
}

func (s *state) norm() float64 {
	if s.normSq <= 0 {
		return 0
	}
	return sqrt(s.normSq)
}
