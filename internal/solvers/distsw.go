package solvers

import (
	"math"
	"math/rand"

	"southwell/internal/sparse"
)

// DistStats counts the communication a distributed run would incur,
// split the way the paper's Table 3 splits it.
type DistStats struct {
	SolveMsgs    int // messages carrying relaxation updates
	ResidualMsgs int // explicit residual-norm update messages (deadlock avoidance)
}

// TotalMsgs returns all messages sent.
func (d DistStats) TotalMsgs() int { return d.SolveMsgs + d.ResidualMsgs }

// debugDistSW enables per-step verification of the Γ̃ exactness invariant
// (set by tests; too costly for production runs).
var debugDistSW = false

// distRow is the per-row ("per-process", in the scalar form) state of
// Distributed Southwell: the row's exact residual plus, per neighbor slot
// k, the ghost residual estimate z (a signed copy of the neighbor's
// residual, locally updated), Γ = |z| (the norm estimate the paper keeps
// for block form), and Γ̃ = the estimate this row's norm that the neighbor
// holds (exactly maintained; see §3).
type distRow struct {
	nbr        []int     // neighbor row indices
	offd       []float64 // a_{j,i} for each neighbor j (symmetric: = a_{i,j})
	diag       float64
	z          []float64 // ghost: estimate of each neighbor's residual value
	gammaTilde []float64 // neighbor's estimate of |r_i|
	sentDelta  []float64 // per neighbor: delta sent in the current phase
	lastSentR  float64   // own residual value included in the last send
	slotOf     map[int]int
}

// distMsg is what one row writes into a neighbor's window.
type distMsg struct {
	from     int
	delta    float64 // increment to the receiver's residual (0 for explicit updates)
	hasDelta bool
	senderR  float64 // sender's residual value at send time (ghost sync)
	estRecv  float64 // sender's estimate of the receiver's residual value
}

// DistributedSouthwell runs the scalar form of Distributed Southwell
// (§3, Figure 5): one equation per simulated process, synchronous parallel
// steps with the three phases of Algorithm 3 — relax and write, detect
// deadlock risk and write explicit updates, absorb writes. Rows decide to
// relax using *estimated* neighbor residuals, estimates are improved
// locally via the ghost values, and explicit residual updates flow only
// when a neighbor's estimate of a row exceeds the row's actual residual.
//
// The returned stats count one message per write to a neighbor, tagged as
// solve (relaxation) or residual (explicit update) communication.
func DistributedSouthwell(a *sparse.CSR, b, x []float64, opt Options) (*Trace, DistStats) {
	tr := &Trace{Method: "Dist SW"}
	n := a.N
	s := newState(a, b, x)
	var stats DistStats

	rows := make([]distRow, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		row := distRow{slotOf: make(map[int]int)}
		for k, j := range cols {
			if j == i {
				row.diag = vals[k]
				continue
			}
			row.slotOf[j] = len(row.nbr)
			row.nbr = append(row.nbr, j)
			row.offd = append(row.offd, vals[k])
			row.z = append(row.z, s.r[j]) // exact at startup
			row.gammaTilde = append(row.gammaTilde, math.Abs(s.r[i]))
			row.sentDelta = append(row.sentDelta, 0)
		}
		rows[i] = row
	}

	inbox := make([][]distMsg, n)
	sentTo := make(map[[2]int]bool) // (from,to) pairs written this phase
	var rng *rand.Rand
	if opt.ExactBudget {
		rng = opt.rng()
	}

	deliver := func() {
		for i := range inbox {
			for _, m := range inbox[i] {
				row := &rows[i]
				k := row.slotOf[m.from]
				if m.hasDelta {
					old := s.r[i]
					s.r[i] += m.delta
					s.normSq += s.r[i]*s.r[i] - old*old
				}
				crossing := sentTo[[2]int{i, m.from}]
				switch {
				case crossing && m.hasDelta:
					// Both endpoints relaxed in the same phase. The sender's
					// reported residual predates this row's delta to it, so
					// re-apply that delta on top — the "better estimate than
					// doing nothing at all" of §3. The sender performs the
					// mirrored correction, so Γ̃ stays exact: its estimate of
					// this row is its senderR-base plus the delta it sent.
					row.z[k] = m.senderR + row.sentDelta[k]
					row.gammaTilde[k] = math.Abs(row.lastSentR + m.delta)
				case crossing:
					// Crossing explicit updates carry no deltas; this row's
					// own write supersedes the stale estimate in the message.
					row.z[k] = m.senderR
				default:
					row.z[k] = m.senderR
					row.gammaTilde[k] = math.Abs(m.estRecv)
				}
			}
			inbox[i] = inbox[i][:0]
		}
		for k := range sentTo {
			delete(sentTo, k)
		}
	}

	selected := make([]int, 0, n)
	for {
		// Phase 1: decide (snapshot semantics) and relax.
		selected = selected[:0]
		for i := 0; i < n; i++ {
			ri := math.Abs(s.r[i])
			if ri == 0 {
				continue
			}
			row := &rows[i]
			wins := true
			for k, j := range row.nbr {
				if !winsOver(ri, i, math.Abs(row.z[k]), j) {
					wins = false
					break
				}
			}
			if wins {
				selected = append(selected, i)
			}
		}
		if opt.ExactBudget {
			if remaining := opt.maxRelax(n) - s.relax; len(selected) > remaining {
				// Final parallel step: relax a random subset of the selected
				// rows so the total relaxation count is exact (§4.1).
				rng.Shuffle(len(selected), func(a, b int) {
					selected[a], selected[b] = selected[b], selected[a]
				})
				selected = selected[:remaining]
			}
		}
		for _, i := range selected {
			row := &rows[i]
			d := s.r[i] / row.diag
			s.x[i] += d
			old := s.r[i]
			s.r[i] -= row.diag * d // exactly zero
			s.normSq += s.r[i]*s.r[i] - old*old
			s.relax++
			row.lastSentR = s.r[i]
			for k, j := range row.nbr {
				delta := -row.offd[k] * d
				row.z[k] += delta // local estimate improvement: no communication
				row.sentDelta[k] = delta
				row.gammaTilde[k] = math.Abs(s.r[i])
				inbox[j] = append(inbox[j], distMsg{
					from: i, delta: delta, hasDelta: true,
					senderR: s.r[i], estRecv: row.z[k],
				})
				sentTo[[2]int{i, j}] = true
				stats.SolveMsgs++
			}
		}
		relaxed := len(selected)
		deliver()

		// Phase 2: deadlock-risk detection — if a neighbor's estimate of my
		// residual exceeds my actual residual, correct it explicitly.
		for i := 0; i < n; i++ {
			row := &rows[i]
			ri := math.Abs(s.r[i])
			for k, j := range row.nbr {
				if row.gammaTilde[k] > ri {
					row.gammaTilde[k] = ri
					inbox[j] = append(inbox[j], distMsg{
						from: i, senderR: s.r[i], estRecv: row.z[k],
					})
					sentTo[[2]int{i, j}] = true
					stats.ResidualMsgs++
				}
			}
		}
		deliver()

		if debugDistSW && !checkGammaTildeExact(rows) {
			panic("solvers: Γ̃ exactness invariant violated")
		}

		if relaxed == 0 {
			// No relaxation was possible: either converged, or stagnated
			// while estimates were being corrected. Continue only if
			// estimates changed; with Γ̃ exactness the very next step must
			// relax, so a second empty step means the residual is zero.
			if s.norm() == 0 || tr.lastStepEmpty() {
				return tr, stats
			}
		}
		rec := StepRecord{
			Step:        len(tr.Steps) + 1,
			Relaxations: relaxed,
			CumRelax:    s.relax,
			ResNorm:     s.norm(),
		}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr, stats
		}
	}
}

func (t *Trace) lastStepEmpty() bool {
	return len(t.Steps) > 0 && t.Steps[len(t.Steps)-1].Relaxations == 0
}

// checkGammaTildeExact verifies the paper's §3 claim that Γ̃ is exactly
// known: for every edge (i, j), row i's record of "what j estimates my
// residual to be" must equal |z_j[i]|, j's actual estimate. Used by tests.
func checkGammaTildeExact(rows []distRow) bool {
	for i := range rows {
		for k, j := range rows[i].nbr {
			kj := rows[j].slotOf[i]
			// Bit-exact by design: §3 claims Γ̃ is *exactly* known, so the
			// invariant check must not tolerate any drift.
			if rows[i].gammaTilde[k] != math.Abs(rows[j].z[kj]) { //dslint:ignore floatcmp

				return false
			}
		}
	}
	return true
}
