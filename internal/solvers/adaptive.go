package solvers

import (
	"math"

	"southwell/internal/sparse"
)

// This file implements the two Southwell-descended adaptive relaxation
// schemes the paper discusses as related work (§5, after Rüde): the
// sequential adaptive relaxation method with an active set, and the
// simultaneous adaptive relaxation method with a residual threshold. They
// serve as baselines for the ablation experiments and as the adaptive
// multigrid smoothers of that line of work.

// AdaptiveOptions configures the adaptive relaxation methods.
type AdaptiveOptions struct {
	Options
	// Theta is the residual threshold: simultaneous adaptive relaxation
	// relaxes every row with |r_i| > Theta; sequential adaptive relaxation
	// discards updates smaller than Theta and removes the row from the
	// active set. Zero means 1e-2 of the initial residual-infinity norm.
	Theta float64
}

func (o AdaptiveOptions) theta(r []float64) float64 {
	if o.Theta > 0 {
		return o.Theta
	}
	return 1e-2 * sparse.NormInf(r)
}

// SequentialAdaptiveRelaxation implements Rüde's sequential adaptive
// relaxation: an active set of rows is processed one at a time; relaxing a
// row whose update is significant (|r_i/a_ii| > Theta) re-activates its
// neighbors, while insignificant rows are dropped from the set. The method
// stops when the active set empties or the budget is exhausted. Every
// relaxation counts as one parallel step (the method is sequential).
func SequentialAdaptiveRelaxation(a *sparse.CSR, b, x []float64, opt AdaptiveOptions) *Trace {
	tr := &Trace{Method: "Seq Adaptive"}
	n := a.N
	s := newState(a, b, x)
	theta := opt.theta(s.r)

	inSet := make([]bool, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		inSet[i] = true
		queue = append(queue, i)
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if !inSet[i] {
			continue
		}
		inSet[i] = false
		cols, vals := a.Row(i)
		var aii float64
		for k, j := range cols {
			if j == i {
				aii = vals[k]
				break
			}
		}
		if math.Abs(s.r[i]/aii) <= theta {
			// Insignificant update: discard, leave the row inactive.
			continue
		}
		s.relaxRow(i)
		for _, j := range cols {
			if j != i && !inSet[j] {
				inSet[j] = true
				queue = append(queue, j)
			}
		}
		rec := StepRecord{Step: len(tr.Steps) + 1, Relaxations: 1, CumRelax: s.relax, ResNorm: s.norm()}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr
		}
	}
	return tr
}

// SimultaneousAdaptiveRelaxation implements Rüde's simultaneous adaptive
// relaxation: each parallel step relaxes every row with |r_i| > Theta at
// once (Jacobi-style, from the step-start residuals). Like Jacobi, it is
// not guaranteed to converge for all SPD matrices — the paper contrasts
// this with Multicolor GS and Parallel Southwell, which relax independent
// sets (§5); TestSimultaneousAdaptiveCanDiverge demonstrates the failure.
func SimultaneousAdaptiveRelaxation(a *sparse.CSR, b, x []float64, opt AdaptiveOptions) *Trace {
	tr := &Trace{Method: "Sim Adaptive"}
	n := a.N
	s := newState(a, b, x)
	theta := opt.theta(s.r)
	diag := a.Diag()
	dx := make([]float64, n)
	adx := make([]float64, n)
	for {
		count := 0
		for i := 0; i < n; i++ {
			if math.Abs(s.r[i]) > theta {
				dx[i] = s.r[i] / diag[i]
				x[i] += dx[i]
				count++
			} else {
				dx[i] = 0
			}
		}
		if count == 0 {
			// Threshold reached everywhere: the method has converged to
			// its Theta-dependent accuracy.
			return tr
		}
		a.MulVec(dx, adx)
		s.normSq = 0
		for i := 0; i < n; i++ {
			s.r[i] -= adx[i]
			s.normSq += s.r[i] * s.r[i]
		}
		s.relax += count
		rec := StepRecord{Step: len(tr.Steps) + 1, Relaxations: count, CumRelax: s.relax, ResNorm: s.norm()}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr
		}
	}
}
