package solvers

import (
	"math"

	"southwell/internal/color"
	"southwell/internal/sparse"
)

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Jacobi runs the point Jacobi method. Each parallel step is one sweep of n
// simultaneous relaxations: x += D^{-1} r, r -= A D^{-1} r_old.
func Jacobi(a *sparse.CSR, b, x []float64, opt Options) *Trace {
	tr := &Trace{Method: "Jacobi"}
	n := a.N
	s := newState(a, b, x)
	diag := a.Diag()
	dx := make([]float64, n)
	adx := make([]float64, n)
	for step := 1; ; step++ {
		for i := 0; i < n; i++ {
			dx[i] = s.r[i] / diag[i]
			x[i] += dx[i]
		}
		a.MulVec(dx, adx)
		s.normSq = 0
		for i := 0; i < n; i++ {
			s.r[i] -= adx[i]
			s.normSq += s.r[i] * s.r[i]
		}
		s.relax += n
		rec := StepRecord{Step: step, Relaxations: n, CumRelax: s.relax, ResNorm: s.norm()}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr
		}
	}
}

// GaussSeidel runs the Gauss-Seidel method in natural row order. Every
// relaxation is recorded as its own parallel step, since the method is
// sequential (§2.1).
func GaussSeidel(a *sparse.CSR, b, x []float64, opt Options) *Trace {
	tr := &Trace{Method: "GS"}
	n := a.N
	s := newState(a, b, x)
	for {
		for i := 0; i < n; i++ {
			s.relaxRow(i)
			rec := StepRecord{Step: len(tr.Steps) + 1, Relaxations: 1, CumRelax: s.relax, ResNorm: s.norm()}
			tr.Steps = append(tr.Steps, rec)
			if opt.done(rec, n) {
				return tr
			}
		}
	}
}

// MulticolorGS runs Multicolor Gauss-Seidel: rows are grouped into
// independent color classes (greedy BFS coloring, as in the paper) and one
// parallel step relaxes all rows of a single color.
func MulticolorGS(a *sparse.CSR, b, x []float64, opt Options) *Trace {
	c := color.Greedy(a)
	return MulticolorGSWith(a, b, x, c, opt)
}

// MulticolorGSWith is MulticolorGS with a caller-provided coloring.
func MulticolorGSWith(a *sparse.CSR, b, x []float64, c color.Coloring, opt Options) *Trace {
	tr := &Trace{Method: "MC GS"}
	n := a.N
	s := newState(a, b, x)
	classes := c.Classes()
	for {
		for _, class := range classes {
			if len(class) == 0 {
				continue
			}
			for _, i := range class {
				s.relaxRow(i)
			}
			rec := StepRecord{
				Step:        len(tr.Steps) + 1,
				Relaxations: len(class),
				CumRelax:    s.relax,
				ResNorm:     s.norm(),
			}
			tr.Steps = append(tr.Steps, rec)
			if opt.done(rec, n) {
				return tr
			}
		}
	}
}
