package solvers

import (
	"math"
	"testing"
	"testing/quick"

	"southwell/internal/problem"
	"southwell/internal/sparse"
)

// testSystem returns a scaled SPD system with random b, zero x.
func testSystem(t *testing.T, a *sparse.CSR, seed int64) (b, x []float64) {
	t.Helper()
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	b, x = problem.RandomBSystem(a, seed)
	return b, x
}

// exactNorm recomputes ‖b - Ax‖₂ from scratch.
func exactNorm(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	return sparse.Norm2(r)
}

type runner func(a *sparse.CSR, b, x []float64, opt Options) *Trace

func allMethods() map[string]runner {
	return map[string]runner{
		"Jacobi": Jacobi,
		"GS":     GaussSeidel,
		"MCGS":   MulticolorGS,
		"SW":     SequentialSouthwell,
		"ParSW":  ParallelSouthwell,
		"DistSW": func(a *sparse.CSR, b, x []float64, opt Options) *Trace {
			tr, _ := DistributedSouthwell(a, b, x, opt)
			return tr
		},
	}
}

// Every method must (a) reduce the residual over 3 sweeps of a Poisson
// problem and (b) report a final trace norm that matches the true residual
// of the x it produced (the incremental-norm invariant).
func TestMethodsReduceResidualAndTrackNormExactly(t *testing.T) {
	for name, run := range allMethods() {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := problem.Poisson2D(20, 20)
			b, x := testSystem(t, a, 1)
			tr := run(a, b, x, Options{MaxRelax: 3 * a.N})
			fin := tr.Final()
			if fin.ResNorm >= 1 {
				t.Errorf("no progress: final norm %g", fin.ResNorm)
			}
			if got := exactNorm(a, b, x); math.Abs(got-fin.ResNorm) > 1e-8 {
				t.Errorf("trace norm %g != exact %g", fin.ResNorm, got)
			}
			if fin.CumRelax < 3*a.N {
				t.Errorf("relaxations %d < requested %d", fin.CumRelax, 3*a.N)
			}
		})
	}
}

func TestGaussSeidelBeatsJacobiPerRelaxation(t *testing.T) {
	a := problem.Poisson2D(25, 25)
	b, x1 := testSystem(t, a, 2)
	x2 := append([]float64(nil), x1...)
	gs := GaussSeidel(a, b, x1, Options{MaxRelax: 2 * a.N})
	ja := Jacobi(a, b, x2, Options{MaxRelax: 2 * a.N})
	if gs.Final().ResNorm >= ja.Final().ResNorm {
		t.Errorf("GS %g should beat Jacobi %g", gs.Final().ResNorm, ja.Final().ResNorm)
	}
}

// Figure 2 shape: Sequential Southwell needs notably fewer relaxations than
// Gauss-Seidel to reach low accuracy (the paper reports about half at 0.6).
func TestSouthwellBeatsGSAtLowAccuracy(t *testing.T) {
	a := problem.Fig2FEM()
	b, x1 := testSystem(t, a, 3)
	x2 := append([]float64(nil), x1...)
	sw := SequentialSouthwell(a, b, x1, Options{MaxRelax: 3 * a.N, TargetNorm: 0.6})
	gs := GaussSeidel(a, b, x2, Options{MaxRelax: 3 * a.N, TargetNorm: 0.6})
	swRelax, ok1 := sw.RelaxAtNorm(0.6)
	gsRelax, ok2 := gs.RelaxAtNorm(0.6)
	if !ok1 || !ok2 {
		t.Fatalf("targets not reached: sw=%v gs=%v", ok1, ok2)
	}
	if float64(swRelax) > 0.75*float64(gsRelax) {
		t.Errorf("SW took %d relaxations vs GS %d; want clear win", swRelax, gsRelax)
	}
}

// Parallel Southwell relaxes an independent set whose convergence per
// relaxation stays close to Sequential Southwell (Figure 2).
func TestParallelSouthwellTracksSequential(t *testing.T) {
	a := problem.Fig2FEM()
	b, x1 := testSystem(t, a, 4)
	x2 := append([]float64(nil), x1...)
	ps := ParallelSouthwell(a, b, x1, Options{MaxRelax: a.N})
	sw := SequentialSouthwell(a, b, x2, Options{MaxRelax: a.N})
	// At the same relaxation budget, ParSW should be within 25% of SW's
	// residual reduction (log scale would be stricter; this is the paper's
	// qualitative claim).
	if ps.Final().ResNorm > sw.Final().ResNorm*1.35 {
		t.Errorf("ParSW %g too far behind SW %g", ps.Final().ResNorm, sw.Final().ResNorm)
	}
	// And it must use far fewer parallel steps than relaxations.
	if ps.NumSteps() >= ps.TotalRelaxations()/2 {
		t.Errorf("ParSW parallelism too low: %d steps for %d relaxations",
			ps.NumSteps(), ps.TotalRelaxations())
	}
}

func TestParallelSouthwellRelaxedSetIndependent(t *testing.T) {
	// Re-run the selection logic externally: after one step, every relaxed
	// row's residual must be exactly zero unless a neighbor also relaxed —
	// and with exact residuals the selected set is independent, so all
	// relaxed rows must have r == 0 after step 1.
	a := problem.FEM2D(15, 0.3, 5)
	b, x := testSystem(t, a, 5)
	tr := ParallelSouthwell(a, b, x, Options{MaxSteps: 1, MaxRelax: a.N})
	if tr.NumSteps() != 1 {
		t.Fatalf("steps = %d", tr.NumSteps())
	}
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	zeroCount := 0
	for _, v := range r {
		if v == 0 {
			zeroCount++
		}
	}
	if zeroCount < tr.Final().Relaxations {
		t.Errorf("only %d exactly-zero residuals after relaxing %d independent rows",
			zeroCount, tr.Final().Relaxations)
	}
}

func TestDistSWGammaTildeInvariant(t *testing.T) {
	debugDistSW = true
	defer func() { debugDistSW = false }()
	a := problem.FEM2D(12, 0.35, 6)
	b, x := testSystem(t, a, 6)
	tr, _ := DistributedSouthwell(a, b, x, Options{MaxRelax: 4 * a.N})
	if tr.Final().ResNorm >= 1 {
		t.Error("no progress under invariant checking")
	}
}

// Figure 5 shape: Distributed Southwell closely matches Parallel Southwell
// down to low accuracy (residual 0.6), using estimated residuals.
func TestDistSWTracksParSWAtLowAccuracy(t *testing.T) {
	a := problem.Fig2FEM()
	b, x1 := testSystem(t, a, 7)
	x2 := append([]float64(nil), x1...)
	ds, _ := DistributedSouthwell(a, b, x1, Options{MaxRelax: 3 * a.N, TargetNorm: 0.6})
	ps := ParallelSouthwell(a, b, x2, Options{MaxRelax: 3 * a.N, TargetNorm: 0.6})
	dsRelax, ok1 := ds.RelaxAtNorm(0.6)
	psRelax, ok2 := ps.RelaxAtNorm(0.6)
	if !ok1 || !ok2 {
		t.Fatalf("targets not reached: ds=%v ps=%v", ok1, ok2)
	}
	if float64(dsRelax) > 1.4*float64(psRelax) {
		t.Errorf("DistSW %d relaxations vs ParSW %d at norm 0.6", dsRelax, psRelax)
	}
}

// Distributed Southwell relaxes more rows per parallel step than Parallel
// Southwell (paper §3: inexact estimates admit more simultaneous work).
func TestDistSWMoreActiveThanParSW(t *testing.T) {
	a := problem.Fig2FEM()
	b, x1 := testSystem(t, a, 8)
	x2 := append([]float64(nil), x1...)
	ds, _ := DistributedSouthwell(a, b, x1, Options{MaxRelax: 2 * a.N})
	ps := ParallelSouthwell(a, b, x2, Options{MaxRelax: 2 * a.N})
	dsPerStep := float64(ds.TotalRelaxations()) / float64(ds.NumSteps())
	psPerStep := float64(ps.TotalRelaxations()) / float64(ps.NumSteps())
	if dsPerStep <= psPerStep {
		t.Errorf("DistSW %f relax/step should exceed ParSW %f", dsPerStep, psPerStep)
	}
}

func TestDistSWNoDeadlock(t *testing.T) {
	// Run to a tight target; the deadlock-avoidance mechanism must keep the
	// method progressing (the 2016 variant stalls here).
	a := problem.Poisson2D(12, 12)
	b, x := testSystem(t, a, 9)
	tr, stats := DistributedSouthwell(a, b, x, Options{MaxRelax: 200 * a.N, TargetNorm: 1e-6})
	if tr.Final().ResNorm > 1e-6 {
		t.Fatalf("did not reach 1e-6: %g after %d relaxations", tr.Final().ResNorm, tr.TotalRelaxations())
	}
	if stats.SolveMsgs == 0 {
		t.Error("no solve messages counted")
	}
}

func TestDistSWCommLowerThanParSWExplicit(t *testing.T) {
	// The point of the method: fewer residual-update messages than the
	// "always update neighbors" policy would send. ParSW in the scalar
	// simulator does not count messages, so compare DS residual messages
	// against the bound ParSW would pay: every norm change broadcast to all
	// neighbors. DS must be well under nnz-per-sweep scale.
	a := problem.Fig2FEM()
	b, x := testSystem(t, a, 10)
	tr, stats := DistributedSouthwell(a, b, x, Options{MaxRelax: 2 * a.N})
	if stats.ResidualMsgs >= stats.SolveMsgs {
		t.Errorf("residual msgs %d should be below solve msgs %d (paper Table 3 shape)",
			stats.ResidualMsgs, stats.SolveMsgs)
	}
	_ = tr
}

func TestMulticolorGSStepsMatchColors(t *testing.T) {
	a := problem.Fig2FEM()
	b, x := testSystem(t, a, 11)
	tr := MulticolorGS(a, b, x, Options{MaxRelax: a.N})
	// One sweep = NumColors parallel steps.
	if tr.NumSteps() < 3 || tr.NumSteps() > 9 {
		t.Errorf("steps per sweep = %d, want the color count (3..9)", tr.NumSteps())
	}
	if tr.TotalRelaxations() < a.N {
		t.Errorf("sweep incomplete: %d of %d", tr.TotalRelaxations(), a.N)
	}
}

func TestTargetNormStopsEarly(t *testing.T) {
	a := problem.Poisson2D(15, 15)
	b, x := testSystem(t, a, 12)
	tr := GaussSeidel(a, b, x, Options{MaxRelax: 100 * a.N, TargetNorm: 0.5})
	if tr.Final().ResNorm > 0.5 {
		t.Error("target not reached")
	}
	if tr.Final().CumRelax >= 100*a.N {
		t.Error("did not stop early")
	}
}

func TestSequentialSouthwellAlwaysRelaxesMax(t *testing.T) {
	a := problem.Poisson2D(8, 8)
	b, x := testSystem(t, a, 13)
	// After each relaxation, the relaxed row's residual is zero; we verify
	// monotone residual decrease in the A-norm sense is not required, but
	// the max-residual row choice means ‖r‖∞ never grows from relaxing it
	// alone on a unit-diagonal M-matrix Poisson problem.
	tr := SequentialSouthwell(a, b, x, Options{MaxRelax: 5 * a.N})
	if tr.Final().ResNorm >= 0.9 {
		t.Errorf("SW stalled: %g", tr.Final().ResNorm)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{}
	if tr.Final() != (StepRecord{}) {
		t.Error("empty Final not zero")
	}
	if _, ok := tr.RelaxAtNorm(0.5); ok {
		t.Error("empty RelaxAtNorm should fail")
	}
	tr.Steps = append(tr.Steps, StepRecord{Step: 1, Relaxations: 3, CumRelax: 3, ResNorm: 0.4})
	if got, ok := tr.RelaxAtNorm(0.5); !ok || got != 3 {
		t.Errorf("RelaxAtNorm = %d, %v", got, ok)
	}
}

// Property: on random SPD FEM problems, every method's trace norm matches
// the true residual of the solution vector it leaves behind.
func TestQuickTraceNormMatchesTrueResidual(t *testing.T) {
	methods := allMethods()
	f := func(seed int64) bool {
		m := 6 + int(seed%8+8)%8
		a := problem.FEM2D(m, 0.3, seed)
		if _, err := sparse.Scale(a); err != nil {
			return false
		}
		for _, run := range methods {
			b, x := problem.RandomBSystem(a, seed)
			tr := run(a, b, x, Options{MaxRelax: 2 * a.N})
			if math.Abs(exactNorm(a, b, x)-tr.Final().ResNorm) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
