package solvers

import (
	"math"

	"southwell/internal/pqueue"
	"southwell/internal/sparse"
)

// SequentialSouthwell runs the (Gauss-)Southwell method: each step relaxes
// the single row with the largest |r_i| (§2.2). The max is tracked with an
// indexed heap so each relaxation costs O(deg · log n). Every relaxation is
// its own parallel step.
func SequentialSouthwell(a *sparse.CSR, b, x []float64, opt Options) *Trace {
	tr := &Trace{Method: "SW"}
	n := a.N
	s := newState(a, b, x)
	prio := make([]float64, n)
	for i, v := range s.r {
		prio[i] = math.Abs(v)
	}
	h := pqueue.New(prio)
	for {
		i, p := h.Max()
		if p == 0 {
			// Residual exactly zero: nothing to relax.
			return tr
		}
		s.relaxRow(i)
		cols, _ := a.Row(i)
		for _, j := range cols {
			h.Update(j, math.Abs(s.r[j]))
		}
		rec := StepRecord{Step: len(tr.Steps) + 1, Relaxations: 1, CumRelax: s.relax, ResNorm: s.norm()}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr
		}
	}
}

// parallelSouthwellCriterion reports whether row i should relax given its
// own magnitude ri and the magnitudes held for its neighborhood: ri must be
// maximal, with exact ties broken toward the lower index so that the
// relaxed set stays independent and at least one row always qualifies.
func winsOver(ri float64, i int, rj float64, j int) bool {
	// Bit-exact by design: both rows evaluate the same pair, so the
	// tie-break must agree exactly or the relaxed set loses independence.
	if ri != rj { //dslint:ignore floatcmp

		return ri > rj
	}
	return i < j
}

// ParallelSouthwell runs the scalar Parallel Southwell method (§2.3): one
// parallel step relaxes every row whose residual magnitude is maximal
// within its neighborhood (the Parallel Southwell criterion, evaluated with
// exact residuals).
func ParallelSouthwell(a *sparse.CSR, b, x []float64, opt Options) *Trace {
	tr := &Trace{Method: "Par SW"}
	n := a.N
	s := newState(a, b, x)
	selected := make([]int, 0, n)
	for {
		selected = selected[:0]
		for i := 0; i < n; i++ {
			ri := math.Abs(s.r[i])
			if ri == 0 {
				continue
			}
			wins := true
			cols, _ := a.Row(i)
			for _, j := range cols {
				if j == i {
					continue
				}
				if !winsOver(ri, i, math.Abs(s.r[j]), j) {
					wins = false
					break
				}
			}
			if wins {
				selected = append(selected, i)
			}
		}
		if len(selected) == 0 {
			// All residuals zero (or isolated ties resolved away): done.
			return tr
		}
		// The selected set is independent, so relaxing sequentially equals
		// relaxing simultaneously.
		for _, i := range selected {
			s.relaxRow(i)
		}
		rec := StepRecord{
			Step:        len(tr.Steps) + 1,
			Relaxations: len(selected),
			CumRelax:    s.relax,
			ResNorm:     s.norm(),
		}
		tr.Steps = append(tr.Steps, rec)
		if opt.done(rec, n) {
			return tr
		}
	}
}
