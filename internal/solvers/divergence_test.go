package solvers

import (
	"testing"

	"southwell/internal/color"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

// The scalar mechanism behind the paper's Block Jacobi failures: on a
// unit-diagonal SPD matrix with spectral radius beyond 2 (the biharmonic
// plate operator), point Jacobi diverges while Gauss-Seidel — and the
// Southwell family, which relaxes (near-)independent sets — converges.
func TestJacobiDivergesOnPlateGSDoesNot(t *testing.T) {
	build := func() (*sparse.CSR, []float64, []float64) {
		a := problem.Biharmonic2D(16, 16)
		if _, err := sparse.Scale(a); err != nil {
			t.Fatal(err)
		}
		b, x := problem.RandomBSystem(a, 31)
		return a, b, x
	}
	a, b, x := build()
	ja := Jacobi(a, b, x, Options{MaxRelax: 60 * a.N})
	if ja.Final().ResNorm < 1 {
		t.Fatalf("Jacobi unexpectedly converged: %g", ja.Final().ResNorm)
	}
	a2, b2, x2 := build()
	gs := GaussSeidel(a2, b2, x2, Options{MaxRelax: 60 * a2.N})
	if gs.Final().ResNorm >= 1 {
		t.Errorf("Gauss-Seidel diverged on SPD matrix: %g", gs.Final().ResNorm)
	}
	a3, b3, x3 := build()
	ps := ParallelSouthwell(a3, b3, x3, Options{MaxRelax: 10 * a3.N})
	if ps.Final().ResNorm >= 1 {
		t.Errorf("Parallel Southwell diverged: %g", ps.Final().ResNorm)
	}
	// Scalar Distributed Southwell carries the §4.3 caveat: with inexact
	// estimates, adjacent rows can relax simultaneously, and on a spectrum
	// this extreme (λmax > 2) that Jacobi-like behaviour can diverge. The
	// block form with subdomain GS sweeps converges on the same operator
	// (see dmem.TestSouthwellMethodsStableOnPlate); here we only record
	// the scalar outcome rather than assert it.
	a4, b4, x4 := build()
	ds, _ := DistributedSouthwell(a4, b4, x4, Options{MaxRelax: 10 * a4.N})
	t.Logf("scalar Distributed Southwell on plate: final ||r|| = %g (divergence is a known risk)", ds.Final().ResNorm)
}

func TestMulticolorGSWithExplicitColoring(t *testing.T) {
	a := problem.Poisson2D(10, 10)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	c := color.Greedy(a)
	b, x := problem.RandomBSystem(a, 32)
	tr := MulticolorGSWith(a, b, x, c, Options{MaxRelax: a.N})
	if tr.NumSteps() != c.NumColors {
		t.Errorf("one sweep = %d steps, want %d colors", tr.NumSteps(), c.NumColors)
	}
}

func TestDistSWExactBudgetAcrossBudgets(t *testing.T) {
	a := problem.Poisson2D(12, 12)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 7, a.N / 2, a.N, 2*a.N + 3} {
		b, x := problem.RandomBSystem(a, 33)
		tr, _ := DistributedSouthwell(a, b, x, Options{MaxRelax: budget, ExactBudget: true, Seed: 5})
		if tr.TotalRelaxations() != budget {
			t.Errorf("budget %d: relaxed %d", budget, tr.TotalRelaxations())
		}
	}
}
