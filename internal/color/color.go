// Package color implements greedy graph multicoloring for the Multicolor
// Gauss-Seidel method (§2.1 of the paper). Colors are assigned greedily in
// a breadth-first traversal order, the strategy the paper uses ("we assign
// colors using a breadth-first traversal"); rows in one color class form an
// independent set and can be relaxed in a single parallel step.
package color

import "southwell/internal/sparse"

// Coloring is a graph coloring: Color[i] in [0, NumColors).
type Coloring struct {
	Color     []int
	NumColors int
}

// Greedy colors the adjacency graph of a (off-diagonal structure) greedily
// in BFS order starting from vertex 0 (and continuing component by
// component). Every vertex gets the smallest color not used by an already
// colored neighbor.
func Greedy(a *sparse.CSR) Coloring {
	n := a.N
	col := make([]int, n)
	for i := range col {
		col[i] = -1
	}
	forbidden := make([]int, 0, 64) // stamp array: forbidden[c] == vertex+1
	numColors := 0

	queue := make([]int, 0, n)
	visited := make([]bool, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cols, _ := a.Row(v)
			// Find the smallest color unused among neighbors.
			for len(forbidden) < numColors+2 {
				forbidden = append(forbidden, 0)
			}
			for _, u := range cols {
				if u == v {
					continue
				}
				if c := col[u]; c >= 0 {
					if c >= len(forbidden) {
						grow := make([]int, c+1-len(forbidden))
						forbidden = append(forbidden, grow...)
					}
					forbidden[c] = v + 1
				}
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
			c := 0
			for c < len(forbidden) && forbidden[c] == v+1 {
				c++
			}
			col[v] = c
			if c+1 > numColors {
				numColors = c + 1
			}
		}
	}
	return Coloring{Color: col, NumColors: numColors}
}

// Classes returns the vertices of each color class, in ascending vertex
// order within a class.
func (c Coloring) Classes() [][]int {
	classes := make([][]int, c.NumColors)
	for v, cv := range c.Color {
		classes[cv] = append(classes[cv], v)
	}
	return classes
}

// Valid reports whether no two adjacent vertices of a share a color.
func (c Coloring) Valid(a *sparse.CSR) bool {
	for v := 0; v < a.N; v++ {
		cols, _ := a.Row(v)
		for _, u := range cols {
			if u != v && c.Color[u] == c.Color[v] {
				return false
			}
		}
	}
	return true
}
