package color

import (
	"testing"
	"testing/quick"

	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func TestGreedyOnGrid(t *testing.T) {
	a := problem.Poisson2D(10, 10)
	c := Greedy(a)
	if !c.Valid(a) {
		t.Fatal("invalid coloring")
	}
	// 5-point grids are bipartite: BFS-greedy should find exactly 2 colors.
	if c.NumColors != 2 {
		t.Errorf("grid colors = %d, want 2", c.NumColors)
	}
}

func TestGreedyOnFEM(t *testing.T) {
	a := problem.FEM2D(20, 0.3, 3)
	c := Greedy(a)
	if !c.Valid(a) {
		t.Fatal("invalid coloring")
	}
	// Triangulations need >= 3 colors; greedy BFS typically 4-7 (paper: 6).
	if c.NumColors < 3 || c.NumColors > 9 {
		t.Errorf("FEM colors = %d, want 3..9", c.NumColors)
	}
}

func TestClassesPartition(t *testing.T) {
	a := problem.Poisson2D(7, 5)
	c := Greedy(a)
	seen := make([]bool, a.N)
	total := 0
	for _, class := range c.Classes() {
		prev := -1
		for _, v := range class {
			if v <= prev {
				t.Fatal("class not ascending")
			}
			prev = v
			if seen[v] {
				t.Fatal("vertex in two classes")
			}
			seen[v] = true
			total++
		}
	}
	if total != a.N {
		t.Fatalf("classes cover %d of %d vertices", total, a.N)
	}
}

func TestGreedyDisconnected(t *testing.T) {
	// Two disconnected triangles.
	coo := sparse.NewCOO(6, 12)
	tri := func(base int) {
		coo.AddSym(base, base+1, -1)
		coo.AddSym(base+1, base+2, -1)
		coo.AddSym(base, base+2, -1)
	}
	tri(0)
	tri(3)
	for i := 0; i < 6; i++ {
		coo.Add(i, i, 3)
	}
	a := coo.ToCSR()
	c := Greedy(a)
	if !c.Valid(a) {
		t.Fatal("invalid coloring on disconnected graph")
	}
	if c.NumColors != 3 {
		t.Errorf("triangle needs 3 colors, got %d", c.NumColors)
	}
}

func TestQuickColoringValid(t *testing.T) {
	f := func(seed int64) bool {
		a := problem.FEM2D(5+int(seed%10+10)%10, 0.3, seed)
		c := Greedy(a)
		if !c.Valid(a) {
			return false
		}
		for _, cv := range c.Color {
			if cv < 0 || cv >= c.NumColors {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
