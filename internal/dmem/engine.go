package dmem

import (
	"southwell/internal/obs"
	"southwell/internal/rma"
)

// Active-set step engine (DESIGN.md §14). Distributed and Parallel
// Southwell relax only local residual-norm maxima, so at paper scale most
// ranks spend most steps provably idle: empty window, unchanged state, and
// a decision that a replay of last step's hold. The engine tracks exactly
// that quiescence and dispatches each phase over the active subset through
// rma.RunPhaseActive, charging sleepers their unconditional phase-1 flops
// (the Degree() decision scan) through the idle vector so simulated time,
// message statistics, and chaos schedules stay bit-identical to dense
// stepping.
//
// The quiescence invariant: a rank may sleep only after an executed step
// in which it did not relax and read no mail. Its state is then unchanged
// since a step in which it held, and every step function is deterministic
// in (state, inbox), so dense stepping would reproduce that hold — and its
// phase-2 triggers are self-extinguishing (a fired send sets the trigger's
// guard variable to its threshold) — for as long as the state stays
// unchanged. State can change only through its own relaxation (it is
// asleep), a landed message (the boundary scans catch every landing,
// including chaos-delayed deliveries and windows retained across pauses),
// or the starvation clock (converted from a per-step poll into a stamped
// counter plus a wakeup calendar). Waking a clean rank is always safe: its
// executed step is an exact no-op beyond the idle charge, so running any
// superset of the minimal active set is bit-identical — running all ranks
// IS dense stepping.
//
// Methods declare their own quiescence rules by how they drive the engine:
// DS (starvation stamps + wakeup calendar under chaos), PS (no starvation
// clock), BJ (never quiescent — every rank relaxes unconditionally every
// step, so it stays on the dense RunPhases path by construction).

// activeEligible reports whether this configuration can run the active-set
// step engine. Dense opts out explicitly; the neighborhood scheduler runs
// whole step groups per rank (the active set is a per-phase, driver-side
// notion, and SchedNeighbor already pipelines idle ranks cheaply); host-
// time fault hooks (SpinStragglers, HostDelay) stall only executed ranks,
// so skipping would under-stall the wall clock those studies measure.
func (c Config) activeEligible() bool {
	if c.Dense || c.Sched == rma.SchedNeighbor {
		return false
	}
	if f := c.Faults; f != nil && (f.SpinStragglers || f.HostDelay != nil) {
		return false
	}
	return true
}

// stepEngine tracks the active set for one run. All fields are touched
// only on the driving goroutine, between phases.
type stepEngine struct {
	w      *rma.World
	states []*rankState
	dense  bool // fall back to w.RunPhases for every step

	starve       bool // DS under chaos: starvation stamps + wakeup calendar
	refreshAfter int

	inSet   []bool    // rank executes the current step's remaining phases
	sawMail []bool    // rank's window was nonempty at a boundary this step
	idleDeg []float64 // phase-1 idle charge: the unconditional Degree() scan
	// list mirrors inSet as an ascending member list — the O(active) view
	// every per-step walk (phase dispatch, flag reset, norm tally, sleep
	// scan) runs over instead of all P. Admissions mark it dirty and
	// syncList rebuilds it lazily, so the O(P) rebuild is paid only on
	// steps where membership grew; endStep compacts removals in place.
	list      []int32
	listDirty bool
	// calendar maps a future step to the ranks whose starvation refresh
	// first fires there. Consumed by exact-key lookup at beginStep, never
	// iterated, so map order cannot influence the run.
	calendar map[int][]int32

	active int   // current membership count, maintained by admit/endStep
	hist   []int // per-step phase-1 active counts → Result.ActiveHist
}

// newStepEngine builds the engine for one run. starvation marks methods
// with a starvation re-announce clock (DS); it matters only under a fault
// plan, mirroring the dense drivers' `chaotic` guard.
func newStepEngine(w *rma.World, states []*rankState, cfg Config, starvation bool) *stepEngine {
	e := &stepEngine{w: w, states: states}
	if !cfg.activeEligible() {
		e.dense = true
		return e
	}
	p := len(states)
	e.inSet = make([]bool, p)
	e.sawMail = make([]bool, p)
	e.idleDeg = make([]float64, p)
	e.list = make([]int32, p)
	for i, rs := range states {
		e.inSet[i] = true // step 1 runs densely: no hold has been observed yet
		e.idleDeg[i] = float64(rs.rd.Degree())
		e.list[i] = int32(i)
	}
	e.active = p
	e.hist = make([]int, 0, cfg.steps())
	if starvation && cfg.Faults != nil {
		e.starve = true
		e.refreshAfter = (cfg.watchdogWindow() + 1) / 2
		e.calendar = make(map[int][]int32)
	}
	return e
}

// admit ensures rank p executes the step's remaining phases, reconciling
// its lazily-stamped starvation counter on the sleep→active edge so the
// phase-2 refresh test reads exactly the value dense stepping would have
// accumulated by the end of step-1.
func (e *stepEngine) admit(p, step int, mail bool) {
	if mail {
		e.sawMail[p] = true
	}
	if e.inSet[p] {
		return
	}
	e.inSet[p] = true
	e.active++
	e.listDirty = true
	if e.starve {
		// While asleep the rank neither relaxed nor received, so dense
		// stepping would have incremented starved once per step since the
		// stamp.
		rs := e.states[p]
		rs.starved += (step - 1) - rs.starveStamp
		rs.starveStamp = step - 1
	}
}

// scanMail admits every rank with a nonempty window. Run after every
// delivery boundary: it is what wakes sleepers for landed traffic —
// neighbor sends, chaos-delayed releases, and windows retained across a
// pause all look the same here. A skipped rank never drains its window
// (the next boundary would discard it), so a nonempty window forces
// execution even when every landing is a fault-injected duplicate.
func (e *stepEngine) scanMail(step int) {
	// LiveInboxes is exactly the set of nonempty windows on the barrier
	// delivery path (including windows retained across pauses), so the scan
	// is O(receivers), not O(P). SchedNeighbor — where the list is not
	// maintained — never runs the engine (activeEligible).
	for _, p := range e.w.LiveInboxes() {
		e.admit(int(p), step, true)
	}
}

// beginStep opens a step: fire calendar wakeups due now, wake ranks with
// landed mail, and record the phase-1 active count. Stale calendar entries
// (the rank was woken by mail meanwhile and its clock reset) wake a clean
// rank, which is a bit-identical no-op.
func (e *stepEngine) beginStep(step int) {
	if due, ok := e.calendar[step]; ok {
		delete(e.calendar, step)
		for _, p := range due {
			e.admit(int(p), step, false)
		}
	}
	e.scanMail(step)
	e.hist = append(e.hist, e.active)
}

// syncList rebuilds the member list from inSet if admissions dirtied it.
// Amortized free: membership grows only at wakeups, so quiescent-heavy
// runs rebuild on the rare step that admits and pay O(members) otherwise.
func (e *stepEngine) syncList() {
	if !e.listDirty {
		return
	}
	e.listDirty = false
	e.list = e.list[:0]
	for p, in := range e.inSet {
		if in {
			e.list = append(e.list, int32(p))
		}
	}
}

// resetRelaxed clears the per-step relax flags. Only current members can
// carry a stale flag: a rank is put to sleep only at the end of a step it
// did not relax in, and nothing sets the flag while it sleeps — so the
// dense O(P) pointer walk shrinks to the member list.
func (e *stepEngine) resetRelaxed() {
	e.syncList()
	for _, p := range e.list {
		e.states[p].relaxed = false
	}
}

// tally accumulates the step's relaxed-rank count and row total over the
// member set, refreshing each member's squared-local-norm slot on the way
// (norms2 feeds the flat global-norm sum, see flatNorm). Sleeping ranks
// need no visit on either count: they cannot hold a relax flag, and
// quiescence means an unchanged norm, so their slot is already current.
func (e *stepEngine) tally(norms2 []float64) (relaxedRanks, rows int) {
	e.syncList()
	for _, p := range e.list {
		rs := e.states[p]
		norms2[p] = rs.norm * rs.norm
		if rs.relaxed {
			relaxedRanks++
			rows += rs.rd.M()
		}
	}
	return
}

// runPhase executes one access epoch over the active set (idle is the
// per-rank flop charge dense stepping would make for a skipped rank; nil
// for zero-cost phases), then rescans windows: membership grows
// monotonically within a step, so a rank reached by phase-k traffic runs
// every later phase exactly as dense stepping would.
func (e *stepEngine) runPhase(step int, f func(rank int), idle []float64) {
	e.syncList()
	e.w.RunPhaseActive(e.inSet, e.list, idle, f)
	e.scanMail(step)
}

// endStep closes a step: executed ranks that changed state stay active,
// quiescent ones go to sleep. For starvation-clocked methods it also
// applies the dense per-step starvation rule to executed ranks (sleepers
// accumulate lazily via the stamp) and schedules the sleeper's refresh
// wakeup at the first step whose phase 2 would fire it.
func (e *stepEngine) endStep(step int) {
	e.syncList() // the post-phase-3 mail scan may have admitted ranks
	kept := e.list[:0]
	for _, p32 := range e.list {
		p := int(p32)
		rs := e.states[p]
		if e.starve {
			if rs.relaxed || rs.gotMsg {
				rs.starved = 0
			} else {
				rs.starved++
			}
			rs.gotMsg = false
			rs.starveStamp = step
		}
		if rs.relaxed || e.sawMail[p] {
			e.sawMail[p] = false
			kept = append(kept, p32) // in-place compaction keeps order
			continue                 // state changed: next step's decision must be evaluated
		}
		e.inSet[p] = false
		e.active--
		if e.starve {
			// Refresh fires in phase 2 of step u once starved at the end of
			// u-1 reaches refreshAfter; asleep, starved grows by one per
			// step from its stamped value.
			due := step + e.refreshAfter - rs.starved + 1
			if due <= step {
				due = step + 1
			}
			e.calendar[due] = append(e.calendar[due], int32(p))
		}
	}
	e.list = kept
}

// traceStep mirrors the step's active-set occupancy onto the trace's
// control track (skip rate = sleeping fraction). Dense runs emit nothing:
// there is no engine to observe.
func (e *stepEngine) traceStep(step int) {
	if e.dense {
		return
	}
	tr := e.w.Tracer()
	if tr == nil {
		return
	}
	// e.active has already been shrunk by endStep; the step's phase-1
	// occupancy is the hist entry beginStep recorded.
	p, executing := len(e.states), e.hist[len(e.hist)-1]
	tr.Emit(obs.Event{
		Kind:  obs.KindActiveSet,
		Rank:  obs.ControlRank,
		Step:  int32(step),
		A:     int32(executing),
		B:     int32(p - executing),
		V1:    float64(p-executing) / float64(p),
		Ts:    e.w.Now(),
		Phase: e.w.PhaseIndex(),
	})
}
