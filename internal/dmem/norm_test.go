package dmem

import (
	"math"
	"math/rand"
	"testing"
)

// TestComputeNormOverflow: ‖r‖ must come out finite when the squared sum
// overflows but the true norm is representable (|r_i| ≳ 1e154 squares past
// MaxFloat64). The fallback rescales by the max magnitude, two-pass.
func TestComputeNormOverflow(t *testing.T) {
	rs := &rankState{r: []float64{1e200, -1e200}}
	got := rs.computeNorm()
	want := 1e200 * math.Sqrt(2)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("computeNorm overflowed: %g", got)
	}
	if math.Abs(got-want)/want > 1e-15 {
		t.Errorf("computeNorm = %g, want %g", got, want)
	}

	// A single huge component: the norm is exactly that magnitude.
	rs = &rankState{r: []float64{0, 3e180, 0}}
	if got := rs.computeNorm(); got != 3e180 {
		t.Errorf("computeNorm = %g, want 3e180", got)
	}

	// Genuinely infinite input stays infinite — the fallback must not turn
	// a diverged residual into NaN (Inf * 0 in the rescale).
	rs = &rankState{r: []float64{math.Inf(1), 1}}
	if got := rs.computeNorm(); !math.IsInf(got, 1) {
		t.Errorf("computeNorm(Inf component) = %g, want +Inf", got)
	}
}

// TestComputeNormNormalPathBits: on non-overflowing data the fallback must
// never engage — the result is bit-identical to the naive single-pass
// sqrt(Σ r_i²), which is what every recorded history in the repo was built
// from.
func TestComputeNormNormalPathBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		r := make([]float64, n)
		for i := range r {
			r[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		rs := &rankState{r: r}
		s := 0.0
		for _, v := range r {
			s += v * v
		}
		if got, want := rs.computeNorm(), math.Sqrt(s); got != want {
			t.Fatalf("trial %d: computeNorm = %.17g, naive = %.17g", trial, got, want)
		}
	}
}
