package dmem

import (
	"reflect"
	"testing"

	"southwell/internal/partition"
	"southwell/internal/problem"
)

// TestLayoutDeterministic is the regression test behind the maporder
// analyzer's contract for this package: NewLayout ranges over several maps
// (extSet, nbrSet, NbrIdx) while building per-rank boundary/ghost indexing,
// and every one of those iterations must be collect-then-sort or read-only
// so that repeated constructions from identical inputs yield bit-identical
// layouts. Ten constructions must produce deeply equal RankData, including
// every exchange-plan slice whose order feeds message traffic.
func TestLayoutDeterministic(t *testing.T) {
	a := problem.Poisson2D(24, 24)
	part := partition.Partition(a, 7, partition.Options{Seed: 42})

	ref, err := NewLayout(a, part, 7)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 10; run++ {
		l, err := NewLayout(a, part, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(l.Rows, ref.Rows) || !reflect.DeepEqual(l.Local, ref.Local) {
			t.Fatalf("run %d: row ownership differs from run 0", run)
		}
		for p := range l.Ranks {
			got, want := l.Ranks[p], ref.Ranks[p]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("run %d: RankData for rank %d differs from run 0:\n got %+v\nwant %+v",
					run, p, got, want)
			}
		}
	}

	// The orderings the exchange plans rely on are not just stable but
	// sorted: neighbors and ext rows ascending (DESIGN.md layout contract).
	for p, rd := range ref.Ranks {
		for j := 1; j < len(rd.Nbrs); j++ {
			if rd.Nbrs[j-1] >= rd.Nbrs[j] {
				t.Errorf("rank %d: Nbrs not strictly ascending: %v", p, rd.Nbrs)
				break
			}
		}
		for j := 1; j < len(rd.ExtGlob); j++ {
			if rd.ExtGlob[j-1] >= rd.ExtGlob[j] {
				t.Errorf("rank %d: ExtGlob not strictly ascending: %v", p, rd.ExtGlob)
				break
			}
		}
		for j, q := range rd.Nbrs {
			if rd.NbrIdx[q] != j {
				t.Errorf("rank %d: NbrIdx[%d] = %d, want %d", p, q, rd.NbrIdx[q], j)
			}
		}
	}
}
