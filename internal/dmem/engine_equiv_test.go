package dmem

import (
	"testing"

	"southwell/internal/problem"
)

// TestEngineEquivalenceOnSuite is the DESIGN.md §6 ablation promoted to a
// permanent invariant: the persistent worker-pool engine must produce
// bit-identical StepStats histories (residual norms, message counts split
// by tag, simulated time) to the sequential engine, for every method, on
// real suite matrices. Run under -race via `make race` — the equivalence
// plus the race detector together prove the pool introduces neither
// nondeterminism nor data races.
func TestEngineEquivalenceOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	names := []string{"Hook_1498", "msdoor", "af_5_k101"}
	const ranks, steps = 64, 12
	for _, name := range names {
		e, ok := problem.SuiteByName(name)
		if !ok {
			t.Fatalf("unknown suite matrix %q", name)
		}
		for mname, run := range methods() {
			t.Run(name+"/"+mname, func(t *testing.T) {
				l, b, x := buildCase(t, e.Gen(), ranks, 1)
				seq := run(l, b, x, Config{Steps: steps})
				l2, b2, x2 := buildCase(t, e.Gen(), ranks, 1)
				par := run(l2, b2, x2, Config{Steps: steps, Parallel: true})
				if len(seq.History) != len(par.History) {
					t.Fatalf("history lengths differ: %d vs %d", len(seq.History), len(par.History))
				}
				for i := range seq.History {
					if seq.History[i] != par.History[i] {
						t.Fatalf("step %d differs:\nseq %+v\npool %+v", i, seq.History[i], par.History[i])
					}
				}
				if seq.Stats != par.Stats {
					t.Fatalf("cumulative stats differ:\nseq %+v\npool %+v", seq.Stats, par.Stats)
				}
				for i := range seq.X {
					if seq.X[i] != par.X[i] {
						t.Fatalf("solution differs at row %d: %.17g vs %.17g", i, seq.X[i], par.X[i])
					}
				}
			})
		}
	}
}
