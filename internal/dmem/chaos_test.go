package dmem

import (
	"testing"

	"southwell/internal/problem"
	"southwell/internal/rma"
)

// fullChaosPlan turns every fault class on at once: delays, duplicates,
// reordering, a straggler, and two pause windows.
func fullChaosPlan(seed int64) *rma.FaultPlan {
	return &rma.FaultPlan{
		Seed:        seed,
		DelayProb:   0.25,
		DelayMax:    3,
		DupProb:     0.15,
		ReorderProb: 0.4,
		Stragglers:  map[int]float64{1: 2.5},
		Pauses:      []rma.Pause{{Rank: 2, From: 4, To: 9}, {Rank: 5, From: 15, To: 18}},
	}
}

func chaosMethods() map[string]method {
	m := methods()
	m["Piggyback2016"] = Piggyback2016
	return m
}

// TestChaosEngineEquivalence: a chaos run is a deterministic function of
// the FaultPlan seed and identical on both engines — same history (step
// stats including fault counters), same cumulative stats, same solution,
// on the sequential engine run twice and on the worker-pool engine. Run
// under -race via `make race`.
func TestChaosEngineEquivalence(t *testing.T) {
	for mname, run := range chaosMethods() {
		mname, run := mname, run
		t.Run(mname, func(t *testing.T) {
			t.Parallel()
			results := make([]*Result, 3)
			for i, parallel := range []bool{false, false, true} {
				a := problem.Poisson2D(24, 24)
				l, b, x := buildCase(t, a, 8, 3)
				results[i] = run(l, b, x, Config{
					Steps: 20, Parallel: parallel, Faults: fullChaosPlan(7),
				})
			}
			seq := results[0]
			for i, other := range results[1:] {
				label := []string{"seq rerun", "pool"}[i]
				if len(seq.History) != len(other.History) {
					t.Fatalf("%s: history lengths differ: %d vs %d", label, len(seq.History), len(other.History))
				}
				for s := range seq.History {
					if seq.History[s] != other.History[s] {
						t.Fatalf("%s: step %d differs:\nseq  %+v\n%s %+v", label, s, seq.History[s], label, other.History[s])
					}
				}
				if seq.Stats != other.Stats {
					t.Fatalf("%s: stats differ:\nseq  %+v\n%s %+v", label, seq.Stats, label, other.Stats)
				}
				for r := range seq.X {
					if seq.X[r] != other.X[r] {
						t.Fatalf("%s: solution differs at row %d", label, r)
					}
				}
			}
			fin := seq.Final()
			if fin.Delayed == 0 || fin.Duped == 0 || fin.Reordered == 0 || fin.Paused == 0 {
				t.Errorf("plan injected nothing: %+v", fin)
			}
		})
	}
}

// TestChaosFaultCountersCumulative: the per-step fault counters recorded in
// StepStats are cumulative (non-decreasing) and zero at step 0.
func TestChaosFaultCountersCumulative(t *testing.T) {
	a := problem.Poisson2D(24, 24)
	l, b, x := buildCase(t, a, 8, 3)
	res := DistributedSouthwell(l, b, x, Config{Steps: 20, Faults: fullChaosPlan(7)})
	if h0 := res.History[0]; h0.Delayed != 0 || h0.Duped != 0 || h0.Reordered != 0 || h0.Paused != 0 {
		t.Errorf("step 0 has nonzero fault counters: %+v", h0)
	}
	for i := 1; i < len(res.History); i++ {
		prev, cur := res.History[i-1], res.History[i]
		if cur.Delayed < prev.Delayed || cur.Duped < prev.Duped ||
			cur.Reordered < prev.Reordered || cur.Paused < prev.Paused {
			t.Fatalf("fault counters decreased at step %d: %+v -> %+v", i, prev, cur)
		}
	}
}

// TestPerfectNetworkHasZeroFaultCounters: without an installed plan the new
// StepStats fields stay zero, so fault-free output is unchanged.
func TestPerfectNetworkHasZeroFaultCounters(t *testing.T) {
	a := problem.Poisson2D(24, 24)
	l, b, x := buildCase(t, a, 8, 3)
	res := DistributedSouthwell(l, b, x, Config{Steps: 10})
	for _, h := range res.History {
		if h.Delayed != 0 || h.Duped != 0 || h.Reordered != 0 || h.Paused != 0 {
			t.Fatalf("fault counters nonzero on perfect network: %+v", h)
		}
	}
}

// TestChaosDichotomyOnSuite is the paper's §2.4 dichotomy extended to an
// imperfect network (the acceptance invariant of the fault-injection
// layer): under delay-only faults on the Quick suite, Distributed
// Southwell still reaches the paper's 0.1 target without ever tripping the
// stagnation watchdog, while the 2016 piggyback variant stagnates and is
// detected.
func TestChaosDichotomyOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	const ranks, steps = 64, 120
	plan := rma.DelayPlan(11, 0.3, 3)
	for _, name := range []string{"Hook_1498", "msdoor", "af_5_k101"} {
		e, ok := problem.SuiteByName(name)
		if !ok {
			t.Fatalf("unknown suite matrix %q", name)
		}
		t.Run(name, func(t *testing.T) {
			l, b, x := buildCase(t, e.Gen(), ranks, 1)
			ds := DistributedSouthwell(l, b, x, Config{Steps: steps, Faults: plan})
			if ds.Deadlocked {
				t.Errorf("DS tripped the watchdog at step %d under delay-only faults", ds.DeadlockStep)
			}
			if _, reached := ds.StepsToNorm(0.1); !reached {
				t.Errorf("DS did not reach 0.1 in %d steps (final %g)", steps, ds.Final().ResNorm)
			}
			l2, b2, x2 := buildCase(t, e.Gen(), ranks, 1)
			pb := Piggyback2016(l2, b2, x2, Config{Steps: steps, Faults: plan})
			if !pb.Deadlocked {
				t.Errorf("Piggyback2016 not detected as stagnated (final %g)", pb.Final().ResNorm)
			}
		})
	}
}

// TestWatchdogPatienceWindow: when every rank is paused for longer than the
// run, nothing can ever progress but the fault layer never goes quiescent —
// the windowed patience rule must stop the run after Watchdog idle steps
// instead of burning the whole budget.
func TestWatchdogPatienceWindow(t *testing.T) {
	a := problem.Poisson2D(16, 16)
	l, b, x := buildCase(t, a, 4, 1)
	plan := &rma.FaultPlan{Seed: 1}
	for p := 0; p < 4; p++ {
		plan.Pauses = append(plan.Pauses, rma.Pause{Rank: p, From: 0, To: 1 << 30})
	}
	res := DistributedSouthwell(l, b, x, Config{Steps: 200, Watchdog: 6, Faults: plan})
	if !res.Deadlocked {
		t.Fatal("fully paused run not flagged as stagnated")
	}
	if res.DeadlockStep != 6 {
		t.Errorf("DeadlockStep = %d, want 6 (the patience window)", res.DeadlockStep)
	}
	if got := len(res.History) - 1; got != 6 {
		t.Errorf("ran %d steps, want 6", got)
	}
}
