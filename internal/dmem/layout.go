// Package dmem implements the paper's distributed-memory block methods over
// the simulated one-sided runtime of internal/rma:
//
//   - Block Jacobi (Algorithm 1),
//   - Parallel Southwell, block form (Algorithm 2),
//   - Distributed Southwell, block form (Algorithm 3) — the contribution,
//   - the 2016 piggyback-only variant of Parallel Southwell (ref [18]),
//     which can deadlock and is included for the paper's deadlock claim.
//
// Each simulated rank owns a contiguous set of matrix rows under a given
// partition, performs one local Gauss-Seidel sweep per relaxation (the
// -loc_solver gs default of the artifact), and exchanges boundary residual
// deltas, ghost residual values, and residual norms exactly as the paper's
// algorithms prescribe.
package dmem

import (
	"fmt"
	"sort"
	"sync"

	"southwell/internal/parallel"
	"southwell/internal/sparse"
)

// Layout is the static distribution of a matrix over P ranks: who owns
// which rows, and for every rank the local sparse structure plus the
// boundary/ghost indexing used for neighbor exchange. Building it
// corresponds to the paper's setup phase (METIS partition + neighbor
// discovery), which is not part of the measured solve.
type Layout struct {
	A     *sparse.CSR
	P     int
	Part  []int   // owner rank of each global row
	Rows  [][]int // Rows[p]: global rows owned by p, ascending
	Local []int   // Local[g]: local index of global row g within its owner

	Ranks []*RankData
}

// RankData is one rank's static view: a local matrix in split-CSR form
// where each row's entries are partitioned into local couplings (column
// owned by this rank) and external couplings (column owned by a neighbor),
// plus boundary exchange plans.
type RankData struct {
	P    int   // this rank
	Glob []int // global row ids, ascending; local index = position

	// Local matrix, split CSR: row li's local couplings are
	// LocCol/LocVal[LocPtr[li]:LocPtr[li+1]] (local column index), its
	// external couplings ExtCol/ExtVal[ExtPtr[li]:ExtPtr[li+1]] (ext-row
	// slot). Within a row the source column order is preserved inside each
	// class; local entries target r[] and ext entries target extDelta[]
	// (disjoint arrays), so the split sweep applies the identical update
	// sequence per memory location as an interleaved walk would — the
	// Gauss–Seidel bits are unchanged. uint32 columns halve the index
	// bandwidth of the hot sweep.
	LocPtr []int
	LocCol []uint32
	LocVal []float64
	ExtPtr []int
	ExtCol []uint32
	ExtVal []float64
	Diag   []float64
	NNZ    int // total off-diagonal entries, local + external

	// External rows: remote rows coupled to this rank's rows.
	ExtGlob  []int // global ids, ascending
	ExtOwner []int // owner rank per ext row

	// Neighbors, ascending rank order.
	Nbrs   []int
	NbrIdx map[int]int

	// Exchange plans, all indexed by neighbor position in Nbrs:
	// BndExt[j]: ext-row indices owned by neighbor j (the ghost layer z
	// covers exactly these); BndExtLocalInNbr[j]: the local index of each
	// such row inside neighbor j (for addressing residual deltas).
	BndExt           [][]int
	BndExtLocalInNbr [][]int
	// MyBnd[j]: local rows of this rank that couple into neighbor j (the
	// boundary points β whose residuals neighbor j ghosts);
	// MyBndExtInNbr[j]: the ext-slot index of each such row inside
	// neighbor j's ExtGlob.
	MyBnd         [][]int
	MyBndExtInNbr [][]int
}

// NewLayout distributes a (structurally symmetric) matrix over P ranks
// according to part. It validates the partition and the symmetry
// assumption the relaxation kernels rely on.
func NewLayout(a *sparse.CSR, part []int, p int) (*Layout, error) {
	if len(part) != a.N {
		return nil, fmt.Errorf("dmem: partition length %d != n %d", len(part), a.N)
	}
	l := &Layout{A: a, P: p, Part: part, Rows: make([][]int, p), Local: make([]int, a.N)}
	for g := 0; g < a.N; g++ {
		pr := part[g]
		if pr < 0 || pr >= p {
			return nil, fmt.Errorf("dmem: row %d has invalid rank %d", g, pr)
		}
		l.Local[g] = len(l.Rows[pr])
		l.Rows[pr] = append(l.Rows[pr], g)
	}
	for pr := 0; pr < p; pr++ {
		if len(l.Rows[pr]) == 0 {
			return nil, fmt.Errorf("dmem: rank %d owns no rows", pr)
		}
	}

	// Per-rank extraction: ranks are independent (each writes only its own
	// RankData from the read-only matrix and partition), so rank blocks fan
	// out over the shared pool. Each block reuses one pooled position
	// scratch across its ranks. Block boundaries never influence the
	// per-rank output, so the layout is identical for any worker count.
	l.Ranks = make([]*RankData, p)
	nb := rankBlockCount(p)
	blocks := parallel.SplitN(p, nb, make([]parallel.Range, 0, nb))
	var build parallel.Task
	build.F = func(b int) {
		sc := getLayoutScratch(a.N)
		for pr := blocks[b].Lo; pr < blocks[b].Hi; pr++ {
			l.Ranks[pr] = buildRank(a, l, pr, sc.pos)
		}
		putLayoutScratch(sc)
	}
	parallel.Default().Run(&build, nb)

	// Second pass: cross-rank slot addressing (needs all ExtGlob built).
	// Also per-rank independent; a rank records its first error and the
	// lowest-rank error wins, keeping failures deterministic.
	errs := make([]error, p)
	var address parallel.Task
	address.F = func(b int) {
		for pr := blocks[b].Lo; pr < blocks[b].Hi; pr++ {
			errs[pr] = addressRank(l, pr)
		}
	}
	parallel.Default().Run(&address, nb)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// addressRank resolves rank pr's exchange plans into its neighbors' local
// and ext-slot index spaces.
func addressRank(l *Layout, pr int) error {
	rd := l.Ranks[pr]
	for j, q := range rd.Nbrs {
		qd := l.Ranks[q]
		rd.BndExtLocalInNbr[j] = make([]int, len(rd.BndExt[j]))
		for k, e := range rd.BndExt[j] {
			rd.BndExtLocalInNbr[j][k] = l.Local[rd.ExtGlob[e]]
		}
		rd.MyBndExtInNbr[j] = make([]int, len(rd.MyBnd[j]))
		for k, li := range rd.MyBnd[j] {
			g := rd.Glob[li]
			s := sort.SearchInts(qd.ExtGlob, g)
			if s >= len(qd.ExtGlob) || qd.ExtGlob[s] != g {
				return fmt.Errorf("dmem: asymmetric coupling: row %d couples into rank %d but not back", g, q)
			}
			rd.MyBndExtInNbr[j][k] = s
		}
	}
	return nil
}

// rankBlockCount bounds the rank fan-out so at most a handful of position
// scratches (one per in-flight block, each a.N ints) are live at once.
func rankBlockCount(p int) int {
	w := parallel.Default().Workers()
	nb := 2 * w
	if nb > p {
		nb = p
	}
	if nb < 1 {
		nb = 1
	}
	return nb
}

// layoutScratch is the reusable extraction state: pos[g] is -1 when global
// row g is untouched, and otherwise holds g's slot in the current rank's
// ExtGlob (or 0 as a transient seen-marker while collecting). Every rank
// resets exactly the entries it touched, so a recycled scratch is all -1.
type layoutScratch struct {
	pos []int32
}

var layoutFree struct {
	mu   sync.Mutex
	list []*layoutScratch
}

func getLayoutScratch(n int) *layoutScratch {
	layoutFree.mu.Lock()
	var sc *layoutScratch
	if k := len(layoutFree.list); k > 0 {
		sc = layoutFree.list[k-1]
		layoutFree.list[k-1] = nil
		layoutFree.list = layoutFree.list[:k-1]
	}
	layoutFree.mu.Unlock()
	if sc == nil {
		sc = &layoutScratch{}
	}
	if len(sc.pos) < n {
		sc.pos = make([]int32, n)
		for i := range sc.pos {
			sc.pos[i] = -1
		}
	}
	return sc
}

func putLayoutScratch(sc *layoutScratch) {
	layoutFree.mu.Lock()
	layoutFree.list = append(layoutFree.list, sc)
	layoutFree.mu.Unlock()
}

// buildRank extracts rank p's local view. pos is the pooled extraction
// scratch (all -1 on entry, all -1 again on return): it serves first as a
// seen-marker while collecting external rows and then as an O(1) global →
// ext-slot index, replacing the per-entry binary search and the per-rank
// hash sets of the original implementation.
func buildRank(a *sparse.CSR, l *Layout, p int, pos []int32) *RankData {
	rows := l.Rows[p]
	nnzCap := 0
	for _, g := range rows {
		nnzCap += a.RowPtr[g+1] - a.RowPtr[g]
	}
	rd := &RankData{
		P:      p,
		Glob:   rows,
		LocPtr: make([]int, len(rows)+1),
		ExtPtr: make([]int, len(rows)+1),
		Diag:   make([]float64, len(rows)),
		NbrIdx: make(map[int]int),
	}
	// Collect external rows first for stable ext indexing.
	for _, g := range rows {
		lo, hi := a.RowPtr[g], a.RowPtr[g+1]
		for _, c := range a.Col[lo:hi] {
			if l.Part[c] != p && pos[c] < 0 {
				pos[c] = 0
				rd.ExtGlob = append(rd.ExtGlob, c)
			}
		}
	}
	sort.Ints(rd.ExtGlob)
	rd.ExtOwner = make([]int, len(rd.ExtGlob))
	for e, g := range rd.ExtGlob {
		pos[g] = int32(e)
		rd.ExtOwner[e] = l.Part[g]
	}
	// Neighbor ranks: the sorted, deduplicated external owners.
	nbrs := make([]int, len(rd.ExtOwner))
	copy(nbrs, rd.ExtOwner)
	sort.Ints(nbrs)
	rd.Nbrs = nbrs[:0]
	for _, q := range nbrs {
		if k := len(rd.Nbrs); k == 0 || rd.Nbrs[k-1] != q {
			rd.Nbrs = append(rd.Nbrs, q)
		}
	}
	for j, q := range rd.Nbrs {
		rd.NbrIdx[q] = j
	}
	rd.BndExt = make([][]int, len(rd.Nbrs))
	rd.BndExtLocalInNbr = make([][]int, len(rd.Nbrs))
	rd.MyBnd = make([][]int, len(rd.Nbrs))
	rd.MyBndExtInNbr = make([][]int, len(rd.Nbrs))
	for e := range rd.ExtGlob {
		j := rd.NbrIdx[rd.ExtOwner[e]]
		rd.BndExt[j] = append(rd.BndExt[j], e)
	}

	// Local matrix entries, split by coupling class. Local rows li ascend,
	// so "already recorded in MyBnd[j]" is just a last-element check — no
	// per-neighbor seen set. Exact sizes are known only after the walk, so
	// the append slices share the interleaved nnz capacity bound.
	rd.LocCol = make([]uint32, 0, nnzCap)
	rd.LocVal = make([]float64, 0, nnzCap)
	rd.ExtCol = make([]uint32, 0, nnzCap)
	rd.ExtVal = make([]float64, 0, nnzCap)
	for li, g := range rows {
		cols, vals := a.Row(g)
		for k, c := range cols {
			v := vals[k]
			if c == g {
				rd.Diag[li] = v
				continue
			}
			if l.Part[c] == p {
				rd.LocCol = append(rd.LocCol, uint32(l.Local[c]))
				rd.LocVal = append(rd.LocVal, v)
			} else {
				rd.ExtCol = append(rd.ExtCol, uint32(pos[c]))
				rd.ExtVal = append(rd.ExtVal, v)
				j := rd.NbrIdx[l.Part[c]]
				if mb := rd.MyBnd[j]; len(mb) == 0 || mb[len(mb)-1] != li {
					rd.MyBnd[j] = append(rd.MyBnd[j], li)
				}
			}
		}
		rd.LocPtr[li+1] = len(rd.LocVal)
		rd.ExtPtr[li+1] = len(rd.ExtVal)
	}
	rd.NNZ = len(rd.LocVal) + len(rd.ExtVal)
	// Leave the scratch all -1 for the next rank.
	for _, g := range rd.ExtGlob {
		pos[g] = -1
	}
	return rd
}

// M returns the number of local rows.
func (rd *RankData) M() int { return len(rd.Glob) }

// Degree returns the number of neighbor ranks.
func (rd *RankData) Degree() int { return len(rd.Nbrs) }

// NeighborLists returns every rank's neighbor list in the exact form
// rma.SetNeighborhoods wants (ascending, self-free, symmetric): the
// coupling neighborship of the layout IS the PSCW post/start group of the
// simulated one-sided runtime. The inner slices alias the layout's own
// (immutable) Nbrs slices; callers must not modify them.
func (l *Layout) NeighborLists() [][]int {
	lists := make([][]int, l.P)
	for p := range lists {
		lists[p] = l.Ranks[p].Nbrs
	}
	return lists
}
