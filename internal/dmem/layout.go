// Package dmem implements the paper's distributed-memory block methods over
// the simulated one-sided runtime of internal/rma:
//
//   - Block Jacobi (Algorithm 1),
//   - Parallel Southwell, block form (Algorithm 2),
//   - Distributed Southwell, block form (Algorithm 3) — the contribution,
//   - the 2016 piggyback-only variant of Parallel Southwell (ref [18]),
//     which can deadlock and is included for the paper's deadlock claim.
//
// Each simulated rank owns a contiguous set of matrix rows under a given
// partition, performs one local Gauss-Seidel sweep per relaxation (the
// -loc_solver gs default of the artifact), and exchanges boundary residual
// deltas, ghost residual values, and residual norms exactly as the paper's
// algorithms prescribe.
package dmem

import (
	"fmt"
	"sort"

	"southwell/internal/sparse"
)

// Layout is the static distribution of a matrix over P ranks: who owns
// which rows, and for every rank the local sparse structure plus the
// boundary/ghost indexing used for neighbor exchange. Building it
// corresponds to the paper's setup phase (METIS partition + neighbor
// discovery), which is not part of the measured solve.
type Layout struct {
	A     *sparse.CSR
	P     int
	Part  []int   // owner rank of each global row
	Rows  [][]int // Rows[p]: global rows owned by p, ascending
	Local []int   // Local[g]: local index of global row g within its owner

	Ranks []*RankData
}

// RankData is one rank's static view: a local matrix in CSR-like form where
// each entry is either local (column owned by this rank) or external
// (column owned by a neighbor), plus boundary exchange plans.
type RankData struct {
	P    int   // this rank
	Glob []int // global row ids, ascending; local index = position

	// Local matrix: entry k of row li couples to colLoc[k] (local index)
	// when colIsExt[k] is false, else to ext row colExt[k].
	RowPtr []int
	ColLoc []int
	ColExt []int
	IsExt  []bool
	Val    []float64
	Diag   []float64
	NNZ    int

	// External rows: remote rows coupled to this rank's rows.
	ExtGlob  []int // global ids, ascending
	ExtOwner []int // owner rank per ext row

	// Neighbors, ascending rank order.
	Nbrs   []int
	NbrIdx map[int]int

	// Exchange plans, all indexed by neighbor position in Nbrs:
	// BndExt[j]: ext-row indices owned by neighbor j (the ghost layer z
	// covers exactly these); BndExtLocalInNbr[j]: the local index of each
	// such row inside neighbor j (for addressing residual deltas).
	BndExt           [][]int
	BndExtLocalInNbr [][]int
	// MyBnd[j]: local rows of this rank that couple into neighbor j (the
	// boundary points β whose residuals neighbor j ghosts);
	// MyBndExtInNbr[j]: the ext-slot index of each such row inside
	// neighbor j's ExtGlob.
	MyBnd         [][]int
	MyBndExtInNbr [][]int
}

// NewLayout distributes a (structurally symmetric) matrix over P ranks
// according to part. It validates the partition and the symmetry
// assumption the relaxation kernels rely on.
func NewLayout(a *sparse.CSR, part []int, p int) (*Layout, error) {
	if len(part) != a.N {
		return nil, fmt.Errorf("dmem: partition length %d != n %d", len(part), a.N)
	}
	l := &Layout{A: a, P: p, Part: part, Rows: make([][]int, p), Local: make([]int, a.N)}
	for g := 0; g < a.N; g++ {
		pr := part[g]
		if pr < 0 || pr >= p {
			return nil, fmt.Errorf("dmem: row %d has invalid rank %d", g, pr)
		}
		l.Local[g] = len(l.Rows[pr])
		l.Rows[pr] = append(l.Rows[pr], g)
	}
	for pr := 0; pr < p; pr++ {
		if len(l.Rows[pr]) == 0 {
			return nil, fmt.Errorf("dmem: rank %d owns no rows", pr)
		}
	}

	l.Ranks = make([]*RankData, p)
	for pr := 0; pr < p; pr++ {
		l.Ranks[pr] = buildRank(a, l, pr)
	}
	// Second pass: cross-rank slot addressing (needs all ExtGlob built).
	for pr := 0; pr < p; pr++ {
		rd := l.Ranks[pr]
		for j, q := range rd.Nbrs {
			qd := l.Ranks[q]
			rd.BndExtLocalInNbr[j] = make([]int, len(rd.BndExt[j]))
			for k, e := range rd.BndExt[j] {
				rd.BndExtLocalInNbr[j][k] = l.Local[rd.ExtGlob[e]]
			}
			rd.MyBndExtInNbr[j] = make([]int, len(rd.MyBnd[j]))
			for k, li := range rd.MyBnd[j] {
				g := rd.Glob[li]
				s := sort.SearchInts(qd.ExtGlob, g)
				if s >= len(qd.ExtGlob) || qd.ExtGlob[s] != g {
					return nil, fmt.Errorf("dmem: asymmetric coupling: row %d couples into rank %d but not back", g, q)
				}
				rd.MyBndExtInNbr[j][k] = s
			}
		}
	}
	return l, nil
}

func buildRank(a *sparse.CSR, l *Layout, p int) *RankData {
	rows := l.Rows[p]
	rd := &RankData{
		P:      p,
		Glob:   rows,
		RowPtr: make([]int, len(rows)+1),
		Diag:   make([]float64, len(rows)),
		NbrIdx: make(map[int]int),
	}
	// Collect external rows first for stable ext indexing.
	extSet := map[int]bool{}
	for _, g := range rows {
		cols, _ := a.Row(g)
		for _, c := range cols {
			if l.Part[c] != p {
				extSet[c] = true
			}
		}
	}
	rd.ExtGlob = make([]int, 0, len(extSet))
	for g := range extSet {
		rd.ExtGlob = append(rd.ExtGlob, g)
	}
	sort.Ints(rd.ExtGlob)
	rd.ExtOwner = make([]int, len(rd.ExtGlob))
	nbrSet := map[int]bool{}
	for e, g := range rd.ExtGlob {
		rd.ExtOwner[e] = l.Part[g]
		nbrSet[l.Part[g]] = true
	}
	rd.Nbrs = make([]int, 0, len(nbrSet))
	for q := range nbrSet {
		rd.Nbrs = append(rd.Nbrs, q)
	}
	sort.Ints(rd.Nbrs)
	for j, q := range rd.Nbrs {
		rd.NbrIdx[q] = j
	}
	rd.BndExt = make([][]int, len(rd.Nbrs))
	rd.BndExtLocalInNbr = make([][]int, len(rd.Nbrs))
	rd.MyBnd = make([][]int, len(rd.Nbrs))
	rd.MyBndExtInNbr = make([][]int, len(rd.Nbrs))
	for e := range rd.ExtGlob {
		j := rd.NbrIdx[rd.ExtOwner[e]]
		rd.BndExt[j] = append(rd.BndExt[j], e)
	}

	// Local matrix entries.
	extIndex := func(g int) int { return sort.SearchInts(rd.ExtGlob, g) }
	myBndSeen := make([]map[int]bool, len(rd.Nbrs))
	for j := range myBndSeen {
		myBndSeen[j] = map[int]bool{}
	}
	for li, g := range rows {
		cols, vals := a.Row(g)
		for k, c := range cols {
			v := vals[k]
			if c == g {
				rd.Diag[li] = v
				continue
			}
			if l.Part[c] == p {
				rd.ColLoc = append(rd.ColLoc, l.Local[c])
				rd.ColExt = append(rd.ColExt, -1)
				rd.IsExt = append(rd.IsExt, false)
			} else {
				e := extIndex(c)
				rd.ColLoc = append(rd.ColLoc, -1)
				rd.ColExt = append(rd.ColExt, e)
				rd.IsExt = append(rd.IsExt, true)
				j := rd.NbrIdx[l.Part[c]]
				if !myBndSeen[j][li] {
					myBndSeen[j][li] = true
					rd.MyBnd[j] = append(rd.MyBnd[j], li)
				}
			}
			rd.Val = append(rd.Val, v)
		}
		rd.RowPtr[li+1] = len(rd.Val)
	}
	rd.NNZ = len(rd.Val)
	return rd
}

// M returns the number of local rows.
func (rd *RankData) M() int { return len(rd.Glob) }

// Degree returns the number of neighbor ranks.
func (rd *RankData) Degree() int { return len(rd.Nbrs) }
