package dmem

import (
	"testing"

	"southwell/internal/problem"
	"southwell/internal/rma"
)

// methodsWithPB is methods() plus the deadlock-prone piggyback variant: the
// neighborhood scheduler must be bit-identical on it too (watchdog timing
// depends on sim time, which depends on the per-phase cost folds).
func methodsWithPB() map[string]method {
	ms := methods()
	ms["Piggyback2016"] = Piggyback2016
	return ms
}

// assertSameRun fails unless two results are bit-identical in everything an
// engine could perturb: history, message statistics, simulated time, and the
// gathered solution.
func assertSameRun(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if len(want.History) != len(got.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", name, len(want.History), len(got.History))
	}
	for i := range want.History {
		if want.History[i] != got.History[i] {
			t.Fatalf("%s: step %d differs:\n  seq: %+v\n  nbr: %+v", name, i, want.History[i], got.History[i])
		}
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats differ:\n  seq: %+v\n  nbr: %+v", name, want.Stats, got.Stats)
	}
	if want.Deadlocked != got.Deadlocked || want.DeadlockStep != got.DeadlockStep {
		t.Fatalf("%s: deadlock outcome differs", name)
	}
	for i := range want.X {
		if want.X[i] != got.X[i] {
			t.Fatalf("%s: solution differs at %d: %g vs %g", name, i, want.X[i], got.X[i])
		}
	}
}

// TestNeighborSchedIdenticalHistory: the neighborhood-epoch pool engine is
// bit-identical to the sequential engine for every method, on a partition
// whose neighborhoods are a strict subset of the machine (so phases really
// do pipeline).
func TestNeighborSchedIdenticalHistory(t *testing.T) {
	a := problem.FEM2D(24, 0.3, 9)
	for name, run := range methodsWithPB() {
		l, b, x := buildCase(t, a.Clone(), 12, 9)
		seq := run(l, b, x, Config{Steps: 25})
		l2, b2, x2 := buildCase(t, a.Clone(), 12, 9)
		nbr := run(l2, b2, x2, Config{Steps: 25, Parallel: true, Sched: rma.SchedNeighbor})
		assertSameRun(t, name, seq, nbr)
		if name != "Piggyback2016" && nbr.SchedWaits == nil {
			t.Errorf("%s: neighborhood run reported no SchedWaits tally", name)
		}
		if seq.SchedWaits != nil {
			t.Errorf("%s: sequential run reported a SchedWaits tally", name)
		}
	}
}

// TestNeighborSchedChaosIdentical: with an RNG-free fault plan (stragglers,
// per-phase spikes, rank pauses) the neighborhood scheduler still reproduces
// the sequential engine bit for bit — including watchdog/deadlock behavior
// and the chaos cost multipliers.
func TestNeighborSchedChaosIdentical(t *testing.T) {
	plan := &rma.FaultPlan{
		Seed:               42,
		Stragglers:         map[int]float64{1: 4, 5: 2.5},
		StragglerPhaseProb: 0.2,
		Pauses:             []rma.Pause{{Rank: 2, From: 2, To: 5}, {Rank: 7, From: 4, To: 6}},
	}
	a := problem.Poisson2D(26, 26)
	for name, run := range methodsWithPB() {
		l, b, x := buildCase(t, a.Clone(), 13, 5)
		seq := run(l, b, x, Config{Steps: 20, Faults: plan})
		l2, b2, x2 := buildCase(t, a.Clone(), 13, 5)
		nbr := run(l2, b2, x2, Config{Steps: 20, Parallel: true, Sched: rma.SchedNeighbor, Faults: plan})
		assertSameRun(t, name+"/chaos", seq, nbr)
	}
}

// TestNeighborSchedRNGPlanFallsBack: plans with RNG-driven message faults
// (delay/dup/reorder draw from a shared stream in delivery order) cannot run
// under neighborhood pipelining; the engine silently falls back to the
// barrier discipline and stays bit-identical.
func TestNeighborSchedRNGPlanFallsBack(t *testing.T) {
	plan := &rma.FaultPlan{Seed: 7, DelayProb: 0.3, DupProb: 0.1}
	a := problem.Poisson2D(20, 20)
	l, b, x := buildCase(t, a.Clone(), 8, 3)
	seq := DistributedSouthwell(l, b, x, Config{Steps: 15, Faults: plan})
	l2, b2, x2 := buildCase(t, a.Clone(), 8, 3)
	nbr := DistributedSouthwell(l2, b2, x2, Config{Steps: 15, Parallel: true, Sched: rma.SchedNeighbor, Faults: plan})
	assertSameRun(t, "DS/rng-fallback", seq, nbr)
	if nbr.SchedWaits != nil {
		t.Error("fallback run should not report a SchedWaits tally")
	}
}
