package dmem

import (
	"math"
	"testing"

	"southwell/internal/parallel"
	"southwell/internal/problem"
	"southwell/internal/spdirect"
)

// TestEngineEquivalenceWithSparseLocal extends the engine-equivalence
// invariant to the exact local solvers: with LocalDirect (sparse LDLᵀ on
// every rank) and LocalAuto (per-rank crossover), the worker-pool engine
// must produce bit-identical histories, statistics, and solutions to the
// sequential engine on a real suite matrix. Run under -race via `make
// race`, this also proves the concurrent setup factorization is
// race-free.
func TestEngineEquivalenceWithSparseLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	e, ok := problem.SuiteByName("Hook_1498")
	if !ok {
		t.Fatal("unknown suite matrix Hook_1498")
	}
	const ranks, steps = 64, 12
	for _, local := range []LocalSolver{LocalDirect, LocalAuto} {
		for mname, run := range methods() {
			t.Run(mname, func(t *testing.T) {
				l, b, x := buildCase(t, e.Gen(), ranks, 1)
				seq := run(l, b, x, Config{Steps: steps, Local: local})
				l2, b2, x2 := buildCase(t, e.Gen(), ranks, 1)
				par := run(l2, b2, x2, Config{Steps: steps, Local: local, Parallel: true})
				if len(seq.History) != len(par.History) {
					t.Fatalf("history lengths differ: %d vs %d", len(seq.History), len(par.History))
				}
				for i := range seq.History {
					if seq.History[i] != par.History[i] {
						t.Fatalf("step %d differs:\nseq %+v\npool %+v", i, seq.History[i], par.History[i])
					}
				}
				if seq.Stats != par.Stats {
					t.Fatalf("cumulative stats differ:\nseq %+v\npool %+v", seq.Stats, par.Stats)
				}
				for i := range seq.X {
					if seq.X[i] != par.X[i] {
						t.Fatalf("solution differs at row %d: %.17g vs %.17g", i, seq.X[i], par.X[i])
					}
				}
			})
		}
	}
}

// factorAllRanks builds rank states for a fresh layout of matrix e and
// runs the concurrent setup factorization under the given policy.
func factorAllRanks(t *testing.T, e problem.SuiteEntry, ranks int, local LocalSolver) []*rankState {
	t.Helper()
	l, b, x := buildCase(t, e.Gen(), ranks, 1)
	states := newRankStates(l, b, x)
	configureLocal(states, Config{Local: local})
	return states
}

// TestLocalFactorWidthInvariant pins the determinism contract of the
// concurrent setup factorization: the factors produced by configureLocal
// are bit-identical at every kernel-pool width. Sparse factors are
// compared entry-by-entry (pattern, L values, pivots); dense factors via
// the solve they produce on a fixed right-hand side.
func TestLocalFactorWidthInvariant(t *testing.T) {
	e, ok := problem.SuiteByName("Hook_1498")
	if !ok {
		t.Fatal("unknown suite matrix Hook_1498")
	}
	const ranks = 48
	orig := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(orig)

	for _, local := range []LocalSolver{LocalDirect, LocalAuto} {
		parallel.SetDefaultWorkers(1)
		ref := factorAllRanks(t, e, ranks, local)
		for _, w := range []int{2, 4, 7} {
			parallel.SetDefaultWorkers(w)
			got := factorAllRanks(t, e, ranks, local)
			for p := range ref {
				rf, gf := ref[p].direct, got[p].direct
				sref, sok := rf.(*spdirect.Factor)
				sgot, gok := gf.(*spdirect.Factor)
				if sok != gok {
					t.Fatalf("local=%v width %d rank %d: backend choice differs", local, w, p)
				}
				if sok {
					compareSparseFactors(t, local, w, p, sref, sgot)
					continue
				}
				// Dense backend: the factor internals are unexported, so
				// compare through a solve on a deterministic rhs.
				m := ref[p].rd.M()
				b := make([]float64, m)
				for i := range b {
					b[i] = 1 / float64(1+i)
				}
				xr, xg := make([]float64, m), make([]float64, m)
				rf.Solve(b, xr)
				gf.Solve(b, xg)
				for i := range xr {
					if xr[i] != xg[i] {
						t.Fatalf("local=%v width %d rank %d: dense solve differs at %d: %.17g vs %.17g",
							local, w, p, i, xr[i], xg[i])
					}
				}
			}
		}
	}
}

func compareSparseFactors(t *testing.T, local LocalSolver, w, p int, a, b *spdirect.Factor) {
	t.Helper()
	if len(a.Li) != len(b.Li) || len(a.D) != len(b.D) {
		t.Fatalf("local=%v width %d rank %d: factor shapes differ", local, w, p)
	}
	for i := range a.Li {
		if a.Li[i] != b.Li[i] || a.Lx[i] != b.Lx[i] {
			t.Fatalf("local=%v width %d rank %d: L entry %d differs", local, w, p, i)
		}
	}
	for i := range a.D {
		if a.D[i] != b.D[i] {
			t.Fatalf("local=%v width %d rank %d: pivot %d differs: %.17g vs %.17g",
				local, w, p, i, a.D[i], b.D[i])
		}
	}
}

// TestSparseLocalMatchesDenseOnSuiteBlocks checks the sparse LDLᵀ backend
// against the dense LU backend on the actual subdomain diagonal blocks of
// real suite matrices — the exact inputs LocalDirect sees in production,
// boundary-truncated rows and all. Both are exact solvers, so their
// solutions must agree to roundoff.
func TestSparseLocalMatchesDenseOnSuiteBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("factors every block of suite matrices")
	}
	for _, name := range []string{"Hook_1498", "af_5_k101"} {
		e, ok := problem.SuiteByName(name)
		if !ok {
			t.Fatalf("unknown suite matrix %q", name)
		}
		l, _, _ := buildCase(t, e.Gen(), 32, 1)
		for p, rd := range l.Ranks {
			sparseF, err := newLocalFactor(rd, LocalDirect)
			if err != nil {
				t.Fatalf("%s rank %d: sparse factorization failed: %v", name, p, err)
			}
			denseSF, err := factorSharedDense(rd)
			if err != nil {
				t.Fatalf("%s rank %d: dense factorization failed: %v", name, p, err)
			}
			denseF := bind(denseSF)
			m := rd.M()
			b := make([]float64, m)
			for i := range b {
				b[i] = math.Sin(float64(i + 1))
			}
			xs, xd := make([]float64, m), make([]float64, m)
			sparseF.Solve(b, xs)
			denseF.Solve(b, xd)
			scale := 0.0
			for i := range xd {
				if v := math.Abs(xd[i]); v > scale {
					scale = v
				}
			}
			for i := range xs {
				if d := math.Abs(xs[i] - xd[i]); d > 1e-11*(1+scale) {
					t.Fatalf("%s rank %d row %d: sparse %.17g vs dense %.17g (diff %g)",
						name, p, i, xs[i], xd[i], d)
				}
			}
		}
	}
}
