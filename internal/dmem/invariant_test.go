package dmem

import (
	"math"
	"testing"

	"southwell/internal/problem"
)

// TestDistSWBlockGammaTildeExactness verifies the paper's §3 claim at the
// block level: at every step boundary, a rank's record Γ̃ of "what neighbor
// q estimates my norm to be" equals q's actual estimate Γ of this rank's
// norm, for every edge of the process graph. The crossing-write rule in
// the phase-2/3 receive paths is what keeps this exact; without it the
// invariant fails within a few steps.
func TestDistSWBlockGammaTildeExactness(t *testing.T) {
	a := problem.FEM2D(20, 0.3, 11)
	l, b, x := buildCase(t, a, 13, 11)

	checked := 0
	debugHook = func(states []*rankState) {
		for p, rs := range states {
			for j, q := range rs.rd.Nbrs {
				qs := states[q]
				jp, ok := qs.rd.NbrIdx[p]
				if !ok {
					t.Fatalf("neighbor asymmetry %d-%d", p, q)
				}
				if rs.gammaTilde[j] != qs.gamma[jp] {
					t.Fatalf("Γ̃ exactness violated on edge %d-%d: %.17g vs %.17g",
						p, q, rs.gammaTilde[j], qs.gamma[jp])
				}
				checked++
			}
		}
	}
	defer func() { debugHook = nil }()

	res := DistributedSouthwell(l, b, x, Config{Steps: 30})
	if checked == 0 {
		t.Fatal("hook never ran")
	}
	if res.Final().ResNorm >= 1 {
		t.Error("no progress under invariant checking")
	}
}

// TestDistSWGhostNeverOverestimatesByMuch spot-checks the ghost layer: the
// local residual value of each boundary row, as ghosted by the neighbor,
// matches the owner's actual residual whenever the owner has not relaxed
// since it last wrote (we verify the weaker, always-true property that
// ghosts are finite and the estimate Γ is non-negative).
func TestDistSWGhostSanity(t *testing.T) {
	a := problem.Poisson2D(18, 18)
	l, b, x := buildCase(t, a, 9, 12)
	debugHook = func(states []*rankState) {
		for _, rs := range states {
			for _, z := range rs.z {
				if math.IsNaN(z) || math.IsInf(z, 0) {
					t.Fatal("non-finite ghost value")
				}
			}
			for _, g := range rs.gamma {
				if g < 0 || math.IsNaN(g) {
					t.Fatalf("invalid norm estimate %g", g)
				}
			}
		}
	}
	defer func() { debugHook = nil }()
	DistributedSouthwell(l, b, x, Config{Steps: 20})
}

// TestLocalResidualsExactEveryStep: for every method, at every step
// boundary, the concatenation of local residuals equals b - A x for the
// concatenation of local solutions (communication delivers every delta
// exactly once).
func TestLocalResidualsExactEveryStep(t *testing.T) {
	a := problem.FEM2D(16, 0.3, 13)
	for name, run := range methods() {
		l, b, x := buildCase(t, a.Clone(), 8, 13)
		steps := 0
		debugHook = func(states []*rankState) {
			steps++
			// Gather x and r.
			xg := make([]float64, l.A.N)
			rg := make([]float64, l.A.N)
			for p, rs := range states {
				for li, g := range l.Ranks[p].Glob {
					xg[g] = rs.x[li]
					rg[g] = rs.r[li]
				}
			}
			want := make([]float64, l.A.N)
			l.A.Residual(b, xg, want)
			for i := range want {
				if math.Abs(want[i]-rg[i]) > 1e-9 {
					t.Fatalf("%s: residual drift at row %d: stored %g, true %g",
						name, i, rg[i], want[i])
				}
			}
		}
		run(l, b, x, Config{Steps: 12})
		debugHook = nil
		if steps == 0 {
			t.Fatalf("%s: hook never ran", name)
		}
	}
}

// TestSimTimeMonotone: cumulative simulated time and message counts never
// decrease.
func TestSimTimeMonotone(t *testing.T) {
	a := problem.Poisson2D(16, 16)
	for name, run := range methods() {
		l, b, x := buildCase(t, a.Clone(), 8, 14)
		res := run(l, b, x, Config{Steps: 15})
		for i := 1; i < len(res.History); i++ {
			if res.History[i].SimTime < res.History[i-1].SimTime {
				t.Errorf("%s: sim time decreased at step %d", name, i)
			}
			if res.History[i].TotalMsgs() < res.History[i-1].TotalMsgs() {
				t.Errorf("%s: message count decreased at step %d", name, i)
			}
		}
	}
}
