package dmem

// Reusable run setup: the (matrix, partition, local-solver) preprocessing
// — layout construction and per-rank local factorizations — hoisted out of
// the individual runs so that table drivers (internal/bench) can pay for
// it once per (matrix, P) and share it immutably across every method,
// engine, and fault-plan cell. At paper scale (P = 4096/8192) the setup
// dominates host wall-clock when repeated per cell; shared, it is paid
// once.
//
// Sharing is safe by construction: a Setup holds only data that runs read.
// The Layout is already immutable after NewLayout; the factorizations are
// exposed through SharedFactor, whose SolveInto takes caller-owned scratch
// — each run binds the shared factor to private buffers (boundFactor), so
// concurrent runs never touch shared mutable state. The setup-cache tests
// pin this under -race.

import (
	"fmt"

	"southwell/internal/dense"
	"southwell/internal/parallel"
	"southwell/internal/spdirect"
)

// SharedFactor is an immutable factored local diagonal block, safe for
// concurrent solves: SolveInto writes x = A_pp⁻¹ b using caller-owned
// scratch of length ScratchLen, reading — never writing — the
// factorization itself. SolveFlops is the per-solve flop count charged to
// the α-β-γ cost model.
type SharedFactor interface {
	SolveInto(b, x, scratch []float64)
	SolveFlops() float64
	ScratchLen() int
}

// ldlShared adapts the sparse LDLᵀ backend: spdirect.Factor.SolveWith
// reads only the factor arrays, so one Factor serves any number of
// concurrent callers with private scratch.
type ldlShared struct {
	f *spdirect.Factor
	n int
}

func (s *ldlShared) SolveInto(b, x, scratch []float64) { s.f.SolveWith(b, x, scratch) }
func (s *ldlShared) SolveFlops() float64               { return s.f.SolveFlops() }
func (s *ldlShared) ScratchLen() int                   { return s.n }

// denseShared adapts the dense LU backend the same way.
type denseShared struct {
	lu *dense.LU
	m  int
}

func (s *denseShared) SolveInto(b, x, scratch []float64) { s.lu.SolveWith(b, x, scratch) }

// SolveFlops: two triangular sweeps of an m×m factor.
func (s *denseShared) SolveFlops() float64 { m := float64(s.m); return 2 * m * m }
func (s *denseShared) ScratchLen() int     { return s.m }

// boundFactor binds a SharedFactor to one run's private scratch,
// satisfying the per-run localFactor contract.
type boundFactor struct {
	sf      SharedFactor
	scratch []float64
}

func (b *boundFactor) Solve(rhs, x []float64) { b.sf.SolveInto(rhs, x, b.scratch) }
func (b *boundFactor) SolveFlops() float64    { return b.sf.SolveFlops() }

// bind wraps a shared factor with fresh private scratch for one run.
func bind(sf SharedFactor) localFactor {
	return &boundFactor{sf: sf, scratch: make([]float64, sf.ScratchLen())}
}

// factorShared factors one rank's diagonal block under the configured
// policy, returning the shareable form. Policy identical to what
// newLocalFactor always did: LocalDirect takes the sparse LDLᵀ path;
// LocalAuto goes dense for tiny blocks, then consults the symbolic fill
// estimate. The choice is a pure function of the block, never of
// scheduling.
func factorShared(rd *RankData, mode LocalSolver) (SharedFactor, error) {
	m := rd.M()
	if mode == LocalAuto && m <= autoDenseMax {
		return factorSharedDense(rd)
	}
	rowPtr, col, val := localBlockCSR(rd)
	sym, err := spdirect.Analyze(m, rowPtr, col, spdirect.Options{})
	if err != nil {
		return nil, err
	}
	if mode == LocalAuto && sym.SolveFlops() >= 2*float64(m)*float64(m) {
		return factorSharedDense(rd)
	}
	f, err := sym.Factorize(val)
	if err != nil {
		return nil, err
	}
	return &ldlShared{f: f, n: m}, nil
}

// factorSharedDense builds the dense LU of the local diagonal block —
// LocalAuto's small-block path.
func factorSharedDense(rd *RankData) (SharedFactor, error) {
	m := rd.M()
	dm := dense.NewMatrix(m)
	for li := 0; li < m; li++ {
		dm.Set(li, li, rd.Diag[li])
		for k := rd.LocPtr[li]; k < rd.LocPtr[li+1]; k++ {
			dm.Set(li, int(rd.LocCol[k]), rd.LocVal[k])
		}
	}
	lu, err := dense.FactorLU(dm)
	if err != nil {
		return nil, err
	}
	return &denseShared{lu: lu, m: m}, nil
}

// factorAll factors every rank's diagonal block concurrently on the shared
// kernel pool. Each rank's factor is a pure sequential function of its own
// block written to its own slot, so worker count never influences a bit of
// the result; the lowest failing rank wins error reporting for
// determinism.
func factorAll(l *Layout, mode LocalSolver) ([]SharedFactor, error) {
	p := l.P
	factors := make([]SharedFactor, p)
	errs := make([]error, p)
	nb := rankBlockCount(p)
	blocks := parallel.SplitN(p, nb, make([]parallel.Range, 0, nb))
	var task parallel.Task
	task.F = func(b int) {
		for pr := blocks[b].Lo; pr < blocks[b].Hi; pr++ {
			factors[pr], errs[pr] = factorShared(l.Ranks[pr], mode)
		}
	}
	parallel.Default().Run(&task, nb)
	for pr, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dmem: local block of rank %d not factorizable: %w", pr, err)
		}
	}
	return factors, nil
}

// Setup is the immutable preprocessing of (layout, local-solver mode):
// the layout plus, for the exact local solvers, every rank's shared
// factorization. Build once with NewSetup, then hand the same *Setup to
// any number of runs (Config.Setup) — including concurrent ones: runs only
// read it.
type Setup struct {
	Layout *Layout
	Local  LocalSolver

	factors []SharedFactor // nil for LocalGS
}

// NewSetup builds the reusable setup for the given layout and local-solver
// mode, factoring all ranks in parallel for LocalDirect/LocalAuto.
func NewSetup(l *Layout, mode LocalSolver) (*Setup, error) {
	s := &Setup{Layout: l, Local: mode}
	if mode == LocalDirect || mode == LocalAuto {
		factors, err := factorAll(l, mode)
		if err != nil {
			return nil, err
		}
		s.factors = factors
	}
	return s, nil
}

// Factor returns rank p's shared factorization (nil for LocalGS), mainly
// for the setup-cache tests.
func (s *Setup) Factor(p int) SharedFactor {
	if s.factors == nil {
		return nil
	}
	return s.factors[p]
}
