package dmem

import (
	"fmt"
	"math"

	"southwell/internal/obs"
	"southwell/internal/parallel"
	"southwell/internal/rma"
)

// LocalSolver selects how a rank relaxes its subdomain.
type LocalSolver int

const (
	// LocalGS performs one Gauss-Seidel sweep per relaxation — the
	// artifact's `-loc_solver gs` default used in every paper experiment.
	LocalGS LocalSolver = iota
	// LocalDirect solves the local block exactly through a sparse LDLᵀ
	// factorization (internal/spdirect: RCM ordering, symbolic analysis,
	// up-looking numeric factorization) computed once at setup and reused
	// by every relaxation — the role MKL PARDISO plays in the artifact.
	// Per-relaxation cost is O(nnz(L)), so the direct option is usable at
	// every subdomain size, not just tiny blocks.
	LocalDirect
	// LocalAuto picks the exact local solver per rank: dense LU for tiny
	// blocks (m ≤ autoDenseMax) and whenever the symbolic analysis predicts
	// a sparse solve would cost more flops than a dense one (pathological
	// fill), sparse LDLᵀ otherwise. See DESIGN.md §10 for the crossover
	// policy.
	LocalAuto
)

// autoDenseMax is LocalAuto's block-size crossover: at or below this many
// rows a dense LU factor fits comfortably in cache and its branch-free
// triangular solves beat the sparse solver's index-chasing, so sparse
// bookkeeping is not worth carrying. Above it the choice falls to the
// symbolic fill estimate (see newLocalFactor).
const autoDenseMax = 64

// Config controls a distributed solve.
type Config struct {
	// Steps is the number of parallel steps to run (the paper uses 50).
	Steps int
	// Target, when positive, stops the run early once the global residual
	// norm falls to Target or below (checked at step boundaries).
	Target float64
	// Model is the α-β-γ cost model; nil means rma.DefaultCostModel. An
	// explicit &rma.CostModel{} is honored as genuinely free communication
	// (every message and flop costs nothing in simulated time).
	Model *rma.CostModel
	// Parallel runs ranks on the rma worker-pool engine instead of
	// sequentially; results are bit-identical (see the engine-equivalence
	// tests).
	Parallel bool
	// Sched selects the pool engine's epoch discipline: the default
	// global barrier (rma.SchedBarrier) or per-neighborhood epoch
	// completion (rma.SchedNeighbor, requires Parallel; the world's
	// post/start groups are registered from the layout's coupling
	// neighborships). Results are bit-identical either way.
	Sched rma.Sched
	// Local selects the subdomain solver (default LocalGS).
	Local LocalSolver
	// Setup, when non-nil, supplies the shared preprocessing (layout +
	// local factorizations, see NewSetup) instead of rebuilding it in this
	// run. Its Layout must be the layout the run is given and its Local
	// mode must match Config.Local; runs only read the setup, so one value
	// can serve concurrent runs.
	Setup *Setup
	// Faults, when non-nil, installs deterministic fault injection on the
	// simulated world (rma.FaultPlan: delayed, duplicated, and reordered
	// deliveries, stragglers, rank pauses). Nil is a perfect network. The
	// plan is copied per run, so one plan value can drive many runs.
	Faults *rma.FaultPlan
	// Dense disables the active-set step engine: every rank's phase
	// function runs every step, as the paper's pseudocode is written. The
	// zero value steps only the active set (engine.go), which is
	// bit-identical to dense stepping — results, statistics, and simulated
	// time never differ — but skips provably quiescent ranks' host work.
	// Runs on rma.SchedNeighbor or under host-time fault hooks
	// (SpinStragglers, HostDelay) fall back to dense automatically.
	Dense bool
	// Watchdog is the patience window, in parallel steps, of the
	// stagnation/deadlock watchdog (see Result.Deadlocked): a provably
	// stuck run stops immediately, and a run that has been idle for
	// Watchdog consecutive steps stops even if the fault layer could still
	// wake it. Values < 1 mean the default of 10.
	Watchdog int
	// Trace, when non-nil, receives structured events from the run (see
	// internal/obs): runtime-level Put/delivery/cost events from the world
	// plus algorithm-level decisions, residual sends, step records, and
	// watchdog verdicts. Tracing never changes results: solver output,
	// message counts, and SimTime are bit-identical with it on or off.
	Trace obs.Tracer
}

func (c Config) model() rma.CostModel {
	if c.Model == nil {
		return rma.DefaultCostModel()
	}
	return *c.Model
}

func (c Config) steps() int {
	if c.Steps <= 0 {
		return 50
	}
	return c.Steps
}

func (c Config) watchdogWindow() int {
	if c.Watchdog < 1 {
		return 10
	}
	return c.Watchdog
}

// newWorld builds the simulated world for one run: the configured cost
// model and engine, with the fault plan (if any) installed before the
// first phase.
func newWorld(l *Layout, cfg Config) *rma.World {
	if s := cfg.Setup; s != nil {
		if s.Layout != l {
			panic("dmem: Config.Setup was built for a different layout")
		}
		if s.Local != cfg.Local {
			panic(fmt.Sprintf("dmem: Config.Setup local solver %v does not match Config.Local %v", s.Local, cfg.Local))
		}
	}
	w := rma.NewWorld(l.P, cfg.model())
	w.Parallel = cfg.Parallel
	w.Sched = cfg.Sched
	if cfg.Sched == rma.SchedNeighbor {
		// Register the PSCW post/start groups: every method's step-loop
		// Puts go only to layout neighbors, so the coupling neighborships
		// are exactly the access groups.
		w.SetNeighborhoods(l.NeighborLists())
	}
	w.InstallFaults(cfg.Faults)
	w.SetTracer(cfg.Trace)
	return w
}

// StepStats is the global state after one parallel step, with cumulative
// communication counters (so differences give per-step costs).
type StepStats struct {
	Step         int
	ResNorm      float64
	RelaxedRanks int
	Relaxations  int // cumulative row relaxations
	SolveMsgs    int64
	ResMsgs      int64
	SimTime      float64
	// Cumulative fault-injection counters (all zero on a perfect network).
	Delayed   int64 // messages the fault layer has held back so far
	Duped     int64 // duplicate landings injected so far
	Reordered int64 // delivery batches shuffled so far
	Paused    int64 // rank-phases spent paused so far
}

// TotalMsgs returns cumulative messages at this step.
func (s StepStats) TotalMsgs() int64 { return s.SolveMsgs + s.ResMsgs }

// Result is the outcome of a distributed run.
type Result struct {
	Method  string
	P       int
	N       int
	History []StepStats // History[0] is the initial state (step 0)
	Stats   rma.Stats
	// ActiveFraction is the mean over steps of (relaxing ranks)/P — the
	// paper's "active processes" metric.
	ActiveFraction float64
	// Deadlocked reports that the stagnation watchdog stopped the run with
	// a nonzero residual. On a perfect network only the 2016 piggyback
	// variant can set this (the paper's §2.4 dichotomy); under fault
	// injection every method is monitored.
	Deadlocked   bool
	DeadlockStep int
	X            []float64 // gathered global solution
	// SchedWaits is the neighborhood scheduler's wait diagnostic (counts,
	// not seconds) — nil unless the run executed groups on
	// rma.SchedNeighbor. Scheduling-dependent; never part of results.
	SchedWaits *obs.WaitTally
	// ActiveHist is the active-set engine's diagnostic: per step, the
	// number of ranks scheduled to execute phase 1 (mid-step wakeups by
	// landed traffic are not recounted). Nil when the run stepped densely.
	// An engine-occupancy observation, like SchedWaits — never part of
	// results.
	ActiveHist []int
}

// Final returns the last step record.
func (r *Result) Final() StepStats { return r.History[len(r.History)-1] }

// StepsToNorm returns the (fractionally interpolated) parallel step at
// which the residual first reached target, interpolating linearly on
// log10(‖r‖) between recorded steps as the paper does for Table 2. It is
// InterpAtNorm with the step number as the interpolated quantity.
func (r *Result) StepsToNorm(target float64) (float64, bool) {
	return r.InterpAtNorm(target, func(h StepStats) float64 { return float64(h.Step) })
}

// InterpAtNorm linearly interpolates any cumulative quantity (selected by
// pick) to the moment the residual norm *first* crossed down to target.
//
// Semantics on non-monotone histories (Block Jacobi diverges and can
// recross the target on several suite matrices): the earliest record at or
// below target wins, interpolated on log10(‖r‖) against its predecessor;
// later excursions back above target are ignored. Degenerate geometry
// never produces NaN or ±Inf: a history that starts at or below target
// reports its initial record, an exact-zero endpoint or a non-finite
// predecessor snaps to the crossing record instead of interpolating in log
// space, and NaN norms (overflowed divergence) are never crossings.
func (r *Result) InterpAtNorm(target float64, pick func(StepStats) float64) (float64, bool) {
	if len(r.History) == 0 {
		return 0, false
	}
	if r.History[0].ResNorm <= target {
		return pick(r.History[0]), true
	}
	lt := math.Log10(target)
	for i := 1; i < len(r.History); i++ {
		cur := r.History[i]
		if !(cur.ResNorm <= target) { // NaN-safe: NaN never crosses
			continue
		}
		prev := r.History[i-1]
		l0 := math.Log10(prev.ResNorm)
		if cur.ResNorm <= 0 || math.IsInf(lt, -1) || math.IsNaN(l0) || math.IsInf(l0, 1) {
			return pick(cur), true
		}
		l1 := math.Log10(cur.ResNorm)
		f := (l0 - lt) / (l0 - l1)
		return pick(prev) + f*(pick(cur)-pick(prev)), true
	}
	return 0, false
}

// rankState is the dynamic per-rank state shared by all methods; the
// Southwell methods use the norm-estimate fields.
type rankState struct {
	rd   *RankData
	x    []float64
	r    []float64 // exact local residual
	norm float64   // exact local ‖r_p‖₂ (kept current at phase boundaries)

	gamma      []float64 // per neighbor: (estimate of) neighbor's norm
	gammaTilde []float64 // per neighbor: neighbor's estimate of my norm (DS)
	z          []float64 // per ext row: ghost residual estimate (DS)
	lastTold   float64   // last norm broadcast to neighbors (PS)
	sentTo     []bool    // per neighbor: wrote to them in the last send phase
	// Crossing-correction state (DS): the norm and boundary residuals this
	// rank sent when it last relaxed, used to mirror the estimate a
	// crossing neighbor computes from them (keeping Γ̃ exact; DESIGN.md §5).
	lastSentNorm float64
	sentBnd      [][]float64 // per neighbor: boundary residuals at send
	// seqSeen is, per neighbor, the newest payload sequence number whose
	// estimates were absorbed. Under fault injection a delayed message can
	// arrive after fresher information; its residual deltas are still
	// applied (they are additive and exact regardless of order), but its
	// stale Γ/Γ̃/ghost values must not overwrite newer ones. Always zero on
	// a perfect network (messages arrive in order, never late).
	seqSeen []int64

	extDelta []float64 // scratch, per ext row
	relaxed  bool      // relaxed in the current step
	// Starvation tracking, used only under fault injection (DS): gotMsg is
	// set by the absorb paths when any non-duplicate message is read, and
	// starved counts consecutive steps with neither a relaxation nor a
	// receipt. A starving rank re-announces its exact residual state so
	// fault-desynced Γ/Γ̃ estimates become exact again (see distsw.go).
	gotMsg  bool
	starved int
	// starveStamp is the step through which starved is materialized under
	// the active-set engine: a sleeping rank's dense counter would grow by
	// one per step, so its true value at the end of step s is
	// starved + (s - starveStamp), reconciled when the rank wakes
	// (stepEngine.admit). Always equal to the current step under dense
	// stepping semantics; unused on a perfect network.
	starveStamp int

	// Persistent per-neighbor send buffers: message payloads point into
	// these, so the steady-state message path allocates nothing. A buffer
	// written in one phase is read by the receiver in the next phase and
	// not reused before the phase after that (solve sends refill only on
	// the next step's relax phase; explicit residual sends have their own
	// buffer), so sender reuse never races with receiver reads.
	sendDeltas [][]float64 // per neighbor: deltasFor output, len(BndExt[j])
	sendBnd    [][]float64 // per neighbor: boundaryResiduals output, len(MyBnd[j])
	resBnd     [][]float64 // per neighbor: explicit-update boundary residuals

	// direct, when non-nil, is the factorization of the local diagonal
	// block used by LocalDirect/LocalAuto; dscratch is its solve buffer.
	direct   localFactor
	dscratch []float64
}

// localFactor is a factored local diagonal block: the factor-once /
// solve-many contract both exact local solvers satisfy. Solve computes
// x = A_pp⁻¹ b; SolveFlops is the per-solve flop count the α-β-γ cost
// model charges (the factorization itself happens at setup, which the
// paper does not time).
type localFactor interface {
	Solve(b, x []float64)
	SolveFlops() float64
}

// relaxLocal dispatches to the configured local solver and returns the
// flop count to charge.
func (rs *rankState) relaxLocal() float64 {
	if rs.direct != nil {
		return rs.relaxDirect()
	}
	return rs.relaxSweep()
}

// relaxDirect solves the local block exactly: x_p += A_pp^{-1} r_p, which
// zeroes the local residual and accumulates -A_qp d into extDelta. The
// charged cost is the factorization's actual solve cost (O(nnz(L)) for the
// sparse backend, 2m² for the dense one) plus the coupling scatter and the
// solution update — not the hard-coded dense estimate of old.
func (rs *rankState) relaxDirect() float64 {
	rd := rs.rd
	d := rs.dscratch
	rs.direct.Solve(rs.r, d)
	for li := range rs.r {
		rs.x[li] += d[li]
		rs.r[li] = 0
		for k := rd.ExtPtr[li]; k < rd.ExtPtr[li+1]; k++ {
			rs.extDelta[rd.ExtCol[k]] -= rd.ExtVal[k] * d[li]
		}
	}
	return rs.direct.SolveFlops() + float64(rd.NNZ) + float64(rd.M())
}

// localBlockCSR assembles rank rd's diagonal block A_pp as a standalone
// CSR (local row/column indices, diagonal included) for the sparse
// factorization. The block of a structurally symmetric matrix restricted
// to one rank's rows is itself structurally symmetric, which is exactly
// what spdirect.Analyze requires.
func localBlockCSR(rd *RankData) (rowPtr, col []int, val []float64) {
	m := rd.M()
	rowPtr = make([]int, m+1)
	for li := 0; li < m; li++ {
		rowPtr[li+1] = rowPtr[li] + 1 + (rd.LocPtr[li+1] - rd.LocPtr[li])
	}
	col = make([]int, rowPtr[m])
	val = make([]float64, rowPtr[m])
	w := 0
	for li := 0; li < m; li++ {
		col[w], val[w] = li, rd.Diag[li]
		w++
		for k := rd.LocPtr[li]; k < rd.LocPtr[li+1]; k++ {
			col[w], val[w] = int(rd.LocCol[k]), rd.LocVal[k]
			w++
		}
	}
	return rowPtr, col, val
}

// newLocalFactor factors one rank's diagonal block under the configured
// policy (see factorShared in setup.go for the dense/sparse decision) and
// binds it to fresh per-run scratch.
func newLocalFactor(rd *RankData, mode LocalSolver) (localFactor, error) {
	sf, err := factorShared(rd, mode)
	if err != nil {
		return nil, err
	}
	return bind(sf), nil
}

// newRankStates initializes per-rank state from a global initial guess,
// with exact residuals, exact neighbor norms (setup exchange, not counted),
// and exact ghosts.
func newRankStates(l *Layout, b, x []float64) []*rankState {
	rGlob := make([]float64, l.A.N)
	l.A.Residual(b, x, rGlob)
	states := make([]*rankState, l.P)
	for p := 0; p < l.P; p++ {
		rd := l.Ranks[p]
		m := rd.M()
		rs := &rankState{
			rd:         rd,
			x:          make([]float64, m),
			r:          make([]float64, m),
			gamma:      make([]float64, rd.Degree()),
			gammaTilde: make([]float64, rd.Degree()),
			z:          make([]float64, len(rd.ExtGlob)),
			sentTo:     make([]bool, rd.Degree()),
			seqSeen:    make([]int64, rd.Degree()),
			sentBnd:    make([][]float64, rd.Degree()),
			extDelta:   make([]float64, len(rd.ExtGlob)),
			sendDeltas: make([][]float64, rd.Degree()),
			sendBnd:    make([][]float64, rd.Degree()),
			resBnd:     make([][]float64, rd.Degree()),
		}
		for j := range rd.Nbrs {
			rs.sendDeltas[j] = make([]float64, len(rd.BndExt[j]))
			rs.sendBnd[j] = make([]float64, len(rd.MyBnd[j]))
			rs.resBnd[j] = make([]float64, len(rd.MyBnd[j]))
		}
		for li, g := range rd.Glob {
			rs.x[li] = x[g]
			rs.r[li] = rGlob[g]
		}
		for e, g := range rd.ExtGlob {
			rs.z[e] = rGlob[g]
		}
		rs.norm = rs.computeNorm()
		states[p] = rs
	}
	// Exact initial neighbor norms and Γ̃ (setup exchange).
	for p := 0; p < l.P; p++ {
		rs := states[p]
		for j, q := range rs.rd.Nbrs {
			rs.gamma[j] = states[q].norm
			rs.gammaTilde[j] = rs.norm
		}
		rs.lastTold = rs.norm
	}
	return states
}

// computeNorm returns ‖r‖₂ of the local residual. The naive
// sum-of-squares is kept as the only path that ever runs on finite sums —
// its bits are pinned by the equivalence suites — and a scaled two-pass
// fallback handles |r_i| ≳ 1e154, where v*v overflows to +Inf even though
// the true norm is representable.
func (rs *rankState) computeNorm() float64 {
	s := 0.0
	for _, v := range rs.r {
		s += v * v
	}
	if !math.IsInf(s, 1) {
		return math.Sqrt(s)
	}
	maxAbs := 0.0
	for _, v := range rs.r {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if math.IsInf(maxAbs, 1) {
		return math.Inf(1)
	}
	inv := 1 / maxAbs
	t := 0.0
	for _, v := range rs.r {
		sv := v * inv
		t += sv * sv
	}
	return maxAbs * math.Sqrt(t)
}

// relaxSweep performs one Gauss-Seidel sweep over the local rows,
// maintaining the exact local residual and accumulating residual deltas
// for external rows in extDelta (which the caller must have zeroed, and is
// responsible for draining into messages and/or the ghost layer).
// It returns the flop count for cost charging.
//
// The two inner loops walk the split-CSR arrays (layout.go): no per-nonzero
// class branch, no IsExt/ColExt indirection, uint32 column loads. Local
// entries touch only r[] and ext entries only extDelta[], and each class
// preserves source column order, so every memory location sees the exact
// update sequence of the interleaved walk — Gauss–Seidel bits unchanged.
//
//dslint:hotpath
func (rs *rankState) relaxSweep() float64 {
	rd := rs.rd
	for li := range rs.r {
		d := rs.r[li] / rd.Diag[li]
		rs.x[li] += d
		rs.r[li] = 0 // diagonal contribution: r_li -= a_ii * d exactly
		for k := rd.LocPtr[li]; k < rd.LocPtr[li+1]; k++ {
			rs.r[rd.LocCol[k]] -= rd.LocVal[k] * d
		}
		for k := rd.ExtPtr[li]; k < rd.ExtPtr[li+1]; k++ {
			rs.extDelta[rd.ExtCol[k]] -= rd.ExtVal[k] * d
		}
	}
	return float64(2*rd.NNZ + 3*rd.M())
}

// zeroExtDelta clears the scratch delta array (cheap: sized by ghost count).
func (rs *rankState) zeroExtDelta() {
	for i := range rs.extDelta {
		rs.extDelta[i] = 0
	}
}

// boundaryResiduals collects the residual values of this rank's boundary
// rows toward neighbor j into the persistent per-neighbor send buffer (the
// slice crosses the simulated network by reference and is only rewritten
// on this rank's next relax phase, after the receiver has read it).
func (rs *rankState) boundaryResiduals(j int) []float64 {
	out := rs.sendBnd[j]
	for k, li := range rs.rd.MyBnd[j] {
		out[k] = rs.r[li]
	}
	return out
}

// resBoundaryResiduals is boundaryResiduals into the separate buffer used
// by explicit residual updates, which are sent one phase after the solve
// message: the solve buffer may still be in flight to the same neighbor.
func (rs *rankState) resBoundaryResiduals(j int) []float64 {
	out := rs.resBnd[j]
	for k, li := range rs.rd.MyBnd[j] {
		out[k] = rs.r[li]
	}
	return out
}

// deltasFor collects extDelta values for neighbor j's boundary slots into
// the persistent per-neighbor send buffer.
func (rs *rankState) deltasFor(j int) []float64 {
	out := rs.sendDeltas[j]
	for k, e := range rs.rd.BndExt[j] {
		out[k] = rs.extDelta[e]
	}
	return out
}

// applyDeltas adds incoming residual deltas from neighbor j to the local
// boundary rows (same static ordering on both sides; see layout tests).
func (rs *rankState) applyDeltas(j int, deltas []float64) {
	for k, li := range rs.rd.MyBnd[j] {
		rs.r[li] += deltas[k]
	}
}

// overwriteGhost replaces the ghost residuals of neighbor j's boundary rows
// with the values the neighbor sent.
func (rs *rankState) overwriteGhost(j int, bnd []float64) {
	for k, e := range rs.rd.BndExt[j] {
		rs.z[e] = bnd[k]
	}
}

// updateGhostAndGamma applies this rank's own extDelta contribution to the
// ghost layer for neighbor j and adjusts the norm estimate Γ[j] by the
// boundary energy change — the communication-free estimate improvement at
// the heart of Distributed Southwell (§3).
func (rs *rankState) updateGhostAndGamma(j int) {
	adj := 0.0
	for _, e := range rs.rd.BndExt[j] {
		old := rs.z[e]
		nw := old + rs.extDelta[e]
		adj += nw*nw - old*old
		rs.z[e] = nw
	}
	g2 := rs.gamma[j]*rs.gamma[j] + adj
	if g2 < 0 {
		g2 = 0
	}
	rs.gamma[j] = math.Sqrt(g2)
}

// configureLocal prepares the configured local solver on every rank.
// Ranks factor concurrently on the shared kernel pool: each rank's factor
// is a pure sequential function of its own block, written to its own
// state slot, so block boundaries and worker count never influence a
// single bit of the result (the width bit-identity test pins this). The
// diagonal blocks of an SPD matrix are SPD, so factorization failure means
// the input violated the library's documented preconditions — panic rather
// than limp on, with the lowest failing rank for determinism.
func configureLocal(states []*rankState, cfg Config) {
	if cfg.Local != LocalDirect && cfg.Local != LocalAuto {
		return
	}
	if s := cfg.Setup; s != nil && s.factors != nil {
		// Shared setup: the expensive factorizations already exist — each
		// run just binds them to its own private scratch. The shared
		// factors are read-only from here on.
		for pr, rs := range states {
			rs.direct = bind(s.factors[pr])
			rs.dscratch = make([]float64, rs.rd.M())
		}
		return
	}
	p := len(states)
	nb := rankBlockCount(p)
	blocks := parallel.SplitN(p, nb, make([]parallel.Range, 0, nb))
	errs := make([]error, p)
	var factor parallel.Task
	factor.F = func(b int) {
		for pr := blocks[b].Lo; pr < blocks[b].Hi; pr++ {
			rs := states[pr]
			lf, err := newLocalFactor(rs.rd, cfg.Local)
			if err != nil {
				errs[pr] = err
				continue
			}
			rs.direct = lf
			rs.dscratch = make([]float64, rs.rd.M())
		}
	}
	parallel.Default().Run(&factor, nb)
	for pr, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("dmem: local block of rank %d not factorizable: %v", pr, err))
		}
	}
}

// sqrtNonNeg is sqrt clamped at zero for incrementally adjusted squared
// norms that can go slightly negative in floating point.
func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// winsOver is the Parallel Southwell criterion comparison with rank-id tie
// breaking (DESIGN.md §5): the relaxed set stays independent under exact
// norms, and at least one rank always qualifies.
func winsOver(np float64, p int, nq float64, q int) bool {
	// Bit-exact by design: both ranks evaluate the same pair, so the
	// tie-break must agree exactly or the relaxed set loses independence.
	if np != nq { //dslint:ignore floatcmp

		return np > nq
	}
	return p < q
}

// globalNorm combines exact local norms.
func globalNorm(states []*rankState) float64 {
	s := 0.0
	for _, rs := range states {
		s += rs.norm * rs.norm
	}
	return math.Sqrt(s)
}

// flatNorm is globalNorm over a maintained flat table of squared local
// norms (stepEngine.tally refreshes the member slots; sleepers' norms
// cannot change). The summands and their rank order are exactly
// globalNorm's, so the result is bit-identical — the flat walk just
// replaces P pointer chases with a sequential read.
func flatNorm(norms2 []float64) float64 {
	s := 0.0
	for _, v := range norms2 {
		s += v
	}
	return math.Sqrt(s)
}

// gatherX assembles the global solution vector.
func gatherX(l *Layout, states []*rankState) []float64 {
	x := make([]float64, l.A.N)
	for p, rs := range states {
		for li, g := range l.Ranks[p].Glob {
			x[g] = rs.x[li]
		}
	}
	return x
}

// payload bytes: 8 per float plus a small header.
func msgBytes(floats int) int { return 8*floats + 16 }

// debugHook, when set (by tests), is invoked with the full rank state at
// every step boundary so cross-rank invariants can be checked.
var debugHook func(states []*rankState)

// record appends a step record with cumulative counters (and mirrors it
// onto the trace's control track when tracing is on). norm is the global
// residual norm — globalNorm(states), or the bit-identical flatNorm when
// the active-set engine maintains the squared-norm table.
func record(res *Result, w *rma.World, states []*rankState, norm float64, step, relaxedRanks, cumRelax int) {
	if debugHook != nil {
		debugHook(states)
	}
	st := w.Stats()
	res.History = append(res.History, StepStats{
		Step:         step,
		ResNorm:      norm,
		RelaxedRanks: relaxedRanks,
		Relaxations:  cumRelax,
		SolveMsgs:    st.SolveMsgs,
		ResMsgs:      st.ResMsgs,
		SimTime:      st.SimTime,
		Delayed:      st.DelayedMsgs,
		Duped:        st.DupMsgs,
		Reordered:    st.ReorderedBatches,
		Paused:       st.PausedRankPhases,
	})
	if tr := w.Tracer(); tr != nil {
		tr.Emit(obs.Event{
			Kind:  obs.KindStep,
			Rank:  obs.ControlRank,
			Step:  int32(step),
			V1:    norm,
			V2:    st.SimTime,
			A:     int32(relaxedRanks),
			I1:    st.TotalMsgs(),
			I2:    st.SolveBytes + st.ResBytes,
			Ts:    w.Now(),
			Phase: w.PhaseIndex(),
		})
	}
}

// traceDecision emits rank p's relax/hold decision for one step. Called
// from rank p's phase function, so it writes only p's tracer shard (the
// obs.Tracer contract); the max-Γ scan runs only when tracing is on.
func traceDecision(w *rma.World, step, p int, rs *rankState, relaxed bool) {
	tr := w.Tracer()
	if tr == nil {
		return
	}
	maxG := 0.0
	for _, g := range rs.gamma {
		if g > maxG {
			maxG = g
		}
	}
	e := obs.Event{
		Kind:  obs.KindDecision,
		Rank:  int32(p),
		Step:  int32(step),
		V1:    rs.norm,
		V2:    maxG,
		Ts:    w.Now(),
		Phase: w.PhaseIndex(),
	}
	if relaxed {
		e.Flag = obs.FlagRelaxed
	}
	tr.Emit(e)
}

// traceResSend emits an explicit residual update from rank p toward
// neighbor rank `to` (-1 = all neighbors). trigger is the value that fired
// the send — Γ̃[j] for the deadlock-risk rule, the announced norm for the
// Parallel Southwell broadcast.
func traceResSend(w *rma.World, step, p, to int, trigger float64, rs *rankState, refresh bool) {
	tr := w.Tracer()
	if tr == nil {
		return
	}
	e := obs.Event{
		Kind:  obs.KindResSend,
		Rank:  int32(p),
		Step:  int32(step),
		A:     int32(to),
		V1:    trigger,
		V2:    rs.norm,
		Ts:    w.Now(),
		Phase: w.PhaseIndex(),
	}
	if refresh {
		e.Flag = obs.FlagRefresh
	}
	tr.Emit(e)
}

// watchdog is the stagnation/deadlock detector shared by every method,
// generalizing the detector that used to live inside Piggyback2016. It
// watches each completed parallel step for an *idle* step — no rank
// relaxed, no message was staged, and no message landed — and stops the
// run when
//
//   - the step was idle and the fault layer is quiescent: the state
//     machine is deterministic, so every later step would repeat this one
//     exactly (on a perfect network this is precisely the 2016 piggyback
//     deadlock rule: a step without relaxations stages and lands nothing);
//   - or window consecutive steps were idle even though the fault layer
//     could still wake the run (a pause far in the future): patience
//     bound, off on a perfect network where the first idle step already
//     trips the provable rule.
type watchdog struct {
	window        int
	idle          int   // consecutive idle steps
	lastSent      int64 // cumulative staged messages at the previous step
	lastDelivered int64 // cumulative landed messages at the previous step
}

func newWatchdog(cfg Config, w *rma.World) *watchdog {
	st := w.Stats()
	return &watchdog{
		window:        cfg.watchdogWindow(),
		lastSent:      st.TotalMsgs(),
		lastDelivered: st.Delivered,
	}
}

// observe inspects one completed parallel step and reports whether the run
// is stuck and should stop. Idle steps and the final verdict land on the
// trace's control track.
func (wd *watchdog) observe(w *rma.World, step, relaxedRanks int) bool {
	st := w.Stats()
	sent, delivered := st.TotalMsgs(), st.Delivered
	idle := relaxedRanks == 0 && sent == wd.lastSent && delivered == wd.lastDelivered
	wd.lastSent, wd.lastDelivered = sent, delivered
	if !idle {
		wd.idle = 0
		return false
	}
	wd.idle++
	stop := w.FaultsQuiescent() || wd.idle >= wd.window
	if tr := w.Tracer(); tr != nil {
		flag := obs.FlagWatchdogIdle
		if stop {
			flag = obs.FlagWatchdogStop
		}
		tr.Emit(obs.Event{
			Kind:  obs.KindWatchdog,
			Rank:  obs.ControlRank,
			Step:  int32(step),
			Flag:  flag,
			A:     int32(wd.idle),
			Ts:    w.Now(),
			Phase: w.PhaseIndex(),
		})
	}
	return stop
}

// deadlockAt marks a watchdog stop at step — unless the run had in fact
// converged to (numerical) zero and simply has nothing left to do.
func (res *Result) deadlockAt(step int) {
	if res.Final().ResNorm > 1e-14 {
		res.Deadlocked = true
		res.DeadlockStep = step
	}
}

// finish fills the summary fields of a result.
func finish(res *Result, l *Layout, w *rma.World, states []*rankState) {
	res.Stats = w.Stats()
	res.SchedWaits = w.WaitTally()
	res.X = gatherX(l, states)
	if steps := len(res.History) - 1; steps > 0 {
		sum := 0.0
		for _, h := range res.History[1:] {
			sum += float64(h.RelaxedRanks)
		}
		res.ActiveFraction = sum / float64(steps) / float64(l.P)
	}
}
