package dmem

import (
	"math"
	"testing"
	"testing/quick"

	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/rma"
	"southwell/internal/sparse"
)

// buildCase returns a scaled matrix, a P-way partition layout, and the
// paper's random-x/zero-b system.
func buildCase(t testing.TB, a *sparse.CSR, p int, seed int64) (*Layout, []float64, []float64) {
	t.Helper()
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	part := partition.Partition(a, p, partition.Options{Seed: seed})
	l, err := NewLayout(a, part, p)
	if err != nil {
		t.Fatal(err)
	}
	b, x := problem.ZeroBSystem(a, seed)
	return l, b, x
}

func TestLayoutExchangePlansMatch(t *testing.T) {
	a := problem.Poisson2D(16, 16)
	l, _, _ := buildCase(t, a, 7, 1)
	for p := 0; p < l.P; p++ {
		rd := l.Ranks[p]
		for j, q := range rd.Nbrs {
			qd := l.Ranks[q]
			jq, ok := qd.NbrIdx[p]
			if !ok {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", p, q)
			}
			// The rows I hold deltas for (q-owned) must be exactly q's
			// boundary rows toward me, in the same order.
			if len(rd.BndExt[j]) != len(qd.MyBnd[jq]) {
				t.Fatalf("delta plan size mismatch %d->%d: %d vs %d",
					p, q, len(rd.BndExt[j]), len(qd.MyBnd[jq]))
			}
			for k, e := range rd.BndExt[j] {
				if rd.ExtGlob[e] != qd.Glob[qd.MyBnd[jq][k]] {
					t.Fatalf("delta plan order mismatch %d->%d at %d", p, q, k)
				}
				if rd.BndExtLocalInNbr[j][k] != qd.MyBnd[jq][k] {
					t.Fatalf("local index plan mismatch %d->%d at %d", p, q, k)
				}
			}
			// My boundary rows toward q must be exactly q's ghost slots for
			// me, in order.
			if len(rd.MyBnd[j]) != len(qd.BndExt[jq]) {
				t.Fatalf("ghost plan size mismatch %d->%d", p, q)
			}
			for k, li := range rd.MyBnd[j] {
				if rd.Glob[li] != qd.ExtGlob[qd.BndExt[jq][k]] {
					t.Fatalf("ghost plan order mismatch %d->%d at %d", p, q, k)
				}
				if rd.MyBndExtInNbr[j][k] != qd.BndExt[jq][k] {
					t.Fatalf("ghost slot plan mismatch %d->%d at %d", p, q, k)
				}
			}
		}
	}
}

func TestLayoutRejectsBadPartition(t *testing.T) {
	a := problem.Poisson2D(4, 4)
	if _, err := NewLayout(a, []int{0, 1}, 2); err == nil {
		t.Error("short partition accepted")
	}
	bad := make([]int, a.N)
	bad[3] = 9
	if _, err := NewLayout(a, bad, 2); err == nil {
		t.Error("out-of-range rank accepted")
	}
	allZero := make([]int, a.N)
	if _, err := NewLayout(a, allZero, 2); err == nil {
		t.Error("empty rank accepted")
	}
}

// exactGlobalNorm recomputes ‖b - A x‖ from the gathered solution.
func exactGlobalNorm(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	return sparse.Norm2(r)
}

type method func(l *Layout, b, x []float64, cfg Config) *Result

func methods() map[string]method {
	return map[string]method{
		"BlockJacobi":          BlockJacobi,
		"ParallelSouthwell":    ParallelSouthwell,
		"DistributedSouthwell": DistributedSouthwell,
	}
}

// Core invariant: for every method, the reported residual norm at the end
// exactly matches ‖b - A x‖ of the gathered solution.
func TestMethodsResidualExact(t *testing.T) {
	for name, run := range methods() {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := problem.Poisson2D(24, 24)
			l, b, x := buildCase(t, a, 8, 2)
			res := run(l, b, x, Config{Steps: 20})
			got := exactGlobalNorm(l.A, b, res.X)
			if math.Abs(got-res.Final().ResNorm) > 1e-9 {
				t.Errorf("reported %g, true %g", res.Final().ResNorm, got)
			}
			if res.Final().ResNorm >= 1 {
				t.Errorf("no progress: %g", res.Final().ResNorm)
			}
		})
	}
}

func TestBlockJacobiConvergesOnPoisson(t *testing.T) {
	a := problem.Poisson2D(30, 30)
	l, b, x := buildCase(t, a, 4, 3)
	res := BlockJacobi(l, b, x, Config{Steps: 50})
	if res.Final().ResNorm > 0.1 {
		t.Errorf("Block Jacobi on an M-matrix with big blocks should reach 0.1, got %g", res.Final().ResNorm)
	}
	if res.ActiveFraction != 1 {
		t.Errorf("active fraction = %g, want 1", res.ActiveFraction)
	}
}

func TestBlockJacobiDivergesOnPlateWithManyRanks(t *testing.T) {
	// Small blocks (~21 rows/rank) on the 3D plate operator: hybrid GS
	// degenerates toward point Jacobi, whose iteration matrix has spectral
	// radius > 1 here (the Figure 9 mechanism).
	a := problem.PlateMix3D(14, 14, 14, 1, 0.5)
	l, b, x := buildCase(t, a, 128, 4)
	res := BlockJacobi(l, b, x, Config{Steps: 50})
	if res.Final().ResNorm < 1 {
		t.Errorf("Block Jacobi with small blocks on a plate operator should diverge, got %g", res.Final().ResNorm)
	}
}

func TestBlockJacobiDegradesWithMoreRanks(t *testing.T) {
	// Figure 9 shape: the 50-step residual grows with the rank count.
	a := problem.PlateMix2D(40, 40, 1, 0.5)
	l4, b4, x4 := buildCase(t, a.Clone(), 16, 4)
	small := BlockJacobi(l4, b4, x4, Config{Steps: 50}).Final().ResNorm
	l160, b160, x160 := buildCase(t, a.Clone(), 160, 4)
	big := BlockJacobi(l160, b160, x160, Config{Steps: 50}).Final().ResNorm
	if big <= small*10 {
		t.Errorf("BJ residual at P=160 (%g) should be ≫ P=16 (%g)", big, small)
	}
}

func TestSouthwellMethodsStableOnPlate(t *testing.T) {
	a := problem.PlateMix3D(14, 14, 14, 1, 0.5)
	for name, run := range map[string]method{
		"PS": ParallelSouthwell, "DS": DistributedSouthwell,
	} {
		l, b, x := buildCase(t, a.Clone(), 128, 4)
		res := run(l, b, x, Config{Steps: 50})
		if res.Final().ResNorm >= 1 {
			t.Errorf("%s diverged on plate: %g", name, res.Final().ResNorm)
		}
	}
}

func TestParallelSouthwellRelaxedSetIndependent(t *testing.T) {
	a := problem.Poisson2D(20, 20)
	l, b, x := buildCase(t, a, 10, 5)
	// Instrument: run step by step via Target trick is awkward; instead run
	// once and rely on the exactness property — under exact norms with
	// rank-id tie-breaking, two adjacent ranks can never both win. Verify
	// by replaying the criterion over the per-step relaxed counts: active
	// fraction must stay below the independence bound (no step relaxes two
	// adjacent ranks means relaxed <= maximal independent set size).
	res := ParallelSouthwell(l, b, x, Config{Steps: 30})
	for _, h := range res.History[1:] {
		if h.RelaxedRanks == 0 {
			t.Fatalf("step %d relaxed nothing (deadlock in PS?)", h.Step)
		}
	}
	if res.Final().ResNorm >= 1 {
		t.Error("PS made no progress")
	}
}

func TestDistSWBeatsPSOnCommunication(t *testing.T) {
	// Table 3 shape: DS explicit-residual communication is a small fraction
	// of PS's; total messages are well below PS's.
	a := problem.Poisson3D(12, 12, 12, nil, 1, 1, 1)
	l, b, x := buildCase(t, a, 48, 6)
	ps := ParallelSouthwell(l, b, x, Config{Steps: 50})
	l2, b2, x2 := buildCase(t, problem.Poisson3D(12, 12, 12, nil, 1, 1, 1), 48, 6)
	ds := DistributedSouthwell(l2, b2, x2, Config{Steps: 50})

	if ds.Stats.ResMsgs >= ps.Stats.ResMsgs {
		t.Errorf("DS res msgs %d should be far below PS %d", ds.Stats.ResMsgs, ps.Stats.ResMsgs)
	}
	if float64(ds.Stats.TotalMsgs()) > 0.8*float64(ps.Stats.TotalMsgs()) {
		t.Errorf("DS total msgs %d vs PS %d: expected a clear reduction",
			ds.Stats.TotalMsgs(), ps.Stats.TotalMsgs())
	}
	// And DS should be at least as active per step (inexact estimates admit
	// more simultaneous relaxations).
	if ds.ActiveFraction < ps.ActiveFraction {
		t.Errorf("DS active %g < PS active %g", ds.ActiveFraction, ps.ActiveFraction)
	}
}

func TestDistSWConvergesToTargetWithLessCommThanPS(t *testing.T) {
	a := problem.Poisson2D(32, 32)
	l, b, x := buildCase(t, a, 32, 7)
	ds := DistributedSouthwell(l, b, x, Config{Steps: 200, Target: 0.1})
	if ds.Final().ResNorm > 0.1 {
		t.Fatalf("DS did not reach 0.1 in 200 steps: %g", ds.Final().ResNorm)
	}
}

func TestPiggyback2016Deadlocks(t *testing.T) {
	// The paper: "Parallel Southwell as defined in [18] deadlocks for all
	// our test problems." Reproduce on a moderately partitioned Poisson
	// problem, then show Distributed Southwell pushes past the same point.
	a := problem.Poisson2D(28, 28)
	l, b, x := buildCase(t, a, 28, 8)
	pb := Piggyback2016(l, b, x, Config{Steps: 500})
	if !pb.Deadlocked {
		t.Fatalf("piggyback variant did not deadlock in %d steps (final %g)",
			len(pb.History)-1, pb.Final().ResNorm)
	}
	l2, b2, x2 := buildCase(t, problem.Poisson2D(28, 28), 28, 8)
	ds := DistributedSouthwell(l2, b2, x2, Config{Steps: pb.DeadlockStep + 100})
	if ds.Final().ResNorm >= pb.Final().ResNorm {
		t.Errorf("DS (%g) should pass the deadlock point (%g)",
			ds.Final().ResNorm, pb.Final().ResNorm)
	}
}

func TestParallelEngineIdenticalHistory(t *testing.T) {
	a := problem.FEM2D(24, 0.3, 9)
	for name, run := range methods() {
		l, b, x := buildCase(t, a.Clone(), 12, 9)
		seq := run(l, b, x, Config{Steps: 25})
		l2, b2, x2 := buildCase(t, a.Clone(), 12, 9)
		par := run(l2, b2, x2, Config{Steps: 25, Parallel: true})
		if len(seq.History) != len(par.History) {
			t.Fatalf("%s: history lengths differ", name)
		}
		for i := range seq.History {
			if seq.History[i] != par.History[i] {
				t.Fatalf("%s: step %d differs: %+v vs %+v", name, i, seq.History[i], par.History[i])
			}
		}
	}
}

func TestStepsToNormInterpolation(t *testing.T) {
	res := &Result{History: []StepStats{
		{Step: 0, ResNorm: 1},
		{Step: 1, ResNorm: 0.5},
		{Step: 2, ResNorm: 0.05},
	}}
	s, ok := res.StepsToNorm(0.1)
	if !ok {
		t.Fatal("target not found")
	}
	if s <= 1 || s >= 2 {
		t.Errorf("interpolated step %g, want in (1,2)", s)
	}
	if _, ok := res.StepsToNorm(1e-9); ok {
		t.Error("unreachable target reported reached")
	}
	v, ok := res.InterpAtNorm(0.1, func(h StepStats) float64 { return float64(h.Step) * 10 })
	if !ok || v <= 10 || v >= 20 {
		t.Errorf("InterpAtNorm = %g, %v", v, ok)
	}
}

func TestDistSWAblationNoGhostEstimateCostsMoreWork(t *testing.T) {
	// Without the communication-free ghost-layer estimate improvement,
	// ranks under-estimate their neighbors and over-relax: measurably more
	// relaxations and more total messages for the same number of steps.
	a := problem.Poisson2D(26, 26)
	l, b, x := buildCase(t, a, 26, 10)
	base := DistributedSouthwell(l, b, x, Config{Steps: 50})
	l2, b2, x2 := buildCase(t, problem.Poisson2D(26, 26), 26, 10)
	noGhost := DistributedSouthwellOpt(l2, b2, x2, Config{Steps: 50}, DistSWOptions{NoGhostEstimate: true})
	if noGhost.Final().Relaxations <= base.Final().Relaxations {
		t.Errorf("without ghost estimates relaxations %d should exceed baseline %d",
			noGhost.Final().Relaxations, base.Final().Relaxations)
	}
	if noGhost.Stats.TotalMsgs() <= base.Stats.TotalMsgs() {
		t.Errorf("without ghost estimates total msgs %d should exceed baseline %d",
			noGhost.Stats.TotalMsgs(), base.Stats.TotalMsgs())
	}
}

// Property: on random FEM problems and random rank counts, every method
// keeps the residual exact and the histories are internally consistent.
func TestQuickMethodsResidualExactness(t *testing.T) {
	ms := methods()
	f := func(seed int64) bool {
		m := 10 + int(seed%8+8)%8
		p := 3 + int(seed%5+5)%5
		a := problem.FEM2D(m, 0.3, seed)
		if _, err := sparse.Scale(a); err != nil {
			return false
		}
		part := partition.Partition(a, p, partition.Options{Seed: seed})
		for _, run := range ms {
			l, err := NewLayout(a, part, p)
			if err != nil {
				return false
			}
			b, x := problem.ZeroBSystem(a, seed)
			res := run(l, b, x, Config{Steps: 10})
			if math.Abs(exactGlobalNorm(a, b, res.X)-res.Final().ResNorm) > 1e-8 {
				return false
			}
			for i, h := range res.History {
				if h.Step != i || h.SolveMsgs < 0 {
					return false
				}
				if i > 0 && h.Relaxations < res.History[i-1].Relaxations {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.steps() != 50 {
		t.Errorf("default steps = %d", c.steps())
	}
	if c.model() != rma.DefaultCostModel() {
		t.Error("default model not applied")
	}
	c2 := Config{Steps: 7, Model: &rma.CostModel{Alpha: 1}}
	if c2.steps() != 7 || c2.model().Alpha != 1 {
		t.Error("explicit config ignored")
	}
	// An explicit all-zero model means genuinely free communication, not
	// "use the default" — the sentinel bug the pointer representation fixes.
	if free := (Config{Model: &rma.CostModel{}}); free.model() != (rma.CostModel{}) {
		t.Error("explicit zero model replaced by default")
	}
}

// TestExplicitZeroModelIsFree: a run under an all-zero cost model
// accumulates zero simulated time (messages and flops are costless), which
// the old `Model == CostModel{}` sentinel silently made impossible.
func TestExplicitZeroModelIsFree(t *testing.T) {
	a := problem.Poisson2D(12, 12)
	l, b, x := buildCase(t, a, 4, 1)
	res := BlockJacobi(l, b, x, Config{Steps: 5, Model: &rma.CostModel{}})
	if res.Stats.SimTime != 0 {
		t.Errorf("free model accumulated sim time %g", res.Stats.SimTime)
	}
	if res.Stats.TotalMsgs() == 0 {
		t.Error("free model should still count messages")
	}
}
