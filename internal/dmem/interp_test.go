package dmem

import (
	"math"
	"testing"
)

func hist(norms ...float64) *Result {
	res := &Result{}
	for i, n := range norms {
		res.History = append(res.History, StepStats{Step: i, ResNorm: n})
	}
	return res
}

func checkFinite(t *testing.T, label string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %g, want finite", label, v)
	}
}

// TestInterpAtNormFirstCrossing: on a non-monotone history (norms can rise
// under asynchrony or faults) the reported step must be the FIRST crossing
// of the target, not a later one found by scanning backwards.
func TestInterpAtNormFirstCrossing(t *testing.T) {
	res := hist(1, 0.5, 0.05, 0.5, 0.02)
	s, ok := res.StepsToNorm(0.1)
	if !ok {
		t.Fatal("target not found")
	}
	if s <= 1 || s >= 2 {
		t.Errorf("first crossing at step %g, want in (1,2)", s)
	}
	checkFinite(t, "StepsToNorm", s)
}

// TestInterpAtNormTargetAboveInitial: a target at or above the initial norm
// is met before step 1; the answer is History[0], not NaN from a
// divide-by-zero in the log interpolation.
func TestInterpAtNormTargetAboveInitial(t *testing.T) {
	res := hist(1, 0.5)
	for _, target := range []float64{1, 2} {
		s, ok := res.StepsToNorm(target)
		if !ok || s != 0 {
			t.Errorf("StepsToNorm(%g) = %g, %v; want 0, true", target, s, ok)
		}
	}
}

// TestInterpAtNormZeroResidual: an exact solve (norm 0) on some step must
// report that step instead of interpolating through log10(0) = -Inf.
func TestInterpAtNormZeroResidual(t *testing.T) {
	res := hist(1, 0.5, 0)
	s, ok := res.StepsToNorm(0.1)
	if !ok || s != 2 {
		t.Errorf("StepsToNorm = %g, %v; want 2, true", s, ok)
	}
	// A zero target is only met by an exactly-zero step.
	s, ok = res.StepsToNorm(0)
	if !ok || s != 2 {
		t.Errorf("StepsToNorm(0) = %g, %v; want 2, true", s, ok)
	}
	if _, ok := hist(1, 0.5, 0.25).StepsToNorm(0); ok {
		t.Error("StepsToNorm(0) reported reached on a nonzero history")
	}
}

// TestInterpAtNormNonFinitePrev: a NaN or +Inf norm (diverged or corrupted
// step) immediately before the crossing cannot poison the interpolation —
// the crossing record itself is reported.
func TestInterpAtNormNonFinitePrev(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		res := hist(1, bad, 0.05)
		s, ok := res.StepsToNorm(0.1)
		if !ok || s != 2 {
			t.Errorf("prev=%g: StepsToNorm = %g, %v; want 2, true", bad, s, ok)
		}
		checkFinite(t, "StepsToNorm with non-finite prev", s)
	}
	// An all-NaN tail never crosses: not reached, no panic.
	if _, ok := hist(1, math.NaN(), math.NaN()).StepsToNorm(0.1); ok {
		t.Error("NaN history reported as reaching the target")
	}
}

// TestInterpAtNormEmptyHistory: no history, no crossing, no panic.
func TestInterpAtNormEmptyHistory(t *testing.T) {
	if _, ok := (&Result{}).StepsToNorm(0.1); ok {
		t.Error("empty history reported as reaching the target")
	}
}

// TestInterpAtNormMetricInterpolation: InterpAtNorm interpolates arbitrary
// metrics between the bracketing records and snaps to the crossing record
// in the degenerate cases.
func TestInterpAtNormMetricInterpolation(t *testing.T) {
	res := hist(1, 0.5, 0.05)
	msgs := func(h StepStats) float64 { return float64(h.Step) * 100 }
	v, ok := res.InterpAtNorm(0.1, msgs)
	if !ok || v <= 100 || v >= 200 {
		t.Errorf("InterpAtNorm = %g, %v; want in (100,200)", v, ok)
	}
	v, ok = hist(1, 0.5, 0).InterpAtNorm(0.1, msgs)
	if !ok || v != 200 {
		t.Errorf("InterpAtNorm at zero-residual crossing = %g, %v; want 200", v, ok)
	}
	checkFinite(t, "InterpAtNorm", v)
}
