package dmem

import (
	"bytes"
	"strings"
	"testing"

	"southwell/internal/obs"
	"southwell/internal/problem"
	"southwell/internal/rma"
)

// compareRuns asserts two results agree bit-for-bit in everything that is
// part of results: the per-step history (norms, messages by tag, simulated
// time, fault counters), cumulative runtime stats, the watchdog verdict,
// and the gathered solution. Diagnostics (ActiveHist, SchedWaits) are
// engine observations and deliberately excluded.
func compareRuns(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(a.History), len(b.History))
	}
	for s := range a.History {
		if a.History[s] != b.History[s] {
			t.Fatalf("%s: step %d differs:\na %+v\nb %+v", label, s, a.History[s], b.History[s])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ:\na %+v\nb %+v", label, a.Stats, b.Stats)
	}
	if a.Deadlocked != b.Deadlocked || a.DeadlockStep != b.DeadlockStep {
		t.Fatalf("%s: watchdog verdicts differ: (%v,%d) vs (%v,%d)",
			label, a.Deadlocked, a.DeadlockStep, b.Deadlocked, b.DeadlockStep)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("%s: solution differs at row %d: %.17g vs %.17g", label, i, a.X[i], b.X[i])
		}
	}
}

// TestActiveDenseEquivalence is the active-set engine's core invariant:
// skipping provably quiescent ranks must be invisible in results. Every
// method × rank count × world engine × fault setting runs once densely
// (Config.Dense) and once with active stepping, and the two runs must be
// bit-identical — histories, cumulative stats, watchdog verdicts, and
// solutions. Run under -race via `make race`.
func TestActiveDenseEquivalence(t *testing.T) {
	ranks := []int{64}
	if !testing.Short() {
		ranks = append(ranks, 256)
	}
	for _, p := range ranks {
		grid := 32
		if p > 64 {
			grid = 48
		}
		for mname, run := range methods() {
			for _, par := range []bool{false, true} {
				for _, chaos := range []bool{false, true} {
					name := mname
					if par {
						name += "/pool"
					} else {
						name += "/seq"
					}
					if chaos {
						name += "/chaos"
					}
					t.Run(name, func(t *testing.T) {
						cfg := Config{Steps: 15, Parallel: par}
						if chaos {
							cfg.Faults = fullChaosPlan(11)
						}
						l, b, x := buildCase(t, problem.Poisson2D(grid, grid), p, 1)
						active := run(l, b, x, cfg)
						dcfg := cfg
						dcfg.Dense = true
						if chaos {
							dcfg.Faults = fullChaosPlan(11) // fresh RNG state
						}
						l2, b2, x2 := buildCase(t, problem.Poisson2D(grid, grid), p, 1)
						dense := run(l2, b2, x2, dcfg)
						compareRuns(t, name, dense, active)
						if dense.ActiveHist != nil {
							t.Errorf("dense run reported an active histogram")
						}
					})
				}
			}
		}
	}
}

// TestActiveSkipsQuiescentRanks checks the engine actually sleeps ranks on
// a fault-free Southwell run — the whole point of active stepping — and
// that the histogram is well-formed: step 1 is dense (no hold observed
// yet) and counts stay in [0, P].
func TestActiveSkipsQuiescentRanks(t *testing.T) {
	const p, steps = 16, 30
	l, b, x := buildCase(t, problem.Poisson2D(32, 32), p, 2)
	res := DistributedSouthwell(l, b, x, Config{Steps: steps})
	if res.ActiveHist == nil {
		t.Fatal("active run reported no histogram")
	}
	if len(res.ActiveHist) != len(res.History)-1 {
		t.Fatalf("histogram length %d, want one per executed step %d",
			len(res.ActiveHist), len(res.History)-1)
	}
	if res.ActiveHist[0] != p {
		t.Errorf("step 1 ran %d ranks, want all %d (first step is dense)", res.ActiveHist[0], p)
	}
	min := p
	for s, n := range res.ActiveHist {
		if n < 0 || n > p {
			t.Fatalf("step %d active count %d out of range [0,%d]", s+1, n, p)
		}
		if n < min {
			min = n
		}
	}
	if min >= p {
		t.Errorf("no rank was ever skipped across %d steps — engine is not sleeping anyone", steps)
	}
}

// TestActiveStarvationWakeup exercises the wakeup calendar: under a fault
// plan, a skipped rank's starvation re-announce must fire exactly as the
// dense per-step poll would. The run is long enough for refresh sends to
// occur (asserted via the trace's refresh flag) while ranks sleep
// (asserted via the histogram), and the dense run must still be
// bit-identical — so every calendar wakeup landed on the right step.
func TestActiveStarvationWakeup(t *testing.T) {
	const p, steps = 16, 60
	plan := func() *rma.FaultPlan {
		return &rma.FaultPlan{
			Seed:      5,
			DelayProb: 0.35,
			DelayMax:  4,
			Pauses:    []rma.Pause{{Rank: 3, From: 5, To: 40}},
		}
	}
	rec := obs.NewRecorder(p)
	l, b, x := buildCase(t, problem.Poisson2D(24, 24), p, 3)
	active := DistributedSouthwell(l, b, x, Config{Steps: steps, Faults: plan(), Trace: rec})
	l2, b2, x2 := buildCase(t, problem.Poisson2D(24, 24), p, 3)
	dense := DistributedSouthwell(l2, b2, x2, Config{Steps: steps, Faults: plan(), Dense: true})
	compareRuns(t, "starvation", dense, active)

	skipped := false
	for _, n := range active.ActiveHist {
		if n < p {
			skipped = true
			break
		}
	}
	if !skipped {
		t.Fatal("no rank ever slept — the wakeup path was not exercised")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"refresh":true`) {
		t.Error("no starvation re-announce fired — raise steps or delay probability")
	}
}

// TestActiveWatchdogWhileAsleep pauses every rank mid-run so the watchdog's
// patience window elapses with the active set empty or asleep: the stop
// must fire on the same step, with the same verdict, as dense stepping.
func TestActiveWatchdogWhileAsleep(t *testing.T) {
	const p, steps = 8, 40
	plan := func() *rma.FaultPlan {
		pauses := make([]rma.Pause, p)
		for r := range pauses {
			pauses[r] = rma.Pause{Rank: r, From: 6, To: 39}
		}
		return &rma.FaultPlan{Seed: 2, Pauses: pauses}
	}
	l, b, x := buildCase(t, problem.Poisson2D(16, 16), p, 4)
	active := DistributedSouthwell(l, b, x, Config{Steps: steps, Faults: plan(), Watchdog: 4})
	l2, b2, x2 := buildCase(t, problem.Poisson2D(16, 16), p, 4)
	dense := DistributedSouthwell(l2, b2, x2, Config{Steps: steps, Faults: plan(), Dense: true, Watchdog: 4})
	compareRuns(t, "watchdog", dense, active)
	if !active.Deadlocked {
		t.Fatal("watchdog never fired — pause window or patience is miscalibrated")
	}
	if got, want := len(active.History)-1, active.DeadlockStep; got != want {
		t.Errorf("run continued past the stop: %d steps recorded, stopped at %d", got, want)
	}
}
