package dmem

import "southwell/internal/rma"

// bjPayload carries the residual deltas one rank's sweep induces on a
// neighbor's boundary rows.
type bjPayload struct {
	deltas []float64
}

// BlockJacobi runs Algorithm 1: every parallel step, every rank relaxes its
// subdomain with one local Gauss-Seidel sweep ("hybrid Gauss-Seidel") and
// writes boundary residual deltas to all neighbors; the step's epoch
// completes and every rank absorbs the incoming deltas before the next
// step, so residuals are exact at step boundaries.
func BlockJacobi(l *Layout, b, x []float64, cfg Config) *Result {
	w := rma.NewWorld(l.P, cfg.model())
	w.Parallel = cfg.Parallel
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Block Jacobi", P: l.P, N: l.A.N}
	record(res, w, states, 0, 0, 0)

	// Persistent per-(rank, neighbor) payloads: pointers cross the simulated
	// network, so the steady-state message path allocates nothing.
	solvePl := make([][]bjPayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]bjPayload, rs.rd.Degree())
	}

	cumRelax := 0
	for step := 1; step <= cfg.steps(); step++ {
		// Relax and write.
		w.RunPhase(func(p int) {
			rs := states[p]
			rs.zeroExtDelta()
			flops := rs.relaxLocal()
			w.Charge(p, flops)
			for j, q := range rs.rd.Nbrs {
				pl := &solvePl[p][j]
				pl.deltas = rs.deltasFor(j)
				w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)), pl)
			}
		})
		// Wait for neighbors to finish writing, then read.
		w.RunPhase(func(p int) {
			rs := states[p]
			for _, m := range w.Inbox(p) {
				j := rs.rd.NbrIdx[m.From]
				rs.applyDeltas(j, m.Payload.(*bjPayload).deltas)
			}
			rs.norm = rs.computeNorm()
			w.Charge(p, 2*float64(rs.rd.M()))
		})
		cumRelax += l.A.N // every rank relaxed every local row
		record(res, w, states, step, l.P, cumRelax)
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	finish(res, l, w, states)
	return res
}
