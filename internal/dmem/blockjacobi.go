package dmem

import "southwell/internal/rma"

// bjPayload carries the residual deltas one rank's sweep induces on a
// neighbor's boundary rows.
type bjPayload struct {
	deltas []float64
}

// CloneMessage deep-copies the payload for the fault layer: the sender
// reuses deltas on its next sweep, so a delivery held back past that phase
// must not alias it.
func (pl *bjPayload) CloneMessage() any {
	return &bjPayload{deltas: append([]float64(nil), pl.deltas...)}
}

// BlockJacobi runs Algorithm 1: every parallel step, every rank relaxes its
// subdomain with one local Gauss-Seidel sweep ("hybrid Gauss-Seidel") and
// writes boundary residual deltas to all neighbors; the step's epoch
// completes and every rank absorbs the incoming deltas before the next
// step, so residuals are exact at step boundaries.
func BlockJacobi(l *Layout, b, x []float64, cfg Config) *Result {
	w := newWorld(l, cfg)
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Block Jacobi", P: l.P, N: l.A.N}
	record(res, w, states, globalNorm(states), 0, 0, 0)

	// Persistent per-(rank, neighbor) payloads: pointers cross the simulated
	// network, so the steady-state message path allocates nothing.
	solvePl := make([][]bjPayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]bjPayload, rs.rd.Degree())
	}

	// absorb drains rank p's window in any phase: deltas always applied,
	// fault-injected duplicate landings skipped (a real duplicated
	// one-sided write is idempotent). BJ carries no estimates, so there is
	// nothing to guard against staleness.
	absorb := func(p int) {
		rs := states[p]
		for _, m := range w.Inbox(p) {
			if m.Dup {
				continue
			}
			rs.applyDeltas(rs.rd.NbrIdx[m.From], m.Payload.(*bjPayload).deltas)
		}
	}

	wd := newWatchdog(cfg, w)
	cumRelax := 0
	// BJ's quiescence declaration (engine.go): never quiescent. Every
	// unpaused rank relaxes unconditionally every step, so the active-set
	// engine could never put one to sleep correctly (a paused rank holds
	// with no mail, yet dense BJ relaxes it again the moment it unpauses).
	// The dense RunPhases path IS the active set here, so Config.Dense has
	// no effect on this method.
	for step := 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		// Reset relax flags on the driving goroutine: a rank paused by the
		// fault layer skips the sweep phase and must not be recounted.
		for _, rs := range states {
			rs.relaxed = false
		}
		// The step's two access epochs form one scheduler group: under
		// rma.SchedNeighbor a rank moves from its sweep phase to its read
		// phase as soon as its own neighborhood is done, without waiting on
		// the rest of the machine.
		w.RunPhases(
			// Relax and write (absorbing any late deliveries first).
			func(p int) {
				absorb(p)
				rs := states[p]
				traceDecision(w, step, p, rs, true)
				rs.relaxed = true
				rs.zeroExtDelta()
				flops := rs.relaxLocal()
				w.Charge(p, flops)
				for j, q := range rs.rd.Nbrs {
					pl := &solvePl[p][j]
					pl.deltas = rs.deltasFor(j)
					w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)), pl)
				}
			},
			// Wait for neighbors to finish writing, then read.
			func(p int) {
				rs := states[p]
				absorb(p)
				rs.norm = rs.computeNorm()
				w.Charge(p, 2*float64(rs.rd.M()))
			})
		for p := range states {
			if states[p].relaxed {
				relaxedRanks++
				cumRelax += states[p].rd.M()
			}
		}
		record(res, w, states, globalNorm(states), step, relaxedRanks, cumRelax)
		if wd.observe(w, step, relaxedRanks) {
			res.deadlockAt(step)
			break
		}
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	finish(res, l, w, states)
	return res
}
