package dmem

import "southwell/internal/rma"

// dsSolvePayload is a Distributed Southwell relaxation message (Algorithm
// 3, line 17): boundary residual deltas for the receiver, the sender's
// boundary residual values (refreshing the receiver's ghost layer z), the
// sender's exact new norm, and the sender's locally-improved estimate of
// the receiver's norm (which the receiver stores in Γ̃).
type dsSolvePayload struct {
	deltas  []float64
	bnd     []float64
	norm    float64
	estRecv float64
	seq     int64 // sender sequence number (stale-estimate guard; see seqSeen)
}

// CloneMessage deep-copies the payload for the fault layer: the sender
// reuses deltas/bnd on its next relaxation, so a delivery held back past
// that phase must not alias them.
func (pl *dsSolvePayload) CloneMessage() any {
	c := *pl
	c.deltas = append([]float64(nil), pl.deltas...)
	c.bnd = append([]float64(nil), pl.bnd...)
	return &c
}

// dsResPayload is an explicit residual update (Algorithm 3, line 29), sent
// only on deadlock risk: ghost refresh plus the two norms.
type dsResPayload struct {
	bnd     []float64
	norm    float64
	estRecv float64
	seq     int64
}

func (pl *dsResPayload) CloneMessage() any {
	c := *pl
	c.bnd = append([]float64(nil), pl.bnd...)
	return &c
}

// DistSWOptions are Distributed Southwell variants beyond the paper,
// default-zero for the paper's algorithm.
type DistSWOptions struct {
	// NoGhostEstimate disables the communication-free Γ improvement via
	// the ghost layer (ablation: shows the ghost estimates are
	// load-bearing for message reduction).
	NoGhostEstimate bool
	// UpdateSlack relaxes the explicit-update trigger to
	// Γ̃ > (1+UpdateSlack)·‖r_p‖ (ablation: trades messages for risk of
	// slower estimate correction). Zero is the paper's trigger.
	UpdateSlack float64
}

// DistributedSouthwell runs the block form of Algorithm 3, the paper's
// contribution. Ranks decide to relax from *estimates* Γ of neighbor norms;
// estimates improve locally through the ghost residual layer when a rank
// relaxes; and an explicit residual update is written to neighbor q only
// when q's estimate of this rank's norm (Γ̃, maintained exactly without
// communication) exceeds the actual norm — the deadlock-risk condition.
func DistributedSouthwell(l *Layout, b, x []float64, cfg Config) *Result {
	return distributedSouthwell(l, b, x, cfg, DistSWOptions{})
}

// DistributedSouthwellOpt is DistributedSouthwell with ablation options.
func DistributedSouthwellOpt(l *Layout, b, x []float64, cfg Config, opts DistSWOptions) *Result {
	return distributedSouthwell(l, b, x, cfg, opts)
}

func distributedSouthwell(l *Layout, b, x []float64, cfg Config, opts DistSWOptions) *Result {
	w := newWorld(l, cfg)
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Distributed Southwell", P: l.P, N: l.A.N}
	record(res, w, states, globalNorm(states), 0, 0, 0)

	// Persistent payloads (pointers cross the network; see blockjacobi.go).
	// Explicit updates get their own per-neighbor structs: they are sent one
	// phase after the solve messages, whose buffers are still in flight.
	solvePl := make([][]dsSolvePayload, l.P)
	resPl := make([][]dsResPayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]dsSolvePayload, rs.rd.Degree())
		resPl[p] = make([]dsResPayload, rs.rd.Degree())
	}

	// absorb drains rank p's window — callable from any phase. Residual
	// deltas are always applied: they are additive and exact regardless of
	// arrival order or lateness. Ghost refreshes and the Γ/Γ̃ estimates are
	// guarded by the payload sequence number, so a delayed message cannot
	// overwrite fresher information with stale values. Duplicate landings
	// injected by the fault layer are skipped (a real duplicated one-sided
	// write is idempotent). On a perfect network phase-1 windows are empty
	// and every sequence number is fresh, so this reduces exactly to the
	// paper's phase-2/phase-3 reads.
	absorb := func(p int) {
		rs := states[p]
		changed := false
		for _, m := range w.Inbox(p) {
			if m.Dup {
				continue
			}
			rs.gotMsg = true
			j := rs.rd.NbrIdx[m.From]
			switch pl := m.Payload.(type) {
			case *dsSolvePayload:
				rs.applyDeltas(j, pl.deltas)
				changed = true
				if pl.seq < rs.seqSeen[j] {
					continue // keep the deltas, drop the stale estimates
				}
				rs.seqSeen[j] = pl.seq
				// Crossing correction only when this rank itself relaxed
				// this step and wrote to j (so lastSentNorm/sentBnd/extDelta
				// describe this step's send). Fault-free this is exactly the
				// phase-2 sentTo condition; under faults sentTo[j] can also
				// mean an explicit update was sent, which has no crossing.
				if rs.relaxed && rs.sentTo[j] {
					// Crossing relaxations: the sender's ghost refresh and
					// norm predate this rank's own deltas to it, so re-apply
					// them on top (the "better estimate than doing nothing"
					// of §3). The sender mirrors this arithmetic when it
					// processes this rank's message, and Γ̃ is recomputed
					// from the values this rank sent, so Γ̃ stays exactly
					// equal to the sender's corrected estimate.
					adj := 0.0
					for k, e := range rs.rd.BndExt[j] {
						nz := pl.bnd[k] + rs.extDelta[e]
						adj += nz*nz - pl.bnd[k]*pl.bnd[k]
						if !opts.NoGhostEstimate {
							rs.z[e] = nz
						} else {
							rs.z[e] = pl.bnd[k]
						}
					}
					if opts.NoGhostEstimate {
						rs.gamma[j] = pl.norm
						// Γ̃ keeps the value set at send time: the sender
						// applies no correction either in this mode.
					} else {
						rs.gamma[j] = sqrtNonNeg(pl.norm*pl.norm + adj)
						adjMine := 0.0
						for k := range rs.rd.MyBnd[j] {
							b0 := rs.sentBnd[j][k]
							nb := b0 + pl.deltas[k]
							adjMine += nb*nb - b0*b0
						}
						rs.gammaTilde[j] = sqrtNonNeg(rs.lastSentNorm*rs.lastSentNorm + adjMine)
					}
				} else {
					rs.overwriteGhost(j, pl.bnd)
					rs.gamma[j] = pl.norm
					rs.gammaTilde[j] = pl.estRecv
				}
			case *dsResPayload:
				if pl.seq < rs.seqSeen[j] {
					continue
				}
				rs.seqSeen[j] = pl.seq
				rs.overwriteGhost(j, pl.bnd)
				rs.gamma[j] = pl.norm
				if !rs.sentTo[j] {
					rs.gammaTilde[j] = pl.estRecv
				}
			}
		}
		if changed {
			rs.norm = rs.computeNorm()
			w.Charge(p, 2*float64(rs.rd.M()))
		}
	}

	wd := newWatchdog(cfg, w)
	chaotic := cfg.Faults != nil
	refreshAfter := (cfg.watchdogWindow() + 1) / 2
	cumRelax := 0
	// DS's quiescence rule (engine.go): a rank that held with an empty
	// window re-decides identically until its state changes, and its phase-2
	// trigger self-extinguishes (a fired send sets Γ̃[j] = ‖r‖, or lastTold
	// under UpdateSlack, closing the trigger). The starvation re-announce is
	// the one per-step poll; the engine converts it to step stamps plus a
	// wakeup calendar, so starvation=true here.
	eng := newStepEngine(w, states, cfg, true)
	if opts.UpdateSlack < 0 {
		// A negative slack keeps the trigger Γ̃ > (1+s)·‖r‖ open even after a
		// send resets Γ̃ = ‖r‖, so the phase-2 action is not self-extinguishing
		// and the quiescence invariant does not hold: stay dense.
		eng.dense = true
	}
	// The phase closures are hoisted out of the step loop and capture the
	// shared step variable, so the active engine can re-dispatch them
	// per-phase without per-step closure allocations.
	var step int
	// Phase 1: absorb any late deliveries; decide from estimates;
	// relax; write updates.
	phase1 := func(p int) {
		absorb(p)
		rs := states[p]
		wins := rs.norm > 0
		for j, q := range rs.rd.Nbrs {
			if !winsOver(rs.norm, p, rs.gamma[j], q) {
				wins = false
				break
			}
		}
		w.Charge(p, float64(rs.rd.Degree()))
		traceDecision(w, step, p, rs, wins)
		if !wins {
			return
		}
		rs.relaxed = true
		rs.zeroExtDelta()
		flops := rs.relaxLocal()
		rs.norm = rs.computeNorm()
		rs.lastSentNorm = rs.norm
		w.Charge(p, flops+2*float64(rs.rd.M()))
		for j, q := range rs.rd.Nbrs {
			// Local, communication-free improvement of the estimate of
			// q's norm using the ghost layer (skippable for ablation).
			if opts.NoGhostEstimate {
				for _, e := range rs.rd.BndExt[j] {
					rs.z[e] += rs.extDelta[e]
				}
			} else {
				rs.updateGhostAndGamma(j)
			}
			w.Charge(p, 2*float64(len(rs.rd.BndExt[j])))
			rs.gammaTilde[j] = rs.norm
			rs.sentTo[j] = true
			pl := &solvePl[p][j]
			pl.deltas = rs.deltasFor(j)
			pl.bnd = rs.boundaryResiduals(j)
			pl.norm = rs.norm
			pl.estRecv = rs.gamma[j]
			pl.seq = 2 * int64(step)
			rs.sentBnd[j] = pl.bnd
			w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)+len(pl.bnd)+2), pl)
		}
	}
	// Phase 2: absorb writes; detect deadlock risk; write explicit
	// residual updates where needed.
	phase2 := func(p int) {
		absorb(p)
		rs := states[p]
		for j := range rs.sentTo {
			rs.sentTo[j] = false
		}
		// Starvation re-announce (fault injection only): delayed or
		// crossing messages can desync the Γ̃ mirror arithmetic from the
		// neighbor's actual estimate, and a mutual overestimate cycle
		// would then stall forever — the fault-free §2.4 proof assumes
		// faithful tracking. A rank that has neither relaxed nor
		// received anything for half the watchdog patience re-sends its
		// exact residual state to every neighbor, making the estimates
		// exact again, so Distributed Southwell stays deadlock-free on
		// any eventually-quiescent network.
		refresh := chaotic && rs.starved >= refreshAfter
		if refresh {
			rs.starved = 0
		}
		// Deadlock-risk detection (Algorithm 3, lines 27-30).
		for j, q := range rs.rd.Nbrs {
			if refresh || rs.gammaTilde[j] > rs.norm*(1+opts.UpdateSlack) {
				traceResSend(w, step, p, q, rs.gammaTilde[j], rs, refresh)
				rs.gammaTilde[j] = rs.norm
				rs.sentTo[j] = true
				pl := &resPl[p][j]
				pl.bnd = rs.resBoundaryResiduals(j)
				pl.norm = rs.norm
				pl.estRecv = rs.gamma[j]
				pl.seq = 2*int64(step) + 1
				w.Put(p, q, rma.TagResidual, msgBytes(len(pl.bnd)+2), pl)
			}
		}
	}
	// Phase 3: absorb explicit updates.
	phase3 := func(p int) {
		absorb(p)
		rs := states[p]
		for j := range rs.sentTo {
			rs.sentTo[j] = false
		}
	}
	// Squared local norms for the flat global-norm sum on the active path;
	// tally refreshes member slots, sleepers cannot change theirs.
	var norms2 []float64
	if !eng.dense {
		norms2 = make([]float64, len(states))
		for p, rs := range states {
			norms2[p] = rs.norm * rs.norm
		}
	}
	for step = 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		var norm float64
		if eng.dense {
			// Reset relax flags on the driving goroutine: a rank paused by
			// the fault layer does not execute phase 1 and must not be
			// counted as having relaxed again.
			for _, rs := range states {
				rs.relaxed = false
			}
			// The step's three access epochs form one scheduler group: under
			// rma.SchedNeighbor each rank advances phase to phase on its own
			// neighborhood's progress alone.
			w.RunPhases(phase1, phase2, phase3)
			for p := range states {
				if states[p].relaxed {
					relaxedRanks++
					cumRelax += states[p].rd.M()
				}
			}
			if chaotic {
				for _, rs := range states {
					if rs.relaxed || rs.gotMsg {
						rs.starved = 0
					} else {
						rs.starved++
					}
					rs.gotMsg = false
				}
			}
			norm = globalNorm(states)
		} else {
			eng.resetRelaxed()
			eng.beginStep(step)
			eng.runPhase(step, phase1, eng.idleDeg)
			eng.runPhase(step, phase2, nil)
			eng.runPhase(step, phase3, nil)
			rr, rows := eng.tally(norms2)
			relaxedRanks = rr
			cumRelax += rows
			// Executed ranks take the dense starvation rule; quiescent ones
			// sleep with a stamped counter and a calendar wakeup.
			eng.endStep(step)
			norm = flatNorm(norms2)
		}
		record(res, w, states, norm, step, relaxedRanks, cumRelax)
		eng.traceStep(step)
		if wd.observe(w, step, relaxedRanks) {
			res.deadlockAt(step)
			break
		}
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	if !eng.dense {
		res.ActiveHist = eng.hist
	}
	finish(res, l, w, states)
	return res
}
