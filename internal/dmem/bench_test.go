package dmem

import (
	"fmt"
	"testing"

	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

// benchStates builds the per-rank state for a scaled Poisson problem.
func benchStates(b *testing.B, n, ranks int) (*Layout, []*rankState) {
	b.Helper()
	a := problem.Poisson2D(n, n)
	if _, err := sparse.Scale(a); err != nil {
		b.Fatal(err)
	}
	part := partition.Partition(a, ranks, partition.Options{Seed: 1})
	l, err := NewLayout(a, part, ranks)
	if err != nil {
		b.Fatal(err)
	}
	bb, x := problem.ZeroBSystem(a, 1)
	return l, newRankStates(l, bb, x)
}

// BenchmarkRelaxSweep measures the local Gauss-Seidel relaxation kernel plus
// the message-staging path (boundary residual and delta collection) that
// runs on every relaxation — the per-rank inner loop of every method.
func BenchmarkRelaxSweep(b *testing.B) {
	_, states := benchStates(b, 64, 16)
	rs := states[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.zeroExtDelta()
		rs.relaxSweep()
		for j := range rs.rd.Nbrs {
			d := rs.deltasFor(j)
			bnd := rs.boundaryResiduals(j)
			_, _ = d, bnd
		}
	}
}

// BenchmarkStepDS measures one full Distributed Southwell parallel step
// (three phases over the runtime) at several rank counts.
func BenchmarkStepDS(b *testing.B) {
	for _, ranks := range []int{64, 256} {
		for _, eng := range []struct {
			name     string
			parallel bool
		}{{"seq", false}, {"pool", true}} {
			b.Run(fmt.Sprintf("P=%d/%s", ranks, eng.name), func(b *testing.B) {
				a := problem.Poisson2D(100, 100)
				if _, err := sparse.Scale(a); err != nil {
					b.Fatal(err)
				}
				part := partition.Partition(a, ranks, partition.Options{Seed: 1})
				l, err := NewLayout(a, part, ranks)
				if err != nil {
					b.Fatal(err)
				}
				bb, x := problem.ZeroBSystem(a, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					DistributedSouthwell(l, bb, x, Config{Steps: 10, Parallel: eng.parallel})
				}
			})
		}
	}
}
