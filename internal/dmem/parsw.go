package dmem

import "southwell/internal/rma"

// psSolvePayload is a relaxation message: boundary residual deltas with the
// sender's new residual norm piggybacked (Algorithm 2, line 10).
type psSolvePayload struct {
	deltas []float64
	norm   float64
	seq    int64 // sender sequence number (stale-estimate guard; see seqSeen)
}

// CloneMessage deep-copies the payload for the fault layer: the sender
// reuses deltas on its next relaxation, so a delivery held back past that
// phase must not alias it.
func (pl *psSolvePayload) CloneMessage() any {
	c := *pl
	c.deltas = append([]float64(nil), pl.deltas...)
	return &c
}

// psResPayload is an explicit residual-norm update (Algorithm 2, line 20).
type psResPayload struct {
	norm float64
	seq  int64
}

func (pl *psResPayload) CloneMessage() any {
	c := *pl
	return &c
}

// ParallelSouthwell runs the block form of Algorithm 2 over the simulated
// one-sided runtime. Each parallel step has the algorithm's three phases:
//
//  1. ranks whose exact norm is maximal in their neighborhood relax and
//     write deltas + their new norm to all neighbors;
//  2. ranks absorb incoming writes, and any rank whose norm changed without
//     having announced it writes an explicit residual update to all
//     neighbors — the communication Distributed Southwell eliminates;
//  3. ranks absorb the explicit updates.
//
// Norms in Γ are therefore exact at every decision, making the method
// mathematically identical to shared-memory block Parallel Southwell.
func ParallelSouthwell(l *Layout, b, x []float64, cfg Config) *Result {
	w := newWorld(l, cfg)
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Parallel Southwell", P: l.P, N: l.A.N}
	record(res, w, states, globalNorm(states), 0, 0, 0)

	// Persistent payloads (pointers cross the network; see blockjacobi.go).
	// The explicit update carries one norm for all neighbors, so a single
	// struct per rank suffices.
	solvePl := make([][]psSolvePayload, l.P)
	resPl := make([]psResPayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]psSolvePayload, rs.rd.Degree())
	}

	// absorb drains rank p's window in any phase: deltas are always applied
	// (additive, exact regardless of arrival order), the piggybacked norm is
	// taken only when at least as fresh as what was already absorbed, and
	// fault-injected duplicate landings are skipped (a real duplicated
	// one-sided write is idempotent). Reduces to the paper's phase-2/phase-3
	// reads on a perfect network.
	absorb := func(p int) {
		rs := states[p]
		changed := false
		for _, m := range w.Inbox(p) {
			if m.Dup {
				continue
			}
			j := rs.rd.NbrIdx[m.From]
			switch pl := m.Payload.(type) {
			case *psSolvePayload:
				rs.applyDeltas(j, pl.deltas)
				changed = true
				if pl.seq >= rs.seqSeen[j] {
					rs.seqSeen[j] = pl.seq
					rs.gamma[j] = pl.norm
				}
			case *psResPayload:
				if pl.seq >= rs.seqSeen[j] {
					rs.seqSeen[j] = pl.seq
					rs.gamma[j] = pl.norm
				}
			}
		}
		if changed {
			rs.norm = rs.computeNorm()
			w.Charge(p, 2*float64(rs.rd.M()))
		}
	}

	wd := newWatchdog(cfg, w)
	cumRelax := 0
	// PS's quiescence rule (engine.go): a held decision replays until the
	// state changes, and the phase-2 announce self-extinguishes (a fired
	// announce sets lastTold = norm, closing the trigger). PS has no
	// starvation clock — exact norms cannot deadlock — so starvation=false.
	eng := newStepEngine(w, states, cfg, false)
	// Phase closures are hoisted out of the step loop, capturing the shared
	// step variable, so the engine re-dispatches them phase by phase.
	var step int
	// Phase 1: absorb late deliveries; decide and relax.
	phase1 := func(p int) {
		absorb(p)
		rs := states[p]
		wins := rs.norm > 0
		for j, q := range rs.rd.Nbrs {
			if !winsOver(rs.norm, p, rs.gamma[j], q) {
				wins = false
				break
			}
		}
		w.Charge(p, float64(rs.rd.Degree()))
		traceDecision(w, step, p, rs, wins)
		if !wins {
			return
		}
		rs.relaxed = true
		rs.zeroExtDelta()
		flops := rs.relaxLocal()
		rs.norm = rs.computeNorm()
		rs.lastTold = rs.norm
		w.Charge(p, flops+2*float64(rs.rd.M()))
		for j, q := range rs.rd.Nbrs {
			pl := &solvePl[p][j]
			pl.deltas = rs.deltasFor(j)
			pl.norm = rs.norm
			pl.seq = 2 * int64(step)
			w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)+1), pl)
		}
	}
	// Phase 2: absorb writes; announce changed norms.
	phase2 := func(p int) {
		absorb(p)
		rs := states[p]
		// Bit-exact by design: any change at all to the norm since the
		// last announcement must be broadcast (Algorithm 2, line 20) —
		// a tolerance here would let stale Γ entries persist.
		if rs.norm != rs.lastTold { //dslint:ignore floatcmp

			traceResSend(w, step, p, -1, rs.lastTold, rs, false)
			rs.lastTold = rs.norm
			resPl[p].norm = rs.norm
			resPl[p].seq = 2*int64(step) + 1
			for _, q := range rs.rd.Nbrs {
				w.Put(p, q, rma.TagResidual, msgBytes(1), &resPl[p])
			}
		}
	}
	// Squared local norms for the flat global-norm sum on the active path
	// (see distsw.go).
	var norms2 []float64
	if !eng.dense {
		norms2 = make([]float64, len(states))
		for p, rs := range states {
			norms2[p] = rs.norm * rs.norm
		}
	}
	for step = 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		var norm float64
		if eng.dense {
			// Reset relax flags on the driving goroutine: a rank paused by
			// the fault layer does not execute phase 1 and must not be
			// recounted.
			for _, rs := range states {
				rs.relaxed = false
			}
			// One scheduler group per step (see blockjacobi.go). Phase 3
			// absorbs explicit updates.
			w.RunPhases(phase1, phase2, absorb)
			for p := range states {
				if states[p].relaxed {
					relaxedRanks++
					cumRelax += states[p].rd.M()
				}
			}
			norm = globalNorm(states)
		} else {
			eng.resetRelaxed()
			eng.beginStep(step)
			eng.runPhase(step, phase1, eng.idleDeg)
			eng.runPhase(step, phase2, nil)
			eng.runPhase(step, absorb, nil)
			rr, rows := eng.tally(norms2)
			relaxedRanks = rr
			cumRelax += rows
			eng.endStep(step)
			norm = flatNorm(norms2)
		}
		record(res, w, states, norm, step, relaxedRanks, cumRelax)
		eng.traceStep(step)
		if wd.observe(w, step, relaxedRanks) {
			res.deadlockAt(step)
			break
		}
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	if !eng.dense {
		res.ActiveHist = eng.hist
	}
	finish(res, l, w, states)
	return res
}
