package dmem

import "southwell/internal/rma"

// psSolvePayload is a relaxation message: boundary residual deltas with the
// sender's new residual norm piggybacked (Algorithm 2, line 10).
type psSolvePayload struct {
	deltas []float64
	norm   float64
}

// psResPayload is an explicit residual-norm update (Algorithm 2, line 20).
type psResPayload struct {
	norm float64
}

// ParallelSouthwell runs the block form of Algorithm 2 over the simulated
// one-sided runtime. Each parallel step has the algorithm's three phases:
//
//  1. ranks whose exact norm is maximal in their neighborhood relax and
//     write deltas + their new norm to all neighbors;
//  2. ranks absorb incoming writes, and any rank whose norm changed without
//     having announced it writes an explicit residual update to all
//     neighbors — the communication Distributed Southwell eliminates;
//  3. ranks absorb the explicit updates.
//
// Norms in Γ are therefore exact at every decision, making the method
// mathematically identical to shared-memory block Parallel Southwell.
func ParallelSouthwell(l *Layout, b, x []float64, cfg Config) *Result {
	w := rma.NewWorld(l.P, cfg.model())
	w.Parallel = cfg.Parallel
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Parallel Southwell", P: l.P, N: l.A.N}
	record(res, w, states, 0, 0, 0)

	// Persistent payloads (pointers cross the network; see blockjacobi.go).
	// The explicit update carries one norm for all neighbors, so a single
	// struct per rank suffices.
	solvePl := make([][]psSolvePayload, l.P)
	resPl := make([]psResPayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]psSolvePayload, rs.rd.Degree())
	}

	cumRelax := 0
	for step := 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		// Phase 1: decide and relax.
		w.RunPhase(func(p int) {
			rs := states[p]
			rs.relaxed = false
			wins := rs.norm > 0
			for j, q := range rs.rd.Nbrs {
				if !winsOver(rs.norm, p, rs.gamma[j], q) {
					wins = false
					break
				}
			}
			w.Charge(p, float64(rs.rd.Degree()))
			if !wins {
				return
			}
			rs.relaxed = true
			rs.zeroExtDelta()
			flops := rs.relaxLocal()
			rs.norm = rs.computeNorm()
			rs.lastTold = rs.norm
			w.Charge(p, flops+2*float64(rs.rd.M()))
			for j, q := range rs.rd.Nbrs {
				pl := &solvePl[p][j]
				pl.deltas = rs.deltasFor(j)
				pl.norm = rs.norm
				w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)+1), pl)
			}
		})
		// Phase 2: absorb writes; announce changed norms.
		w.RunPhase(func(p int) {
			rs := states[p]
			changed := false
			for _, m := range w.Inbox(p) {
				pl := m.Payload.(*psSolvePayload)
				j := rs.rd.NbrIdx[m.From]
				rs.applyDeltas(j, pl.deltas)
				rs.gamma[j] = pl.norm
				changed = true
			}
			if changed {
				rs.norm = rs.computeNorm()
				w.Charge(p, 2*float64(rs.rd.M()))
			}
			if rs.norm != rs.lastTold {
				rs.lastTold = rs.norm
				resPl[p].norm = rs.norm
				for _, q := range rs.rd.Nbrs {
					w.Put(p, q, rma.TagResidual, msgBytes(1), &resPl[p])
				}
			}
		})
		// Phase 3: absorb explicit updates.
		w.RunPhase(func(p int) {
			rs := states[p]
			for _, m := range w.Inbox(p) {
				rs.gamma[rs.rd.NbrIdx[m.From]] = m.Payload.(*psResPayload).norm
			}
		})
		for p := range states {
			if states[p].relaxed {
				relaxedRanks++
				cumRelax += states[p].rd.M()
			}
		}
		record(res, w, states, step, relaxedRanks, cumRelax)
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	finish(res, l, w, states)
	return res
}
