package dmem

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"southwell/internal/obs"
	"southwell/internal/problem"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// traceCase runs Distributed Southwell on a small fixed Poisson problem
// with a fresh recorder and returns both.
func traceCase(t *testing.T, parallel bool, steps int) (*Result, *obs.Recorder) {
	t.Helper()
	l, b, x := buildCase(t, problem.Poisson2D(12, 12), 4, 1)
	rec := obs.NewRecorderCap(4, 4096)
	rec.SetLabel("golden ds")
	res := DistributedSouthwell(l, b, x, Config{Steps: steps, Parallel: parallel, Trace: rec})
	return res, rec
}

// TestTracingPreservesResults is the observability layer's first law: a
// run with a live Recorder is bit-identical — step history, cumulative
// stats, and solution vector — to the same run without one, for every
// method.
func TestTracingPreservesResults(t *testing.T) {
	for name, run := range methods() {
		t.Run(name, func(t *testing.T) {
			a := problem.Poisson2D(16, 16)
			l, b, x := buildCase(t, a, 6, 1)
			plain := run(l, b, x, Config{Steps: 12})
			l2, b2, x2 := buildCase(t, a, 6, 1)
			rec := obs.NewRecorder(6)
			traced := run(l2, b2, x2, Config{Steps: 12, Trace: rec})

			if len(plain.History) != len(traced.History) {
				t.Fatalf("history lengths differ: %d vs %d", len(plain.History), len(traced.History))
			}
			for i := range plain.History {
				if plain.History[i] != traced.History[i] {
					t.Fatalf("step %d differs:\nplain  %+v\ntraced %+v", i, plain.History[i], traced.History[i])
				}
			}
			if plain.Stats != traced.Stats {
				t.Fatalf("stats differ:\nplain  %+v\ntraced %+v", plain.Stats, traced.Stats)
			}
			for i := range plain.X {
				if plain.X[i] != traced.X[i] {
					t.Fatalf("solution differs at row %d", i)
				}
			}
			// And the recorder actually saw the run.
			if len(rec.Events()) == 0 {
				t.Error("recorder captured no events")
			}
		})
	}
}

// TestTraceEngineByteIdentical: both world engines must yield the same
// recorded stream — the exported trace and metrics files are compared as
// raw bytes. Together with `make race` this pins the obs concurrency
// contract: per-rank shards are written without locks, yet the pool
// engine produces the sequential engine's bytes.
func TestTraceEngineByteIdentical(t *testing.T) {
	_, seqRec := traceCase(t, false, 8)
	_, poolRec := traceCase(t, true, 8)

	var seqTrace, poolTrace bytes.Buffer
	if err := seqRec.WriteTrace(&seqTrace); err != nil {
		t.Fatal(err)
	}
	if err := poolRec.WriteTrace(&poolTrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqTrace.Bytes(), poolTrace.Bytes()) {
		t.Error("trace export differs between engines")
	}

	var seqMet, poolMet bytes.Buffer
	if err := seqRec.WriteMetrics(&seqMet); err != nil {
		t.Fatal(err)
	}
	if err := poolRec.WriteMetrics(&poolMet); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqMet.Bytes(), poolMet.Bytes()) {
		t.Errorf("metrics export differs between engines:\n--- seq ---\n%s\n--- pool ---\n%s",
			seqMet.String(), poolMet.String())
	}
}

// TestTraceGolden pins the exact Chrome trace-event bytes of a small
// Distributed Southwell run. Everything upstream is deterministic — the
// partition, the simulated α-β-γ clock, the shortest-round-trip float
// formatting — so any diff here means either the event stream or the
// export format changed; regenerate with `go test ./internal/dmem
// -run TestTraceGolden -update` and review the diff.
func TestTraceGolden(t *testing.T) {
	_, rec := traceCase(t, false, 5)
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_ds_12x12_p4.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got, exp := buf.Bytes(), want
		i := 0
		for i < len(got) && i < len(exp) && got[i] == exp[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		snip := func(b []byte) string {
			hi := i + 60
			if hi > len(b) {
				hi = len(b)
			}
			return string(b[lo:hi])
		}
		t.Errorf("trace diverges from golden at byte %d:\ngot  ...%s...\nwant ...%s...\n(regenerate with -update if the change is intended)",
			i, snip(got), snip(exp))
	}
}
