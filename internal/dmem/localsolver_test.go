package dmem

import (
	"math"
	"testing"

	"southwell/internal/problem"
)

func TestDirectLocalSolverExactResidual(t *testing.T) {
	a := problem.Poisson2D(20, 20)
	for name, run := range methods() {
		l, b, x := buildCase(t, a.Clone(), 8, 31)
		res := run(l, b, x, Config{Steps: 15, Local: LocalDirect})
		got := exactGlobalNorm(l.A, b, res.X)
		if math.Abs(got-res.Final().ResNorm) > 1e-9 {
			t.Errorf("%s direct: reported %g, true %g", name, res.Final().ResNorm, got)
		}
	}
}

func TestDirectLocalSolverBeatsGSOnFirstStep(t *testing.T) {
	// An exact local solve zeroes the interior residual, so the first
	// step's residual is boundary-only and strictly smaller than one GS
	// sweep's. (Over many steps the comparison can flip — exact subdomain
	// solves overcorrect at block boundaries — so only step 1 is asserted.)
	a := problem.Poisson2D(24, 24)
	l1, b1, x1 := buildCase(t, a.Clone(), 8, 32)
	gs := BlockJacobi(l1, b1, x1, Config{Steps: 1, Local: LocalGS})
	l2, b2, x2 := buildCase(t, a.Clone(), 8, 32)
	direct := BlockJacobi(l2, b2, x2, Config{Steps: 1, Local: LocalDirect})
	if direct.Final().ResNorm >= gs.Final().ResNorm {
		t.Errorf("direct %g should beat GS sweep %g on step 1", direct.Final().ResNorm, gs.Final().ResNorm)
	}
	// And both remain convergent over more steps.
	l3, b3, x3 := buildCase(t, a.Clone(), 8, 32)
	long := BlockJacobi(l3, b3, x3, Config{Steps: 20, Local: LocalDirect})
	if long.Final().ResNorm > 0.05 {
		t.Errorf("direct local solve stalled: %g", long.Final().ResNorm)
	}
}

func TestDirectLocalZeroesLocalResidual(t *testing.T) {
	// After a Block Jacobi step with direct local solves, each rank's local
	// residual equals only the incoming boundary contributions from the
	// same step — never stale local coupling. One step on one rank checks
	// this: relax, absorb, then the residual rows interior to a rank whose
	// neighbors did not touch them must be exactly zero. With P=1 there are
	// no neighbors at all, so the whole residual is zero after one step.
	a := problem.Poisson2D(12, 12)
	l, b, x := buildCase(t, a, 1, 33)
	res := BlockJacobi(l, b, x, Config{Steps: 1, Local: LocalDirect})
	if res.Final().ResNorm > 1e-10 {
		t.Errorf("single-rank direct solve should be exact, got %g", res.Final().ResNorm)
	}
}

func TestDistSWWithDirectLocalConverges(t *testing.T) {
	a := problem.Poisson2D(24, 24)
	l, b, x := buildCase(t, a, 16, 34)
	res := DistributedSouthwell(l, b, x, Config{Steps: 40, Local: LocalDirect})
	if res.Final().ResNorm > 0.1 {
		t.Errorf("DS + direct local solve reached only %g", res.Final().ResNorm)
	}
}
