package dmem

import "southwell/internal/rma"

// Piggyback2016 runs the 2016 precursor of Parallel Southwell (ref [18] of
// the paper): residual norms travel *only* piggybacked on relaxation
// messages; there are no explicit residual updates. When every rank's
// (stale) estimates of its neighbors exceed its own norm, no rank relaxes
// and the state can never change again: the method deadlocks, as the paper
// reports it does on all test problems. The run stops at the first such
// step and sets Result.Deadlocked.
func Piggyback2016(l *Layout, b, x []float64, cfg Config) *Result {
	w := rma.NewWorld(l.P, cfg.model())
	w.Parallel = cfg.Parallel
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Piggyback 2016", P: l.P, N: l.A.N}
	record(res, w, states, 0, 0, 0)

	// Persistent payloads (pointers cross the network; see blockjacobi.go).
	solvePl := make([][]psSolvePayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]psSolvePayload, rs.rd.Degree())
	}

	cumRelax := 0
	for step := 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		w.RunPhase(func(p int) {
			rs := states[p]
			rs.relaxed = false
			wins := rs.norm > 0
			for j, q := range rs.rd.Nbrs {
				if !winsOver(rs.norm, p, rs.gamma[j], q) {
					wins = false
					break
				}
			}
			if !wins {
				return
			}
			rs.relaxed = true
			rs.zeroExtDelta()
			flops := rs.relaxLocal()
			rs.norm = rs.computeNorm()
			w.Charge(p, flops+2*float64(rs.rd.M()))
			for j, q := range rs.rd.Nbrs {
				pl := &solvePl[p][j]
				pl.deltas = rs.deltasFor(j)
				pl.norm = rs.norm
				w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)+1), pl)
			}
		})
		w.RunPhase(func(p int) {
			rs := states[p]
			changed := false
			for _, m := range w.Inbox(p) {
				pl := m.Payload.(*psSolvePayload)
				j := rs.rd.NbrIdx[m.From]
				rs.applyDeltas(j, pl.deltas)
				rs.gamma[j] = pl.norm
				changed = true
			}
			if changed {
				rs.norm = rs.computeNorm()
			}
			// No explicit residual update: norm changes from incoming
			// deltas are never announced. This is the deadlock mechanism.
		})
		for p := range states {
			if states[p].relaxed {
				relaxedRanks++
				cumRelax += states[p].rd.M()
			}
		}
		record(res, w, states, step, relaxedRanks, cumRelax)
		if relaxedRanks == 0 {
			// Nothing relaxed, so no messages were sent, so no estimate can
			// ever change: the system is deadlocked (unless converged).
			if res.Final().ResNorm > 1e-14 {
				res.Deadlocked = true
				res.DeadlockStep = step
			}
			break
		}
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	finish(res, l, w, states)
	return res
}
