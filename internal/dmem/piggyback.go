package dmem

import "southwell/internal/rma"

// Piggyback2016 runs the 2016 precursor of Parallel Southwell (ref [18] of
// the paper): residual norms travel *only* piggybacked on relaxation
// messages; there are no explicit residual updates. When every rank's
// (stale) estimates of its neighbors exceed its own norm, no rank relaxes
// and the state can never change again: the method deadlocks, as the paper
// reports it does on all test problems. The stagnation watchdog (common.go)
// stops the run at the first such step and sets Result.Deadlocked.
func Piggyback2016(l *Layout, b, x []float64, cfg Config) *Result {
	w := newWorld(l, cfg)
	defer w.Close()
	states := newRankStates(l, b, x)
	configureLocal(states, cfg)
	res := &Result{Method: "Piggyback 2016", P: l.P, N: l.A.N}
	record(res, w, states, globalNorm(states), 0, 0, 0)

	// Persistent payloads (pointers cross the network; see blockjacobi.go).
	solvePl := make([][]psSolvePayload, l.P)
	for p, rs := range states {
		solvePl[p] = make([]psSolvePayload, rs.rd.Degree())
	}

	// absorb drains rank p's window in any phase: deltas always applied,
	// piggybacked norms guarded by the payload sequence number, duplicate
	// landings skipped. The method's one absorbing phase runs it fault-free
	// unchanged; under faults it also picks up late deliveries in phase 1.
	absorb := func(p int) {
		rs := states[p]
		changed := false
		for _, m := range w.Inbox(p) {
			if m.Dup {
				continue
			}
			pl := m.Payload.(*psSolvePayload)
			j := rs.rd.NbrIdx[m.From]
			rs.applyDeltas(j, pl.deltas)
			changed = true
			if pl.seq >= rs.seqSeen[j] {
				rs.seqSeen[j] = pl.seq
				rs.gamma[j] = pl.norm
			}
		}
		if changed {
			rs.norm = rs.computeNorm()
		}
	}

	wd := newWatchdog(cfg, w)
	cumRelax := 0
	for step := 1; step <= cfg.steps(); step++ {
		relaxedRanks := 0
		// Reset relax flags on the driving goroutine: a rank paused by the
		// fault layer does not execute phase 1 and must not be recounted.
		for _, rs := range states {
			rs.relaxed = false
		}
		// One scheduler group per step (see blockjacobi.go).
		w.RunPhases(
			func(p int) {
				absorb(p)
				rs := states[p]
				wins := rs.norm > 0
				for j, q := range rs.rd.Nbrs {
					if !winsOver(rs.norm, p, rs.gamma[j], q) {
						wins = false
						break
					}
				}
				traceDecision(w, step, p, rs, wins)
				if !wins {
					return
				}
				rs.relaxed = true
				rs.zeroExtDelta()
				flops := rs.relaxLocal()
				rs.norm = rs.computeNorm()
				w.Charge(p, flops+2*float64(rs.rd.M()))
				for j, q := range rs.rd.Nbrs {
					pl := &solvePl[p][j]
					pl.deltas = rs.deltasFor(j)
					pl.norm = rs.norm
					pl.seq = 2 * int64(step)
					w.Put(p, q, rma.TagSolve, msgBytes(len(pl.deltas)+1), pl)
				}
			},
			// No explicit residual update phase: norm changes from incoming
			// deltas are never announced. This is the deadlock mechanism.
			absorb)
		for p := range states {
			if states[p].relaxed {
				relaxedRanks++
				cumRelax += states[p].rd.M()
			}
		}
		record(res, w, states, globalNorm(states), step, relaxedRanks, cumRelax)
		if wd.observe(w, step, relaxedRanks) {
			// On a perfect network this fires at the first step without
			// relaxations — nothing was sent, so no estimate can ever
			// change; under faults it also waits out in-flight deliveries.
			res.deadlockAt(step)
			break
		}
		if cfg.Target > 0 && res.Final().ResNorm <= cfg.Target {
			break
		}
	}
	finish(res, l, w, states)
	return res
}
