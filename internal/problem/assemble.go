package problem

import (
	"southwell/internal/parallel"
	"southwell/internal/sparse"
)

// Assembly fans out over work items (grid rows, planes, element rows) in
// entry-balanced blocks; each block gets its own exactly-pre-sized COO
// builder, and the per-block builders are concatenated in ascending block
// order before conversion.
const (
	asmGrainEntries = 32768
	maxAsmBlocks    = 64
)

// assembleBlocked builds an n×n matrix by running emit(c, item) for every
// item in [0, items) and converting the combined builder to CSR. Items are
// cut into contiguous blocks (a pure function of the workload, never the
// worker count), each block emits into a private builder pre-sized at
// entriesPerItem entries per item, and blocks are concatenated in block
// order — so the entry sequence is identical to the sequential loop and
// the assembled matrix is bit-identical for any worker count. emit must
// touch only its own builder and read-only shared state.
func assembleBlocked(n, items, entriesPerItem int, emit func(c *sparse.COO, item int)) *sparse.CSR {
	nb := parallel.Blocks(items*entriesPerItem, asmGrainEntries, maxAsmBlocks)
	if nb > items && items > 0 {
		nb = items
	}
	blocks := parallel.SplitN(items, nb, make([]parallel.Range, 0, nb))
	parts := make([]*sparse.COO, nb)
	var task parallel.Task
	task.F = func(b int) {
		rg := blocks[b]
		c := sparse.NewCOO(n, (rg.Hi-rg.Lo)*entriesPerItem)
		for item := rg.Lo; item < rg.Hi; item++ {
			emit(c, item)
		}
		parts[b] = c
	}
	parallel.Default().Run(&task, nb)
	if nb == 1 {
		return parts[0].ToCSR()
	}
	total := 0
	for _, p := range parts {
		total += p.NNZ()
	}
	c := sparse.NewCOO(n, total)
	for _, p := range parts {
		c.Rows = append(c.Rows, p.Rows...)
		c.Cols = append(c.Cols, p.Cols...)
		c.Vals = append(c.Vals, p.Vals...)
	}
	return c.ToCSR()
}
