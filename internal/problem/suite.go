package problem

import (
	"fmt"
	"sort"

	"southwell/internal/sparse"
)

// SuiteEntry is one synthetic stand-in for a SuiteSparse matrix of the
// paper's Table 1. Gen builds the (unscaled) SPD matrix; callers normally
// want Build, which also applies the unit-diagonal symmetric scaling of
// §4.2.
type SuiteEntry struct {
	Name string
	// Kind documents the physical character being imitated.
	Kind string
	// PaperNNZ / PaperN record the original SuiteSparse dimensions for
	// reporting next to our scaled-down stand-ins.
	PaperNNZ int
	PaperN   int
	Gen      func() *sparse.CSR
}

// Build generates the matrix and symmetrically scales it to unit diagonal.
func (e SuiteEntry) Build() *sparse.CSR {
	a := e.Gen()
	if _, err := sparse.Scale(a); err != nil {
		// Generators produce SPD matrices by construction; a failure here is
		// a programming error, not user input.
		panic(fmt.Sprintf("problem: suite %s: %v", e.Name, err))
	}
	return a
}

// Suite returns synthetic stand-ins for the 14 SPD SuiteSparse matrices of
// Table 1, in the paper's order. The real matrices (20M–114M nonzeros) are
// not redistributable nor tractable here; each stand-in is a PDE
// discretization chosen to reproduce the original's *class* of behaviour in
// the paper's experiments (see DESIGN.md §2):
//
//   - Structural/shell matrices (Flan_1565, audikw_1, ldoor, boneS10,
//     inline_1, msdoor, bone010) are plate/biharmonic mixtures: SPD with
//     positive off-diagonals, so Block Jacobi diverges once subdomains are
//     small — the dominant behaviour in Table 2 and Figure 9.
//   - Geo_1438 and Hook_1498 get a weak plate admixture: Block Jacobi
//     initially converges (reaches 0.1) but diverges if run further, as in
//     Figure 7.
//   - Flow/geomechanics matrices (Serena, Emilia_923, Fault_639, StocF-1465)
//     are 3D 7-point problems with jumps/anisotropy plus a plate admixture.
//   - af_5_k101 is a plain FEM sheet (an M-matrix): the one case where
//     Block Jacobi never diverges.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{
			Name: "Flan_1565", Kind: "3D steel flange, shell/solid elements",
			PaperNNZ: 114165372, PaperN: 1564794,
			Gen: func() *sparse.CSR { return PlateMix3D(26, 26, 26, 0.8, 1) },
		},
		{
			Name: "audikw_1", Kind: "automotive crankshaft, solid elements",
			PaperNNZ: 77651847, PaperN: 943695,
			Gen: func() *sparse.CSR { return PlateMix3D(24, 24, 24, 1, 1) },
		},
		{
			Name: "Serena", Kind: "gas reservoir, heterogeneous 3D flow",
			PaperNNZ: 64122743, PaperN: 1382121,
			Gen: func() *sparse.CSR {
				l := Poisson3D(24, 24, 24, LognormalCoeff(24, 24, 24, 1.5, 101), 1, 1, 1)
				return sparse.Add(sparse.Mul(l, l), l, 1, 1)
			},
		},
		{
			Name: "Geo_1438", Kind: "geomechanical model, heterogeneous medium",
			PaperNNZ: 60169842, PaperN: 1371480,
			Gen: func() *sparse.CSR {
				l := Poisson3D(22, 22, 22, LognormalCoeff(22, 22, 22, 1.0, 1465), 1, 1, 1)
				return sparse.Add(sparse.Mul(l, l), l, 0.5, 1)
			},
		},
		{
			Name: "Hook_1498", Kind: "steel hook, shell with material interface",
			PaperNNZ: 59344451, PaperN: 1468023,
			Gen: func() *sparse.CSR {
				l := QuadrantJump2D(160, 64, 10)
				return sparse.Add(sparse.Mul(l, l), l, 1, 1)
			},
		},
		{
			Name: "bone010", Kind: "trabecular bone micro-FE",
			PaperNNZ: 47851783, PaperN: 986703,
			Gen: func() *sparse.CSR {
				l := CheckerJump3D(22, 22, 22, 4, 50)
				return sparse.Add(sparse.Mul(l, l), l, 1, 1)
			},
		},
		{
			Name: "ldoor", Kind: "large door, thin stiffened shell",
			PaperNNZ: 42451151, PaperN: 909537,
			Gen: func() *sparse.CSR {
				l := CheckerJump3D(40, 32, 8, 4, 20)
				return sparse.Add(sparse.Mul(l, l), l, 0.15, 1)
			},
		},
		{
			Name: "boneS10", Kind: "bone with solid elements",
			PaperNNZ: 40878708, PaperN: 914898,
			Gen: func() *sparse.CSR {
				l := CheckerJump3D(20, 20, 20, 5, 20)
				return sparse.Add(sparse.Mul(l, l), l, 0.15, 1)
			},
		},
		{
			Name: "Emilia_923", Kind: "geomechanical reservoir, strong anisotropy",
			PaperNNZ: 40359114, PaperN: 908712,
			Gen: func() *sparse.CSR {
				l := Poisson3D(22, 22, 22, nil, 1, 1, 50)
				return sparse.Add(sparse.Mul(l, l), l, 0.3, 1)
			},
		},
		{
			Name: "inline_1", Kind: "inline skate frame, shell",
			PaperNNZ: 36816170, PaperN: 503712,
			Gen: func() *sparse.CSR { return PlateMix2D(104, 104, 1, 0) },
		},
		{
			Name: "Fault_639", Kind: "faulted gas reservoir",
			PaperNNZ: 27224065, PaperN: 616923,
			Gen: func() *sparse.CSR {
				l := FaultJump3D(20, 20, 20, 1000)
				return sparse.Add(sparse.Mul(l, l), l, 0.02, 1)
			},
		},
		{
			Name: "StocF-1465", Kind: "stochastic flow, lognormal permeability",
			PaperNNZ: 20976285, PaperN: 1436033,
			Gen: func() *sparse.CSR {
				l := Poisson3D(23, 23, 23, LognormalCoeff(23, 23, 23, 1.2, 1465), 1, 1, 1)
				return sparse.Add(sparse.Mul(l, l), l, 0.5, 1)
			},
		},
		{
			Name: "msdoor", Kind: "medium-size door, thin shell",
			PaperNNZ: 19162085, PaperN: 404785,
			Gen: func() *sparse.CSR { return PlateMix2D(120, 48, 1, 0.2) },
		},
		{
			Name: "af_5_k101", Kind: "sheet metal forming, FEM M-matrix",
			PaperNNZ: 17550675, PaperN: 503625,
			Gen: func() *sparse.CSR { return FEM2D(78, 0.2, 101) },
		},
	}
}

// SuiteByName returns the entry with the given name.
func SuiteByName(name string) (SuiteEntry, bool) {
	for _, e := range Suite() {
		if e.Name == name {
			return e, true
		}
	}
	return SuiteEntry{}, false
}

// SuiteNames returns the matrix names in Table 1 order.
func SuiteNames() []string {
	s := Suite()
	names := make([]string, len(s))
	for i, e := range s {
		names[i] = e.Name
	}
	return names
}

// SortedSuiteNames returns the names sorted alphabetically (for lookup UIs).
func SortedSuiteNames() []string {
	names := SuiteNames()
	sort.Strings(names)
	return names
}
