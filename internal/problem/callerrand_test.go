package problem

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFEM2DRandMatchesSeed pins FEM2DRand's contract: an explicit stream
// seeded like FEM2D's internal one assembles a bit-identical matrix, so a
// caller can thread one seeded *rand.Rand through a whole experiment.
func TestFEM2DRandMatchesSeed(t *testing.T) {
	bySeed := FEM2D(12, 0.3, 5)
	byRand := FEM2DRand(12, 0.3, rand.New(rand.NewSource(5)))
	if !reflect.DeepEqual(bySeed, byRand) {
		t.Fatalf("FEM2DRand with a Seed-equivalent stream diverges from FEM2D")
	}
}
