package problem

import (
	"math"
	"testing"
	"testing/quick"

	"southwell/internal/sparse"
)

func TestPoisson2DStructure(t *testing.T) {
	a := Poisson2D(4, 3)
	if a.N != 12 {
		t.Fatalf("n = %d, want 12", a.N)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(0) {
		t.Error("Poisson2D not symmetric")
	}
	// Interior point (1,1) has 4 neighbors; corner (0,0) has 2.
	if got := len(a.Neighbors(1*4 + 1)); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
	if got := len(a.Neighbors(0)); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if a.At(0, 0) != 4 {
		t.Errorf("diagonal = %g, want 4", a.At(0, 0))
	}
}

// diagonallyDominant reports weak diagonal dominance with nonpositive
// off-diagonals (M-matrix sign pattern).
func diagonallyDominant(a *sparse.CSR) bool {
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var diag, off float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				if vals[k] > 0 {
					return false
				}
				off += -vals[k]
			}
		}
		if diag < off-1e-12 {
			return false
		}
	}
	return true
}

func TestPoisson3DIsMMatrix(t *testing.T) {
	a := Poisson3D(5, 4, 3, nil, 1, 1, 1)
	if a.N != 60 {
		t.Fatalf("n = %d", a.N)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Error("Poisson3D not symmetric")
	}
	if !diagonallyDominant(a) {
		t.Error("Poisson3D should be an M-matrix")
	}
}

func TestPoisson3DJumpSymmetric(t *testing.T) {
	a := Poisson3D(6, 6, 6, LognormalCoeff(6, 6, 6, 2, 42), 1, 1, 1)
	if !a.IsSymmetric(1e-12) {
		t.Error("harmonic-mean coefficients must give a symmetric matrix")
	}
	if !diagonallyDominant(a) {
		t.Error("variable-coefficient Poisson should be an M-matrix")
	}
}

func TestAniso2D(t *testing.T) {
	a := Aniso2D(5, 5, 0.01)
	if !a.IsSymmetric(1e-12) {
		t.Error("Aniso2D not symmetric")
	}
	// x-neighbors weak, y-neighbors strong.
	if got := a.At(12, 11); got != -0.01 {
		t.Errorf("x coupling = %g", got)
	}
	if got := a.At(12, 7); got != -1 {
		t.Errorf("y coupling = %g", got)
	}
}

func TestQuadrantJump2D(t *testing.T) {
	a := QuadrantJump2D(8, 8, 1000)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-9) {
		t.Error("QuadrantJump2D not symmetric")
	}
}

func TestBiharmonicSpectrumExceedsTwo(t *testing.T) {
	// After unit-diagonal scaling, the biharmonic operator must have
	// spectral radius > 2 (the point-Jacobi divergence condition); the
	// Laplacian must not. Estimate λmax by power iteration.
	powerLambdaMax := func(a *sparse.CSR) float64 {
		x := RandomVec(a.N, 9)
		y := make([]float64, a.N)
		lam := 0.0
		for it := 0; it < 200; it++ {
			a.MulVec(x, y)
			lam = sparse.Norm2(y)
			for i := range x {
				x[i] = y[i] / lam
			}
		}
		return lam
	}
	bih := Biharmonic2D(20, 20)
	if _, err := sparse.Scale(bih); err != nil {
		t.Fatal(err)
	}
	if lam := powerLambdaMax(bih); lam <= 2 {
		t.Errorf("scaled biharmonic λmax = %g, want > 2", lam)
	}
	lap := Poisson2D(20, 20)
	if _, err := sparse.Scale(lap); err != nil {
		t.Fatal(err)
	}
	if lam := powerLambdaMax(lap); lam >= 2+1e-9 {
		t.Errorf("scaled Laplacian λmax = %g, want < 2", lam)
	}
}

func TestBiharmonicHasPositiveOffDiagonals(t *testing.T) {
	a := Biharmonic2D(10, 10)
	found := false
	for i := 0; i < a.N && !found; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j != i && vals[k] > 0 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("biharmonic should be a non-M-matrix (positive off-diagonals)")
	}
}

func TestFEM2D(t *testing.T) {
	a := FEM2D(10, 0.3, 1)
	if a.N != 81 {
		t.Fatalf("n = %d, want 81", a.N)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-10) {
		t.Error("FEM stiffness not symmetric")
	}
	// Stiffness matrices of -Δ are positive definite after Dirichlet
	// elimination: check x'Ax > 0 for a few random x.
	for s := int64(0); s < 5; s++ {
		x := RandomVec(a.N, s)
		y := make([]float64, a.N)
		a.MulVec(x, y)
		if q := sparse.Dot(x, y); q <= 0 {
			t.Errorf("seed %d: x'Ax = %g, want > 0", s, q)
		}
	}
}

func TestFEM2DDeterministic(t *testing.T) {
	a := FEM2D(8, 0.3, 7)
	b := FEM2D(8, 0.3, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("FEM2D not deterministic")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("FEM2D values not deterministic")
		}
	}
}

func TestFig2FEMSize(t *testing.T) {
	a := Fig2FEM()
	if a.N != 3025 {
		t.Errorf("Fig2FEM n = %d, want 3025 (paper: 3081)", a.N)
	}
	if !a.IsSymmetric(1e-9) {
		t.Error("Fig2FEM not symmetric")
	}
}

func TestSuiteBuildsAndScales(t *testing.T) {
	if testing.Short() {
		t.Skip("suite build is slow in -short mode")
	}
	for _, e := range Suite() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			a := e.Build()
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			if a.N < 4000 {
				t.Errorf("n = %d, want >= 4000 for a meaningful distributed run", a.N)
			}
			for i := 0; i < a.N; i += 97 {
				if d := a.At(i, i); math.Abs(d-1) > 1e-12 {
					t.Fatalf("diag[%d] = %g after Build", i, d)
				}
			}
			if !a.IsSymmetric(1e-9) {
				t.Error("suite matrix not symmetric")
			}
		})
	}
}

func TestSuiteHas14EntriesInPaperOrder(t *testing.T) {
	names := SuiteNames()
	want := []string{
		"Flan_1565", "audikw_1", "Serena", "Geo_1438", "Hook_1498",
		"bone010", "ldoor", "boneS10", "Emilia_923", "inline_1",
		"Fault_639", "StocF-1465", "msdoor", "af_5_k101",
	}
	if len(names) != len(want) {
		t.Fatalf("suite has %d entries, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if _, ok := SuiteByName("bone010"); !ok {
		t.Error("SuiteByName failed")
	}
	if _, ok := SuiteByName("nope"); ok {
		t.Error("SuiteByName found nonexistent")
	}
	sorted := SortedSuiteNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Error("SortedSuiteNames not sorted")
		}
	}
}

func TestZeroBSystem(t *testing.T) {
	a := Poisson2D(10, 10)
	b, x := ZeroBSystem(a, 3)
	for _, v := range b {
		if v != 0 {
			t.Fatal("b not zero")
		}
	}
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	if n := sparse.Norm2(r); math.Abs(n-1) > 1e-12 {
		t.Errorf("‖r0‖ = %g, want 1", n)
	}
}

func TestRandomBSystem(t *testing.T) {
	a := Poisson2D(10, 10)
	b, x := RandomBSystem(a, 3)
	for _, v := range x {
		if v != 0 {
			t.Fatal("x not zero")
		}
	}
	if n := sparse.Norm2(b); math.Abs(n-1) > 1e-12 {
		t.Errorf("‖b‖ = %g, want 1", n)
	}
	mean := 0.0
	for _, v := range b {
		mean += v
	}
	if math.Abs(mean/float64(len(b))) > 1e-12 {
		t.Errorf("b mean = %g, want ~0", mean/float64(len(b)))
	}
}

// Property: every generator yields a valid symmetric matrix for random small
// shapes.
func TestQuickGeneratorsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		nx := 3 + rng.Intn(8)
		ny := 3 + rng.Intn(8)
		nz := 2 + rng.Intn(4)
		mats := []*sparse.CSR{
			Poisson2D(nx, ny),
			Aniso2D(nx, ny, 0.001+rng.Float64()),
			Poisson3D(nx, ny, nz, LognormalCoeff(nx, ny, nz, rng.Float64()*2, seed), 1, 1, 1+rng.Float64()*10),
			QuadrantJump2D(nx, ny, 1+rng.Float64()*1000),
			FEM2D(3+rng.Intn(6), rng.Float64()*0.4, seed),
		}
		for _, a := range mats {
			if a.Validate() != nil || !a.IsSymmetric(1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
