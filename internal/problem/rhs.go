package problem

import "southwell/internal/sparse"

// RandomVec returns a deterministic vector of n entries uniformly
// distributed in [-1, 1).
func RandomVec(n int, seed int64) []float64 {
	rng := newRand(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// RandomNormalVec returns a deterministic standard-normal vector.
func RandomNormalVec(n int, seed int64) []float64 {
	rng := newRand(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// ZeroBSystem prepares the test setup of the paper's §4.2: a random initial
// guess x, right-hand side b = 0, with x scaled so that ‖r⁰‖₂ = ‖A x‖₂ = 1.
// It returns (b, x).
func ZeroBSystem(a *sparse.CSR, seed int64) (b, x []float64) {
	x = RandomVec(a.N, seed)
	b = make([]float64, a.N)
	sparse.NormalizeResidual(a, b, x)
	return b, x
}

// RandomBSystem prepares the setup of §2.3/§4.1: x = 0 and a random b with
// zero mean, scaled so ‖b‖₂ = 1 (which is also ‖r⁰‖₂ when x = 0).
func RandomBSystem(a *sparse.CSR, seed int64) (b, x []float64) {
	b = RandomVec(a.N, seed)
	// Remove the mean, as in §2.3 ("uniform random distribution with mean
	// zero ... scaled such that its 2-norm is 1").
	mean := 0.0
	for _, v := range b {
		mean += v
	}
	mean /= float64(len(b))
	for i := range b {
		b[i] -= mean
	}
	x = make([]float64, a.N)
	sparse.NormalizeResidual(a, b, x)
	return b, x
}
