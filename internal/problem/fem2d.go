package problem

import (
	"math/rand"

	"southwell/internal/sparse"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// FEM2D assembles the stiffness matrix of -Δu with homogeneous Dirichlet
// boundary conditions on an irregularly structured triangulation of the
// unit square, using linear (P1) triangular elements — the "small finite
// element problem" of the paper's Figures 2 and 5.
//
// The mesh starts from an (m+1)×(m+1) node grid; each cell is split into
// two triangles with an alternating diagonal, and interior node coordinates
// are perturbed by up to `distort`·h in each direction (deterministically,
// from seed), which makes the elements irregular, produces varying row
// degrees, and — for distort large enough to create obtuse triangles —
// positive off-diagonal entries (a non-M-matrix), matching the
// "irregularly structured linear triangular elements" of §2.3.
//
// Boundary nodes are eliminated; the matrix dimension is (m-1)².
func FEM2D(m int, distort float64, seed int64) *sparse.CSR {
	return FEM2DRand(m, distort, newRand(seed))
}

// FEM2DRand is FEM2D with a caller-seeded random stream: callers composing
// several randomized stages can share one explicitly seeded *rand.Rand
// across mesh generation, partitioning, and solves so a whole experiment
// reproduces from a single seed. The mesh consumes from rng
// deterministically (two draws per interior node, row-major).
func FEM2DRand(m int, distort float64, rng *rand.Rand) *sparse.CSR {
	nn := (m + 1) * (m + 1)
	xs := make([]float64, nn)
	ys := make([]float64, nn)
	h := 1.0 / float64(m)
	node := func(ix, iy int) int { return iy*(m+1) + ix }
	for iy := 0; iy <= m; iy++ {
		for ix := 0; ix <= m; ix++ {
			x := float64(ix) * h
			y := float64(iy) * h
			if ix > 0 && ix < m && iy > 0 && iy < m {
				x += distort * h * (2*rng.Float64() - 1)
				y += distort * h * (2*rng.Float64() - 1)
			}
			xs[node(ix, iy)] = x
			ys[node(ix, iy)] = y
		}
	}

	// Interior numbering.
	idx := make([]int, nn)
	for i := range idx {
		idx[i] = -1
	}
	ni := 0
	for iy := 1; iy < m; iy++ {
		for ix := 1; ix < m; ix++ {
			idx[node(ix, iy)] = ni
			ni++
		}
	}

	// Element assembly fans out over cell rows (nodes and numbering above
	// are read-only by now); each cell contributes two triangles of up to 9
	// entries each, so blocks are pre-sized at 18 entries per cell.
	assemble := func(c *sparse.COO, v0, v1, v2 int) {
		x0, y0 := xs[v0], ys[v0]
		x1, y1 := xs[v1], ys[v1]
		x2, y2 := xs[v2], ys[v2]
		b := [3]float64{y1 - y2, y2 - y0, y0 - y1}
		cc := [3]float64{x2 - x1, x0 - x2, x1 - x0}
		det := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
		area2 := det // 2*signed area; mesh orientation keeps it positive
		if area2 < 0 {
			area2 = -area2
		}
		verts := [3]int{v0, v1, v2}
		for a := 0; a < 3; a++ {
			ia := idx[verts[a]]
			if ia < 0 {
				continue
			}
			for bb := 0; bb < 3; bb++ {
				ib := idx[verts[bb]]
				if ib < 0 {
					continue
				}
				k := (b[a]*b[bb] + cc[a]*cc[bb]) / (2 * area2)
				c.Add(ia, ib, k)
			}
		}
	}
	return assembleBlocked(ni, m, 18*m, func(c *sparse.COO, iy int) {
		for ix := 0; ix < m; ix++ {
			a := node(ix, iy)
			b := node(ix+1, iy)
			cN := node(ix, iy+1)
			d := node(ix+1, iy+1)
			if (ix+iy)%2 == 0 { // alternate the cell diagonal
				assemble(c, a, b, d)
				assemble(c, a, d, cN)
			} else {
				assemble(c, a, b, cN)
				assemble(c, b, d, cN)
			}
		}
	})
}

// Fig2FEM returns the finite element problem used for Figures 2 and 5,
// sized to approximate the paper's 3081 rows: a distorted triangulation
// with (m-1)² = 3025 interior nodes (m=56). The paper's mesh generator is
// unavailable; this perturbed triangulation reproduces the irregular
// element shapes, the ~6 colors under multicolor ordering, and the relative
// method behaviour (see DESIGN.md).
func Fig2FEM() *sparse.CSR {
	return FEM2D(56, 0.35, 20170713)
}
