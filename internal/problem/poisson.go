// Package problem generates the sparse symmetric positive definite test
// systems used throughout the reproduction: structured Poisson
// discretizations in 2D and 3D (isotropic, anisotropic, jump and random
// coefficients), an unstructured-style 2D finite element Poisson problem
// (the small example of the paper's Figures 2 and 5), plate/biharmonic
// operators, and a 14-matrix synthetic stand-in for the paper's SuiteSparse
// collection (Table 1).
package problem

import (
	"math"

	"southwell/internal/sparse"
)

// Poisson2D returns the nx-by-ny 5-point centered finite difference
// discretization of -Δu on the unit square with homogeneous Dirichlet
// boundary conditions. The matrix has dimension nx*ny (interior points only)
// and row i corresponds to grid point (i%nx, i/nx).
func Poisson2D(nx, ny int) *sparse.CSR {
	id := func(ix, iy int) int { return iy*nx + ix }
	return assembleBlocked(nx*ny, ny, 5*nx, func(c *sparse.COO, iy int) {
		for ix := 0; ix < nx; ix++ {
			i := id(ix, iy)
			c.Add(i, i, 4)
			if ix > 0 {
				c.Add(i, id(ix-1, iy), -1)
			}
			if ix < nx-1 {
				c.Add(i, id(ix+1, iy), -1)
			}
			if iy > 0 {
				c.Add(i, id(ix, iy-1), -1)
			}
			if iy < ny-1 {
				c.Add(i, id(ix, iy+1), -1)
			}
		}
	})
}

// Aniso2D returns the 5-point discretization of -eps*u_xx - u_yy on an
// nx-by-ny interior grid (Dirichlet). eps << 1 produces strong coupling in
// the y direction only, a classically hard case for point smoothers.
func Aniso2D(nx, ny int, eps float64) *sparse.CSR {
	id := func(ix, iy int) int { return iy*nx + ix }
	return assembleBlocked(nx*ny, ny, 5*nx, func(c *sparse.COO, iy int) {
		for ix := 0; ix < nx; ix++ {
			i := id(ix, iy)
			c.Add(i, i, 2*eps+2)
			if ix > 0 {
				c.Add(i, id(ix-1, iy), -eps)
			}
			if ix < nx-1 {
				c.Add(i, id(ix+1, iy), -eps)
			}
			if iy > 0 {
				c.Add(i, id(ix, iy-1), -1)
			}
			if iy < ny-1 {
				c.Add(i, id(ix, iy+1), -1)
			}
		}
	})
}

// Coeff3D maps a grid cell to a scalar diffusion coefficient. Face
// coefficients between two cells use the harmonic mean, the standard
// finite-volume treatment for discontinuous coefficients.
type Coeff3D func(ix, iy, iz int) float64

// Poisson3D returns the 7-point discretization of -∇·(a∇u) on an
// nx-by-ny-by-nz interior grid with Dirichlet boundaries and cell
// coefficient field a. Pass nil for a to get the constant-coefficient
// Laplacian. Anisotropy (ax, ay, az) scales each direction.
func Poisson3D(nx, ny, nz int, a Coeff3D, ax, ay, az float64) *sparse.CSR {
	if a == nil {
		a = func(int, int, int) float64 { return 1 }
	}
	n := nx * ny * nz
	id := func(ix, iy, iz int) int { return (iz*ny+iy)*nx + ix }
	harm := func(u, v float64) float64 { return 2 * u * v / (u + v) }
	return assembleBlocked(n, nz, 7*nx*ny, func(c *sparse.COO, iz int) {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := id(ix, iy, iz)
				ai := a(ix, iy, iz)
				diag := 0.0
				add := func(j int, w float64) {
					c.Add(i, j, -w)
					diag += w
				}
				// For boundary faces the neighbor value is the Dirichlet
				// zero; the face still contributes to the diagonal.
				if ix > 0 {
					add(id(ix-1, iy, iz), ax*harm(ai, a(ix-1, iy, iz)))
				} else {
					diag += ax * ai
				}
				if ix < nx-1 {
					add(id(ix+1, iy, iz), ax*harm(ai, a(ix+1, iy, iz)))
				} else {
					diag += ax * ai
				}
				if iy > 0 {
					add(id(ix, iy-1, iz), ay*harm(ai, a(ix, iy-1, iz)))
				} else {
					diag += ay * ai
				}
				if iy < ny-1 {
					add(id(ix, iy+1, iz), ay*harm(ai, a(ix, iy+1, iz)))
				} else {
					diag += ay * ai
				}
				if iz > 0 {
					add(id(ix, iy, iz-1), az*harm(ai, a(ix, iy, iz-1)))
				} else {
					diag += az * ai
				}
				if iz < nz-1 {
					add(id(ix, iy, iz+1), az*harm(ai, a(ix, iy, iz+1)))
				} else {
					diag += az * ai
				}
				c.Add(i, i, diag)
			}
		}
	})
}

// QuadrantJump2D returns a 2D coefficient-jump Poisson problem: coefficient
// is `jump` in the (+,+) and (-,-) quadrants and 1 elsewhere, 5-point
// finite volume with harmonic face averaging, Dirichlet boundaries.
func QuadrantJump2D(nx, ny int, jump float64) *sparse.CSR {
	coeff := func(ix, iy int) float64 {
		inX := ix >= nx/2
		inY := iy >= ny/2
		if inX == inY {
			return jump
		}
		return 1
	}
	n := nx * ny
	id := func(ix, iy int) int { return iy*nx + ix }
	harm := func(u, v float64) float64 { return 2 * u * v / (u + v) }
	return assembleBlocked(n, ny, 5*nx, func(c *sparse.COO, iy int) {
		for ix := 0; ix < nx; ix++ {
			i := id(ix, iy)
			ai := coeff(ix, iy)
			diag := 0.0
			add := func(j int, w float64) {
				c.Add(i, j, -w)
				diag += w
			}
			if ix > 0 {
				add(id(ix-1, iy), harm(ai, coeff(ix-1, iy)))
			} else {
				diag += ai
			}
			if ix < nx-1 {
				add(id(ix+1, iy), harm(ai, coeff(ix+1, iy)))
			} else {
				diag += ai
			}
			if iy > 0 {
				add(id(ix, iy-1), harm(ai, coeff(ix, iy-1)))
			} else {
				diag += ai
			}
			if iy < ny-1 {
				add(id(ix, iy+1), harm(ai, coeff(ix, iy+1)))
			} else {
				diag += ai
			}
			c.Add(i, i, diag)
		}
	})
}

// Biharmonic2D returns the 13-point discretization of Δ²u on an nx-by-ny
// interior grid, built as the square of the 5-point Laplacian (clamped
// Dirichlet-like boundary). It is SPD with positive off-diagonal entries,
// the structural-mechanics character (plates, shells) that defeats point
// and small-block Jacobi: after unit-diagonal scaling its spectrum extends
// beyond 2.
func Biharmonic2D(nx, ny int) *sparse.CSR {
	l := Poisson2D(nx, ny)
	return sparse.Mul(l, l)
}

// Biharmonic3D returns the square of the 7-point Laplacian on an
// nx-by-ny-by-nz grid (a 25-point operator), the 3D analog of Biharmonic2D.
func Biharmonic3D(nx, ny, nz int) *sparse.CSR {
	l := Poisson3D(nx, ny, nz, nil, 1, 1, 1)
	return sparse.Mul(l, l)
}

// PlateMix returns alpha*Biharmonic + beta*Laplacian on the given 2D grid:
// a thin-plate model whose Jacobi-divergence strength is tuned by
// alpha/beta. The result is SPD for alpha, beta >= 0 (not both zero).
func PlateMix2D(nx, ny int, alpha, beta float64) *sparse.CSR {
	l := Poisson2D(nx, ny)
	return sparse.Add(sparse.Mul(l, l), l, alpha, beta)
}

// PlateMix3D is the 3D analog of PlateMix2D.
func PlateMix3D(nx, ny, nz int, alpha, beta float64) *sparse.CSR {
	l := Poisson3D(nx, ny, nz, nil, 1, 1, 1)
	return sparse.Add(sparse.Mul(l, l), l, alpha, beta)
}

// FaultJump3D returns a 3D 7-point problem whose coefficient jumps by
// `jump` across the tilted plane ix+iy = const, imitating a geological
// fault.
func FaultJump3D(nx, ny, nz int, jump float64) *sparse.CSR {
	cut := (nx + ny) / 2
	coeff := func(ix, iy, iz int) float64 {
		if ix+iy < cut {
			return 1
		}
		return jump
	}
	return Poisson3D(nx, ny, nz, coeff, 1, 1, 1)
}

// CheckerJump3D returns a 3D 7-point problem with coefficient `jump` on a
// 3D checkerboard of cubic inclusions of side `cell`, imitating
// heterogeneous media such as trabecular bone.
func CheckerJump3D(nx, ny, nz, cell int, jump float64) *sparse.CSR {
	coeff := func(ix, iy, iz int) float64 {
		if (ix/cell+iy/cell+iz/cell)%2 == 0 {
			return jump
		}
		return 1
	}
	return Poisson3D(nx, ny, nz, coeff, 1, 1, 1)
}

// LognormalCoeff returns a deterministic pseudo-random lognormal coefficient
// field for StocF-style stochastic flow problems. sigma controls contrast.
func LognormalCoeff(nx, ny, nz int, sigma float64, seed int64) Coeff3D {
	vals := make([]float64, nx*ny*nz)
	rng := newRand(seed)
	for i := range vals {
		vals[i] = math.Exp(sigma * rng.NormFloat64())
	}
	return func(ix, iy, iz int) float64 {
		return vals[(iz*ny+iy)*nx+ix]
	}
}
