// Package spdirect is a deterministic sparse LDLᵀ direct solver for the
// symmetric positive definite diagonal blocks the distributed methods
// relax: the factor-once / solve-many subsystem that plays the role MKL
// PARDISO plays in the paper's artifact (`-loc_solver direct`).
//
// The pipeline is the classical three-stage sparse direct design:
//
//  1. Analyze — a fill-reducing ordering (reverse Cuthill-McKee over the
//     block's adjacency graph by default), the elimination tree, and the
//     per-column nonzero counts of L, fixing the exact sparsity pattern of
//     the factor before a single numeric value is touched.
//  2. Symbolic.Factorize / Factor.Refactor — an up-looking numeric
//     factorization (Davis' LDL algorithm): row k of L is computed from
//     the rows reachable in the elimination tree, producing A = L·D·Lᵀ
//     with unit-diagonal L. Refactor reuses the symbolic pattern and every
//     numeric buffer, so re-factoring a block with new values allocates
//     nothing.
//  3. Factor.Solve — permuted forward / diagonal / backward triangular
//     solves using a scratch vector owned by the factor: steady-state
//     solves allocate nothing (gated by TestLDLAllocGate against
//     BENCH_ldl.json).
//
// Determinism: every stage is a pure sequential function of the input
// structure and values — the ordering breaks all ties by node id, the
// symbolic pass visits columns in ascending order, and the numeric pass
// accumulates in elimination-tree postorder fixed by the pattern. Two
// factorizations of the same block are bit-identical no matter which
// worker of a pool runs them, which is what lets internal/dmem fan
// per-rank factorizations out over internal/parallel and still produce
// bit-identical results at every pool width.
//
// A Factor is NOT safe for concurrent Solve/Refactor calls (it owns its
// scratch); give each goroutine its own factor, as dmem's per-rank states
// do.
package spdirect

import (
	"errors"
	"fmt"
	"math"
)

// Options configures Analyze.
type Options struct {
	// Order selects the fill-reducing ordering (default OrderRCM).
	Order Ordering
}

// ErrNotPositiveDefinite is returned (wrapped, with the failing column)
// when the numeric factorization meets a non-positive pivot: the input was
// not SPD, or so ill-conditioned that roundoff drove a pivot to zero.
var ErrNotPositiveDefinite = errors.New("spdirect: matrix not positive definite")

// Symbolic is the reusable structural analysis of one block: the
// permutation, the elimination tree, and the fixed pattern bookkeeping of
// L. One Symbolic can serve any number of Factorize calls with different
// values on the same structure.
type Symbolic struct {
	N    int
	Perm []int // Perm[new] = old: row Perm[k] of A becomes row k
	Pinv []int // Pinv[old] = new

	// Parent is the elimination tree of the permuted matrix (-1 = root).
	Parent []int
	// Lp are column pointers of L's strictly-lower-triangular pattern:
	// column i of L holds Lp[i+1]-Lp[i] below-diagonal entries. Fixed by
	// Analyze; numeric passes fill values into exactly these slots.
	Lp []int

	// Permuted upper-triangle structure, column-wise with ascending row
	// indices, plus the map from each slot back into the caller's value
	// array — built once so every numeric pass is a single ordered sweep.
	bp   []int
	bi   []int32
	bmap []int32
	nnzA int // entry count of the analyzed structure (= rowPtr[n])
}

// NNZL returns the number of strictly-below-diagonal nonzeros of L.
func (s *Symbolic) NNZL() int { return s.Lp[s.N] }

// SolveFlops returns the flop count of one Solve with this pattern:
// 2·nnz(L) each for the forward and backward sweeps plus n diagonal
// divisions — the "actual factor nnz" cost the α-β-γ model charges per
// relaxation, replacing the dense 2m² estimate.
func (s *Symbolic) SolveFlops() float64 {
	return 4*float64(s.NNZL()) + float64(s.N)
}

// Analyze computes the ordering, elimination tree, and fixed L pattern for
// a structurally symmetric n×n sparse matrix in CSR form. Only the
// structure is read; values flow in later through Factorize/Refactor,
// indexed by the same entry positions. Rows need not be sorted. The
// structure must be symmetric (every (i,j) present with (j,i)) — only the
// upper triangle of the permuted matrix is consumed, so an asymmetric
// structure silently factors the wrong matrix; internal/dmem's layout
// construction guarantees symmetry and validates it.
func Analyze(n int, rowPtr, col []int, opts Options) (*Symbolic, error) {
	if n < 0 || len(rowPtr) != n+1 {
		return nil, fmt.Errorf("spdirect: rowPtr length %d, want n+1 = %d", len(rowPtr), n+1)
	}
	nnz := rowPtr[n]
	if len(col) < nnz {
		return nil, fmt.Errorf("spdirect: col length %d < nnz %d", len(col), nnz)
	}
	if int64(n) > math.MaxInt32 || int64(nnz) > math.MaxInt32 {
		return nil, fmt.Errorf("spdirect: block too large for int32 indexing (n=%d, nnz=%d)", n, nnz)
	}
	for _, c := range col[:nnz] {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("spdirect: column index %d out of range [0,%d)", c, n)
		}
	}

	s := &Symbolic{N: n, nnzA: nnz}
	switch opts.Order {
	case OrderNatural:
		s.Perm = make([]int, n)
		for i := range s.Perm {
			s.Perm[i] = i
		}
	case OrderRCM:
		s.Perm = rcmPerm(n, rowPtr, col)
	default:
		return nil, fmt.Errorf("spdirect: unknown ordering %d", opts.Order)
	}
	s.Pinv = make([]int, n)
	for k, old := range s.Perm {
		s.Pinv[old] = k
	}

	// Permuted upper triangle, column-wise. Iterating new-row index i0 in
	// ascending order appends each column's rows already sorted — no
	// per-column sort pass.
	s.bp = make([]int, n+1)
	for i0 := 0; i0 < n; i0++ {
		r := s.Perm[i0]
		for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
			if j0 := s.Pinv[col[p]]; j0 >= i0 {
				s.bp[j0+1]++
			}
		}
	}
	for k := 0; k < n; k++ {
		s.bp[k+1] += s.bp[k]
	}
	s.bi = make([]int32, s.bp[n])
	s.bmap = make([]int32, s.bp[n])
	next := make([]int, n)
	copy(next, s.bp[:n])
	for i0 := 0; i0 < n; i0++ {
		r := s.Perm[i0]
		for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
			if j0 := s.Pinv[col[p]]; j0 >= i0 {
				w := next[j0]
				s.bi[w] = int32(i0)
				s.bmap[w] = int32(p)
				next[j0] = w + 1
			}
		}
	}

	// Elimination tree and column counts (Liu's algorithm via path
	// compression-free flag walking, as in Davis' LDL): for each column k,
	// walk each upper entry's path to the root, marking and counting.
	s.Parent = make([]int, n)
	lnz := make([]int, n)
	flag := next // reuse: next is dead from here on
	for k := 0; k < n; k++ {
		s.Parent[k] = -1
		flag[k] = k
		for p := s.bp[k]; p < s.bp[k+1]; p++ {
			i := int(s.bi[p])
			if i == k {
				continue
			}
			for ; flag[i] != k; i = s.Parent[i] {
				if s.Parent[i] == -1 {
					s.Parent[i] = k
				}
				lnz[i]++
				flag[i] = k
			}
		}
	}
	s.Lp = make([]int, n+1)
	for i := 0; i < n; i++ {
		s.Lp[i+1] = s.Lp[i] + lnz[i]
	}
	return s, nil
}

// Factor is the numeric LDLᵀ factorization of one block over a fixed
// Symbolic pattern: P·A·Pᵀ = L·D·Lᵀ with unit-diagonal L. It owns every
// scratch buffer Solve and Refactor need, so both are allocation-free.
type Factor struct {
	sym *Symbolic
	Li  []int32   // row indices of L, by column, ascending within a column
	Lx  []float64 // values of L, same layout
	D   []float64 // diagonal of D

	y       []float64 // solve scratch (permuted right-hand side)
	yn      []float64 // numeric scratch: the sparse accumulator (all-zero between passes)
	pattern []int32   // numeric scratch: row-pattern stack
	flag    []int32   // numeric scratch: visited marks
	next    []int32   // numeric scratch: per-column fill cursor
}

// Symbolic returns the structural analysis the factor was built over.
func (f *Factor) Symbolic() *Symbolic { return f.sym }

// SolveFlops returns the flop count of one Solve (see Symbolic.SolveFlops).
func (f *Factor) SolveFlops() float64 { return f.sym.SolveFlops() }

// Factorize runs the numeric factorization for the given values (indexed
// exactly like the rowPtr/col arrays passed to Analyze). It allocates the
// factor's storage once; call Refactor to reuse it for new values.
func (s *Symbolic) Factorize(val []float64) (*Factor, error) {
	n := s.N
	f := &Factor{
		sym:     s,
		Li:      make([]int32, s.NNZL()),
		Lx:      make([]float64, s.NNZL()),
		D:       make([]float64, n),
		y:       make([]float64, n),
		yn:      make([]float64, n),
		pattern: make([]int32, n),
		flag:    make([]int32, n),
		next:    make([]int32, n),
	}
	if err := f.Refactor(val); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes L and D for new values on the same structure,
// reusing every buffer: zero allocations. The numeric pass is the
// up-looking algorithm of Davis' LDL: for each row k of L, scatter the
// permuted upper entries of column k into the sparse accumulator, walk the
// elimination tree to assemble the row pattern in topological order, then
// eliminate against each pattern column in turn.
//
//dslint:hotpath
func (f *Factor) Refactor(val []float64) error {
	s := f.sym
	n := s.N
	if len(val) < s.nnzA {
		return fmt.Errorf("spdirect: val length %d < analyzed nnz %d", len(val), s.nnzA) //dslint:ignore hotalloc error path: caller bug, not steady state
	}
	y, pat, flag, next := f.yn, f.pattern, f.flag, f.next
	for k := 0; k < n; k++ {
		next[k] = int32(s.Lp[k])
		flag[k] = -1
	}
	for k := 0; k < n; k++ {
		top := n
		flag[k] = int32(k)
		for p := s.bp[k]; p < s.bp[k+1]; p++ {
			i := int(s.bi[p])
			y[i] += val[s.bmap[p]]
			// Collect the path from i to the flagged region, then push it
			// reversed onto the pattern stack: the final traversal order is
			// topological (descendants before ancestors).
			plen := 0
			for ; flag[i] != int32(k); i = s.Parent[i] {
				pat[plen] = int32(i)
				plen++
				flag[i] = int32(k)
			}
			for plen > 0 {
				plen--
				top--
				pat[top] = pat[plen]
			}
		}
		dk := y[k]
		y[k] = 0
		for ; top < n; top++ {
			i := int(pat[top])
			yi := y[i]
			y[i] = 0
			p2 := int(next[i])
			for p := s.Lp[i]; p < p2; p++ {
				y[f.Li[p]] -= f.Lx[p] * yi
			}
			lki := yi / f.D[i]
			dk -= lki * yi
			f.Li[p2] = int32(k)
			f.Lx[p2] = lki
			next[i] = int32(p2 + 1)
		}
		if !(dk > 0) { // rejects zero, negative, and NaN pivots alike
			// Leave the accumulator clean for the next Refactor: columns
			// after k may hold scattered values not yet consumed.
			for i := range y {
				y[i] = 0
			}
			return fmt.Errorf("%w (pivot %g at permuted column %d)", ErrNotPositiveDefinite, dk, k) //dslint:ignore hotalloc error path: an indefinite pivot aborts the factorization
		}
		f.D[k] = dk
	}
	return nil
}

// Solve computes x = A⁻¹ b through the factorization: permute, forward
// solve L, scale by D, backward solve Lᵀ, permute back. b is not modified;
// x may alias b. Zero allocations: the permuted vector lives in the
// factor's scratch. Not safe for concurrent calls on one Factor.
//
//dslint:hotpath
func (f *Factor) Solve(b, x []float64) {
	f.SolveWith(b, x, f.y)
}

// SolveWith is Solve with caller-provided scratch y (length ≥ n), making
// one immutable Factor usable from concurrent solves as long as each
// caller owns its y: the factorization arrays (Perm, Lp, Li, Lx, D) are
// only read. b is not modified; x may alias b.
//
//dslint:hotpath
func (f *Factor) SolveWith(b, x, y []float64) {
	s := f.sym
	n := s.N
	for k := 0; k < n; k++ {
		y[k] = b[s.Perm[k]]
	}
	// Forward: L z = y (unit lower, stored by column: column i updates its
	// below-diagonal rows once y[i] is final).
	for i := 0; i < n; i++ {
		yi := y[i]
		if yi != 0 {
			for p := s.Lp[i]; p < s.Lp[i+1]; p++ {
				y[f.Li[p]] -= f.Lx[p] * yi
			}
		}
	}
	// Diagonal.
	for k := 0; k < n; k++ {
		y[k] /= f.D[k]
	}
	// Backward: Lᵀ w = z (column i of L is row i of Lᵀ: gather).
	for i := n - 1; i >= 0; i-- {
		yi := y[i]
		for p := s.Lp[i]; p < s.Lp[i+1]; p++ {
			yi -= f.Lx[p] * y[f.Li[p]]
		}
		y[i] = yi
	}
	for k := 0; k < n; k++ {
		x[s.Perm[k]] = y[k]
	}
}

// Factorize is the one-call convenience: Analyze + numeric factorization.
func Factorize(n int, rowPtr, col []int, val []float64, opts Options) (*Factor, error) {
	s, err := Analyze(n, rowPtr, col, opts)
	if err != nil {
		return nil, err
	}
	return s.Factorize(val)
}
