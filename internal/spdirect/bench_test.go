package spdirect_test

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"southwell/internal/dense"
	"southwell/internal/problem"
	"southwell/internal/sparse"
	"southwell/internal/spdirect"
)

// benchBlock lazily builds the ≥4096-row SPD block of the acceptance
// criteria — a 66×66 5-point Laplacian (4356 rows) stands in for the
// largest per-rank diagonal blocks LocalDirect factors — plus a factored
// copy and operand vectors, shared across sub-benchmarks.
var benchBlock struct {
	once sync.Once
	a    *sparse.CSR
	f    *spdirect.Factor
	b, x []float64
}

func benchSetup(tb testing.TB) (*sparse.CSR, *spdirect.Factor, []float64, []float64) {
	benchBlock.once.Do(func() {
		a := problem.Poisson2D(66, 66)
		f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, spdirect.Options{})
		if err != nil {
			panic(err)
		}
		benchBlock.a = a
		benchBlock.f = f
		benchBlock.b = make([]float64, a.N)
		benchBlock.x = make([]float64, a.N)
		for i := range benchBlock.b {
			benchBlock.b[i] = float64(i%17) / 17
		}
	})
	return benchBlock.a, benchBlock.f, benchBlock.b, benchBlock.x
}

// BenchmarkLDL measures the sparse LDLᵀ pipeline on the 4356-row block:
// one-time Analyze and Factorize, then the steady-state Refactor and
// Solve. allocs_op on Refactor and Solve is the machine-independent
// regression gate (BENCH_ldl.json); ns_op demonstrates the sparse win
// over BenchmarkDenseLU.
func BenchmarkLDL(b *testing.B) {
	a, f, rhs, x := benchSetup(b)
	b.Run("Analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Factorize", func(b *testing.B) {
		sym, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sym.Factorize(a.Val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Refactor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := f.Refactor(a.Val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Solve(rhs, x)
		}
	})
}

// BenchmarkDenseLU is the dense baseline on the same 4356-row block: what
// the old LocalDirect backend paid per block. Factor is O(n³) and takes
// tens of seconds at this size, so this benchmark is excluded from `make
// bench-ldl` (which filters on BenchmarkLDL); run it explicitly to
// reproduce the recorded comparison in BENCH_ldl.json.
func BenchmarkDenseLU(b *testing.B) {
	a, _, rhs, x := benchSetup(b)
	dm := denseFromCSR(a)
	var lu *dense.LU
	b.Run("Factor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if lu, err = dense.FactorLU(dm); err != nil {
				b.Fatal(err)
			}
		}
	})
	if lu == nil {
		var err error
		if lu, err = dense.FactorLU(dm); err != nil {
			b.Fatal(err)
		}
	}
	y := make([]float64, a.N)
	b.Run("Solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lu.SolveWith(rhs, x, y)
		}
	})
}

// ldlGate mirrors the "gate" object of BENCH_ldl.json: operation name to
// maximum allowed steady-state allocations per call.
type ldlGate struct {
	Gate map[string]float64 `json:"gate"`
}

// TestLDLAllocGate is the machine-independent regression gate: the
// steady-state operations of a cached factorization — Refactor (new
// values, fixed pattern) and Solve — must allocate no more than
// BENCH_ldl.json records (zero). Analyze/Factorize are one-time setup and
// are not gated.
func TestLDLAllocGate(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_ldl.json")
	if err != nil {
		t.Fatalf("reading BENCH_ldl.json: %v", err)
	}
	var g ldlGate
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing BENCH_ldl.json: %v", err)
	}
	if len(g.Gate) == 0 {
		t.Fatal("BENCH_ldl.json has no gate entries")
	}

	a := problem.Poisson2D(40, 40) // 1600 rows: big enough to be honest
	f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	x := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%11) / 11
	}
	ops := map[string]func(){
		"Refactor": func() {
			if err := f.Refactor(a.Val); err != nil {
				t.Fatal(err)
			}
		},
		"Solve": func() { f.Solve(b, x) },
	}
	for name, limit := range g.Gate {
		op, ok := ops[name]
		if !ok {
			t.Errorf("BENCH_ldl.json gates unknown operation %q", name)
			continue
		}
		op() // warm once outside the measurement
		if got := testing.AllocsPerRun(20, op); got > limit {
			t.Errorf("%s allocates %.1f/op in steady state, gate is %.0f", name, got, limit)
		}
	}
}
