package spdirect_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"southwell/internal/dense"
	"southwell/internal/problem"
	"southwell/internal/sparse"
	"southwell/internal/spdirect"
)

// denseFromCSR expands a sparse matrix for the dense reference factors.
func denseFromCSR(a *sparse.CSR) *dense.Matrix {
	m := dense.NewMatrix(a.N)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			m.Add(i, c, vals[k])
		}
	}
	return m
}

// randomSPD builds a random sparse symmetric diagonally dominant matrix:
// n rows, ~deg off-diagonal entries per row, values in [-1, 0), diagonal
// = row sum of magnitudes + 1 (strictly dominant, hence SPD).
func randomSPD(n, deg int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n*(2*deg+1))
	offSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for t := 0; t < deg; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			coo.Add(i, j, v)
			coo.Add(j, i, v)
			offSum[i] += -v
			offSum[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, offSum[i]+1)
	}
	return coo.ToCSR()
}

// solveBoth factors a with both spdirect and dense LU and solves for the
// same right-hand side, returning the two solutions.
func solveBoth(t *testing.T, a *sparse.CSR, opts spdirect.Options, seed int64) (sp, dn []float64) {
	t.Helper()
	f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, opts)
	if err != nil {
		t.Fatalf("spdirect.Factorize: %v", err)
	}
	lu, err := dense.FactorLU(denseFromCSR(a))
	if err != nil {
		t.Fatalf("dense.FactorLU: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	sp = make([]float64, a.N)
	dn = make([]float64, a.N)
	f.Solve(b, sp)
	lu.Solve(b, dn)
	return sp, dn
}

// maxRelDiff returns max_i |x_i - y_i| / max(1, ‖y‖_inf).
func maxRelDiff(x, y []float64) float64 {
	scale := 1.0
	for _, v := range y {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	d := 0.0
	for i := range x {
		if a := math.Abs(x[i] - y[i]); a > d {
			d = a
		}
	}
	return d / scale
}

// TestMatchesDenseOnRandomSPD is the headline property test: on random
// SPD blocks of varied size and density, the sparse LDLᵀ solve and the
// dense LU solve agree to near machine precision, under both orderings.
func TestMatchesDenseOnRandomSPD(t *testing.T) {
	cases := []struct {
		n, deg int
		seed   int64
	}{
		{1, 0, 1}, {2, 1, 2}, {5, 2, 3}, {17, 3, 4}, {64, 4, 5},
		{128, 2, 6}, {257, 5, 7}, {400, 8, 8},
	}
	for _, order := range []spdirect.Ordering{spdirect.OrderRCM, spdirect.OrderNatural} {
		for _, c := range cases {
			a := randomSPD(c.n, c.deg, c.seed)
			sp, dn := solveBoth(t, a, spdirect.Options{Order: order}, c.seed+100)
			if d := maxRelDiff(sp, dn); d > 1e-12 {
				t.Errorf("order %d n=%d deg=%d: sparse vs dense diff %g", order, c.n, c.deg, d)
			}
		}
	}
}

// TestMatchesDenseOnPDEBlocks covers the structured blocks the solver
// exists for: 2D/3D Poisson and FEM matrices (whole, as one "subdomain").
func TestMatchesDenseOnPDEBlocks(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"poisson2d-20": problem.Poisson2D(20, 20),
		"poisson3d-8":  problem.Poisson3D(8, 8, 8, nil, 1, 1, 1),
		"fem2d-14":     problem.FEM2D(14, 0.35, 1),
		"aniso-16":     problem.Aniso2D(16, 16, 100),
	}
	for name, a := range mats {
		if _, err := sparse.Scale(a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp, dn := solveBoth(t, a, spdirect.Options{}, 42)
		if d := maxRelDiff(sp, dn); d > 1e-12 {
			t.Errorf("%s: sparse vs dense diff %g", name, d)
		}
	}
}

// TestResidualIsTiny checks A x ≈ b directly (independent of the dense
// reference): forward error through the factorization is at roundoff.
func TestResidualIsTiny(t *testing.T) {
	a := problem.Poisson2D(30, 30)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x := make([]float64, a.N)
	f.Solve(b, x)
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	if n := sparse.Norm2(r) / sparse.Norm2(b); n > 1e-11 {
		t.Errorf("relative residual %g", n)
	}
}

// TestSolveAliasAllowed: x may alias b.
func TestSolveAliasAllowed(t *testing.T) {
	a := randomSPD(50, 3, 9)
	f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	want := make([]float64, a.N)
	f.Solve(b, want)
	f.Solve(b, b) // aliased
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %g vs %g", i, b[i], want[i])
		}
	}
}

// TestRefactorBitIdentical: refactoring with the same values reproduces L,
// D, and solutions bit for bit, and refactoring with scaled values equals
// a fresh factorization of the scaled matrix.
func TestRefactorBitIdentical(t *testing.T) {
	a := randomSPD(120, 4, 11)
	sym, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Factorize(a.Val)
	if err != nil {
		t.Fatal(err)
	}
	l0 := append([]float64(nil), f.Lx...)
	d0 := append([]float64(nil), f.D...)
	if err := f.Refactor(a.Val); err != nil {
		t.Fatal(err)
	}
	for i := range l0 {
		if f.Lx[i] != l0[i] {
			t.Fatalf("Lx[%d] changed across identical Refactor: %g vs %g", i, f.Lx[i], l0[i])
		}
	}
	for i := range d0 {
		if f.D[i] != d0[i] {
			t.Fatalf("D[%d] changed across identical Refactor: %g vs %g", i, f.D[i], d0[i])
		}
	}

	scaled := make([]float64, len(a.Val))
	for i, v := range a.Val {
		scaled[i] = 2 * v
	}
	if err := f.Refactor(scaled); err != nil {
		t.Fatal(err)
	}
	fresh, err := sym.Factorize(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Lx {
		if f.Lx[i] != fresh.Lx[i] {
			t.Fatalf("Refactor vs fresh Factorize differ in Lx[%d]", i)
		}
	}
	for i := range fresh.D {
		if f.D[i] != fresh.D[i] {
			t.Fatalf("Refactor vs fresh Factorize differ in D[%d]", i)
		}
	}
}

// TestRefactorAfterFailureRecovers: a failed Refactor (indefinite values)
// leaves the factor able to refactor good values again, identically.
func TestRefactorAfterFailureRecovers(t *testing.T) {
	a := randomSPD(60, 3, 13)
	sym, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Factorize(a.Val)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), f.Lx...)

	bad := make([]float64, len(a.Val))
	for i, v := range a.Val {
		bad[i] = -v // negative definite: first pivot fails
	}
	if err := f.Refactor(bad); !errors.Is(err, spdirect.ErrNotPositiveDefinite) {
		t.Fatalf("negative-definite Refactor: got %v, want ErrNotPositiveDefinite", err)
	}
	if err := f.Refactor(a.Val); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if f.Lx[i] != want[i] {
			t.Fatalf("post-failure Refactor differs in Lx[%d]", i)
		}
	}
}

// TestOrderingInvariants: perm is a permutation, L's pattern is fixed and
// well-formed (ascending rows within each column, all below-diagonal),
// and RCM reduces fill against the natural ordering on a banded-friendly
// PDE block.
func TestOrderingInvariants(t *testing.T) {
	a := problem.Poisson2D(24, 24)
	sym, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, sym.N)
	for _, old := range sym.Perm {
		if old < 0 || old >= sym.N || seen[old] {
			t.Fatalf("Perm is not a permutation")
		}
		seen[old] = true
	}
	for old, k := range sym.Pinv {
		if sym.Perm[k] != old {
			t.Fatalf("Pinv does not invert Perm at %d", old)
		}
	}
	f, err := sym.Factorize(a.Val)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sym.N; i++ {
		prev := i // entries must be strictly below the diagonal
		for p := sym.Lp[i]; p < sym.Lp[i+1]; p++ {
			r := int(f.Li[p])
			if r <= prev {
				t.Fatalf("column %d: row indices not ascending below diagonal (%d after %d)", i, r, prev)
			}
			prev = r
		}
	}

	nat, err := spdirect.Analyze(a.N, a.RowPtr, a.Col, spdirect.Options{Order: spdirect.OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	if sym.NNZL() > nat.NNZL() {
		t.Errorf("RCM fill %d exceeds natural fill %d on a 2D Poisson block", sym.NNZL(), nat.NNZL())
	}
}

// TestRejectsBadInput: dimension/index validation and the SPD guard.
func TestRejectsBadInput(t *testing.T) {
	if _, err := spdirect.Analyze(2, []int{0, 1}, []int{0}, spdirect.Options{}); err == nil {
		t.Error("short rowPtr accepted")
	}
	if _, err := spdirect.Analyze(2, []int{0, 1, 2}, []int{0, 5}, spdirect.Options{}); err == nil {
		t.Error("out-of-range column accepted")
	}
	// Indefinite matrix: diag(1, -1).
	rowPtr := []int{0, 1, 2}
	col := []int{0, 1}
	val := []float64{1, -1}
	if _, err := spdirect.Factorize(2, rowPtr, col, val, spdirect.Options{}); !errors.Is(err, spdirect.ErrNotPositiveDefinite) {
		t.Errorf("indefinite matrix: got %v", err)
	}
	// Missing diagonal behaves as a zero pivot.
	if _, err := spdirect.Factorize(1, []int{0, 0}, nil, nil, spdirect.Options{}); !errors.Is(err, spdirect.ErrNotPositiveDefinite) {
		t.Errorf("empty matrix: got %v", err)
	}
}

// TestSolveFlopsAccounting: the charged solve cost is exactly 4·nnz(L)+n.
func TestSolveFlopsAccounting(t *testing.T) {
	a := randomSPD(80, 4, 17)
	f, err := spdirect.Factorize(a.N, a.RowPtr, a.Col, a.Val, spdirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 4*float64(f.Symbolic().NNZL()) + float64(a.N)
	if got := f.SolveFlops(); got != want {
		t.Errorf("SolveFlops = %g, want %g", got, want)
	}
}
