package spdirect

import "sort"

// Ordering selects the fill-reducing permutation Analyze applies before
// symbolic factorization.
type Ordering int

const (
	// OrderRCM is reverse Cuthill-McKee over the block's adjacency graph —
	// the envelope-minimizing ordering that suits the PDE subdomain blocks
	// this package factors (DESIGN.md §10). Ties break by node id, the BFS
	// root is a deterministically chosen pseudo-peripheral node, so the
	// permutation is a pure function of the structure.
	OrderRCM Ordering = iota
	// OrderNatural keeps the input ordering (useful for tests and for
	// callers that pre-permuted the block themselves).
	OrderNatural
)

// rcmPerm computes the reverse Cuthill-McKee permutation of the symmetric
// sparsity structure (rowPtr, col): perm[new] = old. Self-loops (diagonal
// entries) are ignored. Disconnected components are ordered one after
// another, each from its own pseudo-peripheral root, lowest unvisited node
// first — every choice breaks ties by node id, so the result is
// deterministic for a given structure.
func rcmPerm(n int, rowPtr, col []int) []int {
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if col[p] != i {
				deg[i]++
			}
		}
	}
	// Adjacency copy with each neighborhood sorted by (degree, id): the
	// Cuthill-McKee visit order. Sorting once here keeps the BFS loops
	// allocation- and comparison-light.
	adjPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		adjPtr[i+1] = adjPtr[i] + deg[i]
	}
	adj := make([]int, adjPtr[n])
	for i := 0; i < n; i++ {
		w := adjPtr[i]
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if c := col[p]; c != i {
				adj[w] = c
				w++
			}
		}
		nb := adj[adjPtr[i]:adjPtr[i+1]]
		sort.Slice(nb, func(a, b int) bool {
			if deg[nb[a]] != deg[nb[b]] {
				return deg[nb[a]] < deg[nb[b]]
			}
			return nb[a] < nb[b]
		})
	}

	perm := make([]int, 0, n)
	visited := make([]bool, n)
	level := make([]int, n) // BFS scratch: queue storage
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(start, adjPtr, adj, deg, level)
		// Cuthill-McKee BFS from root; neighbors are pre-sorted by
		// (degree, id), so the queue order is the classic CM order.
		head := len(perm)
		perm = append(perm, root)
		visited[root] = true
		for head < len(perm) {
			u := perm[head]
			head++
			for _, v := range adj[adjPtr[u]:adjPtr[u+1]] {
				if !visited[v] {
					visited[v] = true
					perm = append(perm, v)
				}
			}
		}
	}
	// Reverse: RCM. Reversing across component boundaries only reverses the
	// component order, which is harmless (no cross-component fill).
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// pseudoPeripheral runs the George-Liu iteration restricted to start's
// component: BFS from the current root, move to the minimum-degree node of
// the last level, repeat while the eccentricity grows. queue is an n-sized
// scratch. All ties break by node id.
func pseudoPeripheral(start int, adjPtr, adj, deg, queue []int) int {
	root := start
	ecc := -1
	// The iteration terminates because the eccentricity strictly grows; the
	// bound is a safety net (eccentricity < n always, and in practice the
	// loop settles within a handful of rounds).
	for iter := 0; iter < 64; iter++ {
		visited := make([]bool, len(adjPtr)-1)
		queue[0] = root
		visited[root] = true
		levStart, levEnd, qLen := 0, 1, 1
		height := 0
		lastLevel := queue[0:1]
		for levStart < levEnd {
			for i := levStart; i < levEnd; i++ {
				u := queue[i]
				for _, v := range adj[adjPtr[u]:adjPtr[u+1]] {
					if !visited[v] {
						visited[v] = true
						queue[qLen] = v
						qLen++
					}
				}
			}
			if qLen > levEnd {
				height++
				lastLevel = queue[levEnd:qLen]
			}
			levStart, levEnd = levEnd, qLen
		}
		if height <= ecc {
			return root
		}
		ecc = height
		// Minimum-degree node of the deepest level, lowest id on ties.
		best := lastLevel[0]
		for _, u := range lastLevel[1:] {
			if deg[u] < deg[best] || (deg[u] == deg[best] && u < best) {
				best = u
			}
		}
		root = best
	}
	return root
}
