// Package partition provides graph partitioning for distributing rows of a
// sparse matrix across processes. It stands in for METIS in the paper's
// pipeline: a multilevel recursive-bisection partitioner with heavy-edge
// matching coarsening, BFS region-growing initial bisection, and
// Fiduccia-Mattheyses-style boundary refinement. Simple block and grid
// partitioners are also provided for structured problems and tests.
package partition

import (
	"fmt"
	"math/rand"

	"southwell/internal/sparse"
)

// graph is an edge-weighted, vertex-weighted undirected graph in adjacency
// (CSR) form, the working representation inside the multilevel scheme.
type graph struct {
	n    int
	xadj []int
	adj  []int
	ew   []float64
	vw   []int
}

func graphFromCSR(a *sparse.CSR) *graph {
	g := &graph{
		n:    a.N,
		xadj: make([]int, a.N+1),
		vw:   make([]int, a.N),
		// Pre-size from the matrix: off-diagonal count is nnz minus the
		// (at most n) diagonal entries, so nnz is a tight upper bound.
		adj: make([]int, 0, a.NNZ()),
		ew:  make([]float64, 0, a.NNZ()),
	}
	for i := 0; i < a.N; i++ {
		g.vw[i] = 1
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j == i {
				continue
			}
			g.adj = append(g.adj, j)
			w := vals[k]
			if w < 0 {
				w = -w
			}
			g.ew = append(g.ew, w)
		}
		g.xadj[i+1] = len(g.adj)
	}
	return g
}

func (g *graph) totalVW() int {
	t := 0
	for _, w := range g.vw {
		t += w
	}
	return t
}

// Options tunes the multilevel partitioner.
type Options struct {
	// Imbalance is the allowed relative deviation of a part from its target
	// weight during refinement (default 0.03, METIS-like).
	Imbalance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (default 96).
	CoarsenTo int
	// RefinePasses is the number of FM passes per level (default 4).
	RefinePasses int
	// Seed drives the randomized matching order.
	Seed int64
	// Rand, when non-nil, supplies the matching-order stream directly
	// instead of one derived from Seed, letting a caller thread a single
	// explicitly seeded stream through partitioning and later randomized
	// stages. The partitioner consumes from it deterministically.
	Rand *rand.Rand
}

// rng returns the caller-provided stream, or one seeded from Seed. The +1
// keeps the derived stream distinct from other Seed consumers in a run.
func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed + 1))
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.03
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 96
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
	return o
}

// Partition splits the adjacency graph of a into k parts, returning the
// part id of each row. It panics if k <= 0 and returns the trivial
// partition for k == 1. Parts are balanced within Options.Imbalance and the
// weighted edge cut is heuristically minimized.
func Partition(a *sparse.CSR, k int, opts Options) []int {
	if k <= 0 {
		panic(fmt.Sprintf("partition: k = %d", k))
	}
	opts = opts.withDefaults()
	part := make([]int, a.N)
	if k == 1 {
		return part
	}
	if k >= a.N {
		// At least as many parts as rows: the multilevel scheme cannot give
		// every part a vertex, and its recursion would strand arbitrary
		// parts empty. Deterministic degenerate answer instead: row i →
		// part i. For k > a.N parts a.N..k-1 necessarily stay empty;
		// Validate reports them to callers that require k non-empty parts.
		for i := range part {
			part[i] = i
		}
		return part
	}
	g := graphFromCSR(a)
	verts := make([]int, g.n)
	for i := range verts {
		verts[i] = i
	}
	rng := opts.rng()
	recursiveBisect(g, verts, k, 0, part, opts, rng)
	repairEmpty(part, k)
	return part
}

// repairEmpty reassigns rows so that no part in [0, k) is empty. At high
// part counts (parts approaching rows) recursive bisection can hand a
// subset fewer vertices than its part budget and strand parts without any
// row; the layout layer rejects such partitions outright. Repair is
// deterministic: empty parts are filled in ascending id order, each taking
// the highest-index row of the currently largest part that still has more
// than one row (ties broken toward the lowest donor id). A no-op on
// partitions with no empty parts, so moderate-k results are unchanged.
func repairEmpty(part []int, k int) {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	var empties []int
	for p, sz := range sizes {
		if sz == 0 {
			empties = append(empties, p)
		}
	}
	if len(empties) == 0 {
		return
	}
	// Rows of each part in ascending index order; the donor pops its tail.
	rows := make([][]int, k)
	for i, p := range part {
		rows[p] = append(rows[p], i)
	}
	for _, e := range empties {
		donor, best := -1, 1
		for p, sz := range sizes {
			if sz > best {
				donor, best = p, sz
			}
		}
		if donor < 0 {
			return // fewer rows than parts: not repairable (k >= n is handled above)
		}
		r := rows[donor][len(rows[donor])-1]
		rows[donor] = rows[donor][:len(rows[donor])-1]
		sizes[donor]--
		part[r] = e
		sizes[e] = 1
		rows[e] = append(rows[e], r)
	}
}

// recursiveBisect partitions the subgraph induced by verts into k parts
// labeled base..base+k-1.
func recursiveBisect(g *graph, verts []int, k, base int, part []int, opts Options, rng *rand.Rand) {
	if k == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	kl := k / 2
	kr := k - kl
	sub := induce(g, verts)
	frac := float64(kl) / float64(k)
	side := bisect(sub, frac, opts, rng)
	var left, right []int
	for i, v := range verts {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	recursiveBisect(g, left, kl, base, part, opts, rng)
	recursiveBisect(g, right, kr, base+kl, part, opts, rng)
}

// induce extracts the subgraph on verts (vertex i of the result is
// verts[i]); edges leaving the set are dropped.
func induce(g *graph, verts []int) *graph {
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		local[v] = i
	}
	s := &graph{n: len(verts), xadj: make([]int, len(verts)+1), vw: make([]int, len(verts))}
	for i, v := range verts {
		s.vw[i] = g.vw[v]
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			if j, ok := local[g.adj[e]]; ok {
				s.adj = append(s.adj, j)
				s.ew = append(s.ew, g.ew[e])
			}
		}
		s.xadj[i+1] = len(s.adj)
	}
	return s
}

// bisect returns a 0/1 side label per vertex of g, with side 0 receiving
// ~frac of the total vertex weight, via multilevel coarsening.
func bisect(g *graph, frac float64, opts Options, rng *rand.Rand) []int {
	if g.n <= opts.CoarsenTo {
		side := growBisection(g, frac, rng)
		refine(g, side, frac, opts)
		return side
	}
	cmap, coarse := coarsen(g, rng)
	if coarse.n >= g.n*9/10 {
		// Matching stalled (e.g. star graphs): stop coarsening here.
		side := growBisection(g, frac, rng)
		refine(g, side, frac, opts)
		return side
	}
	cside := bisect(coarse, frac, opts, rng)
	side := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		side[v] = cside[cmap[v]]
	}
	refine(g, side, frac, opts)
	return side
}

// coarsen contracts a heavy-edge matching, returning the vertex map and the
// coarse graph.
func coarsen(g *graph, rng *rand.Rand) ([]int, *graph) {
	order := rng.Perm(g.n)
	match := make([]int, g.n)
	for i := range match {
		match[i] = -1
	}
	cmap := make([]int, g.n)
	nc := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best := -1
		bestW := -1.0
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			u := g.adj[e]
			if u != v && match[u] < 0 && g.ew[e] > bestW {
				bestW = g.ew[e]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			cmap[v] = nc
			cmap[best] = nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}

	coarse := &graph{n: nc, xadj: make([]int, nc+1), vw: make([]int, nc)}
	for v := 0; v < g.n; v++ {
		coarse.vw[cmap[v]] += g.vw[v]
	}
	// Build coarse adjacency with a stamp-based accumulator.
	acc := make([]float64, nc)
	stamp := make([]int, nc)
	touched := make([]int, 0, 64)
	members := make([][]int, nc)
	for v := 0; v < g.n; v++ {
		members[cmap[v]] = append(members[cmap[v]], v)
	}
	for c := 0; c < nc; c++ {
		touched = touched[:0]
		for _, v := range members[c] {
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				cu := cmap[g.adj[e]]
				if cu == c {
					continue
				}
				if stamp[cu] != c+1 {
					stamp[cu] = c + 1
					acc[cu] = 0
					touched = append(touched, cu)
				}
				acc[cu] += g.ew[e]
			}
		}
		for _, cu := range touched {
			coarse.adj = append(coarse.adj, cu)
			coarse.ew = append(coarse.ew, acc[cu])
		}
		coarse.xadj[c+1] = len(coarse.adj)
	}
	return cmap, coarse
}

// growBisection grows side 0 by BFS from a pseudo-peripheral vertex until
// it holds ~frac of the vertex weight.
func growBisection(g *graph, frac float64, rng *rand.Rand) []int {
	side := make([]int, g.n)
	for i := range side {
		side[i] = 1
	}
	if g.n == 0 {
		return side
	}
	target := int(frac * float64(g.totalVW()))
	if target <= 0 {
		target = 1
	}
	start := pseudoPeripheral(g, rng.Intn(g.n))
	visited := make([]bool, g.n)
	queue := []int{start}
	visited[start] = true
	grown := 0
	for len(queue) > 0 && grown < target {
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		grown += g.vw[v]
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			u := g.adj[e]
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	// Disconnected graphs: if BFS exhausted before reaching the target,
	// sweep remaining vertices in index order.
	for v := 0; v < g.n && grown < target; v++ {
		if side[v] == 1 {
			side[v] = 0
			grown += g.vw[v]
		}
	}
	return side
}

// pseudoPeripheral runs two BFS sweeps to find a far-apart start vertex.
func pseudoPeripheral(g *graph, start int) int {
	far := start
	for sweep := 0; sweep < 2; sweep++ {
		dist := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
		}
		queue := []int{far}
		dist[far] = 0
		last := far
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			last = v
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				u := g.adj[e]
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		far = last
	}
	return far
}

// refine performs FM-style passes: repeatedly move the boundary vertex with
// the best cut gain to the other side, subject to the balance constraint,
// keeping the best configuration seen in each pass.
func refine(g *graph, side []int, frac float64, opts Options) {
	total := g.totalVW()
	target0 := float64(total) * frac
	lo := int(target0 * (1 - opts.Imbalance))
	hi := int(target0*(1+opts.Imbalance)) + 1

	w0 := 0
	for v := 0; v < g.n; v++ {
		if side[v] == 0 {
			w0 += g.vw[v]
		}
	}

	gain := func(v int) float64 {
		ext, inn := 0.0, 0.0
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			if side[g.adj[e]] == side[v] {
				inn += g.ew[e]
			} else {
				ext += g.ew[e]
			}
		}
		return ext - inn
	}

	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := false
		// One greedy sweep over boundary vertices.
		for v := 0; v < g.n; v++ {
			onBoundary := false
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				if side[g.adj[e]] != side[v] {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				continue
			}
			gv := gain(v)
			if gv <= 0 {
				continue
			}
			// Balance check for moving v to the other side.
			nw0 := w0
			if side[v] == 0 {
				nw0 -= g.vw[v]
			} else {
				nw0 += g.vw[v]
			}
			if nw0 < lo || nw0 > hi {
				continue
			}
			side[v] = 1 - side[v]
			w0 = nw0
			moved = true
		}
		if !moved {
			break
		}
	}
}

// Block returns the contiguous block partition: rows split into k nearly
// equal ranges in natural order (the paper's δ offsets for structured
// cases and a baseline for the multilevel partitioner).
func Block(n, k int) []int {
	part := make([]int, n)
	for i := 0; i < n; i++ {
		part[i] = i * k / n
		if part[i] >= k {
			part[i] = k - 1
		}
	}
	return part
}

// Grid2D partitions an nx-by-ny grid (row-major ids) into a px-by-py
// process grid.
func Grid2D(nx, ny, px, py int) []int {
	part := make([]int, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			pxi := ix * px / nx
			pyi := iy * py / ny
			part[iy*nx+ix] = pyi*px + pxi
		}
	}
	return part
}

// Stats summarizes partition quality.
type Stats struct {
	K         int
	MinSize   int
	MaxSize   int
	AvgSize   float64
	EdgeCut   float64 // sum of |a_ij| over cut edges (each edge once)
	CutEdges  int
	Imbalance float64 // MaxSize / AvgSize - 1
}

// Quality computes balance and weighted edge-cut statistics of part.
func Quality(a *sparse.CSR, part []int, k int) Stats {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	s := Stats{K: k, MinSize: a.N, MaxSize: 0}
	for _, sz := range sizes {
		if sz < s.MinSize {
			s.MinSize = sz
		}
		if sz > s.MaxSize {
			s.MaxSize = sz
		}
	}
	s.AvgSize = float64(a.N) / float64(k)
	s.Imbalance = float64(s.MaxSize)/s.AvgSize - 1
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for kk, j := range cols {
			if j > i && part[j] != part[i] {
				s.CutEdges++
				w := vals[kk]
				if w < 0 {
					w = -w
				}
				s.EdgeCut += w
			}
		}
	}
	return s
}

// Validate checks that part assigns every row a part id in [0, k) and that
// every part is non-empty; it returns an error describing the first
// violation.
func Validate(part []int, n, k int) error {
	if len(part) != n {
		return fmt.Errorf("partition: length %d, want %d", len(part), n)
	}
	seen := make([]bool, k)
	for i, p := range part {
		if p < 0 || p >= k {
			return fmt.Errorf("partition: row %d has part %d, want [0,%d)", i, p, k)
		}
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: part %d is empty", p)
		}
	}
	return nil
}
