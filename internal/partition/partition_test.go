package partition

import (
	"testing"
	"testing/quick"

	"southwell/internal/problem"
)

func TestBlockPartition(t *testing.T) {
	part := Block(10, 3)
	if err := Validate(part, 10, 3); err != nil {
		t.Fatal(err)
	}
	// Monotone non-decreasing part ids for contiguous blocks.
	for i := 1; i < len(part); i++ {
		if part[i] < part[i-1] {
			t.Fatal("block partition not contiguous")
		}
	}
}

func TestGrid2DPartition(t *testing.T) {
	part := Grid2D(8, 8, 2, 2)
	if err := Validate(part, 64, 4); err != nil {
		t.Fatal(err)
	}
	a := problem.Poisson2D(8, 8)
	st := Quality(a, part, 4)
	if st.MaxSize != 16 || st.MinSize != 16 {
		t.Errorf("grid partition sizes %d..%d, want exactly 16", st.MinSize, st.MaxSize)
	}
	// 2x2 on 8x8 grid: cut = 2*8 edges.
	if st.CutEdges != 16 {
		t.Errorf("cut edges = %d, want 16", st.CutEdges)
	}
}

func TestMultilevelOnGrid(t *testing.T) {
	a := problem.Poisson2D(30, 30)
	for _, k := range []int{2, 4, 7, 16} {
		part := Partition(a, k, Options{Seed: 1})
		if err := Validate(part, a.N, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		st := Quality(a, part, k)
		if st.Imbalance > 0.35 {
			t.Errorf("k=%d: imbalance %.2f too high", k, st.Imbalance)
		}
		// A sane bisection of a 30x30 grid should cut far fewer than the
		// ~1740 total edges.
		if k == 2 && st.CutEdges > 200 {
			t.Errorf("k=2: cut %d edges, want < 200", st.CutEdges)
		}
	}
}

func TestMultilevelBeatsNaiveCutOnGrid(t *testing.T) {
	// Multilevel should cut no more than ~2x the ideal strip cut; the block
	// partition of a row-major grid is already strips, so compare against a
	// deliberately bad random partition instead.
	a := problem.Poisson2D(24, 24)
	k := 8
	part := Partition(a, k, Options{Seed: 2})
	st := Quality(a, part, k)
	bad := make([]int, a.N)
	for i := range bad {
		bad[i] = i % k
	}
	stBad := Quality(a, bad, k)
	if st.EdgeCut >= stBad.EdgeCut {
		t.Errorf("multilevel cut %.0f not better than round-robin cut %.0f", st.EdgeCut, stBad.EdgeCut)
	}
}

func TestPartitionK1(t *testing.T) {
	a := problem.Poisson2D(5, 5)
	part := Partition(a, 1, Options{})
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must be all zeros")
		}
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	a := problem.FEM2D(15, 0.3, 2)
	p1 := Partition(a, 6, Options{Seed: 9})
	p2 := Partition(a, 6, Options{Seed: 9})
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("partition not deterministic")
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	if err := Validate([]int{0, 1}, 3, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Validate([]int{0, 5, 1}, 3, 2); err == nil {
		t.Error("out-of-range part accepted")
	}
	if err := Validate([]int{0, 0, 0}, 3, 2); err == nil {
		t.Error("empty part accepted")
	}
}

func TestQuickPartitionAlwaysValidBalanced(t *testing.T) {
	f := func(seed int64) bool {
		k := 2 + int(seed%7+7)%7
		a := problem.FEM2D(12, 0.25, seed)
		part := Partition(a, k, Options{Seed: seed})
		if Validate(part, a.N, k) != nil {
			return false
		}
		st := Quality(a, part, k)
		return st.Imbalance < 0.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
