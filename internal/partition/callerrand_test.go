package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"southwell/internal/problem"
)

// TestCallerSeededRand pins the caller-seeded contract: passing an explicit
// *rand.Rand seeded with Seed+1 must reproduce the Seed-derived partition
// bit for bit, and the partitioner must consume from the stream
// deterministically (two identically seeded streams give equal partitions).
func TestCallerSeededRand(t *testing.T) {
	a := problem.Poisson2D(20, 20)

	bySeed := Partition(a, 6, Options{Seed: 7})
	byRand := Partition(a, 6, Options{Rand: rand.New(rand.NewSource(7 + 1))})
	if !reflect.DeepEqual(bySeed, byRand) {
		t.Fatalf("Options.Rand with the Seed-derived stream diverges from Options.Seed")
	}

	r1 := Partition(a, 6, Options{Rand: rand.New(rand.NewSource(99))})
	r2 := Partition(a, 6, Options{Rand: rand.New(rand.NewSource(99))})
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("identically seeded caller streams give different partitions")
	}
}
