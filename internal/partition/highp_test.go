package partition

import (
	"testing"

	"southwell/internal/problem"
)

// samePart reports whether two partitions are identical.
func samePart(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPartitionPartsEqualRows: k == n degenerates to the identity
// partition — every row its own part, all parts non-empty.
func TestPartitionPartsEqualRows(t *testing.T) {
	a := problem.Poisson2D(6, 6)
	part := Partition(a, a.N, Options{Seed: 1})
	if err := Validate(part, a.N, a.N); err != nil {
		t.Fatal(err)
	}
	for i, p := range part {
		if p != i {
			t.Fatalf("row %d got part %d, want identity", i, p)
		}
	}
}

// TestPartitionPartsExceedRows: k > n must not panic; the result is the
// deterministic identity assignment with parts n..k-1 empty (which
// Validate reports, so layers that need k non-empty parts still reject it
// with an error rather than a crash).
func TestPartitionPartsExceedRows(t *testing.T) {
	a := problem.Poisson2D(5, 5)
	k := a.N + 7
	p1 := Partition(a, k, Options{Seed: 3})
	p2 := Partition(a, k, Options{Seed: 9}) // seed-independent degenerate path
	if !samePart(p1, p2) {
		t.Error("k > n partition is not deterministic across seeds")
	}
	for i, p := range p1 {
		if p != i {
			t.Fatalf("row %d got part %d, want identity", i, p)
		}
	}
	if err := Validate(p1, a.N, k); err == nil {
		t.Error("Validate accepted a partition with necessarily-empty parts")
	}
}

// TestPartitionNearRowCountNonEmpty: part counts just below the row count
// force singleton parts and would strand empties without repair; every
// part must come back non-empty, deterministically.
func TestPartitionNearRowCountNonEmpty(t *testing.T) {
	a := problem.Poisson2D(8, 8) // 64 rows
	for _, k := range []int{50, 60, 63} {
		for seed := int64(0); seed < 4; seed++ {
			part := Partition(a, k, Options{Seed: seed})
			if err := Validate(part, a.N, k); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			again := Partition(a, k, Options{Seed: seed})
			if !samePart(part, again) {
				t.Fatalf("k=%d seed=%d: partition not deterministic", k, seed)
			}
		}
	}
}

// TestPartitionP8192OnSuiteMatrices: the paper-scale rank count against
// small suite instances (≈11k-18k rows). Every part must be non-empty and
// the result reproducible — this is the partition the 8192-rank scaling
// study runs on.
func TestPartitionP8192OnSuiteMatrices(t *testing.T) {
	if testing.Short() {
		t.Skip("multilevel partition at P=8192 is slow under -short")
	}
	const k = 8192
	for _, name := range []string{"Flan_1565", "audikw_1"} {
		ent, ok := problem.SuiteByName(name)
		if !ok {
			t.Fatalf("suite entry %q missing", name)
		}
		a := ent.Gen()
		if a.N <= k {
			t.Fatalf("%s: suite matrix has %d rows, need > %d for this test", name, a.N, k)
		}
		part := Partition(a, k, Options{Seed: 0})
		if err := Validate(part, a.N, k); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		again := Partition(ent.Gen(), k, Options{Seed: 0})
		if !samePart(part, again) {
			t.Errorf("%s: P=8192 partition not deterministic", name)
		}
	}
}
