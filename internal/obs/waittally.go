package obs

import (
	"fmt"
	"io"
	"sort"
)

// WaitTally summarizes where the neighborhood-epoch scheduler (rma
// SchedNeighbor) waited: per-rank counts of window assemblies that found a
// neighbor's epoch not yet published, and how often workers parked
// altogether. These are *counts*, never seconds — the runtime is
// wall-clock-free by policy (simulated time comes only from the α-β-γ
// model), and wait counts are scheduling diagnostics, not results: two
// bit-identical runs may tally different waits depending on how the host
// schedules the workers.
type WaitTally struct {
	// Groups is the number of RunPhases groups executed on the
	// neighborhood scheduler.
	Groups int64
	// Parks counts worker park events: a worker found no runnable rank in
	// its chunk and blocked on a neighbor's epoch advance.
	Parks int64
	// Blocked[p] counts rank p's failed assembly attempts: boundary checks
	// that found at least one neighbor not yet done. High counts localize
	// which neighborhoods pace the run (a straggler's neighbors dominate).
	Blocked []int64
}

// TotalBlocked sums the per-rank blocked counts.
func (t *WaitTally) TotalBlocked() int64 {
	var n int64
	for _, b := range t.Blocked {
		n += b
	}
	return n
}

// WriteSummary writes a short human-readable digest: totals plus the most
// frequently blocked ranks (the straggler neighborhoods), in deterministic
// order (count desc, rank asc).
func (t *WaitTally) WriteSummary(w io.Writer, topN int) error {
	if _, err := fmt.Fprintf(w, "sched waits: %d groups, %d parks, %d blocked assemblies\n",
		t.Groups, t.Parks, t.TotalBlocked()); err != nil {
		return err
	}
	type rankCount struct {
		rank int
		n    int64
	}
	top := make([]rankCount, 0, len(t.Blocked))
	for p, n := range t.Blocked {
		if n > 0 {
			top = append(top, rankCount{p, n})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].rank < top[j].rank
	})
	if topN > 0 && len(top) > topN {
		top = top[:topN]
	}
	for _, rc := range top {
		if _, err := fmt.Fprintf(w, "  rank %4d blocked %d\n", rc.rank, rc.n); err != nil {
			return err
		}
	}
	return nil
}
