package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// put builds a minimal KindPut event; seq rides in I1 so tests can check
// retention order after ring wrap.
func put(rank int32, seq int64) Event {
	return Event{Kind: KindPut, Rank: rank, A: (rank + 1) % 2, I1: seq}
}

func decision(rank int32, relaxed bool) Event {
	e := Event{Kind: KindDecision, Rank: rank}
	if relaxed {
		e.Flag = FlagRelaxed
	}
	return e
}

// TestNilSafety: a nil *Recorder is a complete no-op Tracer, and both
// exporters still write valid (empty) documents. This is the disabled
// path every producer relies on.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Emit(put(0, 1)) // must not panic
	r.SetLabel("x")
	r.SetPool(PoolStats{Regions: 1})
	if r.Ranks() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Errorf("nil recorder leaks state: ranks=%d dropped=%d events=%v",
			r.Ranks(), r.Dropped(), r.Events())
	}
	if got := r.Tally(0); got != (RankTally{}) {
		t.Errorf("nil recorder tally: %+v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil trace not valid JSON: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Errorf("nil metrics output: %q", buf.String())
	}
	// A nil recorder stored in the interface must behave the same.
	var tr Tracer = r
	tr.Emit(put(0, 2))
}

// TestRingWrap: the ring keeps the newest capacity events, counts the
// dropped prefix, and the tallies stay exact regardless.
func TestRingWrap(t *testing.T) {
	r := NewRecorderCap(1, 16)
	const total = 41
	for i := int64(0); i < total; i++ {
		r.Emit(put(0, i))
	}
	ev := r.Events()
	if len(ev) != 16 {
		t.Fatalf("retained %d events, want 16", len(ev))
	}
	for i, e := range ev {
		if want := int64(total - 16 + i); e.I1 != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first unwrap broken)", i, e.I1, want)
		}
	}
	if got := r.Dropped(); got != total-16 {
		t.Errorf("dropped %d, want %d", got, total-16)
	}
	if tl := r.Tally(0); tl.Puts != total {
		t.Errorf("tally dropped events with the ring: %d puts, want %d", tl.Puts, total)
	}
}

// TestShardRouting: per-rank events land on their rank's shard, control
// and out-of-range ranks on the control shard, and Events returns the
// canonical export order (ranks ascending, control last).
func TestShardRouting(t *testing.T) {
	r := NewRecorderCap(2, 16)
	r.Emit(put(1, 10))
	r.Emit(Event{Kind: KindStep, Rank: ControlRank, Step: 0, V1: 1})
	r.Emit(put(0, 20))
	r.Emit(put(99, 30)) // out of range: retained on the control shard
	r.Emit(put(0, 21))

	ev := r.Events()
	want := []struct {
		rank int32
		seq  int64
	}{{0, 20}, {0, 21}, {1, 10}, {-1, 0}, {99, 30}}
	if len(ev) != len(want) {
		t.Fatalf("got %d events, want %d", len(ev), len(want))
	}
	for i, w := range want {
		if ev[i].Rank != w.rank || ev[i].I1 != w.seq {
			t.Errorf("event %d = rank %d seq %d, want rank %d seq %d",
				i, ev[i].Rank, ev[i].I1, w.rank, w.seq)
		}
	}
	// Out-of-range ranks must not corrupt the per-rank tallies.
	if r.Tally(0).Puts != 2 || r.Tally(1).Puts != 1 {
		t.Errorf("tallies: rank0=%d rank1=%d", r.Tally(0).Puts, r.Tally(1).Puts)
	}
	if got := r.Tally(99); got != (RankTally{}) {
		t.Errorf("out-of-range tally: %+v", got)
	}
}

// TestStallTally: hold streaks are bucketed by power of two on the relax
// that ends them, MaxStall tracks the longest, and Tally folds an ongoing
// streak without mutating the live counters.
func TestStallTally(t *testing.T) {
	r := NewRecorderCap(1, 16)
	for i := 0; i < 3; i++ {
		r.Emit(decision(0, false))
	}
	r.Emit(decision(0, true))
	r.Emit(decision(0, false))
	r.Emit(decision(0, true))

	tl := r.Tally(0)
	if tl.Relaxed != 2 || tl.Held != 4 || tl.MaxStall != 3 {
		t.Fatalf("relaxed=%d held=%d max=%d, want 2/4/3", tl.Relaxed, tl.Held, tl.MaxStall)
	}
	// Streak of 3 → bucket 1 ([2,3]); streak of 1 → bucket 0.
	if tl.Stalls[0] != 1 || tl.Stalls[1] != 1 {
		t.Fatalf("histogram %v, want one streak in bucket 0 and one in bucket 1", tl.Stalls)
	}

	// An ongoing streak is folded into the returned copy only.
	r.Emit(decision(0, false))
	first := r.Tally(0)
	if first.Stalls[0] != 2 {
		t.Errorf("ongoing streak not folded: %v", first.Stalls)
	}
	if again := r.Tally(0); again != first {
		t.Errorf("Tally mutated live counters: %+v vs %+v", again, first)
	}
}

// sampleRecorder builds a recorder with at least one event of every kind,
// for exporter tests.
func sampleRecorder() *Recorder {
	r := NewRecorderCap(2, 32)
	r.SetLabel("unit ds")
	r.SetPool(PoolStats{Regions: 3, Blocks: 12, Width: 2})
	r.Emit(Event{Kind: KindPut, Rank: 0, A: 1, Tag: 1, I1: 64, Ts: 0.5, Phase: 1})
	r.Emit(Event{Kind: KindDeliver, Rank: 1, A: 0, Tag: 1, I1: 64, Ts: 0.5, Phase: 1, Flag: FlagDup})
	r.Emit(Event{Kind: KindRankCost, Rank: 0, Ts: 1, Dur: 0.5, V1: 0.2, V2: 0.2, V3: 0.1, A: 1, B: 1, I1: 64, I2: 64, Phase: 1})
	r.Emit(Event{Kind: KindPhase, Rank: ControlRank, Ts: 1, Dur: 0.5, I1: 2, Phase: 1})
	r.Emit(decision(0, true))
	r.Emit(decision(1, false))
	r.Emit(Event{Kind: KindResSend, Rank: 0, A: -1, V1: 2.5, V2: 1.5, Ts: 1, Step: 1, Flag: FlagRefresh})
	r.Emit(Event{Kind: KindStep, Rank: ControlRank, Step: 1, V1: 0.25, V2: 1, A: 1, I1: 3, I2: 192, Ts: 1})
	r.Emit(Event{Kind: KindWatchdog, Rank: ControlRank, Step: 1, A: 1, Flag: FlagWatchdogIdle, Ts: 1})
	r.Emit(Event{Kind: KindFault, Rank: ControlRank, A: 0, B: 1, Flag: FlagFaultDelayed, Ts: 1, Phase: 1})
	return r
}

// TestWriteTraceShape: the export is valid JSON in the trace-event Object
// Format, names every track, carries every recorded event, and is
// byte-stable across repeated exports.
func TestWriteTraceShape(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Run string `json:"run"`
		} `json:"otherData"`
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData.Run != "unit ds" {
		t.Errorf("run label %q", doc.OtherData.Run)
	}
	tracks := map[string]bool{}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
		counts[e.Ph]++
	}
	for _, want := range []string{"rank 0", "rank 1", "runtime"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	// 2 slices (phase + rank cost), 2 counter samples from the step, and
	// the rest instants.
	if counts["X"] != 2 || counts["C"] != 2 || counts["i"] == 0 {
		t.Errorf("event shape counts: %v", counts)
	}

	var again bytes.Buffer
	if err := r.WriteTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("repeated export is not byte-identical")
	}
}

// TestWriteMetricsShape: the summary carries the header tables and the
// exact aggregate counts.
func TestWriteMetricsShape(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# obs metrics — unit ds",
		"ranks 2  steps 1  msgs 1",
		"relax decisions 1/2 (active fraction 0.5000)",
		"kernel pool: 3 regions, 12 blocks, width 2",
		"# per-step",
		"# per-rank",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestJSONFloat: the JSON float formatter is shortest-round-trip and
// clamps the values JSON cannot represent.
func TestJSONFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{1e21, "1e+21"},
		{math.NaN(), "0"},
		{math.Inf(1), "0"},
		{math.Inf(-1), "0"},
	} {
		if got := jf(tc.in); got != tc.want {
			t.Errorf("jf(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
