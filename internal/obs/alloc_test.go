package obs_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"southwell/internal/obs"
	"southwell/internal/rma"
)

// The zero-overhead claim of the observability layer, pinned the same way
// as BENCH_kernels.json and BENCH_ldl.json: the gate file records the
// maximum allocations per steady-state operation, and this test fails on
// any regression. Three operations are gated, all at zero:
//
//   - DisabledPhase: one rma phase (ring exchange) with no tracer — the
//     permanent emit sites in the hot path must cost nothing when off.
//   - TracedPhase: the same phase with a Recorder installed — enabled
//     tracing is ring writes into preallocated buffers, not allocation.
//   - RecorderEmit: one direct Recorder.Emit.

type obsGate struct {
	Gate map[string]float64 `json:"gate"`
}

type benchPayload struct {
	vals []float64
	norm float64
}

// phaseWorld builds a P-rank world running a two-neighbor ring exchange,
// the same shape as rma's own engine benchmark, with tr installed.
func phaseWorld(p int, tr obs.Tracer) (*rma.World, func(rank int)) {
	w := rma.NewWorld(p, rma.DefaultCostModel())
	w.SetTracer(tr)
	payloads := make([][2]benchPayload, p)
	for r := range payloads {
		payloads[r][0].vals = make([]float64, 8)
		payloads[r][1].vals = make([]float64, 8)
	}
	phase := func(rank int) {
		sum := 0.0
		for _, m := range w.Inbox(rank) {
			sum += m.Payload.(*benchPayload).norm
		}
		for d := 0; d < 2; d++ {
			pl := &payloads[rank][d]
			pl.norm = sum + float64(rank+d)
			to := rank + 1
			if d == 1 {
				to = rank - 1 + p
			}
			w.Put(rank, to%p, rma.TagSolve, 8*len(pl.vals)+16, pl)
		}
		w.Charge(rank, 100)
	}
	return w, phase
}

func TestObsAllocGate(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_obs.json")
	if err != nil {
		t.Fatalf("reading BENCH_obs.json: %v", err)
	}
	var g obsGate
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing BENCH_obs.json: %v", err)
	}
	if len(g.Gate) == 0 {
		t.Fatal("BENCH_obs.json has no gate entries")
	}

	const p = 64
	wOff, phaseOff := phaseWorld(p, nil)
	defer wOff.Close()
	// NewRecorderCap big enough that the rings never wrap mid-test; wrap
	// would not allocate either, but keep the measurement simple.
	rec := obs.NewRecorderCap(p, 4096)
	wOn, phaseOn := phaseWorld(p, rec)
	defer wOn.Close()

	e := obs.Event{Kind: obs.KindPut, Rank: 3, A: 4, Tag: 1, I1: 80}
	ops := map[string]func(){
		"DisabledPhase": func() { wOff.RunPhase(phaseOff) },
		"TracedPhase":   func() { wOn.RunPhase(phaseOn) },
		"RecorderEmit":  func() { rec.Emit(e) },
	}
	for name, limit := range g.Gate {
		op, ok := ops[name]
		if !ok {
			t.Errorf("BENCH_obs.json gates unknown operation %q", name)
			continue
		}
		op() // warm once outside the measurement
		if got := testing.AllocsPerRun(20, op); got > limit {
			t.Errorf("%s allocates %.1f/op in steady state, gate is %.0f", name, got, limit)
		}
	}
	for name := range ops {
		if _, ok := g.Gate[name]; !ok {
			t.Errorf("operation %q is not gated by BENCH_obs.json", name)
		}
	}
}

// BenchmarkObs measures the per-phase overhead of tracing: disabled
// (nil tracer) vs a live Recorder, plus the raw Emit cost.
func BenchmarkObs(b *testing.B) {
	for _, mode := range []string{"disabled", "traced"} {
		for _, p := range []int{64, 256} {
			b.Run(fmt.Sprintf("phase/%s/P=%d", mode, p), func(b *testing.B) {
				var tr obs.Tracer
				var rec *obs.Recorder
				if mode == "traced" {
					rec = obs.NewRecorderCap(p, 1024)
					tr = rec
				}
				w, phase := phaseWorld(p, tr)
				defer w.Close()
				w.RunPhase(phase)
				w.RunPhase(phase)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.RunPhase(phase)
				}
			})
		}
	}
	b.Run("emit", func(b *testing.B) {
		rec := obs.NewRecorderCap(4, 1024)
		e := obs.Event{Kind: obs.KindPut, Rank: 1, A: 2, Tag: 1, I1: 80}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Emit(e)
		}
	})
}
