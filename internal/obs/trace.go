package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace-event export. The output is the JSON Object Format of the
// trace-event spec — {"traceEvents": [...], ...} — which loads directly in
// Perfetto and chrome://tracing. Mapping:
//
//   - pid 1 is the whole simulated job; tid = rank for rank tracks and
//     tid = P (one past the last rank) for the "runtime" control track,
//     each named by an "M" thread_name metadata event.
//   - Timestamps are simulated microseconds: the monotone α-β-γ clock in
//     seconds × 1e6. A phase or rank-cost slice becomes an "X" complete
//     event with its charged duration.
//   - Puts, deliveries, decisions, residual sends, watchdog and fault
//     actions become "i" instant events with their details in args.
//   - Each KindStep also becomes a "C" counter event ("resnorm"), so the
//     global residual-norm decay is plottable alongside the timeline.
//
// The writer is hand-rolled fmt.Fprintf, not encoding/json: the event
// stream must be byte-stable across runs and engines for the golden test,
// and encoding/json's map-key ordering and float formatting leave that to
// chance. Floats are formatted with strconv 'g' shortest-round-trip, so
// equal inputs always produce equal bytes.

// trackName returns the display name for a shard index.
func (r *Recorder) trackName(i int) string {
	if i == r.ranks {
		return "runtime"
	}
	return fmt.Sprintf("rank %d", i)
}

// jf formats a float for JSON: shortest round-trip decimal, with the
// non-finite values JSON cannot carry clamped to 0.
func jf(v float64) string {
	if v != v || v > 1.79e308 || v < -1.79e308 {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// usec converts simulated seconds to trace microseconds.
func usec(s float64) string { return jf(s * 1e6) }

var kindNames = [numKinds]string{
	KindPhase:     "phase",
	KindRankCost:  "cost",
	KindPut:       "put",
	KindDeliver:   "deliver",
	KindDecision:  "decision",
	KindResSend:   "res_send",
	KindStep:      "step",
	KindWatchdog:  "watchdog",
	KindFault:     "fault",
	KindActiveSet: "active_set",
}

var faultNames = [...]string{
	FlagFaultDelayed:   "delayed",
	FlagFaultDuped:     "duped",
	FlagFaultReordered: "reordered",
	FlagFaultPaused:    "paused",
}

// WriteTrace writes the retained events as Chrome trace-event JSON. The
// byte output is a pure function of the event stream: identical runs (and
// both world engines) produce identical files.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"southwell/internal/obs\"")
	if r.method != "" {
		fmt.Fprintf(bw, ",\"run\":%q", r.method)
	}
	fmt.Fprintf(bw, "},\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}
	// Process + thread metadata so Perfetto labels the tracks. Sort order
	// keeps ranks ascending with the runtime track last.
	emit(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"southwell sim"}}`)
	for i := 0; i <= r.ranks; i++ {
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, i, r.trackName(i))
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, i, i)
	}
	var scratch []Event
	for i := range r.shards {
		scratch = r.shards[i].events(scratch[:0])
		for _, e := range scratch {
			writeEvent(emit, i, e)
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

func writeEvent(emit func(string, ...any), tid int, e Event) {
	name := "event"
	if e.Kind < numKinds && kindNames[e.Kind] != "" {
		name = kindNames[e.Kind]
	}
	switch e.Kind {
	case KindPhase:
		emit(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":"phase %d","cat":"phase","args":{"phase":%d,"landings":%d,"cost":%s}}`,
			tid, usec(e.Ts-e.Dur), usec(e.Dur), e.Phase, e.Phase, e.I1, jf(e.Dur))
	case KindRankCost:
		emit(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":"cost","cat":"cost","args":{"phase":%d,"flops_cost":%s,"msg_cost":%s,"byte_cost":%s,"sent":%d,"landed":%d,"sent_bytes":%d,"landed_bytes":%d}}`,
			tid, usec(e.Ts-e.Dur), usec(e.Dur), e.Phase, jf(e.V1), jf(e.V2), jf(e.V3), e.A, e.B, e.I1, e.I2)
	case KindPut:
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"put","cat":"msg","args":{"to":%d,"tag":%d,"bytes":%d,"phase":%d}}`,
			tid, usec(e.Ts), e.A, e.Tag, e.I1, e.Phase)
	case KindDeliver:
		dup := ""
		if e.Flag&FlagDup != 0 {
			dup = `,"dup":true`
		}
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"deliver","cat":"msg","args":{"from":%d,"tag":%d,"bytes":%d,"phase":%d%s}}`,
			tid, usec(e.Ts), e.A, e.Tag, e.I1, e.Phase, dup)
	case KindDecision:
		verdict := "hold"
		if e.Flag&FlagRelaxed != 0 {
			verdict = "relax"
		}
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%q,"cat":"decision","args":{"step":%d,"norm":%s,"max_gamma":%s}}`,
			tid, usec(e.Ts), verdict, e.Step, jf(e.V1), jf(e.V2))
	case KindResSend:
		to := strconv.Itoa(int(e.A))
		if e.A < 0 {
			to = `"all"`
		}
		refresh := ""
		if e.Flag&FlagRefresh != 0 {
			refresh = `,"refresh":true`
		}
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"res_send","cat":"residual","args":{"step":%d,"to":%s,"trigger":%s,"norm":%s%s}}`,
			tid, usec(e.Ts), e.Step, to, jf(e.V1), jf(e.V2), refresh)
	case KindStep:
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"g","name":"step %d","cat":"step","args":{"step":%d,"resnorm":%s,"relaxed":%d,"msgs":%d,"bytes":%d}}`,
			tid, usec(e.Ts), e.Step, e.Step, jf(e.V1), e.A, e.I1, e.I2)
		emit(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":"resnorm","args":{"resnorm":%s}}`,
			tid, usec(e.Ts), jf(e.V1))
		emit(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":"active ranks","args":{"relaxed":%d}}`,
			tid, usec(e.Ts), e.A)
	case KindActiveSet:
		emit(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":"active set","args":{"executing":%d,"skipped":%d}}`,
			tid, usec(e.Ts), e.A, e.B)
		emit(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":"skip rate","args":{"rate":%s}}`,
			tid, usec(e.Ts), jf(e.V1))
	case KindWatchdog:
		verdict := "idle"
		if e.Flag == FlagWatchdogStop {
			verdict = "stop"
		}
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"g","name":"watchdog","cat":"watchdog","args":{"step":%d,"verdict":%q,"idle_steps":%d}}`,
			tid, usec(e.Ts), e.Step, verdict, e.A)
	case KindFault:
		kind := "fault"
		if int(e.Flag) < len(faultNames) && faultNames[e.Flag] != "" {
			kind = faultNames[e.Flag]
		}
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"g","name":"fault","cat":"fault","args":{"kind":%q,"from":%d,"to":%d,"phase":%d}}`,
			tid, usec(e.Ts), kind, e.A, e.B, e.Phase)
	default:
		emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%q,"cat":"other","args":{"phase":%d}}`,
			tid, usec(e.Ts), name, e.Phase)
	}
}
