// Package obs is the structured event-tracing and metrics subsystem of the
// simulated distributed runtime: the paper's entire argument is about where
// time and messages go (Table 3's communication breakdown, Table 4's
// per-step costs, Figure 8's scaling crossovers), and this package records
// a per-rank, per-phase timeline of exactly that — who relaxed, who sent an
// explicit residual update, and which rank's γ·flops + α·msgs + β·bytes
// term dominated a step — without perturbing a single bit of the results.
//
// The design follows the always-on-but-free discipline of HPC profilers
// (Score-P, HPCToolkit): the emit sites stay in the hot paths permanently
// and cost nothing when tracing is off. Three properties make that true:
//
//  1. Disabled is a nil check. Producers hold a Tracer interface that is
//     nil when tracing is off; every emit site is `if tr != nil { ... }`.
//     The disabled path is pinned at 0 allocs/op by TestObsAllocGate
//     against BENCH_obs.json, the same gate discipline as
//     BENCH_kernels.json and BENCH_ldl.json.
//
//  2. Enabled is a ring write. The Recorder preallocates one fixed-size
//     ring buffer per simulated rank (plus one control shard for run-level
//     events); recording an Event copies a flat value struct into a slot —
//     no allocation, no locking. When a ring wraps, the oldest events are
//     overwritten and counted as dropped.
//
//  3. Determinism is structural. A rank's shard is written only by that
//     rank's phase function (which both rma engines run identically) or by
//     the driving goroutine between phases, so each shard's event sequence
//     — and therefore every exported byte — is bit-identical under the
//     sequential and worker-pool engines. Timestamps come from the
//     simulated α-β-γ clock, never the wall clock.
//
// Exporters: WriteTrace emits Chrome trace-event JSON (loads directly in
// Perfetto / chrome://tracing, one track per simulated rank plus a runtime
// track), and WriteMetrics emits a plain-text summary with per-step and
// per-rank tables and a stall histogram. See DESIGN.md §11.
package obs

import "math/bits"

// Kind classifies an Event. Per-kind field usage is documented on each
// constant; unused fields are zero.
type Kind uint8

const (
	// KindNone is the zero Kind; the Recorder ignores such events.
	KindNone Kind = iota
	// KindPhase (control shard): one completed access epoch. Dur is the
	// phase's simulated cost (the max over ranks), I1 the landings
	// delivered at its boundary.
	KindPhase
	// KindRankCost (rank shard): one rank's cost in one phase, emitted at
	// the phase boundary for every rank with nonzero activity. Dur is the
	// rank's total charged time (straggler multipliers included); V1, V2,
	// V3 split it into the γ·flops, α·msgs, and β·bytes terms, so the
	// max-over-ranks SimTime winner is attributable. A and B count
	// messages sent and landed; I1 is bytes sent, I2 bytes landed.
	KindRankCost
	// KindPut (rank shard of the sender): one staged one-sided write.
	// A is the target rank, Tag the message tag, I1 the payload bytes.
	KindPut
	// KindDeliver (rank shard of the target): one landing. A is the origin
	// rank, Tag the message tag, I1 the payload bytes; Flag&FlagDup marks
	// a fault-injected duplicate landing.
	KindDeliver
	// KindDecision (rank shard): a per-step relax/hold decision.
	// Flag&FlagRelaxed reports the outcome; V1 is the rank's exact norm,
	// V2 the largest neighbor-norm estimate Γ it compared against.
	KindDecision
	// KindResSend (rank shard): an explicit residual update was written —
	// the Γ̃ > ‖r_p‖ deadlock-risk trigger in Distributed Southwell, the
	// changed-norm announcement in Parallel Southwell. A is the target
	// rank (-1 = all neighbors); V1 is the trigger value (Γ̃, or the newly
	// announced norm), V2 the rank's current norm; Flag&FlagRefresh marks
	// a starvation re-announce under fault injection.
	KindResSend
	// KindStep (control shard): one completed parallel step. Step is the
	// step number, V1 the global residual norm, V2 the cumulative
	// simulated time, A the number of ranks that relaxed, I1 cumulative
	// messages, I2 cumulative bytes.
	KindStep
	// KindWatchdog (control shard): the stagnation watchdog observed an
	// idle step (Flag FlagWatchdogIdle) or stopped the run
	// (FlagWatchdogStop). A is the consecutive-idle count.
	KindWatchdog
	// KindFault (control shard): the fault layer perturbed delivery.
	// Flag is one of FlagFaultDelayed/Duped/Reordered/Paused; A and B are
	// the origin and target ranks where meaningful (for FlagFaultPaused
	// and FlagFaultReordered, A is the affected rank).
	KindFault
	// KindActiveSet (control shard): the active-set step engine's
	// occupancy after one solver step. A is the number of ranks scheduled
	// to execute the step, B the ranks skipped as quiescent, V1 the skip
	// rate B/(A+B). Dense runs emit none.
	KindActiveSet
	numKinds
)

// Flag values, namespaced per Kind (see the Kind constants).
const (
	// FlagDup marks a KindDeliver event for a duplicate landing.
	FlagDup uint8 = 1
	// FlagRelaxed marks a KindDecision whose rank relaxed.
	FlagRelaxed uint8 = 1
	// FlagRefresh marks a KindResSend caused by starvation re-announce.
	FlagRefresh uint8 = 2
	// Watchdog flags.
	FlagWatchdogIdle uint8 = 1
	FlagWatchdogStop uint8 = 2
	// Fault flags.
	FlagFaultDelayed   uint8 = 1
	FlagFaultDuped     uint8 = 2
	FlagFaultReordered uint8 = 3
	FlagFaultPaused    uint8 = 4
)

// ControlRank is the Event.Rank value for run-level events that belong to
// no simulated rank (phase boundaries, step records, watchdog and fault
// actions). They are exported on their own "runtime" track.
const ControlRank int32 = -1

// Event is one structured trace record. It is a flat value type — no
// pointers — so recording one is a single copy into a preallocated ring
// slot. Field meaning is per Kind; Ts and Dur are simulated seconds on the
// monotone world clock (rma.World.Now), never wall-clock time.
type Event struct {
	Ts         float64 // simulated seconds at emit (monotone, survives ResetStats)
	Dur        float64 // simulated seconds, for slice-like kinds
	V1, V2, V3 float64 // kind-specific values
	I1, I2     int64   // kind-specific counters (bytes, cumulative messages)
	Phase      int64   // world phase index at emit
	Step       int32   // parallel step (0 for rma-level events)
	Rank       int32   // owning track: a rank id, or ControlRank
	A, B       int32   // kind-specific ranks/counts
	Kind       Kind
	Tag        uint8 // rma message tag for KindPut/KindDeliver
	Flag       uint8 // kind-specific flag bits
}

// Tracer receives structured events from the runtime. A nil Tracer means
// tracing is disabled; every emit site guards with a nil check, so the
// disabled path costs one predictable branch and zero allocations.
//
// Concurrency contract (what makes *Recorder lock-free): an event with
// Rank = p is emitted only from rank p's phase function or from the
// driving goroutine between phases; ControlRank events only from the
// driving goroutine. Implementations may rely on this.
type Tracer interface {
	Emit(e Event)
}

// shard is one preallocated ring buffer. buf has its full capacity from
// construction; n counts all events ever emitted, so the write position is
// n % len(buf) and the oldest max(0, n-len(buf)) events have been dropped.
type shard struct {
	buf []Event
	n   int
}

func (s *shard) emit(e Event) {
	s.buf[s.n%len(s.buf)] = e
	s.n++
}

// events appends the shard's retained events, oldest first, to out.
func (s *shard) events(out []Event) []Event {
	c := len(s.buf)
	if s.n <= c {
		return append(out, s.buf[:s.n]...)
	}
	w := s.n % c
	out = append(out, s.buf[w:]...)
	return append(out, s.buf[:w]...)
}

func (s *shard) dropped() int64 {
	if d := s.n - len(s.buf); d > 0 {
		return int64(d)
	}
	return 0
}

// stallBuckets is the size of the power-of-two stall histogram: bucket k
// counts completed hold streaks of length in [2^k, 2^(k+1)).
const stallBuckets = 16

// RankTally is the per-rank aggregate a Recorder maintains incrementally
// on every emit. Unlike the rings, tallies never drop: they are exact for
// the whole run regardless of ring capacity.
type RankTally struct {
	Puts      int64 // one-sided writes staged
	PutBytes  int64
	Recvs     int64 // landings in this rank's window (duplicates included)
	RecvBytes int64
	Relaxed   int64 // steps this rank relaxed
	Held      int64 // steps this rank held
	ResSends  int64 // explicit residual updates written
	CostFlops float64
	CostMsgs  float64
	CostBytes float64
	Cost      float64 // total charged simulated seconds (straggler-adjusted)
	MaxStall  int64   // longest completed-or-ongoing hold streak
	curStall  int64
	Stalls    [stallBuckets]int64 // completed hold streaks, bucketed by bit length
}

// stepRecord is one per-step metrics row, appended on KindStep.
type stepRecord struct {
	step    int32
	resNorm float64
	simTime float64
	relaxed int32
	msgs    int64
	bytes   int64
}

// activeRecord is one per-step active-set occupancy row, appended on
// KindActiveSet (dense runs emit none, so the table stays empty).
type activeRecord struct {
	step      int32
	executing int32
	skipped   int32
}

// PoolStats is a snapshot of the shared kernel pool's occupancy counters,
// surfaced in the metrics summary (set it with SetPool; see
// parallel.Pool.Stats). Regions and blocks are pure functions of the
// workload, so they are deterministic for any pool width.
type PoolStats struct {
	Regions int64 // parallel regions executed
	Blocks  int64 // blocks executed across all regions
	Width   int   // executor slots, including the submitting goroutine
}

// DefaultShardCap is the per-rank ring capacity of NewRecorder. The
// control shard gets four times this (it also absorbs fault events, which
// scale with traffic rather than with one rank's activity).
const DefaultShardCap = 4096

// Recorder is the preallocated ring-buffer Tracer. The zero value is not
// usable; construct with NewRecorder. A nil *Recorder is a valid no-op
// Tracer (every method is nil-safe), so callers can thread a possibly-nil
// recorder without wrapping it.
type Recorder struct {
	ranks   int
	shards  []shard // [0..ranks-1] per rank, [ranks] control
	tally   []RankTally
	steps   []stepRecord
	actives []activeRecord
	pool    PoolStats
	method  string // optional run label for the exporters
}

// NewRecorder creates a recorder for a world of p ranks with
// DefaultShardCap events of capacity per rank.
func NewRecorder(p int) *Recorder { return NewRecorderCap(p, DefaultShardCap) }

// NewRecorderCap creates a recorder with perRank ring capacity per rank
// shard (minimum 16); the control shard gets 4× that. All buffers are
// allocated here — recording never allocates.
func NewRecorderCap(p, perRank int) *Recorder {
	if p < 1 {
		p = 1
	}
	if perRank < 16 {
		perRank = 16
	}
	r := &Recorder{
		ranks:   p,
		shards:  make([]shard, p+1),
		tally:   make([]RankTally, p),
		steps:   make([]stepRecord, 0, 256),
		actives: make([]activeRecord, 0, 256),
	}
	for i := 0; i < p; i++ {
		r.shards[i].buf = make([]Event, perRank)
	}
	r.shards[p].buf = make([]Event, 4*perRank)
	return r
}

// SetLabel attaches a human-readable run label (method/matrix) shown in
// the exporter headers.
func (r *Recorder) SetLabel(label string) {
	if r == nil {
		return
	}
	r.method = label
}

// SetPool records a kernel-pool occupancy snapshot for the metrics
// summary. Call it after the run with the delta of parallel.Pool.Stats.
func (r *Recorder) SetPool(ps PoolStats) {
	if r == nil {
		return
	}
	r.pool = ps
}

// Ranks returns the number of rank tracks (excluding the control track).
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return r.ranks
}

// shardFor maps an event rank to its shard index: out-of-range ranks
// (including ControlRank) land on the control shard.
func (r *Recorder) shardFor(rank int32) int {
	if rank < 0 || int(rank) >= r.ranks {
		return r.ranks
	}
	return int(rank)
}

// Emit records one event: a ring write plus an incremental tally update.
// Nil-safe and allocation-free. See Tracer for the concurrency contract.
//
//dslint:hotpath
func (r *Recorder) Emit(e Event) {
	if r == nil || e.Kind == KindNone {
		return
	}
	r.shards[r.shardFor(e.Rank)].emit(e)
	if e.Kind == KindStep {
		//dslint:ignore hotalloc one row per solver step into a 256-cap preallocated table; growth is rare and amortized
		r.steps = append(r.steps, stepRecord{
			step:    e.Step,
			resNorm: e.V1,
			simTime: e.V2,
			relaxed: e.A,
			msgs:    e.I1,
			bytes:   e.I2,
		})
		return
	}
	if e.Kind == KindActiveSet {
		//dslint:ignore hotalloc one row per solver step into a 256-cap preallocated table; growth is rare and amortized
		r.actives = append(r.actives, activeRecord{step: e.Step, executing: e.A, skipped: e.B})
		return
	}
	if e.Rank < 0 || int(e.Rank) >= r.ranks {
		// Control and out-of-range events carry no per-rank tally; they
		// were still retained on the control ring above.
		return
	}
	t := &r.tally[e.Rank]
	switch e.Kind {
	case KindPut:
		t.Puts++
		t.PutBytes += e.I1
	case KindDeliver:
		t.Recvs++
		t.RecvBytes += e.I1
	case KindRankCost:
		t.CostFlops += e.V1
		t.CostMsgs += e.V2
		t.CostBytes += e.V3
		t.Cost += e.Dur
	case KindDecision:
		if e.Flag&FlagRelaxed != 0 {
			t.Relaxed++
			if t.curStall > 0 {
				b := bits.Len64(uint64(t.curStall)) - 1
				if b >= stallBuckets {
					b = stallBuckets - 1
				}
				t.Stalls[b]++
				t.curStall = 0
			}
		} else {
			t.Held++
			t.curStall++
			if t.curStall > t.MaxStall {
				t.MaxStall = t.curStall
			}
		}
	case KindResSend:
		t.ResSends++
	}
}

// Dropped returns the total number of events lost to ring wrap-around
// across all shards. The per-rank tallies and the per-step table are exact
// even when events were dropped.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var d int64
	for i := range r.shards {
		d += r.shards[i].dropped()
	}
	return d
}

// Events returns all retained events in canonical export order: rank
// shards ascending, control shard last, chronological within each shard.
// This order is identical under both world engines (see the package
// comment), which is what makes the trace export golden-testable.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	n := 0
	for i := range r.shards {
		if c := r.shards[i].n; c < len(r.shards[i].buf) {
			n += c
		} else {
			n += len(r.shards[i].buf)
		}
	}
	out := make([]Event, 0, n)
	for i := range r.shards {
		out = r.shards[i].events(out)
	}
	return out
}

// Tally returns a copy of rank p's aggregate counters, with any ongoing
// hold streak folded into the histogram.
func (r *Recorder) Tally(p int) RankTally {
	if r == nil || p < 0 || p >= r.ranks {
		return RankTally{}
	}
	t := r.tally[p]
	foldStall(&t)
	return t
}

// foldStall folds an ongoing hold streak into the completed histogram so
// exports taken mid-run (or of runs ending in a stall) count it.
func foldStall(t *RankTally) {
	if t.curStall > 0 {
		b := bits.Len64(uint64(t.curStall)) - 1
		if b >= stallBuckets {
			b = stallBuckets - 1
		}
		t.Stalls[b]++
		t.curStall = 0
	}
}
