package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Plain-text metrics export: a run summary, a per-step table (messages,
// bytes, active fraction), a per-rank table with the cost-term breakdown
// that attributes the SimTime winner, and a stall histogram. The tables
// are built from the incremental tallies and per-step records, which are
// exact even when the event rings wrapped. Like the trace exporter, the
// byte output is a pure function of the recorded stream, so it is stable
// across runs and engines.

// WriteMetrics writes the plain-text metrics summary.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# obs metrics: tracing disabled\n")
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# obs metrics")
	if r.method != "" {
		fmt.Fprintf(bw, " — %s", r.method)
	}
	fmt.Fprintf(bw, "\n")

	// Run summary from the exact tallies.
	var puts, putBytes, recvs, recvBytes, resSends, relaxed, held int64
	for p := 0; p < r.ranks; p++ {
		t := r.tally[p]
		puts += t.Puts
		putBytes += t.PutBytes
		recvs += t.Recvs
		recvBytes += t.RecvBytes
		resSends += t.ResSends
		relaxed += t.Relaxed
		held += t.Held
	}
	fmt.Fprintf(bw, "ranks %d  steps %d  msgs %d  bytes %d  landings %d  landed_bytes %d  res_sends %d\n",
		r.ranks, len(r.steps), puts, putBytes, recvs, recvBytes, resSends)
	if decisions := relaxed + held; decisions > 0 {
		fmt.Fprintf(bw, "relax decisions %d/%d (active fraction %.4f)\n",
			relaxed, decisions, float64(relaxed)/float64(decisions))
	}
	if n := len(r.steps); n > 0 {
		last := r.steps[n-1]
		fmt.Fprintf(bw, "final: step %d  resnorm %.6e  simtime %.6e\n", last.step, last.resNorm, last.simTime)
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(bw, "events dropped to ring wrap: %d (tallies and tables remain exact)\n", d)
	}
	if r.pool.Regions > 0 {
		fmt.Fprintf(bw, "kernel pool: %d regions, %d blocks, width %d\n",
			r.pool.Regions, r.pool.Blocks, r.pool.Width)
	}

	// Per-step table. Message/byte columns are per-step deltas of the
	// cumulative counters carried on KindStep.
	if len(r.steps) > 0 {
		fmt.Fprintf(bw, "\n# per-step\n")
		fmt.Fprintf(bw, "%6s %14s %14s %8s %8s %10s %12s\n",
			"step", "resnorm", "simtime", "relaxed", "active", "msgs", "bytes")
		var prevMsgs, prevBytes int64
		for _, s := range r.steps {
			fmt.Fprintf(bw, "%6d %14.6e %14.6e %8d %8.4f %10d %12d\n",
				s.step, s.resNorm, s.simTime, s.relaxed,
				float64(s.relaxed)/float64(r.ranks), s.msgs-prevMsgs, s.bytes-prevBytes)
			prevMsgs, prevBytes = s.msgs, s.bytes
		}
	}

	// Active-set engine occupancy: per-step executing/skipped counts and
	// the mean skip rate. Empty for dense runs (no engine to observe).
	if len(r.actives) > 0 {
		var exec, skip int64
		for _, a := range r.actives {
			exec += int64(a.executing)
			skip += int64(a.skipped)
		}
		fmt.Fprintf(bw, "\n# active set (mean executing %.1f/%d, mean skip rate %.4f)\n",
			float64(exec)/float64(len(r.actives)), r.ranks,
			float64(skip)/float64(exec+skip))
		fmt.Fprintf(bw, "%6s %10s %10s %10s\n", "step", "executing", "skipped", "skip_rate")
		for _, a := range r.actives {
			fmt.Fprintf(bw, "%6d %10d %10d %10.4f\n",
				a.step, a.executing, a.skipped,
				float64(a.skipped)/float64(a.executing+a.skipped))
		}
	}

	// Per-rank table with the α-β-γ cost split: the rank whose `cost`
	// column is largest is the one that set SimTime most often.
	fmt.Fprintf(bw, "\n# per-rank\n")
	fmt.Fprintf(bw, "%6s %8s %8s %8s %8s %8s %12s %12s %12s %12s %10s\n",
		"rank", "relaxed", "held", "puts", "recvs", "res_snd", "flops_cost", "msg_cost", "byte_cost", "cost", "max_stall")
	for p := 0; p < r.ranks; p++ {
		t := r.Tally(p)
		fmt.Fprintf(bw, "%6d %8d %8d %8d %8d %8d %12.4e %12.4e %12.4e %12.4e %10d\n",
			p, t.Relaxed, t.Held, t.Puts, t.Recvs, t.ResSends,
			t.CostFlops, t.CostMsgs, t.CostBytes, t.Cost, t.MaxStall)
	}

	// Stall histogram: completed hold streaks across all ranks, bucketed
	// by power of two. Long tails here are the paper's deadlock-avoidance
	// story made visible.
	var hist [stallBuckets]int64
	any := false
	for p := 0; p < r.ranks; p++ {
		t := r.Tally(p)
		for b, c := range t.Stalls {
			hist[b] += c
			if c > 0 {
				any = true
			}
		}
	}
	if any {
		fmt.Fprintf(bw, "\n# stall histogram (hold-streak length → count)\n")
		for b, c := range hist {
			if c == 0 {
				continue
			}
			lo := int64(1) << b
			hi := lo*2 - 1
			if lo == hi {
				fmt.Fprintf(bw, "%6d        %8d\n", lo, c)
			} else {
				fmt.Fprintf(bw, "%6d-%-6d %8d\n", lo, hi, c)
			}
		}
	}
	return bw.Flush()
}
