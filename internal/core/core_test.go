package core

import (
	"math"
	"testing"

	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func TestPrepareNormalizes(t *testing.T) {
	a := problem.Poisson2D(12, 12)
	b, x, err := Prepare(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.At(5, 5); math.Abs(d-1) > 1e-12 {
		t.Errorf("diag = %g after Prepare", d)
	}
	r := make([]float64, a.N)
	a.Residual(b, x, r)
	if n := sparse.Norm2(r); math.Abs(n-1) > 1e-12 {
		t.Errorf("‖r0‖ = %g", n)
	}
}

func TestSolveScalarAllMethods(t *testing.T) {
	for _, m := range ScalarMethods() {
		a := problem.Poisson2D(15, 15)
		b, x, err := Prepare(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := SolveScalar(a, b, x, ScalarOptions{Method: m, MaxRelax: 2 * a.N})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if tr.Final().ResNorm >= 1 {
			t.Errorf("%s made no progress", m)
		}
	}
	if _, _, err := SolveScalar(nil, nil, nil, ScalarOptions{Method: "nope"}); err == nil {
		t.Error("unknown scalar method accepted")
	}
}

func TestSolveDistributedMethods(t *testing.T) {
	for _, m := range []DistMethod{BlockJacobi, ParallelSWD, DistSWD, Piggyback2016} {
		a := problem.Poisson2D(16, 16)
		b, x, err := Prepare(a, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveDistributed(a, b, x, DistOptions{Method: m, Ranks: 8, Steps: 10})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.History) == 0 || res.P != 8 {
			t.Errorf("%s: bad result shape", m)
		}
	}
	a := problem.Poisson2D(8, 8)
	b, x, _ := Prepare(a, 4)
	if _, err := SolveDistributed(a, b, x, DistOptions{Method: "nope", Ranks: 4}); err == nil {
		t.Error("unknown distributed method accepted")
	}
	if _, err := SolveDistributed(a, b, x, DistOptions{Method: DistSWD}); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestSolveDistributedCustomPartition(t *testing.T) {
	a := problem.Poisson2D(10, 10)
	b, x, err := Prepare(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int, a.N)
	for i := range part {
		part[i] = i % 4
	}
	res, err := SolveDistributed(a, b, x, DistOptions{Method: DistSWD, Ranks: 4, Steps: 5, Part: part})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final().Step != 5 {
		t.Errorf("steps = %d", res.Final().Step)
	}
}

func TestParseDistMethod(t *testing.T) {
	cases := map[string]DistMethod{
		"bj": BlockJacobi, "blockjacobi": BlockJacobi,
		"ps": ParallelSWD, "sos_ps": ParallelSWD,
		"ds": DistSWD, "sos_sds": DistSWD, "distsw": DistSWD,
		"pb16": Piggyback2016,
	}
	for s, want := range cases {
		got, err := ParseDistMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseDistMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistMethod("zzz"); err == nil {
		t.Error("bad method accepted")
	}
}
