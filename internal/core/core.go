// Package core is the public API of the Distributed Southwell library. It
// ties the substrates together behind two entry points:
//
//   - SolveScalar runs the shared-memory scalar methods of the paper's §2
//     and §3 (Jacobi, Gauss-Seidel, Multicolor Gauss-Seidel, Sequential /
//     Parallel / Distributed Southwell) and returns a per-step convergence
//     trace.
//
//   - SolveDistributed partitions the problem over simulated ranks and runs
//     the paper's distributed block methods (Block Jacobi, Parallel
//     Southwell, Distributed Southwell, and the deadlock-prone 2016
//     piggyback variant) over the one-sided RMA runtime, returning
//     convergence history, message counts split by kind, and simulated
//     wall-clock time.
//
// Problems come from the synthetic suite (problem.Suite), the generators in
// internal/problem, or any symmetric positive definite matrix supplied by
// the caller (e.g. read with sparse.ReadMatrixMarket).
package core

import (
	"fmt"

	"southwell/internal/dmem"
	"southwell/internal/obs"
	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/rma"
	"southwell/internal/solvers"
	"southwell/internal/sparse"
)

// ScalarMethod selects a shared-memory method for SolveScalar.
type ScalarMethod string

// Scalar methods.
const (
	Jacobi        ScalarMethod = "jacobi"
	GaussSeidel   ScalarMethod = "gs"
	MulticolorGS  ScalarMethod = "mcgs"
	SequentialSW  ScalarMethod = "sw"
	ParallelSW    ScalarMethod = "psw"
	DistributedSW ScalarMethod = "dsw"
)

// ScalarMethods lists all scalar methods in presentation order.
func ScalarMethods() []ScalarMethod {
	return []ScalarMethod{GaussSeidel, SequentialSW, ParallelSW, MulticolorGS, Jacobi, DistributedSW}
}

// DistMethod selects a distributed method for SolveDistributed.
type DistMethod string

// Distributed methods. The artifact's solver names are accepted as
// aliases by ParseDistMethod.
const (
	BlockJacobi   DistMethod = "bj"
	ParallelSWD   DistMethod = "ps"
	DistSWD       DistMethod = "ds"
	Piggyback2016 DistMethod = "pb16"
)

// ParseDistMethod resolves a method name or artifact alias ("sos_sds" is
// the artifact's flag value for Distributed Southwell).
func ParseDistMethod(s string) (DistMethod, error) {
	switch s {
	case "bj", "jacobi", "blockjacobi":
		return BlockJacobi, nil
	case "ps", "parsw", "sos_ps":
		return ParallelSWD, nil
	case "ds", "distsw", "sos_sds":
		return DistSWD, nil
	case "pb16", "piggyback":
		return Piggyback2016, nil
	}
	return "", fmt.Errorf("core: unknown distributed method %q", s)
}

// Prepare symmetrically scales a to unit diagonal (in place) and builds the
// paper's standard test setup: random x with b = 0 and ‖r⁰‖₂ = 1.
// It returns b and x.
func Prepare(a *sparse.CSR, seed int64) (b, x []float64, err error) {
	if _, err := sparse.Scale(a); err != nil {
		return nil, nil, err
	}
	b, x = problem.ZeroBSystem(a, seed)
	return b, x, nil
}

// ScalarOptions configures SolveScalar.
type ScalarOptions struct {
	Method     ScalarMethod
	MaxRelax   int     // 0 = one sweep (n relaxations)
	MaxSteps   int     // 0 = unlimited
	TargetNorm float64 // 0 = none
}

// SolveScalar runs a scalar method on A x = b, updating x in place, and
// returns the convergence trace (plus message statistics for Distributed
// Southwell; zero for other methods).
func SolveScalar(a *sparse.CSR, b, x []float64, opt ScalarOptions) (*solvers.Trace, solvers.DistStats, error) {
	sopt := solvers.Options{MaxRelax: opt.MaxRelax, MaxSteps: opt.MaxSteps, TargetNorm: opt.TargetNorm}
	switch opt.Method {
	case Jacobi:
		return solvers.Jacobi(a, b, x, sopt), solvers.DistStats{}, nil
	case GaussSeidel:
		return solvers.GaussSeidel(a, b, x, sopt), solvers.DistStats{}, nil
	case MulticolorGS:
		return solvers.MulticolorGS(a, b, x, sopt), solvers.DistStats{}, nil
	case SequentialSW:
		return solvers.SequentialSouthwell(a, b, x, sopt), solvers.DistStats{}, nil
	case ParallelSW:
		return solvers.ParallelSouthwell(a, b, x, sopt), solvers.DistStats{}, nil
	case DistributedSW:
		tr, st := solvers.DistributedSouthwell(a, b, x, sopt)
		return tr, st, nil
	}
	return nil, solvers.DistStats{}, fmt.Errorf("core: unknown scalar method %q", opt.Method)
}

// DistOptions configures SolveDistributed.
type DistOptions struct {
	Method DistMethod
	// Ranks is the number of simulated MPI processes.
	Ranks int
	// Steps is the parallel-step budget (0 = 50, the paper's default).
	Steps int
	// Target stops early at this residual norm (0 = run all steps).
	Target float64
	// PartSeed seeds the multilevel partitioner.
	PartSeed int64
	// Model overrides the α-β-γ cost model (nil = default). An explicit
	// &rma.CostModel{} is honored as genuinely free communication.
	Model *rma.CostModel
	// Parallel runs simulated ranks on the persistent worker-pool engine
	// (bit-identical results to the sequential engine).
	Parallel bool
	// Sched selects the pool engine's epoch discipline: rma.SchedBarrier
	// (default, global barrier per phase) or rma.SchedNeighbor
	// (per-neighborhood epoch completion, MPI PSCW-style; needs Parallel).
	// Results are bit-identical either way.
	Sched rma.Sched
	// Part, when non-nil, is a caller-provided partition (length n, values
	// in [0, Ranks)); otherwise the multilevel partitioner is used.
	Part []int
	// Setup, when non-nil, supplies the shared preprocessing of this
	// (matrix, partition, local solver) — layout plus local factorizations
	// (dmem.NewSetup) — so repeated runs skip partitioning and
	// factorization. Its layout must have been built for a and Ranks with
	// this exact Local mode; mismatches are rejected. When set, Part and
	// PartSeed are ignored (the setup's layout already fixes the
	// partition).
	Setup *dmem.Setup
	// Local selects the subdomain solver: dmem.LocalGS (default, one
	// Gauss-Seidel sweep — the paper's setting) or dmem.LocalDirect (exact
	// dense solve, the artifact's PARDISO option).
	Local dmem.LocalSolver
	// Faults, when non-nil, installs deterministic fault injection on the
	// simulated runtime (delays, duplicates, reordering, stragglers, rank
	// pauses — see rma.FaultPlan). Nil is a perfect network.
	Faults *rma.FaultPlan
	// Watchdog overrides the stagnation-watchdog patience window in
	// parallel steps (0 = dmem's default of 10).
	Watchdog int
	// Dense disables the active-set step engine and runs every rank every
	// phase (the zero value steps actively, which is bit-identical; see
	// dmem.Config.Dense). Diagnostic — results never depend on it.
	Dense bool
	// Trace, when non-nil, receives structured runtime and algorithm
	// events (see internal/obs). Tracing never changes results.
	Trace obs.Tracer
}

// SolveDistributed partitions A over opt.Ranks simulated processes and runs
// the selected distributed method. The returned result carries the per-step
// history, communication statistics, and the gathered solution.
func SolveDistributed(a *sparse.CSR, b, x []float64, opt DistOptions) (*dmem.Result, error) {
	if opt.Ranks <= 0 {
		return nil, fmt.Errorf("core: Ranks = %d, want >= 1", opt.Ranks)
	}
	var l *dmem.Layout
	if s := opt.Setup; s != nil {
		if s.Layout.A != a {
			return nil, fmt.Errorf("core: Setup was built for a different matrix")
		}
		if s.Layout.P != opt.Ranks {
			return nil, fmt.Errorf("core: Setup has %d ranks, want %d", s.Layout.P, opt.Ranks)
		}
		if s.Local != opt.Local {
			return nil, fmt.Errorf("core: Setup was built for local solver %v, want %v", s.Local, opt.Local)
		}
		l = s.Layout
	} else {
		part := opt.Part
		if part == nil {
			part = partition.Partition(a, opt.Ranks, partition.Options{Seed: opt.PartSeed})
		}
		var err error
		l, err = dmem.NewLayout(a, part, opt.Ranks)
		if err != nil {
			return nil, err
		}
	}
	cfg := dmem.Config{
		Steps: opt.Steps, Target: opt.Target, Model: opt.Model,
		Parallel: opt.Parallel, Sched: opt.Sched, Setup: opt.Setup,
		Local: opt.Local, Dense: opt.Dense,
		Faults: opt.Faults, Watchdog: opt.Watchdog, Trace: opt.Trace,
	}
	switch opt.Method {
	case BlockJacobi:
		return dmem.BlockJacobi(l, b, x, cfg), nil
	case ParallelSWD:
		return dmem.ParallelSouthwell(l, b, x, cfg), nil
	case DistSWD:
		return dmem.DistributedSouthwell(l, b, x, cfg), nil
	case Piggyback2016:
		return dmem.Piggyback2016(l, b, x, cfg), nil
	}
	return nil, fmt.Errorf("core: unknown distributed method %q", opt.Method)
}
