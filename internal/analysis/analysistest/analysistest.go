// Package analysistest runs framework analyzers over small fixture
// packages and checks their diagnostics against // want comments, playing
// the role of golang.org/x/tools/go/analysis/analysistest for dslint's
// offline, stdlib-only analysis framework.
//
// Fixtures live under <testdata>/src/<importpath>/*.go, GOPATH-style. A
// fixture file marks each line that must produce a diagnostic with a
// trailing comment of the form
//
//	// want "regexp"
//	// want "first" "second"        (two diagnostics on one line)
//
// Every diagnostic must be matched by a want and every want by a
// diagnostic; mismatches fail the test with positions. Fixture packages may
// import sibling fixtures (resolved under testdata/src) and the standard
// library (resolved through compiler export data, like the main loader).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"southwell/internal/analysis/framework"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package and checks a's diagnostics against the
// fixture's want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*framework.Package{},
	}
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := framework.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on fixture %s: %v", a.Name, path, err)
		}
		check(t, pkg, diags)
	}
}

// RunSuite runs a sequence of analyzers — fact producers and consumers —
// over the fixture packages and their fixture dependencies, sharing one
// fact store, exactly as the driver does. Packages run in dependency order
// (a fixture's imports are analyzed before it), analyzers in the given
// order per package, and // want comments are checked in every loaded
// package, so cross-package expectations (a dependency's wants alongside
// the importer's) work. Returns the fact store for programmatic assertions
// on exported facts.
func RunSuite(t *testing.T, testdata string, analyzers []*framework.Analyzer, paths ...string) *framework.FactStore {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*framework.Package{},
	}
	for _, path := range paths {
		if _, err := l.load(path); err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
	}
	facts := framework.NewFactStore()
	diagsByPkg := map[string][]framework.Diagnostic{}
	for _, path := range l.order {
		pkg := l.pkgs[path]
		for _, a := range analyzers {
			diags, err := framework.RunWithFacts(a, pkg, facts)
			if err != nil {
				t.Fatalf("running %s on fixture %s: %v", a.Name, path, err)
			}
			diagsByPkg[path] = append(diagsByPkg[path], diags...)
		}
	}
	for _, path := range l.order {
		check(t, l.pkgs[path], diagsByPkg[path])
	}
	return facts
}

// Diagnostics runs the analyzer sequence exactly like RunSuite — shared
// fact store, dependency order — but returns the diagnostics of the named
// path instead of checking // want comments. Tests that assert on
// suggested fixes or message details programmatically use this (with
// fixtures copied to a temp dir first when fixes will be applied: edit
// offsets address the analyzed files on disk).
func Diagnostics(t *testing.T, testdata string, analyzers []*framework.Analyzer, path string) []framework.Diagnostic {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*framework.Package{},
	}
	if _, err := l.load(path); err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	facts := framework.NewFactStore()
	var out []framework.Diagnostic
	for _, p := range l.order {
		pkg := l.pkgs[p]
		for _, a := range analyzers {
			diags, err := framework.RunWithFacts(a, pkg, facts)
			if err != nil {
				t.Fatalf("running %s on fixture %s: %v", a.Name, p, err)
			}
			if p == path {
				out = append(out, diags...)
			}
		}
	}
	return out
}

// loader type-checks fixture packages, memoized, resolving fixture imports
// under testdata/src and everything else through export data.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*framework.Package
	order    []string // load completion order: dependencies first
	std      types.Importer
}

func (l *loader) srcDir(path string) string {
	return filepath.Join(l.testdata, "src", filepath.FromSlash(path))
}

func (l *loader) isFixture(path string) bool {
	names, err := goFileNames(l.srcDir(path))
	return err == nil && len(names) > 0
}

func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (l *loader) load(path string) (*framework.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	names, err := goFileNames(l.srcDir(path))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, l.srcDir(path))
	}
	files, srcs, err := framework.ParseFixture(l.fset, l.srcDir(path), names)
	if err != nil {
		return nil, err
	}
	// Resolve fixture imports first (recursively), then type-check with a
	// combined importer so both fixture and stdlib imports resolve.
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isFixture(ip) {
				if _, err := l.load(ip); err != nil {
					return nil, err
				}
			}
		}
	}
	if l.std == nil {
		if l.std, err = l.stdImporter(files); err != nil {
			return nil, err
		}
	}
	pkg, err := framework.CheckFiles(path, l.fset, files, srcs, importerFunc(func(ip string) (*types.Package, error) {
		if dep, ok := l.pkgs[ip]; ok {
			return dep.Types, nil
		}
		return l.std.Import(ip)
	}))
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

// stdImporter builds the export-data importer over the stdlib closure of
// every import mentioned anywhere under testdata/src (one `go list` run
// covers all fixtures of the suite).
func (l *loader) stdImporter(_ []*ast.File) (types.Importer, error) {
	std := map[string]bool{}
	root := filepath.Join(l.testdata, "src")
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for _, ip := range importPaths(string(src)) {
			if !l.isFixture(ip) {
				std[ip] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	args := make([]string, 0, len(std))
	for ip := range std {
		args = append(args, ip)
	}
	sort.Strings(args)
	table := framework.ExportTable{}
	if len(args) > 0 {
		if table, err = framework.LoadExportTable(l.testdata, args...); err != nil {
			return nil, err
		}
	}
	return table.NewImporter(l.fset), nil
}

// importPaths extracts import paths from source text without a full parse
// (fixtures are tiny; a real parse happens at load time).
var importRE = regexp.MustCompile(`(?m)^\s*(?:import\s+)?(?:[\w.]+\s+)?"([^"]+)"`)

func importPaths(src string) []string {
	var out []string
	for _, m := range importRE.FindAllStringSubmatch(src, -1) {
		out = append(out, m[1])
	}
	return out
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var strRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants extracts want expectations from a package's comments.
func collectWants(t *testing.T, pkg *framework.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := strRE.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// check matches diagnostics against wants 1:1 by file and line.
func check(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
diag:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue diag
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
