// Package phaseabsorb flags step loops that run simulator phases without
// draining the rank windows in the same iteration.
//
// Every dmem method must absorb its inbox each phase: residual deltas are
// additive and commute under reordering, so the methods stay exact under
// fault injection only if every landed message is read before the next
// decision (paper §3; DESIGN.md §8). A RunPhase call inside a step loop
// whose phase function never reads World.Inbox — directly or through a
// local absorb closure — leaves landed deltas unread for a full step,
// silently desynchronizing the Γ/Γ̃ bookkeeping. Setup phases outside
// loops are exempt (initial exchanges legitimately precede any inbox).
package phaseabsorb

import (
	"go/ast"
	"go/types"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the phaseabsorb check.
var Analyzer = &framework.Analyzer{
	Name: "phaseabsorb",
	Doc: "flag RunPhase calls in step loops whose phase function never drains " +
		"the inbox (World.Inbox) in the same iteration",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		draining := drainingFuncs(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || lintutil.WorldMethod(pass.TypesInfo, call, "RunPhase") == nil {
					return true
				}
				if len(call.Args) == 1 && phaseDrains(pass, call.Args[0], draining) {
					return true
				}
				pass.Reportf(call.Pos(),
					"RunPhase in a step loop with a phase function that never drains the inbox; absorb World.Inbox in the same iteration so residual deltas stay exact")
				return true
			})
			return true
		})
	}
	return nil
}

// phaseDrains reports whether the phase-function argument drains the
// inbox: a func literal that reads Inbox or calls a draining function, or
// an identifier bound to one.
func phaseDrains(pass *framework.Pass, arg ast.Expr, draining map[types.Object]bool) bool {
	switch a := arg.(type) {
	case *ast.FuncLit:
		return drains(pass, a.Body, draining)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[a]; obj != nil {
			return draining[obj]
		}
	}
	return false
}

// drainingFuncs collects the objects of functions whose bodies drain the
// inbox, iterating to a fixed point so closures that delegate to other
// draining closures are recognized.
func drainingFuncs(pass *framework.Pass, f *ast.File) map[types.Object]bool {
	type binding struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var bindings []binding
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(d.Lhs) {
					continue
				}
				if id, ok := d.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						bindings = append(bindings, binding{obj, lit.Body})
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						bindings = append(bindings, binding{obj, lit.Body})
					}
				}
			}
		case *ast.FuncDecl:
			if d.Body != nil {
				if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
					bindings = append(bindings, binding{obj, d.Body})
				}
			}
		}
		return true
	})
	draining := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for _, b := range bindings {
			if !draining[b.obj] && drains(pass, b.body, draining) {
				draining[b.obj] = true
				changed = true
			}
		}
	}
	return draining
}

// drains reports whether node contains a World.Inbox read or a call to a
// known draining function.
func drains(pass *framework.Pass, node ast.Node, draining map[types.Object]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lintutil.WorldMethod(pass.TypesInfo, call, "Inbox") != nil {
			found = true
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && draining[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
