// Fixture: a miniature of the real rma runtime — the phase engine surface
// phaseabsorb inspects.
package rma

// Message is one landed Put.
type Message struct {
	From    int
	Payload any
}

// World is the mini runtime.
type World struct{ P int }

// RunPhase executes one access epoch.
func (w *World) RunPhase(f func(rank int)) {
	for p := 0; p < w.P; p++ {
		f(p)
	}
}

// Inbox returns the messages delivered to rank at the last boundary.
func (w *World) Inbox(rank int) []Message { return nil }
