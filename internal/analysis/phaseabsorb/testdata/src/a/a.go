// Fixture: step-loop shapes mirroring the real dmem methods (a three-phase
// Distributed Southwell-style loop) plus the violation shapes.
package a

import "internal/rma"

// threePhase mirrors distsw.go: every phase drains through the absorb
// closure, directly or by name.
func threePhase(w *rma.World, steps int) {
	total := 0
	absorb := func(p int) {
		for _, m := range w.Inbox(p) {
			_ = m
			total++
		}
	}
	for step := 0; step < steps; step++ {
		w.RunPhase(func(p int) {
			absorb(p)
			// relax, write updates ...
		})
		w.RunPhase(func(p int) {
			absorb(p)
			// deadlock-risk detection ...
		})
		w.RunPhase(absorb)
	}
}

// delegated drains through a closure that calls another draining closure.
func delegated(w *rma.World, steps int) {
	absorb := func(p int) {
		_ = w.Inbox(p)
	}
	absorbAndCount := func(p int) {
		absorb(p)
	}
	for step := 0; step < steps; step++ {
		w.RunPhase(absorbAndCount)
	}
}

// inlineDrain reads the inbox directly in the phase function.
func inlineDrain(w *rma.World, steps int) {
	for step := 0; step < steps; step++ {
		w.RunPhase(func(p int) {
			for _, m := range w.Inbox(p) {
				_ = m
			}
		})
	}
}

// setupPhase runs outside any loop: initial exchanges legitimately precede
// any inbox, so no diagnostic.
func setupPhase(w *rma.World) {
	w.RunPhase(func(p int) {
		// initial exchange; nothing to read yet
	})
}

// leaky never reads the inbox inside the loop: landed deltas go unread for
// a full step.
func leaky(w *rma.World, steps int) {
	for step := 0; step < steps; step++ {
		w.RunPhase(func(p int) { // want `RunPhase in a step loop with a phase function that never drains the inbox`
			// relax without absorbing
		})
	}
}

// leakyIdent passes a non-draining function by name.
func leakyIdent(w *rma.World, steps int) {
	relaxOnly := func(p int) {}
	for step := 0; step < steps; step++ {
		w.RunPhase(relaxOnly) // want `RunPhase in a step loop with a phase function that never drains the inbox`
	}
}
