package phaseabsorb_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/phaseabsorb"
)

func TestPhaseabsorb(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), phaseabsorb.Analyzer,
		"a",
	)
}
