package floatcmp_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmp.Analyzer,
		"a",
	)
}
