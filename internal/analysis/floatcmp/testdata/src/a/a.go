// Fixture: floating-point comparison shapes from the solver code paths.
package a

import "math"

func norms(a, b []float64) (float64, float64) {
	na, nb := 0.0, 0.0
	for _, v := range a {
		na += v * v
	}
	for _, v := range b {
		nb += v * v
	}
	return math.Sqrt(na), math.Sqrt(nb)
}

func compare(na, nb float64) bool {
	return na == nb // want `exact floating-point comparison na == nb`
}

func tieBreak(np float64, p int, nq float64, q int) bool {
	if np != nq { // want `exact floating-point comparison np != nq`
		return np > nq
	}
	return p < q
}

// Exact tie-break semantics, justified and suppressed.
func tieBreakIgnored(np float64, p int, nq float64, q int) bool {
	if np != nq { //dslint:ignore floatcmp — both sides evaluate the same pair
		return np > nq
	}
	return p < q
}

// Zero is exactly representable: the converged/unset sentinel is legal.
func converged(norm float64) bool {
	return norm == 0
}

func zeroFloat(norm float64) bool {
	return 0.0 == norm
}

// The portable NaN test compares a value with itself: legal.
func isNaN(x float64) bool {
	return x != x
}

// Integer comparisons are out of scope.
func intEq(a, b int) bool {
	return a == b
}

// Mixed float comparison against a nonzero constant is still exact.
func against(x float64) bool {
	return x == 0.5 // want `exact floating-point comparison x == 0\.5`
}

// The SPD pivot-rejection idiom from the sparse LDLᵀ factorization
// (internal/spdirect): !(d > 0) catches zero, negative, AND NaN pivots in
// one ordered comparison. It is not an equality, so it is out of scope —
// the analyzer must stay silent.
func pivotReject(d float64) bool {
	return !(d > 0)
}

// The sparse-accumulator skip from the same factorization: structural
// zeros contribute nothing, and zero is exactly representable, so the
// exact-zero guard is legal.
func scatterSkip(y []float64, lx []float64) float64 {
	s := 0.0
	for i, yi := range y {
		if yi != 0 {
			s += lx[i] * yi
		}
	}
	return s
}

// A genuine nonzero bit-equality in numeric-kernel shape — e.g. "did the
// refactorization reproduce the cached pivot bit-for-bit" — must carry a
// justification to pass.
func pivotUnchanged(dNew, dCached float64) bool {
	return dNew == dCached //dslint:ignore floatcmp — bit-identity of cached pivots is the specified contract
}

func pivotUnchangedUnjustified(dNew, dCached float64) bool {
	return dNew == dCached // want `exact floating-point comparison dNew == dCached`
}
