// Fixture: test files are exempt — exact comparisons assert bit-identical
// reproducibility throughout the real test suites.
package a

func exactInTest(got, want float64) bool {
	return got == want
}
