// Observability-layer shapes: the trace exporter's float handling is
// where an exact comparison is either the one legal idiom (NaN clamp,
// unset-timestamp sentinel) or a subtle nondeterminism bug (deduplicating
// events by timestamp equality).
package a

// jsonFloat mirrors the exporter's non-finite clamp: the x != x NaN test
// is the specified idiom and must stay silent.
func jsonFloat(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// tsUnset mirrors the zero-timestamp sentinel: exact-zero is legal.
func tsUnset(ts float64) bool {
	return ts == 0
}

// samePhaseEnd deduplicates by timestamp bit-equality without a
// justification: flagged — simulated costs are accumulated floats, and
// two logically simultaneous events need not share low bits.
func samePhaseEnd(a, b float64) bool {
	return a == b // want `exact floating-point comparison a == b`
}
