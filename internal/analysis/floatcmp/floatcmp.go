// Package floatcmp flags exact floating-point equality comparisons
// (== and != on float operands) outside test files.
//
// Residual norms and Γ/Γ̃ estimates are the quantities every method in this
// repo branches on; comparing them exactly is almost always a bug that
// manifests as a missed relaxation or a spurious explicit update. Two
// idioms remain legal: comparison against an exact constant zero (zero is
// exactly representable and is the "converged/unset" sentinel throughout
// the solvers) and the self-comparison NaN test x != x. The handful of
// intentional exact comparisons — the Parallel Southwell tie-break and the
// Γ̃ exactness invariant, where bit-equality is the specified semantics —
// carry //dslint:ignore floatcmp directives with their justification.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the floatcmp check.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc: "flag == and != on floating-point operands outside tests " +
		"(exact-zero comparisons and x != x NaN tests are allowed)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.TypesInfo.Types[be.X]
			yt := pass.TypesInfo.Types[be.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			if !lintutil.IsFloat(xt.Type) && !lintutil.IsFloat(yt.Type) {
				return true
			}
			if isZero(xt) || isZero(yt) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the portable NaN test
			}
			pass.Reportf(be.Pos(),
				"exact floating-point comparison %s %s %s; compare against a tolerance, or annotate an intentional bit-exact comparison with //dslint:ignore floatcmp",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
	return nil
}

// isZero reports whether the expression is a compile-time constant equal to
// exactly zero.
func isZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
