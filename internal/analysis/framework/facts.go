package framework

// Package-level Facts: the interprocedural side-channel of the analysis
// framework, modeled on golang.org/x/tools/go/analysis facts. An analyzer
// running on package P may export one fact value summarizing P (for dslint:
// the callgraph analyzer's function summaries); analyzers running on
// packages that import P — directly or transitively — import that fact and
// reason across the package boundary without re-type-checking P.
//
// Facts are stored gob-encoded. Encoding at export time (rather than
// holding live pointers) buys two properties at once: the cached driver can
// persist facts next to a package's diagnostics and reload them on a warm
// run without re-analysis, and every consumer decodes its own copy, so a
// downstream analyzer can never mutate an upstream summary.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// FactStore holds the gob-encoded package facts of one analysis session,
// keyed by (package path, analyzer name). It is safe for concurrent use:
// the parallel driver analyzes independent packages simultaneously, but the
// import DAG guarantees a package's dependencies were fully analyzed (and
// their facts stored) before the package itself is scheduled.
type FactStore struct {
	mu sync.RWMutex
	m  map[factKey][]byte
}

type factKey struct {
	pkg      string
	analyzer string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey][]byte)}
}

// set stores pre-encoded fact bytes (the cached driver restores facts this
// way on a warm hit).
func (s *FactStore) set(pkg, analyzer string, data []byte) {
	s.mu.Lock()
	s.m[factKey{pkg, analyzer}] = data
	s.mu.Unlock()
}

// get returns the encoded fact bytes, or nil.
func (s *FactStore) get(pkg, analyzer string) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[factKey{pkg, analyzer}]
}

// SetEncoded stores already-encoded fact bytes for (pkg, analyzer); the
// driver uses it to restore facts from the warm cache.
func (s *FactStore) SetEncoded(pkg, analyzer string, data []byte) {
	s.set(pkg, analyzer, data)
}

// Encoded returns the encoded fact bytes for (pkg, analyzer), or nil; the
// driver uses it to persist facts into the cache.
func (s *FactStore) Encoded(pkg, analyzer string) []byte {
	return s.get(pkg, analyzer)
}

// ExportPackageFact records fact as the pass's analyzer's summary of the
// package under analysis. At most one fact per (package, analyzer); a
// second export overwrites the first. The fact value must be gob-encodable
// (exported fields only).
func (p *Pass) ExportPackageFact(fact any) error {
	if p.Facts == nil {
		return fmt.Errorf("%s: ExportPackageFact: pass has no fact store", p.Analyzer.Name)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("%s: encoding package fact for %s: %w", p.Analyzer.Name, p.Pkg.Path(), err)
	}
	p.Facts.set(p.Pkg.Path(), p.Analyzer.Name, buf.Bytes())
	return nil
}

// ImportPackageFact decodes the named analyzer's fact about pkgPath into
// out (a pointer to the fact type) and reports whether such a fact exists.
// Passing the pass's own package path retrieves facts exported by analyzers
// that ran earlier on the same package (registry order), which is how
// hotalloc and walltime read the callgraph summary of the package under
// analysis itself.
func (p *Pass) ImportPackageFact(pkgPath, analyzer string, out any) (bool, error) {
	if p.Facts == nil {
		return false, nil
	}
	data := p.Facts.get(pkgPath, analyzer)
	if data == nil {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return false, fmt.Errorf("%s: decoding %s fact of %s: %w", p.Analyzer.Name, analyzer, pkgPath, err)
	}
	return true, nil
}
