package framework

// SuggestedFix support: a diagnostic may carry machine-applicable edits
// (dslint -fix). Edits address files by byte offset rather than token.Pos
// so a fix survives serialization into the driver's warm cache and can be
// applied in a later process that never parsed the file.

import (
	"fmt"
	"os"
	"sort"
)

// TextEdit replaces the bytes [Start, End) of File with New. Offsets are
// 0-based byte offsets into the file as it was when analyzed.
type TextEdit struct {
	File  string
	Start int
	End   int
	New   string
}

// SuggestedFix is one machine-applicable resolution of a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// ApplyFixes applies every suggested fix in diags to the files on disk and
// returns the set of rewritten file names (sorted). Edits within a file are
// applied in descending offset order so earlier offsets stay valid;
// overlapping edits (the same source region fixed by two diagnostics, e.g.
// a duplicated finding) are applied once and otherwise rejected. Files are
// rewritten with their original permission bits.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var changed []string
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start > edits[j].Start
			}
			return edits[i].End > edits[j].End
		})
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, fmt.Errorf("applying fixes: %w", err)
		}
		info, err := os.Stat(file)
		if err != nil {
			return changed, fmt.Errorf("applying fixes: %w", err)
		}
		out := src
		prevStart := len(src) + 1
		touched := false
		for i, e := range edits {
			if i > 0 && e == edits[i-1] {
				continue // identical edit from a duplicated diagnostic
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				return changed, fmt.Errorf("applying fixes: edit [%d,%d) out of range for %s (%d bytes)", e.Start, e.End, file, len(src))
			}
			if e.End > prevStart {
				return changed, fmt.Errorf("applying fixes: overlapping edits in %s at offset %d", file, e.Start)
			}
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
			prevStart = e.Start
			touched = true
		}
		if !touched {
			continue
		}
		if err := os.WriteFile(file, out, info.Mode().Perm()); err != nil {
			return changed, fmt.Errorf("applying fixes: %w", err)
		}
		changed = append(changed, file)
	}
	return changed, nil
}
