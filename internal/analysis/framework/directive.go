package framework

import (
	"strings"
)

// Suppression directives: a comment of the form
//
//	//dslint:ignore name1,name2 — optional justification
//
// suppresses diagnostics of the named analyzers. A trailing directive
// applies to its own line; a directive alone on a line applies to the next
// line (matching the placement conventions of //nolint and //lint:ignore).
// Every intentional exact float comparison and similar deliberate
// violation in the repo carries one, with the justification in the comment.
//
// Each directive's consumption is tracked: suppressing a reported
// diagnostic (filterIgnored) or an analyzer-internal finding input
// (Pass.SuppressedBy — e.g. callgraph dropping an exempted allocation
// site) marks it used. The staleignore analyzer reports directives that a
// whole registry run left unused, with an autofix that deletes them.

type ignoreKey struct {
	file string
	line int
	name string
}

// Directive is one parsed //dslint:ignore comment.
type Directive struct {
	File    string   // file containing the comment
	Line    int      // 1-based line of the comment itself
	Target  int      // line whose diagnostics it suppresses
	Names   []string // analyzer names it suppresses
	Offset  int      // byte offset of the comment's first character
	End     int      // byte offset one past the comment's last character
	OwnLine bool     // the comment is the only content on its line
	Used    bool     // it suppressed at least one finding this session
}

// scanIgnores collects the package's directives into pkg.directives and
// indexes them by (file, target line, analyzer name).
func (pkg *Package) scanIgnores() {
	pkg.ignores = make(map[ignoreKey]*Directive)
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		src := pkg.Srcs[fileName]
		var lines []string
		if src != nil {
			lines = strings.Split(string(src), "\n")
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(c.End())
				d := &Directive{
					File:   fileName,
					Line:   pos.Line,
					Target: pos.Line,
					Names:  names,
					Offset: pos.Offset,
					End:    end.Offset,
				}
				if onOwnLine(lines, pos.Line, pos.Column) {
					d.Target = pos.Line + 1
					d.OwnLine = true
				}
				pkg.directives = append(pkg.directives, d)
				for _, n := range names {
					pkg.ignores[ignoreKey{fileName, d.Target, n}] = d
				}
			}
		}
	}
}

// parseIgnore extracts the analyzer names from a //dslint:ignore comment.
func parseIgnore(text string) ([]string, bool) {
	const prefix = "//dslint:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	field := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		field = rest[:i]
	}
	if field == "" {
		return nil, false
	}
	names := strings.Split(field, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names, true
}

// onOwnLine reports whether the comment starting at column col is the only
// content on its 1-based line.
func onOwnLine(lines []string, line, col int) bool {
	if line-1 < 0 || line-1 >= len(lines) {
		return false
	}
	return strings.TrimSpace(lines[line-1][:col-1]) == ""
}

// suppressedAt reports whether a directive for analyzer name targets
// (file, line), marking it used.
func (pkg *Package) suppressedAt(file string, line int, name string) bool {
	d := pkg.ignores[ignoreKey{file, line, name}]
	if d == nil {
		return false
	}
	d.Used = true
	return true
}

// filterIgnored drops diagnostics suppressed by a directive, marking the
// directives that fired.
func (pkg *Package) filterIgnored(diags []Diagnostic) []Diagnostic {
	if len(pkg.ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if pkg.suppressedAt(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
