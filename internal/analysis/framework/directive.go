package framework

import (
	"strings"
)

// Suppression directives: a comment of the form
//
//	//dslint:ignore name1,name2 — optional justification
//
// suppresses diagnostics of the named analyzers. A trailing directive
// applies to its own line; a directive alone on a line applies to the next
// line (matching the placement conventions of //nolint and //lint:ignore).
// Every intentional exact float comparison and similar deliberate
// violation in the repo carries one, with the justification in the comment.

type ignoreKey struct {
	file string
	line int
	name string
}

// scanIgnores collects the package's directives into pkg.ignores.
func (pkg *Package) scanIgnores() {
	pkg.ignores = make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		src := pkg.Srcs[fileName]
		var lines []string
		if src != nil {
			lines = strings.Split(string(src), "\n")
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				target := pos.Line
				if onOwnLine(lines, pos.Line, pos.Column) {
					target = pos.Line + 1
				}
				for _, n := range names {
					pkg.ignores[ignoreKey{fileName, target, n}] = true
				}
			}
		}
	}
}

// parseIgnore extracts the analyzer names from a //dslint:ignore comment.
func parseIgnore(text string) ([]string, bool) {
	const prefix = "//dslint:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	field := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		field = rest[:i]
	}
	if field == "" {
		return nil, false
	}
	names := strings.Split(field, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names, true
}

// onOwnLine reports whether the comment starting at column col is the only
// content on its 1-based line.
func onOwnLine(lines []string, line, col int) bool {
	if line-1 < 0 || line-1 >= len(lines) {
		return false
	}
	return strings.TrimSpace(lines[line-1][:col-1]) == ""
}

// filterIgnored drops diagnostics suppressed by a directive.
func (pkg *Package) filterIgnored(diags []Diagnostic) []Diagnostic {
	if len(pkg.ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if pkg.ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
