package framework

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//dslint:ignore floatcmp", []string{"floatcmp"}, true},
		{"//dslint:ignore floatcmp — intentional", []string{"floatcmp"}, true},
		{"//dslint:ignore detrand,floatcmp reason", []string{"detrand", "floatcmp"}, true},
		{"//dslint:ignore", nil, false},
		{"// dslint:ignore floatcmp", nil, false}, // directives have no space
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok || (ok && !reflect.DeepEqual(names, c.names)) {
			t.Errorf("parseIgnore(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

func TestOnOwnLine(t *testing.T) {
	lines := []string{
		"\t//dslint:ignore floatcmp",
		"\tif a != b { //dslint:ignore floatcmp",
	}
	if !onOwnLine(lines, 1, 2) {
		t.Errorf("line 1: directive alone on its line not recognized")
	}
	if onOwnLine(lines, 2, 14) {
		t.Errorf("line 2: trailing directive misclassified as own-line")
	}
}

// TestLoadAndRun loads a real module package through the export-data
// importer and checks that analyzers see type-checked syntax and that
// directive suppression filters diagnostics.
func TestLoadAndRun(t *testing.T) {
	pkgs, err := Load(".", "southwell/internal/analysis/lintutil")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Types.Scope().Lookup("MatchAny") == nil {
		t.Fatalf("package %s type-checked without MatchAny in scope", pkg.Path)
	}

	funcs := 0
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every function declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						funcs++
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := Run(probe, pkg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if funcs == 0 || len(diags) != funcs {
		t.Fatalf("probe reported %d diagnostics for %d functions", len(diags), funcs)
	}
	for _, d := range diags {
		if d.Analyzer != "probe" || d.Pos.Line <= 0 || !strings.HasSuffix(d.Pos.Filename, ".go") {
			t.Errorf("malformed diagnostic: %s", d)
		}
	}

	// Suppression: mark every diagnostic line ignored and re-run.
	for _, d := range diags {
		pkg.ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, "probe"}] = &Directive{
			File: d.Pos.Filename, Target: d.Pos.Line, Names: []string{"probe"},
		}
	}
	diags, err = Run(probe, pkg)
	if err != nil {
		t.Fatalf("Run (suppressed): %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("suppressed run still reported %d diagnostics", len(diags))
	}
}
