package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Srcs  map[string][]byte // filename -> source, for directive scanning
	Types *types.Package
	Info  *types.Info

	ignores    map[ignoreKey]*Directive
	directives []*Directive
}

// ListedPkg is the subset of `go list -json` output the loader and the
// cached driver consume.
type ListedPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -e -json <args>` in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*ListedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*ListedPkg
	for {
		p := new(ListedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ListExportGraph runs one `go list -e -json -export -deps` over the
// patterns (resolved relative to dir) and returns every listed package:
// the pattern matches themselves (DepOnly false) plus their full
// dependency closure with compiler export-data files. The cached driver
// builds its action graph — and its export table — from this single
// invocation.
func ListExportGraph(dir string, patterns ...string) ([]*ListedPkg, error) {
	return goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
}

// ParsePackage parses one listed package's sources (with comments) and
// type-checks it against the importer, returning an analysis-ready
// Package. The FileSet must be fresh per package when packages are checked
// concurrently.
func ParsePackage(lp *ListedPkg, fset *token.FileSet, imp types.Importer) (*Package, error) {
	files, srcs, err := parseFiles(fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", lp.ImportPath, err)
	}
	return CheckFiles(lp.ImportPath, fset, files, srcs, imp)
}

// ExportTable maps import paths to compiler export-data files, as produced
// by `go list -export`. It backs the type-checker's importer, so analyzed
// sources resolve their dependencies exactly as the compiler does — no
// source re-type-checking of the dependency closure.
type ExportTable map[string]string

// LoadExportTable builds the export table for the dependency closure of the
// given package patterns (resolved relative to dir).
func LoadExportTable(dir string, patterns ...string) (ExportTable, error) {
	listed, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	return NewExportTable(listed), nil
}

// NewExportTable builds the export table from an already-listed package
// graph (see ListExportGraph), avoiding a second `go list` run.
func NewExportTable(listed []*ListedPkg) ExportTable {
	t := make(ExportTable, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			t[p.ImportPath] = p.Export
		}
	}
	return t
}

// NewImporter returns a types.Importer that reads compiler export data
// through the table. The importer caches, so share one per load.
func (t ExportTable) NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := t[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// parseFiles parses the named files (joined to dir) with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	var files []*ast.File
	srcs := make(map[string][]byte, len(names))
	for _, name := range names {
		fn := filepath.Join(dir, name)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		srcs[fn] = src
	}
	return files, srcs, nil
}

// ParseFixture parses the named files in dir with comments, for the
// analysistest harness.
func ParseFixture(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	return parseFiles(fset, dir, names)
}

// CheckFiles type-checks one package's parsed files with the given importer
// and wraps the result as an analysis-ready Package.
func CheckFiles(path string, fset *token.FileSet, files []*ast.File, srcs map[string][]byte, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Fset: fset, Files: files, Srcs: srcs, Types: tpkg, Info: info}
	pkg.scanIgnores()
	return pkg, nil
}

// Load lists the patterns (relative to dir), type-checks every matched
// non-test package from source against export data of its dependencies, and
// returns them ready for analysis. Test files are not analyzed: dslint's
// invariants concern the production simulator and solver code, and the
// fixture suites intentionally hold violations.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	table, err := LoadExportTable(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := table.NewImporter(fset)
	var pkgs []*Package
	for _, p := range targets {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files, srcs, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", p.ImportPath, err)
		}
		pkg, err := CheckFiles(p.ImportPath, fset, files, srcs, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
