// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time and reports position-tagged diagnostics.
//
// The x/tools module is deliberately not used — the repo builds offline
// from the standard library alone — so this package provides the three
// pieces dslint needs: the Analyzer/Pass/Diagnostic vocabulary (this file),
// a package loader that type-checks the module's sources against compiler
// export data produced by `go list -export` (load.go), and suppression
// directives (`//dslint:ignore <name>`) for the rare intentional violation
// (directive.go). The sibling package internal/analysis/analysistest plays
// the role of x/tools' analysistest for fixture-driven analyzer tests.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects the package behind pass and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dslint:ignore directives. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces,
	// shown by `dslint -help`.
	Doc string
	// Run performs the check. A non-nil error aborts the run (it means the
	// analyzer itself failed, not that the code has findings).
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position. Fixes, when
// present, are machine-applicable resolutions (dslint -fix).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the session's package-fact store (nil when the caller runs
	// without facts; ExportPackageFact then fails and ImportPackageFact
	// reports no fact).
	Facts *FactStore

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records a fully-formed diagnostic (used by analyzers attaching
// suggested fixes). The Pos and Analyzer fields are filled from the pass.
func (p *Pass) Report(pos token.Pos, message string, fixes ...SuggestedFix) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  message,
		Fixes:    fixes,
	})
}

// SuppressedBy reports whether a //dslint:ignore directive for the named
// analyzer targets pos's line, and marks that directive used (so
// staleignore does not flag it). Analyzers that consume suppressions at
// fact-construction time (callgraph dropping exempted allocation sites)
// call this with the analyzer the suppression is for, which may differ
// from the running analyzer.
func (p *Pass) SuppressedBy(pos token.Pos, analyzer string) bool {
	position := p.Fset.Position(pos)
	return p.pkg.suppressedAt(position.Filename, position.Line, analyzer)
}

// Directives returns the package's //dslint:ignore directives. Used flags
// reflect every suppression consumed so far in this session, so an
// analyzer inspecting them (staleignore) must run after the analyzers
// whose findings the directives could suppress.
func (p *Pass) Directives() []*Directive {
	return p.pkg.directives
}

// Srcs returns the analyzed source bytes by file name (for computing byte
// offsets of suggested fixes).
func (p *Pass) Srcs() map[string][]byte {
	return p.pkg.Srcs
}

// Run applies one analyzer to one loaded package and returns its findings,
// with //dslint:ignore-suppressed diagnostics already removed and the rest
// ordered by position. Facts are unavailable; use RunWithFacts for
// fact-producing or fact-consuming analyzers.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWithFacts(a, pkg, nil)
}

// RunWithFacts is Run with a session fact store shared across packages
// (and across the analyzers of one package, in registry order).
func RunWithFacts(a *Analyzer, pkg *Package, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
		pkg:       pkg,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
	}
	diags = pkg.filterIgnored(diags)
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diags by (file, line, column, analyzer, message)
// — the canonical deterministic output order of the driver.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
