// Package registry enumerates the dslint analyzers, in the order their
// diagnostics are reported. cmd/dslint and the suite tests share it so a
// new analyzer registers in exactly one place.
package registry

import (
	"southwell/internal/analysis/clonerheld"
	"southwell/internal/analysis/detrand"
	"southwell/internal/analysis/floatcmp"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/maporder"
	"southwell/internal/analysis/phaseabsorb"
)

// Analyzers returns the full dslint suite.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		clonerheld.Analyzer,
		phaseabsorb.Analyzer,
		floatcmp.Analyzer,
	}
}
