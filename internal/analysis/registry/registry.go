// Package registry enumerates the dslint analyzers, in the order they run
// on each package. cmd/dslint and the suite tests share it so a new
// analyzer registers in exactly one place.
//
// Ordering is semantic, not cosmetic: callgraph must run before hotalloc
// and walltime (they import the fact it exports for the package under
// analysis), and staleignore must run last — it reports //dslint:ignore
// directives whose Used flag no other analyzer set during the run. The
// cached driver caches whole-registry runs per package, so this order is
// preserved on warm runs too.
package registry

import (
	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/clonerheld"
	"southwell/internal/analysis/detrand"
	"southwell/internal/analysis/floatcmp"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/hotalloc"
	"southwell/internal/analysis/maporder"
	"southwell/internal/analysis/phaseabsorb"
	"southwell/internal/analysis/staleignore"
	"southwell/internal/analysis/walltime"
)

// Analyzers returns the full dslint suite in execution order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		clonerheld.Analyzer,
		phaseabsorb.Analyzer,
		floatcmp.Analyzer,
		callgraph.Analyzer, // fact producer: before hotalloc and walltime
		hotalloc.Analyzer,
		walltime.Analyzer,
		staleignore.Analyzer, // must be last: reads directive Used flags
	}
}
