package lintutil

import "testing"

func TestMatchAny(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"southwell/internal/rma", true},
		{"internal/rma", true},
		{"southwell/internal/dmem", true},
		{"southwell/internal/sparse", false},
		{"southwell/internal/analysis/detrand", false},
		{"myinternal/rma", false}, // suffix must start at a path boundary
		{"other", false},
	}
	for _, c := range cases {
		if got := IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
