// Package lintutil holds the project policy and type-inspection helpers
// shared by the dslint analyzers: which packages must be deterministic,
// what counts as a method on the simulated RMA runtime, and which payload
// types hold references that the fault layer could alias.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPkgs lists the packages whose runs must be bit-reproducible
// from explicit seeds (DESIGN.md §6, §8): the simulator, the distributed
// methods, the benchmark harness, and everything that feeds them inputs.
// Matching is by path suffix so the list covers both the real module paths
// (southwell/internal/rma) and analyzer test fixtures (internal/rma).
var DeterministicPkgs = []string{
	"internal/rma",
	"internal/dmem",
	"internal/bench",
	"internal/solvers",
	"internal/partition",
	"internal/problem",
	"internal/parallel",
	"internal/obs",
}

// MapOrderPkgs lists the packages where map iteration order can leak into
// message schedules or index layouts and must therefore be sorted.
var MapOrderPkgs = []string{
	"internal/rma",
	"internal/dmem",
	"internal/parallel",
	"internal/obs",
}

// WallClockFuncs are the time-package names that read the wall clock or
// start wall-clock timers. Shared by detrand (direct uses in deterministic
// packages) and callgraph/walltime (interprocedural reachability).
var WallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// MatchAny reports whether pkgPath equals one of the patterns or ends with
// "/"+pattern (module-prefixed paths).
func MatchAny(pkgPath string, patterns []string) bool {
	for _, pat := range patterns {
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}

// IsDeterministic reports whether pkgPath must be free of unseeded
// randomness and wall-clock reads.
func IsDeterministic(pkgPath string) bool {
	return MatchAny(pkgPath, DeterministicPkgs)
}

// WorldMethod returns the *types.Func when call invokes the named method on
// rma.World (package identified by name "rma" so fixtures with a mini rma
// package exercise the same code path), and nil otherwise.
func WorldMethod(info *types.Info, call *ast.CallExpr, name string) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "World" {
		return nil
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Name() != "rma" {
		return nil
	}
	return fn
}

// ClonerInterface looks up the Cloner interface in the package that defines
// rma.World (the real runtime or a fixture's mini rma).
func ClonerInterface(pkg *types.Package) *types.Interface {
	obj, ok := pkg.Scope().Lookup("Cloner").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// HoldsReferences reports whether t contains any pointer, slice, map, or
// channel at any depth — storage a retained payload would share with its
// sender. Scalars, strings, and arrays/structs of them are safely copied
// by value into a Message.
func HoldsReferences(t types.Type) bool {
	return holdsRefs(t, map[types.Type]bool{})
}

func holdsRefs(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Array:
		return holdsRefs(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsRefs(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// PkgQualified resolves sel to (package path, object) when sel is a
// package-qualified reference like rand.Intn; ok is false for field and
// method selections.
func PkgQualified(info *types.Info, sel *ast.SelectorExpr) (string, types.Object, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil, false
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return "", nil, false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", nil, false
	}
	return obj.Pkg().Path(), obj, true
}
