// Package walltime extends detrand's determinism guarantee across package
// boundaries (DESIGN.md §12).
//
// detrand forbids wall-clock reads *inside* the deterministic packages
// (internal/rma, dmem, bench, solvers, partition, problem, parallel, obs).
// It cannot see a deterministic package calling a helper in a
// non-deterministic package that itself calls time.Now — the read happens
// outside detrand's jurisdiction, but the nondeterminism flows right back
// into the solver step. walltime closes that hole: every function in a
// deterministic package is a walk root, and any wall-clock site reachable
// through the callgraph facts in a package detrand does NOT cover is
// reported, with the call path. Sites inside deterministic packages are
// deliberately not re-reported — detrand already flags them at the exact
// read position, which is the better diagnostic.
//
// //dslint:ignore walltime on a function declaration exempts the function
// (trusted wrappers); on a call line it severs the edge. External
// (standard-library) callees are not traversed: the guarantee covers
// module code, and the deterministic packages' stdlib surface is vetted by
// detrand's import review.
package walltime

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the walltime check.
var Analyzer = &framework.Analyzer{
	Name: "walltime",
	Doc: "prove deterministic-package code never reaches a wall-clock read in other module packages " +
		"via the callgraph facts; complements detrand's per-package check",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !lintutil.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	type root struct {
		id  string
		pos token.Pos
	}
	var roots []root
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if id := callgraph.DeclID(pass, fd); id != "" {
				roots = append(roots, root{id, fd.Pos()})
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })

	u, err := callgraph.NewUniverse(pass)
	if err != nil {
		return err
	}

	reported := map[string]bool{}
	for _, r := range roots {
		r := r
		shortRoot := r.id[strings.LastIndexByte(r.id, '/')+1:]
		u.Walk(r.id, callgraph.ModeWalltime,
			func(reach callgraph.Reached) {
				if lintutil.IsDeterministic(callgraph.PkgOfID(reach.Fn.ID)) {
					return // detrand reports these at the read position
				}
				for _, site := range reach.Fn.WallSites {
					key := site.Pos + "|" + site.Desc
					if reported[key] {
						continue
					}
					reported[key] = true
					pass.Reportf(r.pos,
						"%s reaches wall-clock read %s at %s (outside detrand's coverage); call path: %s",
						shortRoot, site.Desc, site.Pos, callgraph.FormatPath(reach.Path))
				}
			},
			nil, nil)
	}
	return nil
}
