package walltime_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/walltime"
)

// TestWalltime checks that deterministic fixture packages reaching
// wall-clock reads in non-deterministic packages are flagged with the call
// path (static and interface dispatch), while reads inside deterministic
// packages (detrand's jurisdiction), severed edges, and exempted wrappers
// stay silent. Dependencies (timeutil, internal/problem) are loaded and
// checked too — they must produce no walltime diagnostics at all.
func TestWalltime(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(),
		[]*framework.Analyzer{callgraph.Analyzer, walltime.Analyzer},
		"internal/solvers")
}
