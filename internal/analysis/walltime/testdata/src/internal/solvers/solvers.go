// Package solvers is a deterministic fixture package: every function here
// is a walltime walk root. Reads reached in non-deterministic packages
// (timeutil) must be reported with the call path; reads inside
// deterministic packages (problem) are detrand's to report and must not be.
package solvers

import (
	"internal/problem"
	"timeutil"
)

// Severed sorts before Step, so it walks first: the severed edge must keep
// it from claiming (and thus deduplicating away) Stamp's wall site.
func Severed() int64 {
	return timeutil.Stamp() //dslint:ignore walltime cold diagnostics path, not part of a solver step
}

func Step(x []float64) int64 { // want `solvers\.Step reaches wall-clock read time\.Now at timeutil\.go:\d+ \(outside detrand's coverage\); call path: internal/solvers\.Step \(solvers\.go:\d+\) -> timeutil\.Stamp`
	for i := range x {
		x[i] *= 2
	}
	return timeutil.Stamp()
}

type clock interface{ Read() int64 }

func ReadClock(c clock) int64 { // want `solvers\.ReadClock reaches wall-clock read time\.Now at timeutil\.go:\d+ .*; call path: internal/solvers\.ReadClock \(solvers\.go:\d+\) -> timeutil\.\(SysClock\)\.Read`
	return c.Read()
}

// Clean reaches only clean code across the boundary.
func Clean(a, b int) int {
	return timeutil.Add(a, b)
}

// UsesTick reaches a wall-clock read that sits inside another
// deterministic package: detrand reports that one at the read position, so
// walltime stays silent here.
func UsesTick() int64 {
	return problem.Tick()
}

// Trusted is exempted wholesale: a vetted wrapper whose timing use is
// logging-only by review.
//
//dslint:ignore walltime trusted wrapper, logging only
func Trusted() int64 {
	return timeutil.Stamp()
}
