// Package problem is a deterministic fixture package (its path suffix is
// on lintutil.DeterministicPkgs). The wall-clock read here is detrand's to
// report at the exact position — walltime must NOT re-report it.
package problem

import "time"

// Tick reads the wall clock inside a deterministic package: detrand's
// jurisdiction, deliberately not walltime's.
func Tick() int64 {
	return time.Now().UnixNano()
}

// Size is clean.
func Size(n int) int {
	return n * n
}
