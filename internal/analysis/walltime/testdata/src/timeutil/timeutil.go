// Package timeutil is a non-deterministic fixture package: detrand does
// not cover it (its path matches no deterministic suffix), so wall-clock
// reads here are legal locally — but must be flagged by walltime when a
// deterministic package reaches them through the callgraph.
package timeutil

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Add is clean: deterministic callers may use it freely.
func Add(a, b int) int {
	return a + b
}

// SysClock implements the solvers' clock interface with a wall-clock read,
// exercising interface dispatch across the package boundary.
type SysClock struct{}

// Read reads the wall clock.
func (SysClock) Read() int64 {
	return time.Now().UnixNano()
}
