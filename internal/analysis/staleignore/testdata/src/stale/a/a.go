// Fixtures for staleignore: directives consumed by suppression (floatcmp)
// or by fact building (callgraph dropping an exempted allocation site) are
// live; directives that suppress nothing — including ones naming a
// misspelled analyzer — are stale and get a deletion fix.
package a

func eqFloat(a, b float64) bool {
	return a == b //dslint:ignore floatcmp exact representability is intended in this helper
}

func eqFloatOwnLine(a, b float64) bool {
	//dslint:ignore floatcmp exact representability is intended on the next line
	return a == b
}

func eqInt(a, b int) bool {
	return a == b //dslint:ignore floatcmp ints compare exactly // want `stale //dslint:ignore floatcmp: it suppresses nothing; delete it`
}

func calc(x int) int {
	y := x * 2 //dslint:ignore hotalloc nothing on this line allocates anymore // want `stale //dslint:ignore hotalloc: it suppresses nothing; delete it`
	return y
}

type cache struct {
	buf []float64
}

//dslint:hotpath
func (c *cache) ensure(n int) {
	if c.buf == nil {
		c.buf = make([]float64, n) //dslint:ignore hotalloc one-time lazy initialization
	}
}

//dslint:ignore nosuchcheck misspelled analyzer name is never consumed // want `stale //dslint:ignore nosuchcheck: it suppresses nothing; delete it`
func typod() {}
