// Package staleignore reports //dslint:ignore directives that no longer
// suppress anything, with an autofix that deletes them (DESIGN.md §12).
//
// Every suppression in the repo is a justified exception to an invariant.
// When the code it excused is refactored away, the stale directive keeps
// advertising an exception that no longer exists — and worse, it will
// silently swallow a *future* genuine finding on the same line. The
// framework tracks consumption: a directive is "used" when it suppresses a
// reported diagnostic or when an analyzer consumes it while building facts
// (callgraph dropping an exempted allocation site or severing an edge).
//
// This analyzer MUST run last in the registry: it inspects the Used flags
// after every other analyzer has had the chance to set them. The cached
// driver's unit of caching is the whole-registry run of one package, so
// the ordering also holds on warm runs.
package staleignore

import (
	"bytes"
	"fmt"
	"go/token"
	"strings"

	"southwell/internal/analysis/framework"
)

// Analyzer is the staleignore check.
var Analyzer = &framework.Analyzer{
	Name: "staleignore",
	Doc: "report //dslint:ignore directives that suppressed nothing this run, with an autofix " +
		"deleting them; must run last in the registry",
	Run: run,
}

func run(pass *framework.Pass) error {
	// Map file name -> token.File for converting byte offsets to positions.
	tokFiles := map[string]*token.File{}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		tokFiles[pos.Filename] = pass.Fset.File(f.Pos())
	}
	srcs := pass.Srcs()
	for _, d := range pass.Directives() {
		if d.Used {
			continue
		}
		tf := tokFiles[d.File]
		src := srcs[d.File]
		if tf == nil || src == nil {
			continue
		}
		start, end := deletionSpan(src, d)
		pass.Report(tf.Pos(d.Offset),
			fmt.Sprintf("stale //dslint:ignore %s: it suppresses nothing; delete it",
				strings.Join(d.Names, ",")),
			framework.SuggestedFix{
				Message: "delete stale directive",
				Edits:   []framework.TextEdit{{File: d.File, Start: start, End: end}},
			})
	}
	return nil
}

// deletionSpan widens a directive's byte span for clean removal: an
// own-line directive takes its whole line (including the newline); a
// trailing directive also consumes the spaces separating it from the code.
func deletionSpan(src []byte, d *framework.Directive) (start, end int) {
	start, end = d.Offset, d.End
	if d.OwnLine {
		if i := bytes.LastIndexByte(src[:start], '\n'); i >= 0 {
			start = i + 1
		} else {
			start = 0
		}
		if end < len(src) && src[end] == '\r' {
			end++
		}
		if end < len(src) && src[end] == '\n' {
			end++
		}
		return start, end
	}
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	return start, end
}
