package staleignore_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/floatcmp"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/hotalloc"
	"southwell/internal/analysis/staleignore"
)

// suite mirrors the registry's ordering constraint: consumers of
// directives (floatcmp suppression, callgraph fact building) run before
// staleignore, which must be last.
func suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		floatcmp.Analyzer, callgraph.Analyzer, hotalloc.Analyzer, staleignore.Analyzer,
	}
}

func TestStaleIgnore(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(), suite(), "stale/a")
}

// TestStaleIgnoreFix applies the deletion fixes to a copy of the fixture
// and checks the round trip: the stale directives disappear, the file
// still type-checks, and a re-run reports nothing.
func TestStaleIgnoreFix(t *testing.T) {
	tmp := t.TempDir()
	dst := filepath.Join(tmp, "src", "stale", "a")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(analysistest.TestData(), "src", "stale", "a", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dst, "a.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	diags := analysistest.Diagnostics(t, tmp, suite(), "stale/a")
	var stale []framework.Diagnostic
	for _, d := range diags {
		if strings.HasPrefix(d.Message, "stale //dslint:ignore") {
			stale = append(stale, d)
		}
	}
	if len(stale) != 3 {
		t.Fatalf("got %d stale findings, want 3: %v", len(stale), stale)
	}
	changed, err := framework.ApplyFixes(stale)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(changed) != 1 || changed[0] != target {
		t.Fatalf("changed files = %v, want [%s]", changed, target)
	}

	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{"ints compare exactly", "nothing on this line allocates", "nosuchcheck"} {
		if strings.Contains(string(fixed), gone) {
			t.Errorf("stale directive %q still present after fix", gone)
		}
	}
	for _, kept := range []string{"exact representability is intended in this helper", "one-time lazy initialization"} {
		if !strings.Contains(string(fixed), kept) {
			t.Errorf("live directive %q was deleted by fix", kept)
		}
	}

	// Re-run on the fixed tree: it must type-check and be quiet.
	rerun := analysistest.Diagnostics(t, tmp, suite(), "stale/a")
	for _, d := range rerun {
		if strings.HasPrefix(d.Message, "stale //dslint:ignore") {
			t.Errorf("stale finding survived the fix: %s", d)
		}
	}
}
