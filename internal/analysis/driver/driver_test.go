package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"southwell/internal/analysis/driver"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/registry"
)

// writeModule lays out a throwaway two-package module with deliberate
// findings in both packages: hotalloc hot paths (one transitive across the
// package boundary, exercising fact restoration from the warm cache), a
// floatcmp violation, and a stale directive.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module m\n\ngo 1.22\n")
	write("a/a.go", `package a

//dslint:hotpath
func Hot(n int) []int {
	return make([]int, n)
}

func eq(x, y float64) bool {
	return x == y
}

func plain(x int) int {
	y := x + 1 //dslint:ignore hotalloc stale: nothing on this line allocates
	return y
}
`)
	write("b/b.go", `package b

import "m/a"

//dslint:hotpath
func Use(n int) []int {
	return a.Hot(n)
}
`)
	return root
}

func render(diags []framework.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runOn(t *testing.T, dir, cacheDir string) *driver.Result {
	t.Helper()
	res, err := driver.Run(driver.Options{
		Dir:       dir,
		Analyzers: registry.Analyzers(),
		CacheDir:  cacheDir,
	})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	return res
}

// TestWarmCache pins the driver contract: a cold run analyzes everything,
// a warm run analyzes nothing and reproduces the diagnostics byte for
// byte, and an edit re-analyzes exactly the changed package plus its
// dependents (the action hash is recursive over in-module deps).
func TestWarmCache(t *testing.T) {
	root := writeModule(t)
	cache := filepath.Join(root, ".dslintcache")

	cold := runOn(t, root, cache)
	if cold.Stats.Packages != 2 || cold.Stats.Analyzed != 2 || cold.Stats.Restored != 0 {
		t.Fatalf("cold stats = %+v, want 2 packages all analyzed", cold.Stats)
	}
	out := render(cold.Diagnostics)
	for _, want := range []string{"hotalloc", "floatcmp", "stale //dslint:ignore hotalloc", "m/b.Use", "m/a.Hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("cold output missing %q:\n%s", want, out)
		}
	}

	warm := runOn(t, root, cache)
	if warm.Stats.Analyzed != 0 || warm.Stats.Restored != 2 {
		t.Fatalf("warm stats = %+v, want everything restored", warm.Stats)
	}
	if got := render(warm.Diagnostics); got != out {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", out, got)
	}

	// Touching a's source invalidates a AND b (dep hash is recursive).
	aPath := filepath.Join(root, "a", "a.go")
	src, err := os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := runOn(t, root, cache)
	if edited.Stats.Analyzed != 2 {
		t.Fatalf("after editing a dependency, stats = %+v, want both packages re-analyzed", edited.Stats)
	}

	// Touching only b leaves a warm.
	bPath := filepath.Join(root, "b", "b.go")
	src, err = os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	leaf := runOn(t, root, cache)
	if leaf.Stats.Analyzed != 1 || leaf.Stats.Restored != 1 {
		t.Fatalf("after editing a leaf, stats = %+v, want 1 analyzed 1 restored", leaf.Stats)
	}
}

// TestDeterministicOutput runs the driver twice with no cache at all: the
// rendered diagnostics must be byte-identical (dedup + canonical sort, no
// map-order or scheduling-order leakage).
func TestDeterministicOutput(t *testing.T) {
	root := writeModule(t)
	first := render(runOn(t, root, "").Diagnostics)
	second := render(runOn(t, root, "").Diagnostics)
	if first == "" {
		t.Fatal("expected findings from the fixture module")
	}
	if first != second {
		t.Errorf("two uncached runs differ:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
