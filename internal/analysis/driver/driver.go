// Package driver runs the dslint analyzer suite over a package graph,
// in parallel, with a content-addressed warm cache.
//
// One `go list -export -deps` invocation yields the module's package graph
// plus compiler export data. Every in-module package becomes an action
// whose hash covers everything that can change its analysis result: the
// driver version, the Go toolchain, the analyzer registry (names and
// docs), the package's own source bytes, and — recursively — the action
// hashes of its in-module dependencies. A package whose action hash
// matches its cache entry is not re-analyzed: its diagnostics and its
// exported facts are restored from the entry, so downstream packages can
// still import the facts. A warm `make lint` therefore re-analyzes nothing
// and prints byte-identical output.
//
// Packages type-check independently (each against export data, with its
// own FileSet), so analysis parallelizes across the import DAG: a package
// is scheduled as soon as its in-module dependencies have completed —
// facts are the only cross-package data flow. Within one package the
// analyzers run strictly in registry order (callgraph before its
// consumers, staleignore last); the unit of caching is that whole-registry
// run, which preserves the ordering semantics on warm runs.
package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"southwell/internal/analysis/framework"
)

// version invalidates every cache entry when the driver's own hashing or
// entry format changes.
const version = "dslint-driver-1"

// Options configures one driver run.
type Options struct {
	// Dir is the directory go list runs in (the module root).
	Dir string
	// Patterns are the package patterns to lint (default ./...).
	Patterns []string
	// Analyzers run in order on every package.
	Analyzers []*framework.Analyzer
	// CacheDir holds warm-cache entries; empty disables caching.
	CacheDir string
	// Parallel caps concurrent package analyses (0 = GOMAXPROCS).
	Parallel int
}

// Stats counts what one run did, for `dslint -stats` and the CI
// warm-cache assertion.
type Stats struct {
	Packages int // in-module packages in the action graph
	Analyzed int // cache misses: packages actually analyzed
	Restored int // warm hits: diagnostics and facts restored
}

// Result is a completed run: deduplicated diagnostics of the requested
// (non-dependency-only) packages in canonical order, plus run stats.
type Result struct {
	Diagnostics []framework.Diagnostic
	Stats       Stats
}

// node is one package action in the graph.
type node struct {
	lp         *framework.ListedPkg
	hash       string
	target     bool
	waits      int
	dependents []*node
	diags      []framework.Diagnostic
}

// cacheEntry is the persisted result of one package action.
type cacheEntry struct {
	ActionHash string
	Diags      []framework.Diagnostic
	Facts      map[string][]byte // analyzer name -> gob-encoded package fact
}

// Run executes the analyzer suite over the patterns.
func Run(opts Options) (*Result, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	listed, err := framework.ListExportGraph(opts.Dir, opts.Patterns...)
	if err != nil {
		return nil, err
	}

	// Build the in-module action graph. `go list -deps` emits dependencies
	// before dependents, so a single pass computes action hashes bottom-up.
	nodes := map[string]*node{}
	var order []*node
	for _, lp := range listed {
		if lp.Error != nil && !lp.DepOnly {
			// A requested pattern failed to load (bogus path, parse error
			// caught by go list): always an error, module or not.
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		n := &node{lp: lp, target: !lp.DepOnly}
		h, err := actionHash(lp, opts.Analyzers, nodes)
		if err != nil {
			return nil, err
		}
		n.hash = h
		nodes[lp.ImportPath] = n
		order = append(order, n)
	}
	for _, n := range order {
		for _, imp := range n.lp.Imports {
			if dep, ok := nodes[imp]; ok {
				n.waits++
				dep.dependents = append(dep.dependents, n)
			}
		}
	}

	table := framework.NewExportTable(listed)
	facts := framework.NewFactStore()
	res := &Result{Stats: Stats{Packages: len(order)}}

	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(order) && len(order) > 0 {
		par = len(order)
	}

	var (
		mu        sync.Mutex
		firstErr  error
		remaining = len(order)
	)
	readyC := make(chan *node, len(order))
	for _, n := range order {
		if n.waits == 0 {
			readyC <- n
		}
	}
	if remaining == 0 {
		close(readyC)
	}
	complete := func(n *node) {
		mu.Lock()
		defer mu.Unlock()
		remaining--
		for _, d := range n.dependents {
			d.waits--
			if d.waits == 0 {
				readyC <- d
			}
		}
		if remaining == 0 {
			close(readyC)
		}
	}

	var wg sync.WaitGroup
	wg.Add(par)
	for i := 0; i < par; i++ {
		go func() {
			defer wg.Done()
			for n := range readyC {
				mu.Lock()
				skip := firstErr != nil
				mu.Unlock()
				if !skip {
					restored, err := analyze(n, opts, table, facts)
					mu.Lock()
					switch {
					case err != nil && firstErr == nil:
						firstErr = err
					case err == nil && restored:
						res.Stats.Restored++
					case err == nil:
						res.Stats.Analyzed++
					}
					mu.Unlock()
				}
				complete(n)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic output: gather target diagnostics, drop duplicates
	// (the same finding can be attributed identically from two runs or
	// two roots), and sort canonically.
	seen := map[string]bool{}
	for _, n := range order {
		if !n.target {
			continue
		}
		for _, d := range n.diags {
			key := d.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	framework.SortDiagnostics(res.Diagnostics)
	return res, nil
}

// analyze runs one package action: restore from the warm cache when the
// action hash matches, otherwise parse, type-check, run every analyzer in
// order, and persist the entry. Returns whether the cache was hit.
func analyze(n *node, opts Options, table framework.ExportTable, facts *framework.FactStore) (bool, error) {
	path := n.lp.ImportPath
	if entry := readCache(opts.CacheDir, path); entry != nil && entry.ActionHash == n.hash {
		for name, data := range entry.Facts {
			facts.SetEncoded(path, name, data)
		}
		n.diags = entry.Diags
		return true, nil
	}

	fset := token.NewFileSet()
	pkg, err := framework.ParsePackage(n.lp, fset, table.NewImporter(fset))
	if err != nil {
		return false, err
	}
	for _, a := range opts.Analyzers {
		diags, err := framework.RunWithFacts(a, pkg, facts)
		if err != nil {
			return false, err
		}
		n.diags = append(n.diags, diags...)
	}

	entry := &cacheEntry{ActionHash: n.hash, Diags: n.diags, Facts: map[string][]byte{}}
	for _, a := range opts.Analyzers {
		if data := facts.Encoded(path, a.Name); data != nil {
			entry.Facts[a.Name] = data
		}
	}
	writeCache(opts.CacheDir, path, entry)
	return false, nil
}

// actionHash fingerprints everything that can change a package's analysis
// result. nodes must already contain the package's in-module dependencies
// (go list -deps order guarantees it).
func actionHash(lp *framework.ListedPkg, analyzers []*framework.Analyzer, nodes map[string]*node) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, version)
	fmt.Fprintln(h, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name, a.Doc)
	}
	fmt.Fprintln(h, lp.ImportPath)
	names := append([]string(nil), lp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(lp.Dir, name))
		if err != nil {
			return "", fmt.Errorf("hashing %s: %w", lp.ImportPath, err)
		}
		fmt.Fprintln(h, name, len(src))
		h.Write(src)
	}
	imps := append([]string(nil), lp.Imports...)
	sort.Strings(imps)
	for _, imp := range imps {
		if dep, ok := nodes[imp]; ok {
			fmt.Fprintln(h, imp, dep.hash)
		} else {
			fmt.Fprintln(h, imp) // out-of-module: covered by the Go version
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheFile maps an import path to its (single) cache entry file.
func cacheFile(cacheDir, importPath string) string {
	sum := sha256.Sum256([]byte(importPath))
	base := strings.ReplaceAll(filepath.Base(importPath), string(filepath.Separator), "_")
	return filepath.Join(cacheDir, base+"-"+hex.EncodeToString(sum[:8])+".gob")
}

// readCache loads a package's cache entry; any failure is a miss.
func readCache(cacheDir, importPath string) *cacheEntry {
	if cacheDir == "" {
		return nil
	}
	data, err := os.ReadFile(cacheFile(cacheDir, importPath))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil
	}
	return &e
}

// writeCache persists a package's entry (best-effort: a failed write only
// costs the next run a re-analysis). The temp-file rename keeps concurrent
// writers from exposing torn entries.
func writeCache(cacheDir, importPath string, e *cacheEntry) {
	if cacheDir == "" {
		return
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return
	}
	dst := cacheFile(cacheDir, importPath)
	tmp, err := os.CreateTemp(cacheDir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), dst)
	} else {
		tmp.Close()
		os.Remove(tmp.Name())
	}
}
