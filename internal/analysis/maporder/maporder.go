// Package maporder flags `for range` loops over maps in internal/rma and
// internal/dmem whose body is order-sensitive.
//
// Go randomizes map iteration order per run, so a map-ordered loop that
// appends to a shared slice, accumulates floating point (non-associative),
// sends on a channel, or stages messages through World.Put makes the
// simulator's output depend on the runtime's hash seed — breaking the
// bit-reproducibility the engine-equivalence tests assert and the
// neighbor/ghost index layouts dmem's exchange plans rely on (DESIGN.md
// §6, §8). The one legal map loop is the collect-then-sort idiom: a
// single-statement body appending the keys (and/or values) to a slice that
// a later statement in the same block passes to sort or slices.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive iteration over maps in the simulator packages " +
		"(appends, float accumulation, sends) unless keys are collected and sorted",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !lintutil.MatchAny(pass.Pkg.Path(), lintutil.MapOrderPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rs.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			reason := orderSensitive(pass, rs)
			if reason == "" {
				return true
			}
			if isCollectThenSort(pass, f, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"order-sensitive iteration over map %s (%s); map order is randomized per run — collect and sort the keys first",
				types.ExprString(rs.X), reason)
			return true
		})
	}
	return nil
}

// orderSensitive returns a description of the first operation in the loop
// body whose result depends on iteration order, or "" if none.
func orderSensitive(pass *framework.Pass, rs *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.CallExpr:
			if lintutil.WorldMethod(pass.TypesInfo, s, "Put") != nil {
				reason = "message staged through World.Put"
			}
		case *ast.AssignStmt:
			reason = assignSensitive(pass, rs, s)
		}
		return reason == ""
	})
	return reason
}

// assignSensitive classifies one assignment inside the loop body: appends
// to and float accumulation into storage that outlives the iteration.
func assignSensitive(pass *framework.Pass, rs *ast.RangeStmt, s *ast.AssignStmt) string {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := s.Lhs[0]
		if t := pass.TypesInfo.Types[lhs].Type; t != nil && lintutil.IsFloat(t) && !declaredInside(pass, rs, lhs) {
			return "floating-point accumulation into " + types.ExprString(lhs)
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(s.Lhs) {
				continue
			}
			if !declaredInside(pass, rs, s.Lhs[i]) {
				return "append to " + types.ExprString(s.Lhs[i])
			}
		}
	}
	return ""
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredInside reports whether expr is a plain identifier declared within
// the loop body (iteration-local storage; order cannot leak out). Selector
// and index expressions are conservatively treated as outside.
func declaredInside(pass *framework.Pass, rs *ast.RangeStmt, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End()
}

// isCollectThenSort recognizes the legal idiom: the body is exactly one
// append of the loop variables into a slice, and a later statement in the
// enclosing block passes that slice to the sort or slices package.
func isCollectThenSort(pass *framework.Pass, f *ast.File, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	s, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
		return false
	}
	// Appended values must be the loop key/value identifiers only.
	loopVars := map[string]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok {
			loopVars[id.Name] = true
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !loopVars[id.Name] {
			return false
		}
	}
	dest := types.ExprString(s.Lhs[0])
	return sortedLater(pass, f, rs, dest)
}

// sortedLater reports whether a statement after rs in its enclosing block
// calls sort.* or slices.* with dest among the arguments.
func sortedLater(pass *framework.Pass, f *ast.File, rs *ast.RangeStmt, dest string) bool {
	following := statementsAfter(f, rs)
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, _, ok := lintutil.PkgQualified(pass.TypesInfo, sel)
			if !ok || (path != "sort" && path != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == dest {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// statementsAfter finds the block holding rs as a direct statement and
// returns the statements after it.
func statementsAfter(f *ast.File, rs *ast.RangeStmt) []ast.Stmt {
	var after []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			if stmt == ast.Stmt(rs) {
				after = block.List[i+1:]
				return false
			}
		}
		return true
	})
	return after
}
