package maporder_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer,
		"internal/dmem",
		"internal/parallel",
		"internal/obs",
	)
}
