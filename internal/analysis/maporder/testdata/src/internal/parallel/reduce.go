// Fixture: reduction shapes of a goroutine fan-out kernel layer, in the
// maporder scope (path suffix internal/parallel). Parallel reductions must
// combine per-block partials from a slice in fixed index order; draining
// them from a map would re-order the floating-point sum run to run.
package parallel

// reduceBlocksOK combines per-block partial sums in ascending block order:
// the legal fixed-order reduction (slices have deterministic iteration).
func reduceBlocksOK(partial []float64) float64 {
	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	return sum
}

// reduceMapOrder accumulates worker partials from a map keyed by worker id:
// non-associative addition in hash order.
func reduceMapOrder(partial map[int]float64) float64 {
	sum := 0.0
	for _, p := range partial { // want `order-sensitive iteration over map partial \(floating-point accumulation into sum\)`
		sum += p
	}
	return sum
}

// collectBlocksNoSort gathers ready block ids from a set without sorting:
// any consumer that walks the result sees hash order.
func collectBlocksNoSort(ready map[int]bool) []int {
	var blocks []int
	for b := range ready { // want `order-sensitive iteration over map ready \(append to blocks\)`
		blocks = append(blocks, b)
	}
	return blocks
}

// dispatchMapOrder feeds a task channel in map order: workers would claim
// blocks in a schedule that varies with the hash seed.
func dispatchMapOrder(tasks chan<- int, pending map[int]bool) {
	for b := range pending { // want `order-sensitive iteration over map pending \(channel send\)`
		tasks <- b
	}
}
