// Fixture: exporter shapes for the observability layer (path suffix
// internal/obs, in the maporder scope). A trace or metrics exporter that
// walks a map in hash order writes different bytes on every run, which
// breaks the golden-file and engine-equivalence tests.
package obs

import "sort"

// exportSorted is the legal idiom: collect keys, sort, then emit.
func exportSorted(counts map[string]int64) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// exportUnsorted appends track names in map order: the exported byte
// stream would depend on the runtime's hash seed.
func exportUnsorted(counts map[string]int64) []string {
	var out []string
	for k := range counts { // want `order-sensitive iteration over map counts \(append to out\)`
		out = append(out, k)
	}
	return out
}

// totalCost folds per-rank float costs in map order: non-associative
// addition makes the summary's low bits run-dependent.
func totalCost(cost map[int]float64) float64 {
	sum := 0.0
	for _, c := range cost { // want `order-sensitive iteration over map cost \(floating-point accumulation into sum\)`
		sum += c
	}
	return sum
}
