// Fixture: map iteration shapes mirroring internal/dmem/layout.go and the
// message path, in a package inside the maporder scope.
package dmem

import (
	"sort"

	"internal/rma"
)

// collectThenSort mirrors layout.go's ext-row indexing: a bare key-collect
// loop immediately sorted is the legal idiom.
func collectThenSort(extSet map[int]bool) []int {
	ext := make([]int, 0, len(extSet))
	for g := range extSet {
		ext = append(ext, g)
	}
	sort.Ints(ext)
	return ext
}

// collectNoSort appends map keys but never sorts: the layout would depend
// on the runtime's hash seed.
func collectNoSort(extSet map[int]bool) []int {
	var ext []int
	for g := range extSet { // want `order-sensitive iteration over map extSet \(append to ext\)`
		ext = append(ext, g)
	}
	return ext
}

// accumulate sums float values in map order: non-associative, so the sum's
// low bits depend on iteration order.
func accumulate(w map[int]float64) float64 {
	total := 0.0
	for _, v := range w { // want `order-sensitive iteration over map w \(floating-point accumulation into total\)`
		total += v
	}
	return total
}

// sendInMapOrder stages messages in map order: the delivery schedule (and
// with it the fault layer's PRNG stream) would differ run to run.
func sendInMapOrder(w *rma.World, nbrs map[int]int) {
	for q := range nbrs { // want `order-sensitive iteration over map nbrs \(message staged through World\.Put\)`
		w.Put(0, q, 0, 8, nil)
	}
}

// channelSend publishes in map order.
func channelSend(ch chan int, set map[int]bool) {
	for k := range set { // want `order-sensitive iteration over map set \(channel send\)`
		ch <- k
	}
}

// indexedWrite mirrors faults.go's straggler table: writes to keyed slots
// commute, so map order cannot leak.
func indexedWrite(slow []float64, stragglers map[int]float64) {
	for p, f := range stragglers {
		if p >= 0 && p < len(slow) {
			slow[p] = f
		}
	}
}

// localCollect appends into a slice declared inside the loop body:
// iteration-local, nothing leaks.
func localCollect(set map[int][]int) int {
	n := 0
	for _, vs := range set {
		pair := []int{}
		pair = append(pair, vs...)
		n += len(pair)
	}
	return n
}

// sliceRange is not a map iteration at all.
func sliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
