// Fixture: a miniature of the real rma runtime, just enough surface for
// the maporder Put case.
package rma

// Tag classifies a message.
type Tag int

// World is the mini runtime.
type World struct{ P int }

// Put stages a one-sided write.
func (w *World) Put(from, to int, tag Tag, bytes int, payload any) {}
