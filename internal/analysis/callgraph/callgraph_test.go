package callgraph_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
)

func decodeFact(t *testing.T, store *framework.FactStore, pkg string) *callgraph.Fact {
	t.Helper()
	data := store.Encoded(pkg, callgraph.Name)
	if data == nil {
		t.Fatalf("no callgraph fact exported for %s", pkg)
	}
	var f callgraph.Fact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		t.Fatalf("decoding callgraph fact of %s: %v", pkg, err)
	}
	return &f
}

func mustFunc(t *testing.T, f *callgraph.Fact, id string) *callgraph.Func {
	t.Helper()
	fn := f.Funcs[id]
	if fn == nil {
		t.Fatalf("fact has no function %s", id)
	}
	return fn
}

// TestFacts pins the exported fact model: FuncIDs (methods, literals),
// hotpath and exemption flags, allocation sites, static edges, the
// two-level field-assignment pools, signature pools, ParamField callback
// summaries propagated across method hops and package boundaries, and the
// method tables CHA resolves against.
func TestFacts(t *testing.T) {
	store := analysistest.RunSuite(t, analysistest.TestData(),
		[]*framework.Analyzer{callgraph.Analyzer}, "cg/a")

	dep := decodeFact(t, store, "cg/dep")
	a := decodeFact(t, store, "cg/a")

	// Two-hop ParamField propagation: help's receiver-relative call lifts
	// into Run's parameter-0 summary.
	help := mustFunc(t, dep, "cg/dep.(*Task).help")
	if len(help.Calls) != 1 || help.Calls[0] != (callgraph.ParamField{Param: -1, Chain: "F"}) {
		t.Errorf("help.Calls = %v, want [{-1 F}]", help.Calls)
	}
	run := mustFunc(t, dep, "cg/dep.(*Pool).Run")
	if len(run.Calls) != 1 || run.Calls[0] != (callgraph.ParamField{Param: 0, Chain: "F"}) {
		t.Errorf("Run.Calls = %v, want [{0 F}]", run.Calls)
	}

	// Flags and sites.
	if !mustFunc(t, a, "cg/a.Mul").Hotpath {
		t.Error("Mul is not marked hotpath")
	}
	if !mustFunc(t, a, "cg/a.refill").ExemptHotalloc {
		t.Error("refill is not marked exempt from hotalloc")
	}
	ns := mustFunc(t, a, "cg/a.newScratch")
	var kinds []string
	for _, s := range ns.AllocSites {
		kinds = append(kinds, s.Kind)
	}
	found := false
	for _, k := range kinds {
		if k == "composite literal" {
			found = true
		}
	}
	if !found {
		t.Errorf("newScratch alloc sites = %v, want a composite literal", kinds)
	}

	// The closure bound in the constructor gets a literal FuncID.
	lit := mustFunc(t, a, "cg/a.newScratch$1")
	if len(lit.Edges) != 1 || lit.Edges[0].Callee != "cg/a.mulRows" {
		t.Errorf("newScratch$1 edges = %v, want one static edge to mulRows", lit.Edges)
	}

	// Two-level field pools: the root-type key is most specific and holds
	// only the mul binding; the immediate-owner key pools every Task.F.
	if got := a.FieldAssigns["cg/a.scratch.mul.F"]; len(got) != 1 || got[0] != "cg/a.newScratch$1" {
		t.Errorf("scratch.mul.F pool = %v, want [cg/a.newScratch$1]", got)
	}
	if got := a.FieldAssigns["cg/a.scratch.add.F"]; len(got) != 1 || got[0] != "cg/a.addRows" {
		t.Errorf("scratch.add.F pool = %v, want [cg/a.addRows]", got)
	}
	if got := a.FieldAssigns["cg/dep.Task.F"]; len(got) != 2 ||
		got[0] != "cg/a.addRows" || got[1] != "cg/a.newScratch$1" {
		t.Errorf("dep.Task.F pool = %v, want [cg/a.addRows cg/a.newScratch$1]", got)
	}

	// Mul: a static edge to Run, plus the fixpoint-materialized dispatch
	// edge carrying both field keys (most specific first) and the
	// signature fallback.
	mul := mustFunc(t, a, "cg/a.Mul")
	var static, dyn *callgraph.Edge
	for i := range mul.Edges {
		e := &mul.Edges[i]
		if e.Callee == "cg/dep.(*Pool).Run" {
			static = e
		}
		if len(e.FieldKeys) > 0 {
			dyn = e
		}
	}
	if static == nil {
		t.Fatalf("Mul has no static edge to Run: %+v", mul.Edges)
	}
	if dyn == nil {
		t.Fatalf("Mul has no field-dispatch edge: %+v", mul.Edges)
	}
	if len(dyn.FieldKeys) != 2 || dyn.FieldKeys[0] != "cg/a.scratch.mul.F" || dyn.FieldKeys[1] != "cg/dep.Task.F" {
		t.Errorf("dispatch edge keys = %v, want [cg/a.scratch.mul.F cg/dep.Task.F]", dyn.FieldKeys)
	}
	if dyn.Sig != "func(lo int, hi int)" && dyn.Sig != "func(int, int)" {
		t.Errorf("dispatch edge sig = %q", dyn.Sig)
	}

	// Signature pool: addRows joined when referenced as a value.
	sigPool := a.SigFuncs[dyn.Sig]
	hasAdd := false
	for _, fn := range sigPool {
		if fn == "cg/a.addRows" {
			hasAdd = true
		}
	}
	if !hasAdd {
		t.Errorf("sig pool %q = %v, want it to contain cg/a.addRows", dyn.Sig, sigPool)
	}

	// Method tables for CHA.
	var taskMethods []string
	for _, tm := range dep.Types {
		if tm.Type == "cg/dep.Task" {
			for _, m := range tm.Methods {
				taskMethods = append(taskMethods, m.Fn)
			}
		}
	}
	if len(taskMethods) != 1 || taskMethods[0] != "cg/dep.(*Task).help" {
		t.Errorf("Task methods = %v, want [cg/dep.(*Task).help]", taskMethods)
	}
}
