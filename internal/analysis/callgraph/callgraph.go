// Package callgraph builds a conservative, interprocedural call graph of
// the module as package-level analysis facts (DESIGN.md §12).
//
// The analyzer itself reports nothing: it summarizes each package — every
// function's allocation sites, wall-clock reads, outgoing call edges, and
// callback behavior — and exports the summary as a fact. The hotalloc and
// walltime analyzers assemble the facts of a package's import closure into
// a universe and walk it: hotalloc proves //dslint:hotpath functions
// transitively allocation-free, walltime proves solver step code never
// reaches a wall-clock read that detrand's per-package check would miss.
//
// Precision model (in order of preference at each call site):
//
//  1. static callees — direct edges;
//  2. calls through a parameter or a parameter's struct field become
//     ParamField callback summaries, resolved at call sites where the
//     caller binds a known function (parallel.Pool.Run(&s.mulTask, nb)
//     yields a precise edge to the mulTask closure, not to every Task in
//     the module);
//  3. interface dispatch by class-hierarchy analysis over the method sets
//     of the universe's named types;
//  4. untracked func values fall back to field-assignment pools (every
//     function assigned to that struct field) and, last, to the pool of
//     address-taken functions with a matching signature.
package callgraph

import (
	"southwell/internal/analysis/framework"
)

// Analyzer builds and exports the package's call-graph fact.
var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "build interprocedural call-graph facts (allocation sites, wall-clock reads, call edges, " +
		"callback summaries) consumed by hotalloc and walltime; reports nothing itself",
	Run: run,
}

func run(pass *framework.Pass) error {
	fact := newBuilder(pass).buildAll()
	return pass.ExportPackageFact(fact)
}
