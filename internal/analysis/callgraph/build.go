package callgraph

// The per-package summary builder. One pass over the typed AST collects,
// for every function and function literal:
//
//   - allocation sites (hotalloc's raw material) and wall-clock sites
//     (walltime's), with //dslint:ignore suppression consumed at build time;
//   - call edges, resolved as precisely as the local information allows:
//     static callees directly; calls through local func-typed variables and
//     struct fields by flow-insensitive candidate tracking; calls through a
//     parameter (or a parameter's field) become ParamField callback
//     summaries so *callers* get precise edges; everything else falls back
//     to field-assignment or signature CHA pools resolved at walk time.
//
// Call-site bindings are captured during the walk but resolved only after
// it (resolve.go): the tracking is flow-insensitive, so a call must see
// assignments that happen later in the body too. A package-local fixpoint
// then propagates callback summaries through same-package call chains —
// e.g. Pool.Run(t) calling t.help() calling t.F() makes Run itself carry
// {Param: 0, Chain: "F"} — and materializes precise edges at call sites
// whose bindings are known. Cross-package callees are resolved against
// their already-exported facts (the import DAG guarantees dependencies
// were analyzed first).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"southwell/internal/analysis/framework"
)

// cand is one candidate value for a func-typed variable, field, or
// argument: a concrete function, a value derived from the enclosing named
// function's parameter (so callers can resolve it), or an open marker
// (something untrackable flowed in; consumers add pool fallback).
type cand struct {
	fn    string // FuncID when concrete
	isPar bool   // value came from parameter par (possibly under field chain)
	par   int
	chain string
	open  bool
}

// binding describes what the walk knew about one bound value — a call
// argument, a receiver, or the callee expression of a dynamic call. It is
// resolved lazily (after the whole body was walked) so flow-insensitive
// tracking sees every assignment.
type binding struct {
	scope *fnScope

	isParam  bool // the value is (a field chain under) a parameter
	par      int
	parChain string

	v    *types.Var // local-variable root, when tracked
	base string     // field chain from v (or the root expr) to the value

	direct []cand // candidates not tied to a variable (literals, named funcs)

	typ      types.Type // static type of the bound value
	rootType types.Type // type of the expression the field chain is rooted at
}

// rawCall is a pending static call site: callee plus bindings, resolved
// against the callee's callback summary during the fixpoint.
type rawCall struct {
	callee        string
	pos           string
	noHot, noWall bool
	recv          *binding
	args          []*binding
}

// dynCall is a pending call through a func value.
type dynCall struct {
	bind          *binding
	pos           string
	noHot, noWall bool
}

// rawFunc is a Func under construction plus its pending call sites and
// dedupe sets.
type rawFunc struct {
	f        *Func
	paramRaw *rawFunc // named function whose params bindings refer to
	calls    []rawCall
	dyns     []dynCall
	edgeSet  map[string]bool
	callSet  map[ParamField]bool
}

type span struct{ lo, hi token.Pos }

type builder struct {
	pass  *framework.Pass
	pkg   string
	raws  map[string]*rawFunc
	order []string

	litIDs   map[*ast.FuncLit]string
	litSeq   map[string]int // enclosing ID -> next literal index
	callFuns map[ast.Expr]bool
	panics   []span
	initSeq  int

	fieldAssigns map[string]map[string]bool // field-pool key -> candidate set
	sigFuncs     map[string]map[string]bool

	depFacts map[string]*Fact // dep package path -> imported fact (nil = none)
}

// fnScope is the lexical tracking state of one top-level function and the
// literals nested inside it. Literals share the maps (closures see the
// enclosing function's locals) but record sites and edges into their own
// rawFunc; parameter-relative discoveries always attach to paramRaw, the
// named function whose callers can bind them.
type fnScope struct {
	b        *builder
	paramRaw *rawFunc
	params   map[*types.Var]int
	vars     map[*types.Var][]cand
	fields   map[*types.Var]map[string][]cand
}

func newBuilder(pass *framework.Pass) *builder {
	return &builder{
		pass:         pass,
		pkg:          pass.Pkg.Path(),
		raws:         map[string]*rawFunc{},
		litIDs:       map[*ast.FuncLit]string{},
		litSeq:       map[string]int{},
		callFuns:     map[ast.Expr]bool{},
		fieldAssigns: map[string]map[string]bool{},
		sigFuncs:     map[string]map[string]bool{},
		depFacts:     map[string]*Fact{},
	}
}

func (b *builder) newRaw(id string, paramRaw *rawFunc) *rawFunc {
	r := &rawFunc{
		f:       &Func{ID: id},
		edgeSet: map[string]bool{},
		callSet: map[ParamField]bool{},
	}
	if paramRaw == nil {
		r.paramRaw = r
	} else {
		r.paramRaw = paramRaw
	}
	b.raws[id] = r
	b.order = append(b.order, id)
	return r
}

func (b *builder) posOf(pos token.Pos) string {
	p := b.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// HotpathDecl reports whether fd is annotated //dslint:hotpath in its doc
// comment.
func HotpathDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//dslint:hotpath") {
			return true
		}
	}
	return false
}

// DeclID computes the FuncID of a declared function or method in the
// package under analysis ("" for init functions and declarations without
// type information). Hotalloc and walltime use it to anchor findings at
// declaration sites.
func DeclID(pass *framework.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil && fd.Name.Name == "init" {
		return ""
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return FuncIDOf(fn)
}

func (b *builder) declID(fd *ast.FuncDecl) string {
	if fd.Recv == nil && fd.Name.Name == "init" {
		b.initSeq++
		return fmt.Sprintf("%s.init#%d", b.pkg, b.initSeq)
	}
	if fn, ok := b.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return FuncIDOf(fn)
	}
	b.initSeq++
	return fmt.Sprintf("%s.decl#%d", b.pkg, b.initSeq)
}

func (b *builder) litID(enclosing string, lit *ast.FuncLit) string {
	if id, ok := b.litIDs[lit]; ok {
		return id
	}
	n := b.litSeq[enclosing]
	b.litSeq[enclosing] = n + 1
	id := fmt.Sprintf("%s$%d", enclosing, n+1)
	b.litIDs[lit] = id
	return id
}

// buildAll walks every declaration in the package, then resolves bindings
// and runs the callback fixpoint, and returns the finished fact.
func (b *builder) buildAll() *Fact {
	for _, f := range b.pass.Files {
		// Pre-pass: mark call-target expressions (so method selectors used
		// as call targets are not double-counted as method values) and
		// panic argument spans (allocations feeding a panic are on a
		// terminating path and exempt).
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := unparen(call.Fun)
			b.callFuns[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				b.callFuns[ast.Expr(sel.Sel)] = true
			}
			if id, isID := fun.(*ast.Ident); isID {
				if bi, isB := b.pass.TypesInfo.Uses[id].(*types.Builtin); isB && bi.Name() == "panic" {
					b.panics = append(b.panics, span{call.Lparen, call.Rparen})
				}
			}
			return true
		})
	}
	for _, f := range b.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			b.buildFunc(fd)
		}
	}
	b.resolveCalls()
	return b.finish()
}

func (b *builder) buildFunc(fd *ast.FuncDecl) {
	id := b.declID(fd)
	raw := b.newRaw(id, nil)
	raw.f.Hotpath = HotpathDecl(fd)
	raw.f.ExemptHotalloc = b.pass.SuppressedBy(fd.Pos(), "hotalloc")
	raw.f.ExemptWalltime = b.pass.SuppressedBy(fd.Pos(), "walltime")

	s := &fnScope{
		b:        b,
		paramRaw: raw,
		params:   map[*types.Var]int{},
		vars:     map[*types.Var][]cand{},
		fields:   map[*types.Var]map[string][]cand{},
	}
	var sig *types.Signature
	if fn, _ := b.pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
		sig = fn.Type().(*types.Signature)
		if r := sig.Recv(); r != nil {
			s.params[r] = -1
		}
		for i := 0; i < sig.Params().Len(); i++ {
			s.params[sig.Params().At(i)] = i
		}
	}
	s.walk(raw, sig, fd.Body)
}

func (b *builder) inPanic(pos token.Pos) bool {
	for _, sp := range b.panics {
		if pos >= sp.lo && pos <= sp.hi {
			return true
		}
	}
	return false
}

func (b *builder) addAllocSite(raw *rawFunc, pos token.Pos, kind, desc string) {
	if raw.f.ExemptHotalloc || b.inPanic(pos) || b.pass.SuppressedBy(pos, "hotalloc") {
		return
	}
	raw.f.AllocSites = append(raw.f.AllocSites, Site{Kind: kind, Desc: desc, Pos: b.posOf(pos)})
}

func (b *builder) addWallSite(raw *rawFunc, pos token.Pos, desc string) {
	if raw.f.ExemptWalltime || b.inPanic(pos) || b.pass.SuppressedBy(pos, "walltime") {
		return
	}
	raw.f.WallSites = append(raw.f.WallSites, Site{Kind: "wall clock", Desc: desc, Pos: b.posOf(pos)})
}

func (b *builder) addEdge(raw *rawFunc, e Edge) bool {
	key := fmt.Sprintf("%s|%s|%s|%v|%v|%s|%s|%v%v",
		e.Callee, e.Method, e.Iface, e.IfaceMethods, e.FieldKeys, e.Sig, e.Pos, e.NoHotalloc, e.NoWalltime)
	if raw.edgeSet[key] {
		return false
	}
	raw.edgeSet[key] = true
	raw.f.Edges = append(raw.f.Edges, e)
	return true
}

func (b *builder) addCall(raw *rawFunc, pf ParamField) bool {
	if raw.callSet[pf] {
		return false
	}
	raw.callSet[pf] = true
	raw.f.Calls = append(raw.f.Calls, pf)
	return true
}

func (b *builder) addFieldAssign(keys []string, c cand) {
	for _, key := range keys {
		set := b.fieldAssigns[key]
		if set == nil {
			set = map[string]bool{}
			b.fieldAssigns[key] = set
		}
		if c.fn != "" {
			set[c.fn] = true
		} else {
			set["?"] = true
		}
	}
}

func (b *builder) addSigFunc(sig, fn string) {
	set := b.sigFuncs[sig]
	if set == nil {
		set = map[string]bool{}
		b.sigFuncs[sig] = set
	}
	set[fn] = true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (b *builder) typeOf(e ast.Expr) types.Type {
	if tv, ok := b.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := b.pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// chainType walks a dotted field chain from t ("a.F" -> type of F) and
// returns nil when any step is not a struct field.
func chainType(t types.Type, chain string) types.Type {
	if chain == "" {
		return t
	}
	for _, name := range strings.Split(chain, ".") {
		if t == nil {
			return nil
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		var ft types.Type
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				ft = st.Field(i).Type()
				break
			}
		}
		t = ft
	}
	return t
}

// fieldKeys names the field-assignment pools for the field reached from
// rootType via chain, most specific first: the full chain keyed by the
// root's named type ("sparse.kernScratch.mulTask.F"), then the immediate
// owner of the last field ("parallel.Task.F"). Assignments are recorded
// under both; call-site lookups use the first pool that has candidates,
// so kernels resolving their own scratch tasks are not polluted by other
// assignments to the same generic field.
func fieldKeys(rootType types.Type, chain string) []string {
	if chain == "" || rootType == nil {
		return nil
	}
	var keys []string
	if rk := typeKey(rootType); rk != "" {
		keys = append(keys, rk+"."+chain)
	}
	parts := strings.Split(chain, ".")
	if len(parts) > 1 {
		owner := chainType(rootType, strings.Join(parts[:len(parts)-1], "."))
		if ok := typeKey(owner); owner != nil && ok != "" {
			imm := ok + "." + parts[len(parts)-1]
			if len(keys) == 0 || keys[0] != imm {
				keys = append(keys, imm)
			}
		}
	}
	return keys
}

// fieldChain climbs a selector expression while every step is a struct
// field access, returning the root expression and the dotted chain.
func (b *builder) fieldChain(sel *ast.SelectorExpr) (root ast.Expr, chain string, ok bool) {
	var parts []string
	e := ast.Expr(sel)
	for {
		se, isSel := e.(*ast.SelectorExpr)
		if !isSel {
			break
		}
		si := b.pass.TypesInfo.Selections[se]
		if si == nil || si.Kind() != types.FieldVal {
			break
		}
		parts = append([]string{se.Sel.Name}, parts...)
		e = unparen(se.X)
	}
	if len(parts) == 0 {
		return nil, "", false
	}
	return e, strings.Join(parts, "."), true
}

// localVar resolves e to a function-local (or parameter) variable object.
func (b *builder) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := b.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if v == nil || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level var: not locally tracked
	}
	return v
}

// candsOf derives the candidate set for a func-valued expression at walk
// time (assignment right-hand sides). An empty result means "untracked".
func (s *fnScope) candsOf(raw *rawFunc, e ast.Expr) []cand {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.FuncLit:
		return []cand{{fn: s.b.litID(raw.f.ID, e)}}
	case *ast.Ident:
		switch obj := s.b.pass.TypesInfo.ObjectOf(e).(type) {
		case *types.Func:
			return []cand{{fn: FuncIDOf(obj)}}
		case *types.Var:
			if idx, isPar := s.params[obj]; isPar {
				return []cand{{isPar: true, par: idx}}
			}
			return append([]cand(nil), s.vars[obj]...)
		}
	case *ast.SelectorExpr:
		if fn, ok := s.b.pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return []cand{{fn: FuncIDOf(fn)}}
		}
		if root, chain, ok := s.b.fieldChain(e); ok {
			if v := s.b.localVar(root); v != nil {
				if idx, isPar := s.params[v]; isPar {
					return []cand{{isPar: true, par: idx, chain: chain}}
				}
				if m := s.fields[v]; m != nil {
					return append([]cand(nil), m[chain]...)
				}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.candsOf(raw, e.X)
		}
	}
	return nil
}

// joinChain concatenates two dotted field chains.
func joinChain(a, c string) string {
	switch {
	case a == "":
		return c
	case c == "":
		return a
	default:
		return a + "." + c
	}
}

// bindingOf captures what the walk knows about one bound value (a call
// argument, receiver, or dynamic callee expression). Candidate lookup
// happens later, in resolve.go.
func (s *fnScope) bindingOf(raw *rawFunc, arg ast.Expr) *binding {
	bd := &binding{scope: s, typ: s.b.typeOf(arg)}
	core := unparen(arg)
	if u, ok := core.(*ast.UnaryExpr); ok && u.Op == token.AND {
		core = unparen(u.X)
	}
	switch e := core.(type) {
	case *ast.FuncLit:
		bd.direct = []cand{{fn: s.b.litID(raw.f.ID, e)}}
	case *ast.Ident:
		if fn, ok := s.b.pass.TypesInfo.ObjectOf(e).(*types.Func); ok {
			bd.direct = []cand{{fn: FuncIDOf(fn)}}
			return bd
		}
		if v := s.b.localVar(e); v != nil {
			if idx, isPar := s.params[v]; isPar {
				bd.isParam, bd.par = true, idx
			} else {
				bd.v = v
				bd.rootType = v.Type()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := s.b.pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			// Package function or method value used as the bound value.
			bd.direct = []cand{{fn: FuncIDOf(fn)}}
			return bd
		}
		if root, chain, ok := s.b.fieldChain(e); ok {
			bd.base = chain
			bd.rootType = s.b.typeOf(root)
			if v := s.b.localVar(root); v != nil {
				if idx, isPar := s.params[v]; isPar {
					bd.isParam, bd.par, bd.parChain = true, idx, chain
					bd.v = nil
				} else {
					bd.v = v
				}
			}
		}
	}
	return bd
}

// recordAssign tracks one lhs = rhs pair: local func vars, local struct
// fields, the global field-assignment pools, and interface-boxing sites.
func (s *fnScope) recordAssign(raw *rawFunc, lhs, rhs ast.Expr) {
	lt := s.b.typeOf(lhs)
	if rhs != nil && s.b.isBox(lt, rhs) {
		s.b.addAllocSite(raw, rhs.Pos(), "interface boxing",
			"assignment boxes "+typeDesc(s.b.typeOf(rhs))+" into interface")
	}

	var cands []cand
	if rhs != nil {
		cands = s.candsOf(raw, rhs)
		rhsCore := unparen(rhs)
		if u, ok := rhsCore.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhsCore = unparen(u.X)
		}
		if cl, ok := rhsCore.(*ast.CompositeLit); ok {
			s.recordCompositeFields(raw, lhs, cl)
		}
	}
	if len(cands) == 0 {
		cands = []cand{{open: true}}
	}

	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if !isFuncType(lt) {
			return
		}
		if v := s.b.localVar(l); v != nil {
			if _, isPar := s.params[v]; !isPar {
				s.vars[v] = append(s.vars[v], cands...)
			}
		}
	case *ast.SelectorExpr:
		if !isFuncType(lt) {
			return
		}
		root, chain, ok := s.b.fieldChain(l)
		if !ok {
			return
		}
		if v := s.b.localVar(root); v != nil {
			if _, isPar := s.params[v]; !isPar {
				m := s.fields[v]
				if m == nil {
					m = map[string][]cand{}
					s.fields[v] = m
				}
				m[chain] = append(m[chain], cands...)
			}
		}
		if keys := fieldKeys(s.b.typeOf(root), chain); keys != nil {
			for _, c := range cands {
				s.b.addFieldAssign(keys, c)
			}
		}
	}
}

// recordCompositeFields tracks func-typed fields initialized in a struct
// composite literal: t := parallel.Task{F: fn}.
func (s *fnScope) recordCompositeFields(raw *rawFunc, lhs ast.Expr, cl *ast.CompositeLit) {
	clType := s.b.typeOf(cl)
	if clType == nil {
		return
	}
	if _, ok := clType.Underlying().(*types.Struct); !ok {
		return
	}
	var lv *types.Var
	if v := s.b.localVar(lhs); v != nil {
		if _, isPar := s.params[v]; !isPar {
			lv = v
		}
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isFuncType(s.b.typeOf(kv.Value)) {
			continue
		}
		cands := s.candsOf(raw, kv.Value)
		if len(cands) == 0 {
			cands = []cand{{open: true}}
		}
		if lv != nil {
			m := s.fields[lv]
			if m == nil {
				m = map[string][]cand{}
				s.fields[lv] = m
			}
			m[key.Name] = append(m[key.Name], cands...)
		}
		if keys := fieldKeys(clType, key.Name); keys != nil {
			for _, c := range cands {
				s.b.addFieldAssign(keys, c)
			}
		}
	}
}

// isBox reports whether assigning/passing src into a destination of type
// dst boxes a concrete value into an interface, allocating. Direct-iface
// values (pointers, chans, maps, funcs) and constants are exempt.
func (b *builder) isBox(dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := b.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	st := tv.Type
	if b, isBasic := st.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	if _, isIface := st.Underlying().(*types.Interface); isIface {
		return false
	}
	return !directIface(st)
}
