package callgraph

// Post-walk resolution. Bindings captured during the AST walk are resolved
// here, after every assignment in the package has been seen (the tracking
// is flow-insensitive). Dynamic calls resolve once; static calls resolve
// against their callee's ParamField callback summary, iterated to a
// fixpoint because same-package summaries grow as resolution discovers new
// parameter-relative calls (Pool.Run -> Task.help -> t.F()).

import (
	"go/types"
	"sort"
)

// depFact returns (and caches) the callgraph fact of a dependency package.
func (b *builder) depFact(pkgPath string) *Fact {
	if f, ok := b.depFacts[pkgPath]; ok {
		return f
	}
	var f Fact
	ok, err := b.pass.ImportPackageFact(pkgPath, Name, &f)
	if err != nil || !ok {
		b.depFacts[pkgPath] = nil
		return nil
	}
	b.depFacts[pkgPath] = &f
	return &f
}

// callbacksOf returns the callback summary of a static callee and whether
// the callee is in the analysis universe at all. Same-package callees read
// the live summary (it grows during the fixpoint); cross-package callees
// read their exported fact.
func (b *builder) callbacksOf(calleeID string) ([]ParamField, bool) {
	pkg := PkgOfID(calleeID)
	if pkg == b.pkg {
		if raw := b.raws[calleeID]; raw != nil {
			return raw.f.Calls, true
		}
		return nil, false
	}
	if f := b.depFact(pkg); f != nil {
		if fn := f.Funcs[calleeID]; fn != nil {
			return fn.Calls, true
		}
	}
	return nil, false
}

// resolveBinding materializes what a resolved binding implies for the
// function raw: precise edges for concrete candidates, callback-summary
// entries (attached to the enclosing named function) for parameter-relative
// ones, and pool-fallback edges when the candidate set is open or empty.
// chain is the field chain the callee invokes under the bound value.
// Returns whether anything new was added.
func (b *builder) resolveBinding(raw *rawFunc, bind *binding, chain, pos string, noHot, noWall bool) bool {
	if bind == nil {
		return false
	}
	changed := false
	matched := false
	open := false

	use := func(c cand, extra string) {
		switch {
		case c.fn != "":
			if extra != "" {
				// A concrete function has no fields; an unresolved
				// remainder means the tracking lost precision.
				open = true
				return
			}
			if b.addEdge(raw, Edge{Callee: c.fn, Pos: pos, NoHotalloc: noHot, NoWalltime: noWall}) {
				changed = true
			}
			matched = true
		case c.isPar:
			if b.addCall(raw.paramRaw, ParamField{Param: c.par, Chain: joinChain(c.chain, extra)}) {
				changed = true
			}
			matched = true
		case c.open:
			open = true
		}
	}

	if bind.isParam {
		if b.addCall(raw.paramRaw, ParamField{Param: bind.par, Chain: joinChain(bind.parChain, chain)}) {
			changed = true
		}
		matched = true
	}
	for _, c := range bind.direct {
		use(c, chain)
	}
	if bind.v != nil && bind.scope != nil {
		full := joinChain(bind.base, chain)
		if full == "" {
			for _, c := range bind.scope.vars[bind.v] {
				use(c, "")
			}
		} else if m := bind.scope.fields[bind.v]; m != nil {
			cs, ok := m[full]
			if ok {
				for _, c := range cs {
					use(c, "")
				}
			} else {
				open = true // field never assigned locally: consult pools
			}
		} else {
			open = true
		}
	}

	if matched && !open {
		return changed
	}

	// Pool fallback from static types.
	rootT := bind.rootType
	fullChain := joinChain(bind.base, chain)
	if rootT == nil {
		rootT = bind.typ
		fullChain = chain
	}
	var sigs string
	if ft := chainType(rootT, fullChain); ft != nil {
		if fsig, ok := ft.Underlying().(*types.Signature); ok {
			sigs = sigStr(fsig)
		}
	} else if isFuncType(bind.typ) && chain == "" {
		sigs = sigStr(bind.typ.Underlying().(*types.Signature))
	}
	keys := fieldKeys(rootT, fullChain)
	if len(keys) > 0 || sigs != "" {
		if b.addEdge(raw, Edge{FieldKeys: keys, Sig: sigs, Pos: pos, NoHotalloc: noHot, NoWalltime: noWall}) {
			changed = true
		}
	}
	return changed
}

// resolveCalls resolves every deferred dynamic call once, then iterates
// static-call callback resolution to a fixpoint.
func (b *builder) resolveCalls() {
	for _, id := range b.order {
		raw := b.raws[id]
		for _, dc := range raw.dyns {
			b.resolveBinding(raw, dc.bind, "", dc.pos, dc.noHot, dc.noWall)
		}
	}
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, id := range b.order {
			raw := b.raws[id]
			for i := range raw.calls {
				rc := &raw.calls[i]
				pfs, inUniverse := b.callbacksOf(rc.callee)
				if !inUniverse {
					// External callee: it may invoke any func value we
					// hand it, so resolve every binding conservatively.
					if b.resolveExternal(raw, rc) {
						changed = true
					}
					continue
				}
				for _, pf := range pfs {
					var bind *binding
					switch {
					case pf.Param == -1:
						bind = rc.recv
					case pf.Param >= 0 && pf.Param < len(rc.args):
						bind = rc.args[pf.Param]
					}
					if b.resolveBinding(raw, bind, pf.Chain, rc.pos, rc.noHot, rc.noWall) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// resolveExternal conservatively assumes an out-of-universe callee invokes
// every func-typed value bound at the call site (sort.SliceStable calling
// its less closure, sync.Once.Do calling its method value).
func (b *builder) resolveExternal(raw *rawFunc, rc *rawCall) bool {
	changed := false
	resolveIfFunc := func(bind *binding) {
		if bind == nil || !isFuncType(bind.typ) {
			return
		}
		if b.resolveBinding(raw, bind, "", rc.pos, rc.noHot, rc.noWall) {
			changed = true
		}
	}
	resolveIfFunc(rc.recv)
	for _, bind := range rc.args {
		resolveIfFunc(bind)
	}
	return changed
}

// finish assembles the exported fact: function summaries, the package's
// named-type method sets for CHA, and the sorted candidate pools.
func (b *builder) finish() *Fact {
	fact := &Fact{
		Funcs:        make(map[string]*Func, len(b.raws)),
		FieldAssigns: make(map[string][]string, len(b.fieldAssigns)),
		SigFuncs:     make(map[string][]string, len(b.sigFuncs)),
	}
	for id, raw := range b.raws {
		fact.Funcs[id] = raw.f
	}
	for key, set := range b.fieldAssigns {
		fact.FieldAssigns[key] = sortedKeys(set)
	}
	for key, set := range b.sigFuncs {
		fact.SigFuncs[key] = sortedKeys(set)
	}

	// Named types and their (pointer) method sets, for interface CHA.
	scope := b.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		tm := TypeMethods{Type: typeKey(named)}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			sel := ms.At(i)
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				continue
			}
			fsig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if fsig.Recv() != nil {
				if _, isIface := fsig.Recv().Type().Underlying().(*types.Interface); isIface {
					continue // promoted from an embedded interface: no impl here
				}
			}
			tm.Methods = append(tm.Methods, MethodRef{
				Name: fn.Name(),
				Sig:  sigStr(fsig),
				Fn:   FuncIDOf(fn),
			})
		}
		sort.Slice(tm.Methods, func(i, j int) bool { return tm.Methods[i].Name < tm.Methods[j].Name })
		fact.Types = append(fact.Types, tm)
	}
	sort.Slice(fact.Types, func(i, j int) bool { return fact.Types[i].Type < fact.Types[j].Type })
	return fact
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
