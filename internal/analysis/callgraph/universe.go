package callgraph

// The analysis universe: the callgraph facts of a package's import closure
// merged into one queryable graph, plus the deterministic reachability
// walk hotalloc and walltime are built on.

import (
	"fmt"
	"go/types"
	"sort"
	"strings"

	"southwell/internal/analysis/framework"
)

// Universe merges the callgraph facts of the package under analysis and
// its transitive imports.
type Universe struct {
	funcs      map[string]*Func
	fieldPools map[string][]string
	sigPools   map[string][]string
	types      []TypeMethods
}

// NewUniverse imports the callgraph facts of pass's package and every
// package in its import closure (packages without facts — the standard
// library — are simply absent: calls into them are "external").
func NewUniverse(pass *framework.Pass) (*Universe, error) {
	paths := map[string]bool{pass.Pkg.Path(): true}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if paths[p.Path()] {
			return
		}
		paths[p.Path()] = true
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		visit(imp)
	}

	u := &Universe{
		funcs:      map[string]*Func{},
		fieldPools: map[string][]string{},
		sigPools:   map[string][]string{},
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		var f Fact
		ok, err := pass.ImportPackageFact(p, Name, &f)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		for id, fn := range f.Funcs {
			u.funcs[id] = fn
		}
		for k, v := range f.FieldAssigns {
			u.fieldPools[k] = mergeSorted(u.fieldPools[k], v)
		}
		for k, v := range f.SigFuncs {
			u.sigPools[k] = mergeSorted(u.sigPools[k], v)
		}
		u.types = append(u.types, f.Types...)
	}
	sort.Slice(u.types, func(i, j int) bool { return u.types[i].Type < u.types[j].Type })
	return u, nil
}

func mergeSorted(a, b []string) []string {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Func returns the summary for a FuncID, or nil when the function is
// outside the universe (external).
func (u *Universe) Func(id string) *Func { return u.funcs[id] }

// implementers returns the FuncIDs implementing method on every universe
// type whose method set satisfies the full interface method list.
func (u *Universe) implementers(method string, ifaceMethods []MethodSig) []string {
	var out []string
	for _, tm := range u.types {
		if !satisfies(tm, ifaceMethods) {
			continue
		}
		for _, m := range tm.Methods {
			if m.Name == method {
				out = append(out, m.Fn)
			}
		}
	}
	sort.Strings(out)
	return out
}

func satisfies(tm TypeMethods, want []MethodSig) bool {
	for _, w := range want {
		found := false
		for _, m := range tm.Methods {
			if m.Name == w.Name && m.Sig == w.Sig {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return len(want) > 0
}

// edgeTargets resolves one edge to its candidate FuncIDs plus, when the
// edge leads out of the universe, the external callee ID. unresolved is
// true when a dynamic edge had no candidate pool at all.
func (u *Universe) edgeTargets(e *Edge) (inUniverse []string, external string, unresolved bool) {
	switch {
	case e.Callee != "":
		if u.funcs[e.Callee] != nil {
			return []string{e.Callee}, "", false
		}
		return nil, e.Callee, false
	case e.Method != "":
		targets := u.implementers(e.Method, e.IfaceMethods)
		return targets, "", len(targets) == 0
	default:
		var cands []string
		openPool := true
		for _, key := range e.FieldKeys {
			if pool := u.fieldPools[key]; len(pool) > 0 {
				openPool = false
				for _, fn := range pool {
					if fn == "?" {
						openPool = true
						continue
					}
					cands = append(cands, fn)
				}
				break // most specific non-empty pool wins
			}
		}
		if openPool && e.Sig != "" {
			cands = mergeSorted(cands, u.sigPools[e.Sig])
		}
		sort.Strings(cands)
		return cands, "", len(cands) == 0
	}
}

// WalkMode selects which exemption flags and edge suppressions apply.
type WalkMode int

const (
	// ModeHotalloc walks for allocation-freedom (hotalloc).
	ModeHotalloc WalkMode = iota
	// ModeWalltime walks for wall-clock-freedom (walltime).
	ModeWalltime
)

func (m WalkMode) skipFunc(f *Func) bool {
	if m == ModeHotalloc {
		return f.ExemptHotalloc
	}
	return f.ExemptWalltime
}

func (m WalkMode) skipEdge(e *Edge) bool {
	if m == ModeHotalloc {
		return e.NoHotalloc
	}
	return e.NoWalltime
}

// Reached is one function reached from a walk root, with the call path
// that discovered it.
type Reached struct {
	Fn   *Func
	Path []string // "funcID (file.go:NN)" steps from the root, inclusive
}

// Walk explores the universe from root (which must be in the universe),
// honoring mode's exemptions and edge suppressions, and calls visit for
// every reached function exactly once (breadth-first, deterministic
// order). onExternal is called once per distinct external callee with the
// path to its call site; onUnresolved once per unresolved dynamic edge.
// Either may be nil.
func (u *Universe) Walk(root string, mode WalkMode, visit func(Reached), onExternal func(callee string, path []string), onUnresolved func(desc string, path []string)) {
	rootFn := u.funcs[root]
	if rootFn == nil || mode.skipFunc(rootFn) {
		return
	}
	type qitem struct {
		id   string
		path []string
	}
	seen := map[string]bool{root: true}
	extSeen := map[string]bool{}
	queue := []qitem{{root, []string{root}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fn := u.funcs[it.id]
		if fn == nil {
			continue
		}
		if visit != nil {
			visit(Reached{Fn: fn, Path: it.path})
		}
		for i := range fn.Edges {
			e := &fn.Edges[i]
			if mode.skipEdge(e) {
				continue
			}
			step := fmt.Sprintf("%s (%s)", it.id, e.Pos)
			targets, external, unresolved := u.edgeTargets(e)
			if external != "" && onExternal != nil && !extSeen["x|"+external] {
				extSeen["x|"+external] = true
				onExternal(external, append(append([]string{}, it.path[:len(it.path)-1]...), step))
			}
			if unresolved && onUnresolved != nil {
				desc := dynDesc(e)
				if !extSeen["u|"+desc+"|"+e.Pos] {
					extSeen["u|"+desc+"|"+e.Pos] = true
					onUnresolved(desc, append(append([]string{}, it.path[:len(it.path)-1]...), step))
				}
			}
			for _, t := range targets {
				if seen[t] {
					continue
				}
				seen[t] = true
				tf := u.funcs[t]
				if tf == nil || mode.skipFunc(tf) {
					continue
				}
				path := make([]string, 0, len(it.path)+1)
				path = append(path, it.path[:len(it.path)-1]...)
				path = append(path, step, t)
				queue = append(queue, qitem{t, path})
			}
		}
	}
}

// dynDesc names an unresolved dynamic edge for diagnostics.
func dynDesc(e *Edge) string {
	switch {
	case e.Method != "":
		return fmt.Sprintf("interface call %s.%s", e.Iface, e.Method)
	case len(e.FieldKeys) > 0:
		return "call through func field " + e.FieldKeys[0]
	case e.Sig != "":
		return "call through func value " + e.Sig
	default:
		return "dynamic call"
	}
}

// FormatPath renders a call path for a diagnostic message.
func FormatPath(path []string) string {
	return strings.Join(path, " -> ")
}
