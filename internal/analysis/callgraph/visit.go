package callgraph

// The AST visitor: dispatches statements and expressions of one function
// body to site recording, assignment tracking, and call handling. Nested
// function literals get their own rawFunc but share the lexical scope maps
// (closures see the enclosing function's locals).

import (
	"go/ast"
	"go/token"
	"go/types"

	"southwell/internal/analysis/lintutil"
)

// walk visits n recording sites, assignments, and calls into raw. sig is
// the signature of the function whose body n belongs to (for return-site
// boxing checks).
func (s *fnScope) walk(raw *rawFunc, sig *types.Signature, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.visitLit(raw, n)
			return false

		case *ast.CallExpr:
			s.call(raw, n)

		case *ast.GoStmt:
			s.b.addAllocSite(raw, n.Pos(), "go statement", "spawning a goroutine")

		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					s.recordAssign(raw, n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					s.recordAssign(raw, l, nil)
				}
			}
			if n.Tok == token.ADD_ASSIGN && isStringType(s.b.typeOf(n.Lhs[0])) {
				s.b.addAllocSite(raw, n.Pos(), "string concatenation", "s += ...")
			}

		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					s.recordAssign(raw, name, n.Values[i])
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(s.b.typeOf(n)) {
				if tv, ok := s.b.pass.TypesInfo.Types[ast.Expr(n)]; !ok || tv.Value == nil {
					s.b.addAllocSite(raw, n.OpPos, "string concatenation", "string +")
				}
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					s.b.addAllocSite(raw, n.Pos(), "composite literal",
						"&"+typeDesc(s.b.typeOf(cl))+"{...} escapes to heap")
				}
			}

		case *ast.CompositeLit:
			if t := s.b.typeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					s.b.addAllocSite(raw, n.Pos(), "composite literal", typeDesc(t)+"{...}")
				}
			}

		case *ast.SelectorExpr:
			s.visitSelector(raw, n)

		case *ast.Ident:
			// A named function referenced as a value (not the target of a
			// call) joins the signature CHA pool.
			if !s.b.callFuns[ast.Expr(n)] {
				if fn, ok := s.b.pass.TypesInfo.Uses[n].(*types.Func); ok {
					if fsig, ok := fn.Type().(*types.Signature); ok && fsig.Recv() == nil {
						s.b.addSigFunc(sigStr(fsig), FuncIDOf(fn))
					}
				}
			}

		case *ast.ReturnStmt:
			if sig != nil && sig.Results() != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					if s.b.isBox(sig.Results().At(i).Type(), r) {
						s.b.addAllocSite(raw, r.Pos(), "interface boxing",
							"return boxes "+typeDesc(s.b.typeOf(r))+" into interface")
					}
				}
			}

		case *ast.SendStmt:
			if ct := s.b.typeOf(n.Chan); ct != nil {
				if c, ok := ct.Underlying().(*types.Chan); ok && s.b.isBox(c.Elem(), n.Value) {
					s.b.addAllocSite(raw, n.Value.Pos(), "interface boxing",
						"channel send boxes "+typeDesc(s.b.typeOf(n.Value))+" into interface")
				}
			}
		}
		return true
	})
}

// visitLit handles a function literal: allocate its rawFunc, record the
// closure-capture allocation in the enclosing function, register it in the
// signature pool, and walk its body under the shared scope.
func (s *fnScope) visitLit(raw *rawFunc, lit *ast.FuncLit) {
	id := s.b.litID(raw.f.ID, lit)
	litRaw, exists := s.b.raws[id]
	if !exists {
		litRaw = s.b.newRaw(id, s.paramRaw)
		litRaw.f.ExemptHotalloc = raw.f.ExemptHotalloc
		litRaw.f.ExemptWalltime = raw.f.ExemptWalltime
	}
	var litSig *types.Signature
	if t := s.b.typeOf(lit); t != nil {
		litSig, _ = t.Underlying().(*types.Signature)
	}
	if litSig != nil {
		s.b.addSigFunc(sigStr(litSig), id)
	}
	if capturesVariables(s.b.pass.TypesInfo, lit) {
		s.b.addAllocSite(raw, lit.Pos(), "closure capture", "func literal captures variables")
	}
	s.walk(litRaw, litSig, lit.Body)
}

// visitSelector records wall-clock reads (time.Now and friends) and
// method-value closures (x.M used as a value).
func (s *fnScope) visitSelector(raw *rawFunc, sel *ast.SelectorExpr) {
	if path, obj, ok := lintutil.PkgQualified(s.b.pass.TypesInfo, sel); ok {
		if path == "time" && lintutil.WallClockFuncs[obj.Name()] {
			if _, isType := obj.(*types.TypeName); !isType {
				s.b.addWallSite(raw, sel.Pos(), "time."+obj.Name())
			}
		}
		return
	}
	if s.b.callFuns[ast.Expr(sel)] {
		return
	}
	si := s.b.pass.TypesInfo.Selections[sel]
	if si == nil {
		return
	}
	fn, ok := si.Obj().(*types.Func)
	if !ok {
		return
	}
	switch si.Kind() {
	case types.MethodVal:
		// x.M as a value: allocates a bound-method closure.
		s.b.addAllocSite(raw, sel.Pos(), "method value", "bound method value "+sel.Sel.Name)
		s.b.addSigFunc(sigStr(si.Type().(*types.Signature)), FuncIDOf(fn))
	case types.MethodExpr:
		// T.M as a value: a static func, no allocation.
		s.b.addSigFunc(sigStr(si.Type().(*types.Signature)), FuncIDOf(fn))
	}
}

// call classifies one call expression: builtin, conversion, static callee,
// interface dispatch, or dynamic func value.
func (s *fnScope) call(raw *rawFunc, callExpr *ast.CallExpr) {
	fun := unparen(callExpr.Fun)

	// Conversions: T(x).
	if tv, ok := s.b.pass.TypesInfo.Types[callExpr.Fun]; ok && tv.IsType() {
		s.convSites(raw, tv.Type, callExpr)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if bi, isB := s.b.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch bi.Name() {
			case "make":
				s.b.addAllocSite(raw, callExpr.Pos(), "make", exprDesc(callExpr))
			case "new":
				s.b.addAllocSite(raw, callExpr.Pos(), "new", exprDesc(callExpr))
			case "append":
				s.b.addAllocSite(raw, callExpr.Pos(), "growing append", exprDesc(callExpr))
			}
			return
		}
	}

	// Calls inside panic(...) arguments are on a terminating path: no
	// edges (their sites are already exempt in addAllocSite/addWallSite).
	if s.b.inPanic(callExpr.Pos()) {
		return
	}

	noHot := s.b.pass.SuppressedBy(callExpr.Pos(), "hotalloc")
	noWall := s.b.pass.SuppressedBy(callExpr.Pos(), "walltime")
	pos := s.b.posOf(callExpr.Pos())

	// Static callee?
	var callee *types.Func
	var recvExpr ast.Expr
	argStart := 0
	switch f := fun.(type) {
	case *ast.Ident:
		callee, _ = s.b.pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.IndexExpr:
		// Generic instantiation f[T](...).
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			callee, _ = s.b.pass.TypesInfo.Uses[id].(*types.Func)
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			callee, _ = s.b.pass.TypesInfo.Uses[id].(*types.Func)
		}
	case *ast.SelectorExpr:
		if si := s.b.pass.TypesInfo.Selections[f]; si != nil {
			if fn, ok := si.Obj().(*types.Func); ok {
				switch si.Kind() {
				case types.MethodVal:
					if _, isIface := si.Recv().Underlying().(*types.Interface); isIface {
						s.ifaceCall(raw, f, si, pos, noHot, noWall)
						s.argBoxes(raw, fn.Type().(*types.Signature), callExpr)
						return
					}
					callee = fn
					recvExpr = f.X
				case types.MethodExpr:
					// T.M(recv, args...): args[0] is the receiver.
					callee = fn
					if len(callExpr.Args) > 0 {
						recvExpr = callExpr.Args[0]
						argStart = 1
					}
				}
			}
		} else if fn, ok := s.b.pass.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			// Package-qualified function.
			if p := fn.Pkg(); p != nil && p.Path() == "time" && lintutil.WallClockFuncs[fn.Name()] {
				return // recorded as a wall site by visitSelector
			}
			callee = fn
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: a static edge to the literal.
		litID := s.b.litID(raw.f.ID, f)
		s.b.addEdge(raw, Edge{Callee: litID, Pos: pos, NoHotalloc: noHot, NoWalltime: noWall})
		return
	}

	if callee != nil {
		s.staticCall(raw, callee, recvExpr, argStart, callExpr, pos, noHot, noWall)
		return
	}

	// Dynamic call through a func value: resolved after the walk.
	ft := s.b.typeOf(fun)
	if isFuncType(ft) {
		if fsig, ok := ft.Underlying().(*types.Signature); ok {
			s.argBoxes(raw, fsig, callExpr)
		}
		raw.dyns = append(raw.dyns, dynCall{
			bind: s.bindingOf(raw, fun), pos: pos, noHot: noHot, noWall: noWall,
		})
	}
}

// convSites records allocation sites for allocating conversions: boxing
// into an interface and string<->[]byte/[]rune copies.
func (s *fnScope) convSites(raw *rawFunc, dst types.Type, callExpr *ast.CallExpr) {
	if len(callExpr.Args) != 1 {
		return
	}
	arg := callExpr.Args[0]
	if s.b.isBox(dst, arg) {
		s.b.addAllocSite(raw, callExpr.Pos(), "interface boxing",
			"conversion boxes "+typeDesc(s.b.typeOf(arg))+" into interface")
		return
	}
	srcT := s.b.typeOf(arg)
	if srcT == nil {
		return
	}
	if tv, ok := s.b.pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return // constant conversions are materialized statically
	}
	if isStringType(dst) && isByteOrRuneSlice(srcT) ||
		isByteOrRuneSlice(dst) && isStringType(srcT) {
		s.b.addAllocSite(raw, callExpr.Pos(), "string conversion", exprDesc(callExpr))
	}
}

// ifaceCall records a dynamic interface-dispatch edge, resolved by CHA
// method-set matching at walk time.
func (s *fnScope) ifaceCall(raw *rawFunc, sel *ast.SelectorExpr, si *types.Selection, pos string, noHot, noWall bool) {
	iface := si.Recv().Underlying().(*types.Interface)
	s.b.addEdge(raw, Edge{
		Method:       sel.Sel.Name,
		Iface:        types.TypeString(si.Recv(), pathQual),
		IfaceMethods: ifaceMethodSet(iface),
		Pos:          pos,
		NoHotalloc:   noHot,
		NoWalltime:   noWall,
	})
}

// staticCall records the edge to a known callee and captures argument
// bindings for the callback fixpoint.
func (s *fnScope) staticCall(raw *rawFunc, callee *types.Func, recvExpr ast.Expr, argStart int, callExpr *ast.CallExpr, pos string, noHot, noWall bool) {
	id := FuncIDOf(callee)
	s.b.addEdge(raw, Edge{Callee: id, Pos: pos, NoHotalloc: noHot, NoWalltime: noWall})

	sig, _ := callee.Type().(*types.Signature)
	if sig != nil {
		s.argBoxes(raw, sig, callExpr)
	}

	rc := rawCall{callee: id, pos: pos, noHot: noHot, noWall: noWall}
	if recvExpr != nil {
		rc.recv = s.bindingOf(raw, recvExpr)
	}
	for _, a := range callExpr.Args[argStart:] {
		if couldCarryFunc(s.b.typeOf(a)) {
			rc.args = append(rc.args, s.bindingOf(raw, a))
		} else {
			rc.args = append(rc.args, nil)
		}
	}
	raw.calls = append(raw.calls, rc)
}

// argBoxes records interface-boxing sites for call arguments passed to
// interface-typed parameters (including variadic ...any tails, which is
// how fmt-style calls allocate).
func (s *fnScope) argBoxes(raw *rawFunc, sig *types.Signature, callExpr *ast.CallExpr) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, a := range callExpr.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if callExpr.Ellipsis.IsValid() {
				return // f(xs...): the slice is passed through, nothing boxes
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if s.b.isBox(pt, a) {
			s.b.addAllocSite(raw, a.Pos(), "interface boxing",
				"argument boxes "+typeDesc(s.b.typeOf(a))+" into interface parameter")
		}
	}
}

// capturesVariables reports whether lit references any variable declared
// outside its own body (forcing a heap-allocated closure).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	inside := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || inside[v] || v.Pkg() == nil {
			return true
		}
		if v.Parent() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level var: not a capture
		}
		captured = true
		return false
	})
	return captured
}

// couldCarryFunc reports whether a value of type t could hold func values
// worth binding at a call site: a func itself, or a struct (or pointer to
// struct) with a func-typed field within two levels.
func couldCarryFunc(t types.Type) bool {
	if t == nil {
		return false
	}
	if isFuncType(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isFuncType(ft) {
			return true
		}
		if inner, ok := ft.Underlying().(*types.Struct); ok {
			for j := 0; j < inner.NumFields(); j++ {
				if isFuncType(inner.Field(j).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeDesc(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func exprDesc(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}
