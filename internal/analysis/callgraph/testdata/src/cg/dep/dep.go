// Package dep is a miniature of internal/parallel for the callgraph facts
// test: Pool.Run reaches the task callback through a helper method, so the
// ParamField summary must propagate two hops (help's receiver-relative
// call lifts into Run's parameter summary during the fixpoint).
package dep

// Task carries a range callback.
type Task struct {
	F func(lo, hi int)
}

// Pool dispatches tasks.
type Pool struct {
	n int
}

// Run hands the task to the helper; its exported summary must say
// "parameter 0's field F is called".
func (p *Pool) Run(t *Task, n int) {
	t.help(n)
}

func (t *Task) help(n int) {
	t.F(0, n)
}
