// Package a exercises the freelist-scratch pattern the real sparse
// kernels use: task callbacks are bound in a constructor, the scratch
// reaches the kernel through an opaque getter, and resolution must fall
// back to the two-level field pools (most specific root-type key first).
package a

import "cg/dep"

type scratch struct {
	mul dep.Task
	add dep.Task
}

var pool dep.Pool

func newScratch() *scratch {
	s := &scratch{}
	s.mul.F = func(lo, hi int) { mulRows(lo, hi) }
	s.add.F = addRows
	return s
}

func mulRows(lo, hi int) {}

func addRows(lo, hi int) {}

func get() *scratch {
	return newScratch()
}

//dslint:hotpath
func Mul(n int) {
	s := get()
	pool.Run(&s.mul, n)
}

//dslint:ignore hotalloc freelist refill, measured cold
func refill() []int {
	return make([]int, 4)
}
