package callgraph

// Stable cross-package identifiers: FuncIDs name functions and methods,
// type keys name named types, and canonical signature strings support
// method-set matching and the signature-fallback candidate pool. All three
// are pure functions of the type information, so two packages (or two
// sessions restoring facts from the warm cache) agree on every name.

import (
	"fmt"
	"go/types"
)

// pathQual qualifies type names by full package path, so signature strings
// are unambiguous across the module.
func pathQual(p *types.Package) string { return p.Path() }

// FuncIDOf returns the stable identifier of a declared function or method:
// "pkg/path.Name" or "pkg/path.(*Recv).Name". Generic instantiations map
// to their origin.
func FuncIDOf(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
			ptr = "*"
		}
		name := "?"
		if n, isNamed := rt.(*types.Named); isNamed {
			name = n.Obj().Name()
		}
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkg, ptr, name, fn.Name())
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// PkgOfID returns the package-path part of a FuncID ("" if unknown).
func PkgOfID(id string) string {
	// IDs are "pkg.Name", "pkg.(Recv).Name", or "<...>$N" for literals
	// (the literal suffix does not change the package part).
	for i := 0; i < len(id); i++ {
		if id[i] == '.' && i+1 < len(id) && id[i+1] == '(' {
			return id[:i]
		}
	}
	// Last dot before any "$" separates pkg from a top-level func name.
	end := len(id)
	for i := 0; i < len(id); i++ {
		if id[i] == '$' {
			end = i
			break
		}
	}
	last := -1
	for i := 0; i < end; i++ {
		if id[i] == '.' {
			last = i
		}
	}
	if last < 0 {
		return ""
	}
	return id[:last]
}

// typeKey names a named type (pointers dereferenced): "pkg/path.Name".
// Returns "" for unnamed types.
func typeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// sigStr renders a canonical receiver-less signature string.
func sigStr(sig *types.Signature) string {
	bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(bare, pathQual)
}

// ifaceMethodSet lists an interface's complete method set (embedded
// interfaces flattened), sorted by name for deterministic facts.
func ifaceMethodSet(iface *types.Interface) []MethodSig {
	iface = iface.Complete()
	out := make([]MethodSig, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		out = append(out, MethodSig{Name: m.Name(), Sig: sigStr(m.Type().(*types.Signature))})
	}
	// NumMethods order is already sorted by (package, name) per go/types;
	// keep it as-is.
	return out
}

// directIface reports whether values of t fit an interface word directly,
// so converting t to an interface type does not allocate (pointers,
// channels, maps, funcs, unsafe.Pointer, and single-field wrappers of
// them).
func directIface(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && directIface(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && directIface(u.Elem())
	case *types.Interface:
		return true // already an interface: conversion re-wraps, no box
	}
	return false
}
