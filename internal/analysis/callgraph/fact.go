package callgraph

// The package fact: a conservative, flow-insensitive summary of every
// function in one package, precise enough for interprocedural reachability
// (hotalloc, walltime) without whole-program SSA. All fields are exported
// for gob: facts travel through framework.FactStore and the driver's warm
// cache.

// Site is one point of interest inside a function body: an allocation
// (hotalloc) or a wall-clock read (walltime).
type Site struct {
	// Kind is a short classification: "make", "new", "growing append",
	// "closure capture", "method value", "interface boxing",
	// "string concatenation", "string conversion", "composite literal",
	// "go statement" for allocations; "wall clock" for time reads.
	Kind string
	// Desc is the human-readable detail ("make([]float64, nb)",
	// "time.Now").
	Desc string
	// Pos is "file.go:line" (basename), for the call-path in findings.
	Pos string
}

// ParamField says "this function may invoke the func value stored at
// parameter Param (receiver = -1), under field chain Chain (” = the
// parameter itself is the func)". Callers binding a concrete func or a
// struct with known field assignments at such a site get precise edges
// instead of class-hierarchy fallback.
type ParamField struct {
	Param int    // 0-based parameter index; -1 is the method receiver
	Chain string // e.g. "F" for parallel.Task.F; "" = the param itself
}

// Edge is one call out of a function. Exactly one resolution strategy is
// populated:
//
//   - Callee: a static target (FuncID). If the target's package has a fact
//     in the analysis universe the walk descends; otherwise the call is
//     external and subject to the consuming analyzer's allowlist.
//   - Method + IfaceMethods: dynamic interface dispatch, resolved at walk
//     time by CHA method-set matching over the universe's named types.
//   - FieldKeys (with Sig fallback): a call through a func-typed struct
//     field that could not be resolved locally; candidates come from the
//     first listed field-assignment pool that is non-empty in the universe
//     (keys are ordered most specific first — see fieldKeys in build.go).
//   - Sig alone: a call through an untracked func value; candidates are
//     every address-taken function of that signature in the universe.
type Edge struct {
	Callee string

	Method       string
	Iface        string // printable interface name, for findings
	IfaceMethods []MethodSig

	FieldKeys []string
	Sig       string

	Pos string // "file.go:line" of the call

	// NoHotalloc / NoWalltime: the call line carries a //dslint:ignore
	// directive for the respective analyzer; its walk must not traverse
	// this edge.
	NoHotalloc bool
	NoWalltime bool
}

// MethodSig identifies one interface method for CHA matching.
type MethodSig struct {
	Name string
	Sig  string // canonical receiver-less signature string
}

// MethodRef maps a concrete type's method to its implementation.
type MethodRef struct {
	Name string
	Sig  string
	Fn   string // FuncID of the implementation
}

// TypeMethods is the method set of one named (or pointer-to-named)
// concrete type, for interface CHA.
type TypeMethods struct {
	Type    string // "pkg/path.Name"
	Methods []MethodRef
}

// Func is the summary of one function, method, or function literal.
type Func struct {
	ID      string
	Hotpath bool // declared with a //dslint:hotpath doc directive

	// ExemptHotalloc / ExemptWalltime: the declaration line carries a
	// //dslint:ignore for the analyzer; the function is trusted — its
	// sites are dropped and walks do not descend into it.
	ExemptHotalloc bool
	ExemptWalltime bool

	AllocSites []Site
	WallSites  []Site
	Edges      []Edge
	Calls      []ParamField // callback summary (see ParamField)
}

// Fact is the exported package summary.
type Fact struct {
	// Funcs maps FuncID to summary for every function in the package.
	Funcs map[string]*Func
	// Types lists the package's named types with their method sets.
	Types []TypeMethods
	// FieldAssigns maps "pkg/path.OwnerType.field" — the immediate owner
	// struct of a func-typed field — to the FuncIDs assigned to that field
	// anywhere in the package. The pseudo-candidate "?" marks an open set
	// (something untrackable was assigned): consumers must add
	// signature-fallback candidates.
	FieldAssigns map[string][]string
	// SigFuncs maps a canonical signature string to the package's
	// address-taken functions of that signature (the CHA fallback pool
	// for calls through untracked func values).
	SigFuncs map[string][]string
}

// Name is the analyzer name facts are exported under.
const Name = "callgraph"
