package hotalloc_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/hotalloc"
)

// TestHotalloc exercises the positive suite (every allocation kind, the
// transitive walk, CHA interface dispatch, callback-precise pool
// resolution, external and unresolvable calls) and the negative suite
// (clean kernels, the allowlist, panic exemption, direct-iface boxing, and
// all three //dslint:ignore escape hatches).
func TestHotalloc(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(),
		[]*framework.Analyzer{callgraph.Analyzer, hotalloc.Analyzer},
		"hot/a", "hot/clean")
}
