// Package hotalloc proves //dslint:hotpath functions transitively
// allocation-free, interprocedurally (DESIGN.md §12).
//
// The repo's zero-alloc guarantees on solver kernels and the phase engine
// were previously enforced only dynamically, by allocs/op gates in the
// benchmark harness (EXPERIMENTS.md). Those gates only cover the code the
// benchmarks drive. hotalloc closes the gap statically: any function whose
// doc comment carries //dslint:hotpath must not reach — through any call
// chain the callgraph facts can see — a make, new, growing append, closure
// capture, method value, interface boxing, string concatenation or
// conversion, allocating composite literal, or go statement. Findings
// include the offending call path.
//
// Escape hatches, all explicit in the source: a //dslint:ignore hotalloc
// on an allocation line drops that site (justified capacity-reuse appends,
// one-time lazy initialization); on a function declaration it exempts the
// whole function (freelist refill paths); on a call line it severs that
// edge. Allocations inside panic(...) arguments are exempt automatically —
// a terminating path is not a hot path. Calls into packages outside the
// analysis universe (the standard library) are reported unless the callee
// is on a small allowlist of provably non-allocating routines.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
)

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "prove //dslint:hotpath functions transitively allocation-free using callgraph facts; " +
		"reports each reachable allocation with its call path",
	Run: run,
}

// allowedPkgPrefixes are external packages whose functions never allocate.
var allowedPkgPrefixes = []string{
	"math.", "math/bits.", "math/cmplx.", "sync/atomic.",
}

// allowedExact are individual external functions known not to allocate.
var allowedExact = map[string]bool{
	"runtime.GOMAXPROCS":  true,
	"runtime.NumCPU":      true,
	"runtime.Gosched":     true,
	"sort.Search":         true,
	"sort.SearchInts":     true,
	"sort.SearchFloat64s": true,
	"len":                 true, "cap": true,
}

// allowedExternal reports whether an out-of-universe callee is on the
// non-allocating allowlist. Safe sync primitives are allowed; sync.Pool
// and sync.Map are not (Pool.Get can call New, Map allocates internally).
func allowedExternal(id string) bool {
	for _, p := range allowedPkgPrefixes {
		if strings.HasPrefix(id, p) {
			return true
		}
	}
	if allowedExact[id] {
		return true
	}
	if strings.HasPrefix(id, "sync.(") &&
		!strings.Contains(id, "Pool") && !strings.Contains(id, "Map") {
		return true
	}
	return false
}

func run(pass *framework.Pass) error {
	type root struct {
		id  string
		pos token.Pos
	}
	var roots []root
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !callgraph.HotpathDecl(fd) {
				continue
			}
			if id := callgraph.DeclID(pass, fd); id != "" {
				roots = append(roots, root{id, fd.Pos()})
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })

	u, err := callgraph.NewUniverse(pass)
	if err != nil {
		return err
	}

	// Each distinct problem (allocation site, external callee, unresolved
	// edge) is reported once, attributed to the first root that reaches it.
	reported := map[string]bool{}
	for _, r := range roots {
		r := r
		shortRoot := r.id[strings.LastIndexByte(r.id, '/')+1:]
		u.Walk(r.id, callgraph.ModeHotalloc,
			func(reach callgraph.Reached) {
				for _, site := range reach.Fn.AllocSites {
					key := "s|" + site.Pos + "|" + site.Kind + "|" + site.Desc
					if reported[key] {
						continue
					}
					reported[key] = true
					pass.Reportf(r.pos,
						"hot path %s may allocate: %s (%s) at %s; call path: %s",
						shortRoot, site.Desc, site.Kind, site.Pos,
						callgraph.FormatPath(reach.Path))
				}
			},
			func(callee string, path []string) {
				if allowedExternal(callee) {
					return
				}
				key := "x|" + callee
				if reported[key] {
					return
				}
				reported[key] = true
				pass.Reportf(r.pos,
					"hot path %s calls external function %s (cannot prove allocation-free); call path: %s",
					shortRoot, callee, callgraph.FormatPath(path))
			},
			func(desc string, path []string) {
				key := "u|" + desc + "|" + fmt.Sprint(path)
				if reported[key] {
					return
				}
				reported[key] = true
				pass.Reportf(r.pos,
					"hot path %s has an unresolvable dynamic call (%s); call path: %s",
					shortRoot, desc, callgraph.FormatPath(path))
			})
	}
	return nil
}
