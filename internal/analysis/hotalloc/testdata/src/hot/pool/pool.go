// Package pool is a miniature of internal/parallel: a Task carries a
// caller-supplied range function, and Pool.Run dispatches it. It exists so
// the hotalloc fixtures can exercise callback-precise resolution across a
// package boundary (the ParamField summary on Run materializes edges at
// each caller's bind site).
package pool

// Task carries a range callback, mirroring parallel.Task.
type Task struct {
	F func(lo, hi int)
}

// Pool dispatches tasks.
type Pool struct {
	n int
}

// New builds a pool. Not a hot path: the composite literal here must not
// be reported (it is unreachable from any hotpath root).
func New(n int) *Pool {
	return &Pool{n: n}
}

// Run invokes t.F over n unit ranges. The dynamic call through the
// parameter's field becomes a ParamField summary {0, "F"}, so each caller
// of Run is checked against the function it actually bound.
func (p *Pool) Run(t *Task, n int) {
	for i := 0; i < n; i++ {
		t.F(i, i+1)
	}
}
