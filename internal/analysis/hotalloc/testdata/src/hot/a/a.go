// Positive fixtures: every hotpath root here reaches an allocation (or an
// unprovable call) and must be flagged. Findings anchor at the root's func
// declaration, so the want comments sit on the decl lines.
package a

import (
	"fmt"

	"hot/pool"
)

type scratch struct {
	buf []float64
	mul pool.Task
}

//dslint:hotpath
func MakeSlice(n int) { // want `hot path a\.MakeSlice may allocate: make\(\[\]float64, n\) \(make\)`
	_ = make([]float64, n)
}

//dslint:hotpath
func Transitive(n int) { // want `hot path a\.Transitive may allocate: .* \(growing append\) at a\.go:\d+; call path: hot/a\.Transitive \(a\.go:\d+\) -> hot/a\.helper`
	helper(n)
}

func helper(n int) {
	var s []int
	s = append(s, n)
	_ = s
}

//dslint:hotpath
func Box(v float64) any { // want `hot path a\.Box may allocate: .* \(interface boxing\)`
	return v
}

//dslint:hotpath
func Concat(a, b string) string { // want `hot path a\.Concat may allocate: .* \(string concatenation\)`
	return a + b
}

//dslint:hotpath
func Spawn() { // want `hot path a\.Spawn may allocate: .* \(go statement\)`
	go addOne(0, 0)
}

//dslint:hotpath
func External() { // want `hot path a\.External calls external function fmt\.Sprintf \(cannot prove allocation-free\)`
	_ = fmt.Sprintf("x")
}

//dslint:hotpath
func Dyn(fs []func(string) string) { // want `hot path a\.Dyn has an unresolvable dynamic call`
	fs[0]("")
}

// Op has exactly two implementations in the universe; the interface call
// in Dispatch resolves to both by CHA, and Alloc.Apply allocates.
type Op interface{ Apply(x int) int }

type Neg struct{}

func (Neg) Apply(x int) int { return -x }

type Alloc struct{}

func (Alloc) Apply(x int) int { return len(make([]int, x)) }

//dslint:hotpath
func Dispatch(o Op, x int) int { // want `hot path a\.Dispatch may allocate: make\(\[\]int, x\) \(make\) at a\.go:\d+; call path: hot/a\.Dispatch \(a\.go:\d+\) -> hot/a\.\(Alloc\)\.Apply`
	return o.Apply(x)
}

// RunDirty binds an allocating closure to the task it hands the pool; the
// ParamField summary on pool.Run routes the walk into that closure.
//
//dslint:hotpath
func RunDirty(p *pool.Pool, n int) { // want `hot path a\.RunDirty may allocate: make\(\[\]int, hi\) \(make\)`
	var t pool.Task
	t.F = func(lo, hi int) { _ = make([]int, hi) }
	p.Run(&t, n)
}

// RunClean binds a clean function to an identical task. The local field
// tracking must resolve this bind precisely — NOT fall back to the global
// pool of every func ever assigned to a pool.Task.F (which contains
// RunDirty's allocating closure).
//
//dslint:hotpath
func RunClean(p *pool.Pool, n int) {
	var t pool.Task
	t.F = addOne
	p.Run(&t, n)
}

func addOne(lo, hi int) {}

type counter struct {
	n int
}

func (c *counter) inc() { c.n++ }

//dslint:hotpath
func MethodValue(c *counter) { // want `hot path a\.MethodValue may allocate: .* \(method value\)`
	f := c.inc
	f()
}
