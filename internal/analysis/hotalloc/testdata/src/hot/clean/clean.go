// Negative fixtures: hotpath roots that must produce no findings —
// allocation-free kernels, allowlisted external calls, panic-path
// exemption, direct-interface boxing, and every //dslint:ignore hotalloc
// escape hatch (line-level site, function-level, edge severing).
package clean

import (
	"fmt"
	"math"
	"sync/atomic"
)

type scratch struct {
	buf []float64
}

//dslint:hotpath
func Norm2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s) // math.* is on the external allowlist
}

//dslint:hotpath
func Count(c *int64, xs []float64) {
	atomic.AddInt64(c, int64(len(xs))) // sync/atomic.* is allowlisted
}

//dslint:hotpath
func Fill(dst []float64, v float64) float64 {
	for i := range dst {
		dst[i] = v
	}
	return total(dst) // in-universe helper, itself clean
}

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

//dslint:hotpath
func Guard(n int) int {
	if n < 0 {
		// Terminating path: the Sprintf call and the boxing of n inside
		// panic(...) arguments are exempt.
		panic(fmt.Sprintf("negative n %d", n))
	}
	return n
}

//dslint:hotpath
func NoBox(s *scratch) any {
	return s // pointers are direct-iface: no boxing allocation
}

//dslint:hotpath
func LazyInit(s *scratch, n int) {
	if s.buf == nil {
		s.buf = make([]float64, n) //dslint:ignore hotalloc one-time lazy initialization, amortized
	}
	s.buf[0] = 1
}

// refill is exempt wholesale: freelist refill paths allocate by design and
// are measured cold.
//
//dslint:ignore hotalloc freelist refill, measured cold
func refill(n int) []int {
	return make([]int, n)
}

//dslint:hotpath
func UsesRefill(n int) int {
	return len(refill(n))
}

//dslint:hotpath
func Sever(n int) {
	slowPath(n) //dslint:ignore hotalloc cold slow path, never taken per-iteration
}

func slowPath(n int) {
	var s []int
	s = append(s, n)
	_ = s
}
