// Fixture: payload shapes mirroring the real dmem message structs.
package a

import "internal/rma"

// goodPayload mirrors dsSolvePayload: reference fields plus CloneMessage.
type goodPayload struct {
	deltas []float64
	norm   float64
}

func (pl *goodPayload) CloneMessage() any {
	c := *pl
	c.deltas = append([]float64(nil), pl.deltas...)
	return &c
}

// badPayload is the PR 2 bug class: a slice crosses the network with no
// way for the fault layer to deep-copy it.
type badPayload struct {
	deltas []float64
	norm   float64
}

// scalarPayload has no references: copied by value into the Message, so no
// Cloner is needed.
type scalarPayload struct {
	norm float64
	seq  int64
}

// nested hides the reference one level down; still unsafe to hold.
type nested struct {
	inner badPayload
}

func send(w *rma.World) {
	good := &goodPayload{deltas: make([]float64, 4)}
	bad := &badPayload{deltas: make([]float64, 4)}
	scalar := scalarPayload{norm: 1}

	w.Put(0, 1, 0, 48, good)
	w.Put(0, 1, 0, 48, bad) // want `payload type \*badPayload .* does not implement rma\.Cloner`
	w.Put(0, 1, 0, 24, scalar)
	w.Put(0, 1, 0, 24, &scalar)            // want `payload type \*scalarPayload .* does not implement rma\.Cloner`
	w.Put(0, 1, 0, 32, make([]float64, 4)) // want `payload type \[\]float64 .* does not implement rma\.Cloner`
	w.Put(0, 1, 0, 48, nested{})           // want `payload type nested .* does not implement rma\.Cloner`
	w.Put(0, 1, 0, 0, nil)
}
