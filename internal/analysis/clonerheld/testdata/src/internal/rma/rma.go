// Fixture: a miniature of the real rma runtime — World.Put plus the
// Cloner interface the fault layer uses to deep-copy held payloads.
package rma

// Tag classifies a message.
type Tag int

// Cloner lets the fault layer deep-copy a payload held past its phase.
type Cloner interface {
	CloneMessage() any
}

// World is the mini runtime.
type World struct{ P int }

// Put stages a one-sided write of payload into the window of rank to.
func (w *World) Put(from, to int, tag Tag, bytes int, payload any) {}
