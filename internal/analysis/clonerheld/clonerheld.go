// Package clonerheld flags payloads sent through rma.World.Put whose type
// holds references (pointers, slices, maps) but does not implement
// rma.Cloner.
//
// This is exactly the buffer-reuse bug class PR 2's sweep fixed: senders
// keep persistent per-neighbor payload buffers and rewrite them on their
// next relaxation, which is safe on a perfect network (the receiver reads
// in the very next phase) but not under fault injection — a delayed
// delivery is held past the phase boundary, and unless the fault layer can
// deep-copy the payload via Cloner.CloneMessage, the held message aliases
// storage the sender has since rewritten. Scalar payloads (and structs of
// scalars) are copied by value into the Message and need no Cloner.
package clonerheld

import (
	"go/ast"
	"go/types"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the clonerheld check.
var Analyzer = &framework.Analyzer{
	Name: "clonerheld",
	Doc: "flag World.Put payloads with pointer/slice/map contents that do not implement rma.Cloner " +
		"(the fault layer would hold aliased storage past its phase)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := lintutil.WorldMethod(pass.TypesInfo, call, "Put")
			if fn == nil {
				return true
			}
			cloner := lintutil.ClonerInterface(fn.Pkg())
			if cloner == nil {
				return true
			}
			arg := call.Args[len(call.Args)-1] // Put(from, to, tag, bytes, payload)
			tv := pass.TypesInfo.Types[arg]
			if tv.Type == nil || tv.IsNil() {
				return true
			}
			t := tv.Type
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				return true // dynamic type unknown; nothing to prove here
			}
			if !lintutil.HoldsReferences(t) {
				return true
			}
			if types.Implements(t, cloner) || types.Implements(types.NewPointer(t), cloner) {
				return true
			}
			pass.Reportf(arg.Pos(),
				"payload type %s sent through rma.World.Put holds references but does not implement rma.Cloner; a fault-delayed delivery would alias the sender's reused buffers",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}
