package clonerheld_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/clonerheld"
)

func TestClonerheld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), clonerheld.Analyzer,
		"a",
	)
}
