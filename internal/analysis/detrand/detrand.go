// Package detrand forbids nondeterministic inputs — global math/rand
// state and wall-clock reads — in the packages whose runs must be
// bit-reproducible from explicit seeds.
//
// The simulator's correctness story (DESIGN.md §6, §8) rests on runs being
// replayable: the engine-equivalence and chaos-determinism tests compare
// entire runs bit for bit, and the paper's Γ/Γ̃ bookkeeping is only exact
// when every decision is a pure function of the seeded inputs. A single
// rand.Intn or time.Now in internal/{rma,dmem,bench,solvers,partition,
// problem} silently breaks all of that, so randomness must flow through an
// explicitly seeded *rand.Rand (constructing one with rand.New /
// rand.NewSource is allowed; the global functions and Seed are not).
package detrand

import (
	"go/ast"
	"go/types"

	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/lintutil"
)

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and wall-clock reads in deterministic packages; " +
		"thread an explicitly seeded *rand.Rand instead",
	Run: run,
}

// allowedRand are the math/rand(/v2) package-level names that construct
// explicitly seeded generators rather than touching global state.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// nondetTime aliases the shared wall-clock table (lintutil.WallClockFuncs)
// so detrand and the interprocedural walltime analyzer agree on what
// constitutes a wall-clock read.
var nondetTime = lintutil.WallClockFuncs

func run(pass *framework.Pass) error {
	if !lintutil.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, obj, ok := lintutil.PkgQualified(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			if _, isType := obj.(*types.TypeName); isType {
				return true // rand.Rand, time.Duration, ... in type positions
			}
			switch path {
			case "math/rand", "math/rand/v2":
				if !allowedRand[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"global math/rand state (rand.%s) in deterministic package %s; thread an explicitly seeded *rand.Rand through the API instead",
						obj.Name(), pass.Pkg.Path())
				}
			case "time":
				if nondetTime[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock dependence (time.%s) in deterministic package %s; simulated time must come from the rma cost model",
						obj.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
