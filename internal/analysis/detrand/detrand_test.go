package detrand_test

import (
	"testing"

	"southwell/internal/analysis/analysistest"
	"southwell/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer,
		"internal/rma",      // deterministic package: violations flagged
		"internal/parallel", // kernel fan-out layer: same scope
		"internal/obs",      // observability layer: simulated-clock only
		"other",             // out of scope: same calls, no diagnostics
	)
}
