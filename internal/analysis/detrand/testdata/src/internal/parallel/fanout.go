// Fixture: goroutine fan-out shapes of a worker-pool kernel layer, in the
// detrand scope (path suffix internal/parallel). Work distribution must
// come from deterministic counters, never from the global PRNG or clock.
package parallel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// fanOutCounter claims blocks with an atomic counter: the legal idiom
// (dynamic scheduling is fine when block outputs are position-addressed).
func fanOutCounter(workers, nblocks int, f func(int)) {
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				f(b)
			}
		}()
	}
	wg.Wait()
}

// fanOutRandom steals a random block per iteration from the global PRNG:
// the schedule (and any order-sensitive consumer) varies run to run.
func fanOutRandom(workers, nblocks int, f func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f(rand.Intn(nblocks)) // want `global math/rand state \(rand\.Intn\)`
		}()
	}
	wg.Wait()
}

// seededSplit threads a caller-seeded stream into the split: allowed.
func seededSplit(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// timedDrain spins on the wall clock to decide when workers are done
// instead of counting completed blocks.
func timedDrain(done *atomic.Int32, nblocks int) {
	deadline := time.Now().Add(time.Second) // want `wall-clock dependence \(time\.Now\)`
	for done.Load() < int32(nblocks) {
		if time.Now().After(deadline) { // want `wall-clock dependence \(time\.Now\)`
			return
		}
	}
}
