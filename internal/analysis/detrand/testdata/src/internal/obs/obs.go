// Fixture: the observability layer (path suffix internal/obs) is in the
// deterministic scope — trace timestamps must come from the simulated
// clock, never the wall clock, and sampling decisions must not consult
// global randomness, or the exported bytes stop being golden-testable.
package obs

import (
	"math/rand"
	"time"
)

// Event mirrors the real trace record shape.
type Event struct {
	Ts   float64
	Kind uint8
}

// stampSim carries the simulated clock in from the producer: allowed.
func stampSim(simNow float64, kind uint8) Event {
	return Event{Ts: simNow, Kind: kind}
}

func stampWall(kind uint8) Event {
	return Event{Ts: float64(time.Now().UnixNano()), Kind: kind} // want `wall-clock dependence \(time\.Now\)`
}

func sampleBad(e Event) bool {
	return rand.Float64() < 0.01 // want `global math/rand state \(rand\.Float64\)`
}

// sampleSeeded threads a caller-seeded generator: allowed.
func sampleSeeded(rng *rand.Rand, e Event) bool {
	return rng.Float64() < 0.01
}
