// Fixture: a deterministic package (path suffix internal/rma) using both
// legal seeded randomness and the forbidden global state.
package rma

import (
	"math/rand"
	"time"
)

// Seeded construction is the required idiom: allowed.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// drawOK threads the caller-seeded generator: allowed.
func drawOK(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

func drawBad(n int) int {
	return rand.Intn(n) // want `global math/rand state \(rand\.Intn\)`
}

func shuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global math/rand state \(rand\.Shuffle\)`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func seedBad() {
	rand.Seed(42) // want `global math/rand state \(rand\.Seed\)`
}

func clockBad() int64 {
	return time.Now().UnixNano() // want `wall-clock dependence \(time\.Now\)`
}

func timerBad(d time.Duration) {
	<-time.After(d) // want `wall-clock dependence \(time\.After\)`
}

// Duration arithmetic and type references do not read the clock: allowed.
func durationOK(d time.Duration) time.Duration {
	return 2 * d
}
