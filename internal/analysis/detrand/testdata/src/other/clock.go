// Fixture: a package outside the deterministic set — the same calls
// produce no diagnostics here.
package other

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func globalDraw(n int) int {
	return rand.Intn(n)
}
