// Package injection verifies each interprocedural analyzer against the
// real repository code by fault injection: the module's packages are
// loaded from source in dependency order, a synthetic violation is spliced
// into a real package as an extra file, and the analyzer must catch it —
// with the unmodified tree staying clean. This proves the analyzers run
// end-to-end over the actual code they gate, not just over fixtures.
package injection_test

import (
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"southwell/internal/analysis/callgraph"
	"southwell/internal/analysis/framework"
	"southwell/internal/analysis/hotalloc"
	"southwell/internal/analysis/registry"
	"southwell/internal/analysis/walltime"
)

const moduleRoot = "../../.." // this package sits at internal/analysis/injection

// injectedName is the synthetic file's name; tests filter findings to it
// or to messages naming the injected functions.
const injectedName = "zz_injected.go"

// session holds the source-loaded module packages and their shared facts.
type session struct {
	pkgs  map[string]*framework.Package
	order []string
	facts *framework.FactStore
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// load lists patterns with their dependency closure, type-checks every
// in-module package from source (appending inject[pkgPath] as an extra
// file where present), and runs the callgraph analyzer over each in
// dependency order so interprocedural facts are available to the analyzer
// under test. In-module imports resolve against the live (possibly
// injected) packages; everything else through compiler export data.
func load(t *testing.T, inject map[string]string, patterns ...string) *session {
	t.Helper()
	listed, err := framework.ListExportGraph(moduleRoot, patterns...)
	if err != nil {
		t.Fatalf("listing %v: %v", patterns, err)
	}
	table := framework.NewExportTable(listed)
	fset := token.NewFileSet()
	s := &session{
		pkgs:  map[string]*framework.Package{},
		facts: framework.NewFactStore(),
	}
	std := table.NewImporter(fset)
	imp := importerFunc(func(ip string) (*types.Package, error) {
		if live, ok := s.pkgs[ip]; ok {
			return live.Types, nil
		}
		return std.Import(ip)
	})
	// `go list -deps` emits dependencies before dependents, so in-module
	// imports are always live by the time an importer needs them.
	for _, lp := range listed {
		if lp.Standard || lp.Error != nil || !strings.HasPrefix(lp.ImportPath, "southwell") {
			continue
		}
		files, srcs, err := framework.ParseFixture(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			t.Fatalf("parsing %s: %v", lp.ImportPath, err)
		}
		if src, ok := inject[lp.ImportPath]; ok {
			f, err := parser.ParseFile(fset, injectedName, src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing injected file for %s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
			srcs[injectedName] = []byte(src)
		}
		pkg, err := framework.CheckFiles(lp.ImportPath, fset, files, srcs, imp)
		if err != nil {
			t.Fatalf("type-checking %s: %v", lp.ImportPath, err)
		}
		s.pkgs[lp.ImportPath] = pkg
		s.order = append(s.order, lp.ImportPath)
		if _, err := framework.RunWithFacts(callgraph.Analyzer, pkg, s.facts); err != nil {
			t.Fatalf("callgraph on %s: %v", lp.ImportPath, err)
		}
	}
	return s
}

// run executes one analyzer on an already-loaded package.
func (s *session) run(t *testing.T, a *framework.Analyzer, pkgPath string) []framework.Diagnostic {
	t.Helper()
	pkg := s.pkgs[pkgPath]
	if pkg == nil {
		t.Fatalf("package %s was not loaded", pkgPath)
	}
	diags, err := framework.RunWithFacts(a, pkg, s.facts)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	return diags
}

// matching filters diagnostics whose message contains substr.
func matching(diags []framework.Diagnostic, substr string) []framework.Diagnostic {
	var out []framework.Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			out = append(out, d)
		}
	}
	return out
}

// TestHotallocInjection splices a //dslint:hotpath function into the real
// sparse package whose only sin is calling the real CSR.Diag (which
// allocates its result). hotalloc must trace the allocation through the
// genuine repository code and name the injected root; the unmodified
// package must stay silent about it.
func TestHotallocInjection(t *testing.T) {
	const bad = `package sparse

//dslint:hotpath
func injectedHotPath(a *CSR) []float64 {
	return a.Diag()
}
`
	clean := load(t, nil, "./internal/sparse")
	if got := matching(clean.run(t, hotalloc.Analyzer, "southwell/internal/sparse"), "injectedHotPath"); len(got) != 0 {
		t.Fatalf("unmodified tree mentions the injected function: %v", got)
	}

	s := load(t, map[string]string{"southwell/internal/sparse": bad}, "./internal/sparse")
	got := matching(s.run(t, hotalloc.Analyzer, "southwell/internal/sparse"), "injectedHotPath")
	if len(got) == 0 {
		t.Fatal("hotalloc missed the injected allocating hot path")
	}
	msg := got[0].Message
	if !strings.Contains(msg, "may allocate") || !strings.Contains(msg, "Diag") {
		t.Errorf("finding does not trace through CSR.Diag: %s", msg)
	}
}

// TestWalltimeInjection adds a wall-clock read to the real (non-
// deterministic) sparse package and a call to it from the deterministic
// solvers package. walltime must flag the solvers entry point with the
// cross-package path; the unmodified tree must stay silent.
func TestWalltimeInjection(t *testing.T) {
	const badSparse = `package sparse

import "time"

// InjectedStamp reads the wall clock outside detrand's jurisdiction.
func InjectedStamp() int64 {
	return time.Now().UnixNano()
}
`
	const badSolvers = `package solvers

import "southwell/internal/sparse"

func injectedStep() int64 {
	return sparse.InjectedStamp()
}
`
	clean := load(t, nil, "./internal/solvers")
	if got := matching(clean.run(t, walltime.Analyzer, "southwell/internal/solvers"), "injectedStep"); len(got) != 0 {
		t.Fatalf("unmodified tree mentions the injected function: %v", got)
	}

	s := load(t, map[string]string{
		"southwell/internal/sparse":  badSparse,
		"southwell/internal/solvers": badSolvers,
	}, "./internal/solvers")
	got := matching(s.run(t, walltime.Analyzer, "southwell/internal/solvers"), "injectedStep")
	if len(got) == 0 {
		t.Fatal("walltime missed the injected cross-package wall-clock read")
	}
	msg := got[0].Message
	if !strings.Contains(msg, "time.Now") || !strings.Contains(msg, "InjectedStamp") {
		t.Errorf("finding does not show the cross-package path: %s", msg)
	}
}

// TestStaleignoreInjection runs the full registry — exactly what the
// driver does — over the real sparse package with a stale directive
// spliced in, and expects staleignore (last in the registry) to flag only
// the injected directive's file.
func TestStaleignoreInjection(t *testing.T) {
	// The directive sits on a plain statement line: no allocation site, no
	// call, no declaration — nothing consumes it, so it is stale. (On a
	// func decl line it would be consumed by fact building as a
	// function-level exemption.)
	const bad = `package sparse

func injectedPlain(x int) int {
	y := x * 3 //dslint:ignore hotalloc nothing on this line allocates; stale
	return y
}
`
	s := load(t, map[string]string{"southwell/internal/sparse": bad}, "./internal/sparse")
	var stale []framework.Diagnostic
	for _, a := range registry.Analyzers() {
		diags := s.run(t, a, "southwell/internal/sparse")
		for _, d := range diags {
			if a.Name == "staleignore" && strings.Contains(d.Pos.Filename, injectedName) {
				stale = append(stale, d)
			}
		}
	}
	if len(stale) != 1 {
		t.Fatalf("staleignore found %d stale directives in the injected file, want 1", len(stale))
	}
	if !strings.Contains(stale[0].Message, "stale //dslint:ignore hotalloc") {
		t.Errorf("unexpected message: %s", stale[0].Message)
	}
}
