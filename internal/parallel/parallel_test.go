package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBlocks(t *testing.T) {
	cases := []struct {
		work, grain, max, want int
	}{
		{0, 100, 8, 1},
		{-5, 100, 8, 1},
		{1, 100, 8, 1},
		{100, 100, 8, 1},
		{101, 100, 8, 2},
		{1000, 100, 8, 8},
		{1000, 100, 0, 10}, // maxBlocks < 1 means unbounded
		{50, 0, 8, 1},
	}
	for _, c := range cases {
		if got := Blocks(c.work, c.grain, c.max); got != c.want {
			t.Errorf("Blocks(%d,%d,%d) = %d, want %d", c.work, c.grain, c.max, got, c.want)
		}
	}
}

// checkCover asserts the ranges tile [0, n) exactly, in order.
func checkCover(t *testing.T, rs []Range, n int) {
	t.Helper()
	prev := 0
	for i, r := range rs {
		if r.Lo != prev {
			t.Fatalf("range %d starts at %d, want %d (ranges %v)", i, r.Lo, prev, rs)
		}
		if r.Hi < r.Lo {
			t.Fatalf("range %d is negative: %v", i, r)
		}
		prev = r.Hi
	}
	if prev != n {
		t.Fatalf("ranges end at %d, want %d (ranges %v)", prev, n, rs)
	}
}

func TestSplitN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, nb := range []int{1, 2, 3, 7, 16, 100} {
			rs := SplitN(n, nb, nil)
			if len(rs) != nb {
				t.Fatalf("SplitN(%d,%d): %d ranges", n, nb, len(rs))
			}
			checkCover(t, rs, n)
			// Near-equal: lengths differ by at most 1.
			lo, hi := n, 0
			for _, r := range rs {
				if l := r.Hi - r.Lo; l < lo {
					lo = l
				} else if l > hi {
					hi = l
				}
			}
			_ = lo
		}
	}
}

func TestSplitNNZ(t *testing.T) {
	// A skewed row-pointer: row i has i nonzeros.
	n := 100
	rp := make([]int, n+1)
	for i := 0; i < n; i++ {
		rp[i+1] = rp[i] + i
	}
	for _, nb := range []int{1, 2, 4, 7, 64, 200} {
		rs := SplitNNZ(rp, nb, nil)
		if len(rs) != nb {
			t.Fatalf("SplitNNZ nb=%d: %d ranges", nb, len(rs))
		}
		checkCover(t, rs, n)
	}

	// Balance: with the skewed matrix and 4 blocks, each block's nonzero
	// count should be within one max-row of the ideal quarter.
	rs := SplitNNZ(rp, 4, nil)
	total := rp[n]
	for _, r := range rs {
		nnz := rp[r.Hi] - rp[r.Lo]
		if diff := nnz - total/4; diff > n || diff < -n {
			t.Errorf("block %v has %d nnz, ideal %d", r, nnz, total/4)
		}
	}

	// Degenerate inputs.
	checkCover(t, SplitNNZ([]int{0}, 3, nil), 0)
	checkCover(t, SplitNNZ(nil, 3, nil), 0)
	// All nonzeros in one row.
	rp2 := []int{0, 0, 1000, 1000}
	checkCover(t, SplitNNZ(rp2, 4, nil), 3)
}

func TestSplitNNZReuse(t *testing.T) {
	rp := []int{0, 2, 4, 6, 8}
	buf := make([]Range, 0, 8)
	a := SplitNNZ(rp, 4, buf)
	b := SplitNNZ(rp, 4, a[:0])
	if &a[0] != &b[0] {
		t.Error("SplitNNZ did not reuse the passed storage")
	}
	checkCover(t, b, 4)
}

// runCounts runs a region on the pool and verifies every block executes
// exactly once.
func runCounts(t *testing.T, p *Pool, nblocks int) {
	t.Helper()
	counts := make([]int32, nblocks)
	var task Task
	task.F = func(b int) { atomic.AddInt32(&counts[b], 1) }
	p.Run(&task, nblocks)
	for b, c := range counts {
		if c != 1 {
			t.Fatalf("width %d, nblocks %d: block %d ran %d times", p.Workers(), nblocks, b, c)
		}
	}
}

func TestPoolRun(t *testing.T) {
	for _, w := range []int{1, 2, 4, 7} {
		p := NewPool(w)
		for _, nb := range []int{1, 2, 3, 8, 64, 200} {
			runCounts(t, p, nb)
		}
		p.Close()
	}
}

func TestPoolRunReuseTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum int64
	var task Task
	task.F = func(b int) { atomic.AddInt64(&sum, int64(b)) }
	for iter := 0; iter < 100; iter++ {
		atomic.StoreInt64(&sum, 0)
		p.Run(&task, 32)
		if got := atomic.LoadInt64(&sum); got != 31*32/2 {
			t.Fatalf("iter %d: sum = %d, want %d", iter, got, 31*32/2)
		}
	}
}

// TestPoolRunReuseTaskResize reuses one Task across regions of very
// different block counts, large to small, on a wide pool. This is the
// kernel-scratch recycling pattern (e.g. multigrid fine vs coarse levels):
// a helper goroutine left over from a large region must never claim a block
// index of the old region after Run resets the Task for a smaller one —
// counts is sized to the current region, so any stale claim panics or
// double-counts.
func TestPoolRunReuseTaskResize(t *testing.T) {
	p := NewPool(7)
	defer p.Close()
	sizes := []int{257, 3, 64, 1, 200, 2, 31}
	var counts []int32
	var task Task
	task.F = func(b int) { atomic.AddInt32(&counts[b], 1) }
	for iter := 0; iter < 500; iter++ {
		nb := sizes[iter%len(sizes)]
		counts = make([]int32, nb)
		p.Run(&task, nb)
		for b, c := range counts {
			if c != 1 {
				t.Fatalf("iter %d nb=%d: block %d ran %d times", iter, nb, b, c)
			}
		}
	}
}

func TestPoolRunAfterClose(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	runCounts(t, p, 50)
}

func TestNilPool(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool Workers = %d", p.Workers())
	}
	runCounts(t, p, 10)
	p.Close()
}

func TestRunNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with nil F did not panic")
		}
	}()
	NewPool(2).Run(&Task{}, 3)
}

func TestRunZeroBlocks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var task Task
	task.F = func(int) { t.Error("block ran for nblocks=0") }
	p.Run(&task, 0)
	p.Run(&task, -3)
}

// TestConcurrentRun drives many regions from competing goroutines through
// one pool; with the race detector this exercises the saturated-pool path
// where submitters finish their own blocks.
func TestConcurrentRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, 40)
			var task Task
			task.F = func(b int) { atomic.AddInt32(&counts[b], 1) }
			for iter := 0; iter < 50; iter++ {
				for i := range counts {
					counts[i] = 0
				}
				p.Run(&task, len(counts))
				for b := range counts {
					if counts[b] != 1 {
						t.Errorf("block %d ran %d times", b, counts[b])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestSetDefaultWorkers(t *testing.T) {
	orig := Default().Workers()
	defer SetDefaultWorkers(orig)

	SetDefaultWorkers(3)
	if got := Default().Workers(); got != 3 {
		t.Fatalf("Workers = %d after SetDefaultWorkers(3)", got)
	}
	p := Default()
	SetDefaultWorkers(3) // same width: keep the pool
	if Default() != p {
		t.Error("SetDefaultWorkers with unchanged width replaced the pool")
	}
	SetDefaultWorkers(1)
	if got := Default().Workers(); got != 1 {
		t.Fatalf("Workers = %d after SetDefaultWorkers(1)", got)
	}
	runCounts(t, Default(), 10)
}

// TestDeterministicReduction is the contract in miniature: a blocked
// partial-sum reduction combined in block order gives the same bits for
// every pool width.
func TestDeterministicReduction(t *testing.T) {
	n := 100000
	xs := make([]float64, n)
	v := 1.0
	for i := range xs {
		// A deterministic, poorly-conditioned sequence (no rand in this
		// package's tests: detrand lints it).
		v = v*1.0000001 + 1e-7
		xs[i] = v
	}
	nb := Blocks(n, 1024, 64)
	ranges := SplitN(n, nb, nil)

	reduce := func(p *Pool) float64 {
		partial := make([]float64, nb)
		var task Task
		task.F = func(b int) {
			s := 0.0
			for _, x := range xs[ranges[b].Lo:ranges[b].Hi] {
				s += x * x
			}
			partial[b] = s
		}
		p.Run(&task, nb)
		sum := 0.0
		for _, s := range partial {
			sum += s
		}
		return sum
	}

	var ref float64
	for i, w := range []int{1, 2, 4, 7} {
		p := NewPool(w)
		got := reduce(p)
		p.Close()
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("width %d: sum %x differs from width-1 sum %x", w, got, ref)
		}
	}
}
