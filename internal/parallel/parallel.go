// Package parallel is the shared deterministic work-splitting layer for the
// repository's numerical kernels: a persistent worker pool in the style of
// internal/rma's phase engine, contiguous row-range partitioners (balanced
// by element count or by nonzero count), and a fixed-block decomposition
// policy that makes parallel reductions bit-reproducible.
//
// The determinism contract has two parts:
//
//  1. Block decomposition is a pure function of the workload (Blocks,
//     SplitN, SplitNNZ take only sizes and row pointers). It never depends
//     on the worker count, GOMAXPROCS, or scheduling.
//
//  2. A parallel region (Pool.Run) executes every block exactly once, each
//     block touching only its own outputs (disjoint slices, or one partial-
//     result slot per block). The caller then combines per-block partials
//     sequentially in ascending block order.
//
// Together these make every kernel built on this package produce
// bit-identical results for any worker count, including one: changing the
// worker count only changes which OS thread runs a block, never the block
// boundaries or the reduction order. The property tests in internal/sparse
// assert this for worker counts {1, 2, 4, 7} under the race detector.
//
// Scheduling inside a region is dynamic (an atomic block counter), which is
// safe precisely because block results are position-addressed rather than
// order-accumulated. Completion is tracked by counting finished blocks, not
// helper goroutines, so a region always terminates even if the pool is
// closed or saturated mid-region: the submitting goroutine participates and
// can finish every block by itself.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted by Default for the
// shared pool's worker count (0 or unset = GOMAXPROCS).
const EnvWorkers = "SOUTHWELL_KERNEL_WORKERS"

// Task is a reusable descriptor of one parallel region. Bind F once (it
// receives the block index) and pass the Task to Pool.Run for every
// invocation; a Task holds no per-call allocations, so a long-lived owner
// (e.g. a kernel scratch buffer) reaches zero allocations per call in
// steady state. A Task must not be used by two Run calls concurrently.
type Task struct {
	// F executes one block. It must touch only state owned by that block.
	F func(block int)

	// meta and next pack a region generation (high 32 bits) with a
	// per-region value (low 32 bits): meta holds the block count, next the
	// next unclaimed block index. Run opens a region by bumping the
	// generation in both; helpers claim blocks by CAS on next, so a claim
	// can only succeed against the region it was read from. A helper left
	// over from an earlier region (e.g. a pool worker dequeuing a Task that
	// has since been reset for a different block count) therefore either
	// joins the current region cleanly or sees it exhausted and returns —
	// it can never claim an out-of-range block or double-count done.
	meta atomic.Uint64
	next atomic.Uint64
	done atomic.Int32
	fin  chan struct{}
}

// help claims and executes blocks until the current region is exhausted.
// Whichever executor completes the final block signals the region's fin
// channel. Every claim re-reads the region generation and block count, so
// help is safe to run late: if the Task has moved on to a new region it
// simply helps that region instead.
//
//dslint:hotpath
func (t *Task) help() {
	for {
		s := t.next.Load()
		gen := uint32(s >> 32)
		m := t.meta.Load()
		if uint32(m>>32) != gen {
			// Run is mid-reset between storing meta and next; re-read.
			continue
		}
		b := int32(s)
		n := int32(m)
		if b >= n {
			return
		}
		if !t.next.CompareAndSwap(s, s+1) {
			continue
		}
		t.F(int(b))
		if t.done.Add(1) == n {
			t.fin <- struct{}{}
		}
	}
}

// Pool is a persistent set of worker goroutines executing parallel regions.
// Workers are created once and reused across all regions until Close — no
// per-region goroutine spawning. A Pool is safe for concurrent Run calls
// from multiple goroutines (regions interleave over the shared workers; a
// saturated pool degrades to the submitting goroutine doing more of its own
// blocks, never to blocking or deadlock).
type Pool struct {
	width  int // executor slots including the submitting goroutine
	tasks  chan *Task
	stop   chan struct{}
	closed atomic.Bool
	once   sync.Once

	// Occupancy counters for the observability layer (PoolStats). Both are
	// pure functions of the submitted workload — regions and their block
	// counts never depend on scheduling — so snapshots are deterministic
	// for any width. Updated with atomics: Run may be called concurrently.
	regions atomic.Int64
	blocks  atomic.Int64
}

// PoolStats is a snapshot of a pool's cumulative occupancy counters.
type PoolStats struct {
	Regions int64 // parallel regions executed (Run calls with work)
	Blocks  int64 // blocks executed across all regions
	Width   int   // executor slots, including the submitting goroutine
}

// Stats returns the pool's cumulative occupancy counters. Subtract two
// snapshots to attribute a run's kernel activity.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{Width: 1}
	}
	return PoolStats{
		Regions: p.regions.Load(),
		Blocks:  p.blocks.Load(),
		Width:   p.width,
	}
}

// NewPool creates a pool with the given number of executor slots; the
// submitting goroutine always counts as one, so a pool of width w starts
// w-1 worker goroutines. workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{width: workers}
	if workers > 1 {
		p.tasks = make(chan *Task, workers-1)
		p.stop = make(chan struct{})
		for i := 0; i < workers-1; i++ {
			go p.worker()
		}
	}
	return p
}

// Workers returns the pool's executor width (including the caller's slot).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.width
}

func (p *Pool) worker() {
	for {
		select {
		case t := <-p.tasks:
			t.help()
		case <-p.stop:
			// Drain already-enqueued regions before exiting so no task
			// reference is stranded in the buffer.
			for {
				select {
				case t := <-p.tasks:
					t.help()
				default:
					return
				}
			}
		}
	}
}

// Run executes t.F(b) for every b in [0, nblocks) and returns when all
// blocks have completed. The caller participates as an executor, so Run
// completes even on a closed, saturated, or width-1 pool (where it simply
// runs the blocks inline, in ascending order — the same blocks, hence the
// same results).
//
//dslint:hotpath
func (p *Pool) Run(t *Task, nblocks int) {
	if nblocks <= 0 {
		return
	}
	if t.F == nil {
		panic("parallel: Run with nil Task.F")
	}
	if p != nil {
		p.regions.Add(1)
		p.blocks.Add(int64(nblocks))
	}
	if p == nil || p.width <= 1 || nblocks == 1 || p.closed.Load() {
		for b := 0; b < nblocks; b++ {
			t.F(b)
		}
		return
	}
	if t.fin == nil {
		t.fin = make(chan struct{}, 1) //dslint:ignore hotalloc one-time lazy init per Task, reused by every later region
	}
	// Open a new region generation. done must be reset before next exposes
	// the new generation: a stale helper can only touch done after a
	// successful gen-tagged claim, and all of the previous region's done
	// increments happened before its fin receive above a prior Run return.
	gen := uint64(uint32(t.meta.Load()>>32) + 1)
	t.done.Store(0)
	t.meta.Store(gen<<32 | uint64(uint32(nblocks)))
	t.next.Store(gen << 32)
	helpers := p.width - 1
	if nblocks-1 < helpers {
		helpers = nblocks - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- t:
		default:
			// All workers busy with other regions: do the work ourselves.
			i = helpers
			_ = i
		}
	}
	t.help()
	<-t.fin
}

// Close releases the worker goroutines. Regions in flight still complete
// (their submitters finish the blocks themselves), and later Run calls
// execute inline. Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.closed.Store(true)
		if p.stop != nil {
			close(p.stop)
		}
	})
}

var (
	defMu   sync.Mutex
	defPool atomic.Pointer[Pool]
)

// Default returns the shared kernel pool, created on first use with
// EnvWorkers (SOUTHWELL_KERNEL_WORKERS) or GOMAXPROCS executor slots.
//
//dslint:ignore hotalloc one-time lazy pool construction; every later call is an atomic load
func Default() *Pool {
	if p := defPool.Load(); p != nil {
		return p
	}
	defMu.Lock()
	defer defMu.Unlock()
	if p := defPool.Load(); p != nil {
		return p
	}
	w := 0
	if s := os.Getenv(EnvWorkers); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "parallel: ignoring invalid %s=%q\n", EnvWorkers, s)
		} else {
			w = v
		}
	}
	p := NewPool(w)
	defPool.Store(p)
	return p
}

// SetDefaultWorkers resizes the shared pool to n executor slots (<= 0 =
// GOMAXPROCS). It is a no-op when the pool already has that width. Results
// of the kernels built on this package are identical for every width; only
// wall-clock time changes. Regions in flight on the old pool complete
// safely (see Close), but callers should still prefer configuring the pool
// at startup or between kernel invocations.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defMu.Lock()
	defer defMu.Unlock()
	if cur := defPool.Load(); cur != nil {
		if cur.Workers() == n {
			return
		}
		cur.Close()
	}
	defPool.Store(NewPool(n))
}

// Range is a half-open contiguous block [Lo, Hi) of row (or item) indices.
type Range struct{ Lo, Hi int }

// Blocks returns the fixed block count for a workload of `work` units at
// `grain` units per block, clamped to [1, maxBlocks]. The count depends
// only on the workload — never on the worker count — so any reduction over
// the blocks is invariant under the pool width.
func Blocks(work, grain, maxBlocks int) int {
	if work <= 0 || grain <= 0 {
		return 1
	}
	nb := (work + grain - 1) / grain
	if nb < 1 {
		nb = 1
	}
	if maxBlocks >= 1 && nb > maxBlocks {
		nb = maxBlocks
	}
	return nb
}

// SplitN partitions [0, n) into nb contiguous ranges of near-equal length,
// appending to out (pass out[:0] to reuse storage). Ranges may be empty
// when nb > n; together they always cover [0, n) exactly, in order.
func SplitN(n, nb int, out []Range) []Range {
	if nb < 1 {
		nb = 1
	}
	for b := 0; b < nb; b++ {
		out = append(out, Range{Lo: b * n / nb, Hi: (b + 1) * n / nb}) //dslint:ignore hotalloc callers pass out[:0] with reused capacity; grows only until the block cap
	}
	return out
}

// SplitNNZ partitions the rows [0, len(rowPtr)-1) into nb contiguous
// ranges of near-equal nonzero count, using the CSR row pointer, appending
// to out. Boundaries are the rows where the running nonzero count first
// reaches each k/nb fraction of the total — a pure function of (rowPtr,
// nb). Ranges may be empty; together they cover every row exactly once, in
// order.
func SplitNNZ(rowPtr []int, nb int, out []Range) []Range {
	n := len(rowPtr) - 1
	if n < 0 {
		n = 0
	}
	if nb < 1 {
		nb = 1
	}
	total := 0
	if n > 0 {
		total = rowPtr[n]
	}
	prev := 0
	for b := 1; b <= nb; b++ {
		hi := n
		if b < nb {
			target := int(int64(total) * int64(b) / int64(nb))
			hi = searchGE(rowPtr, target)
			if hi > n {
				hi = n
			}
			if hi < prev {
				hi = prev
			}
		}
		out = append(out, Range{Lo: prev, Hi: hi}) //dslint:ignore hotalloc callers pass out[:0] with reused capacity; grows only until the block cap
		prev = hi
	}
	return out
}

// searchGE returns the smallest index i with xs[i] >= v (len(xs) if none).
func searchGE(xs []int, v int) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
