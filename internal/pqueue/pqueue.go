// Package pqueue implements an indexed binary max-heap over float64
// priorities with O(log n) update-key. It drives the Sequential Southwell
// method, which repeatedly needs the equation with the largest residual
// magnitude while neighbor relaxations change a handful of priorities per
// step.
package pqueue

// IndexedMaxHeap is a max-heap over the fixed key set {0, ..., n-1}.
// Every key is always present; priorities change via Update.
type IndexedMaxHeap struct {
	prio []float64 // prio[key]
	heap []int     // heap[i] = key
	pos  []int     // pos[key] = index in heap
}

// New builds a heap over len(prio) keys with the given initial priorities
// in O(n). The priority slice is copied.
func New(prio []float64) *IndexedMaxHeap {
	n := len(prio)
	h := &IndexedMaxHeap{
		prio: append([]float64(nil), prio...),
		heap: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.heap[i] = i
		h.pos[i] = i
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len returns the number of keys.
func (h *IndexedMaxHeap) Len() int { return len(h.heap) }

// Max returns the key with the largest priority and that priority.
// It panics on an empty heap.
func (h *IndexedMaxHeap) Max() (key int, prio float64) {
	k := h.heap[0]
	return k, h.prio[k]
}

// Prio returns the current priority of key.
func (h *IndexedMaxHeap) Prio(key int) float64 { return h.prio[key] }

// Update sets the priority of key and restores the heap invariant,
// dispatching on the direction of the change. Callers that already know
// the direction (Southwell zeroes the relaxed equation — a decrease — and
// neighbor updates only grow residuals between relaxations) can skip the
// old-priority load and compare with DecreaseKey/IncreaseKey.
func (h *IndexedMaxHeap) Update(key int, prio float64) {
	old := h.prio[key]
	switch {
	case prio > old:
		h.IncreaseKey(key, prio)
	case prio < old:
		h.DecreaseKey(key, prio)
	}
}

// IncreaseKey sets the priority of key to prio, which must be >= the
// current priority, and restores the invariant with a single up-sift.
func (h *IndexedMaxHeap) IncreaseKey(key int, prio float64) {
	h.prio[key] = prio
	h.up(h.pos[key])
}

// DecreaseKey sets the priority of key to prio, which must be <= the
// current priority, and restores the invariant with a single down-sift.
func (h *IndexedMaxHeap) DecreaseKey(key int, prio float64) {
	h.prio[key] = prio
	h.down(h.pos[key])
}

// up and down sift with a hole instead of pairwise swaps: the moving key
// is held in a register while blockers shift into the hole, so each level
// costs one heap write and one pos write instead of a three-write swap.
// The comparison sequence is identical to the swap formulation, so the
// resulting layout — and therefore every tie-broken Max — is bit-identical
// to the previous implementation.

func (h *IndexedMaxHeap) up(i int) {
	k := h.heap[i]
	kp := h.prio[k]
	for i > 0 {
		parent := (i - 1) / 2
		pk := h.heap[parent]
		if kp <= h.prio[pk] {
			break
		}
		h.heap[i] = pk
		h.pos[pk] = i
		i = parent
	}
	h.heap[i] = k
	h.pos[k] = i
}

func (h *IndexedMaxHeap) down(i int) {
	n := len(h.heap)
	k := h.heap[i]
	kp := h.prio[k]
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		lp := kp
		if l < n && h.prio[h.heap[l]] > lp {
			largest, lp = l, h.prio[h.heap[l]]
		}
		if r < n && h.prio[h.heap[r]] > lp {
			largest = r
		}
		if largest == i {
			break
		}
		ck := h.heap[largest]
		h.heap[i] = ck
		h.pos[ck] = i
		i = largest
	}
	h.heap[i] = k
	h.pos[k] = i
}
