// Package pqueue implements an indexed binary max-heap over float64
// priorities with O(log n) update-key. It drives the Sequential Southwell
// method, which repeatedly needs the equation with the largest residual
// magnitude while neighbor relaxations change a handful of priorities per
// step.
package pqueue

// IndexedMaxHeap is a max-heap over the fixed key set {0, ..., n-1}.
// Every key is always present; priorities change via Update.
type IndexedMaxHeap struct {
	prio []float64 // prio[key]
	heap []int     // heap[i] = key
	pos  []int     // pos[key] = index in heap
}

// New builds a heap over len(prio) keys with the given initial priorities
// in O(n). The priority slice is copied.
func New(prio []float64) *IndexedMaxHeap {
	n := len(prio)
	h := &IndexedMaxHeap{
		prio: append([]float64(nil), prio...),
		heap: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.heap[i] = i
		h.pos[i] = i
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len returns the number of keys.
func (h *IndexedMaxHeap) Len() int { return len(h.heap) }

// Max returns the key with the largest priority and that priority.
// It panics on an empty heap.
func (h *IndexedMaxHeap) Max() (key int, prio float64) {
	k := h.heap[0]
	return k, h.prio[k]
}

// Prio returns the current priority of key.
func (h *IndexedMaxHeap) Prio(key int) float64 { return h.prio[key] }

// Update sets the priority of key and restores the heap invariant.
func (h *IndexedMaxHeap) Update(key int, prio float64) {
	old := h.prio[key]
	h.prio[key] = prio
	switch {
	case prio > old:
		h.up(h.pos[key])
	case prio < old:
		h.down(h.pos[key])
	}
}

func (h *IndexedMaxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[h.heap[i]] <= h.prio[h.heap[parent]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMaxHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.prio[h.heap[l]] > h.prio[h.heap[largest]] {
			largest = l
		}
		if r < n && h.prio[h.heap[r]] > h.prio[h.heap[largest]] {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *IndexedMaxHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}
