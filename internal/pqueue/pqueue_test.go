package pqueue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxAfterNew(t *testing.T) {
	h := New([]float64{3, 9, 1, 7})
	if k, p := h.Max(); k != 1 || p != 9 {
		t.Errorf("Max = (%d, %g), want (1, 9)", k, p)
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Prio(3) != 7 {
		t.Errorf("Prio(3) = %g", h.Prio(3))
	}
}

func TestUpdateRaisesAndLowers(t *testing.T) {
	h := New([]float64{5, 4, 3, 2, 1})
	h.Update(4, 100)
	if k, _ := h.Max(); k != 4 {
		t.Errorf("after raise, Max key = %d, want 4", k)
	}
	h.Update(4, -1)
	if k, _ := h.Max(); k != 0 {
		t.Errorf("after lower, Max key = %d, want 0", k)
	}
	h.Update(2, 5) // tie with key 0: either is a valid max
	if k, p := h.Max(); p != 5 || (k != 0 && k != 2) {
		t.Errorf("after tie, Max = (%d, %g)", k, p)
	}
}

func TestSouthwellUsagePattern(t *testing.T) {
	// Repeatedly take the max, set it to zero, bump two random others —
	// the access pattern Sequential Southwell produces.
	rng := rand.New(rand.NewSource(1))
	n := 50
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = rng.Float64()
	}
	h := New(prio)
	for step := 0; step < 1000; step++ {
		k, p := h.Max()
		for i := 0; i < n; i++ {
			if h.Prio(i) > p+1e-15 {
				t.Fatalf("step %d: key %d has prio %g > max %g", step, i, h.Prio(i), p)
			}
		}
		h.Update(k, 0)
		h.Update(rng.Intn(n), rng.Float64())
		h.Update(rng.Intn(n), rng.Float64())
	}
}

// Property: Max always agrees with a linear scan under arbitrary updates.
func TestQuickMaxMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		prio := make([]float64, n)
		for i := range prio {
			prio[i] = rng.NormFloat64()
		}
		h := New(prio)
		for step := 0; step < 100; step++ {
			h.Update(rng.Intn(n), rng.NormFloat64())
			_, hp := h.Max()
			best := h.Prio(0)
			for i := 1; i < n; i++ {
				if h.Prio(i) > best {
					best = h.Prio(i)
				}
			}
			if hp != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
