package pqueue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxAfterNew(t *testing.T) {
	h := New([]float64{3, 9, 1, 7})
	if k, p := h.Max(); k != 1 || p != 9 {
		t.Errorf("Max = (%d, %g), want (1, 9)", k, p)
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Prio(3) != 7 {
		t.Errorf("Prio(3) = %g", h.Prio(3))
	}
}

func TestUpdateRaisesAndLowers(t *testing.T) {
	h := New([]float64{5, 4, 3, 2, 1})
	h.Update(4, 100)
	if k, _ := h.Max(); k != 4 {
		t.Errorf("after raise, Max key = %d, want 4", k)
	}
	h.Update(4, -1)
	if k, _ := h.Max(); k != 0 {
		t.Errorf("after lower, Max key = %d, want 0", k)
	}
	h.Update(2, 5) // tie with key 0: either is a valid max
	if k, p := h.Max(); p != 5 || (k != 0 && k != 2) {
		t.Errorf("after tie, Max = (%d, %g)", k, p)
	}
}

func TestSouthwellUsagePattern(t *testing.T) {
	// Repeatedly take the max, set it to zero, bump two random others —
	// the access pattern Sequential Southwell produces.
	rng := rand.New(rand.NewSource(1))
	n := 50
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = rng.Float64()
	}
	h := New(prio)
	for step := 0; step < 1000; step++ {
		k, p := h.Max()
		for i := 0; i < n; i++ {
			if h.Prio(i) > p+1e-15 {
				t.Fatalf("step %d: key %d has prio %g > max %g", step, i, h.Prio(i), p)
			}
		}
		h.Update(k, 0)
		h.Update(rng.Intn(n), rng.Float64())
		h.Update(rng.Intn(n), rng.Float64())
	}
}

// refHeap is the previous pairwise-swap sift, kept as a test oracle: the
// hole-based sift must produce bit-identical heap layouts (not just a
// valid heap — the same array), so every tie-broken Max stays the same.
type refHeap struct{ h *IndexedMaxHeap }

func (r refHeap) update(key int, prio float64) {
	h := r.h
	old := h.prio[key]
	h.prio[key] = prio
	switch {
	case prio > old:
		i := h.pos[key]
		for i > 0 {
			parent := (i - 1) / 2
			if h.prio[h.heap[i]] <= h.prio[h.heap[parent]] {
				return
			}
			r.swap(i, parent)
			i = parent
		}
	case prio < old:
		i := h.pos[key]
		n := len(h.heap)
		for {
			l, rr := 2*i+1, 2*i+2
			largest := i
			if l < n && h.prio[h.heap[l]] > h.prio[h.heap[largest]] {
				largest = l
			}
			if rr < n && h.prio[h.heap[rr]] > h.prio[h.heap[largest]] {
				largest = rr
			}
			if largest == i {
				return
			}
			r.swap(i, largest)
			i = largest
		}
	}
}

func (r refHeap) swap(i, j int) {
	h := r.h
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

// TestHoleSiftMatchesSwapReference drives the hole-based Update and the
// swap-based oracle through identical random operation sequences and
// requires the full internal layout to match after every operation.
func TestHoleSiftMatchesSwapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		prio := make([]float64, n)
		for i := range prio {
			prio[i] = rng.NormFloat64()
		}
		a, b := New(prio), New(prio)
		rb := refHeap{b}
		for step := 0; step < 200; step++ {
			key, p := rng.Intn(n), rng.NormFloat64()
			switch rng.Intn(3) {
			case 0:
				a.Update(key, p)
			case 1:
				if p >= a.Prio(key) {
					a.IncreaseKey(key, p)
				} else {
					a.DecreaseKey(key, p)
				}
			default:
				k, _ := a.Max()
				key, p = k, 0
				a.DecreaseKey(k, 0) // Southwell: zero the relaxed equation
			}
			rb.update(key, p)
			for i := 0; i < n; i++ {
				if a.heap[i] != b.heap[i] || a.pos[i] != b.pos[i] || a.prio[i] != b.prio[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// benchHeap builds the Sequential Southwell access pattern: zero the max,
// bump a few neighbors.
func benchHeap(n int) (*IndexedMaxHeap, *rand.Rand) {
	rng := rand.New(rand.NewSource(7))
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = rng.Float64()
	}
	return New(prio), rng
}

func BenchmarkUpdateSouthwell(b *testing.B) {
	h, rng := benchHeap(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := h.Max()
		h.Update(k, 0)
		h.Update(rng.Intn(4096), rng.Float64())
		h.Update(rng.Intn(4096), rng.Float64())
	}
}

func BenchmarkDirectedKeysSouthwell(b *testing.B) {
	h, rng := benchHeap(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := h.Max()
		h.DecreaseKey(k, 0)
		j := rng.Intn(4096)
		h.IncreaseKey(j, h.Prio(j)+rng.Float64())
		j = rng.Intn(4096)
		h.IncreaseKey(j, h.Prio(j)+rng.Float64())
	}
}

// Property: Max always agrees with a linear scan under arbitrary updates.
func TestQuickMaxMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		prio := make([]float64, n)
		for i := range prio {
			prio[i] = rng.NormFloat64()
		}
		h := New(prio)
		for step := 0; step < 100; step++ {
			h.Update(rng.Intn(n), rng.NormFloat64())
			_, hp := h.Max()
			best := h.Prio(0)
			for i := 1; i < n; i++ {
				if h.Prio(i) > best {
					best = h.Prio(i)
				}
			}
			if hp != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
