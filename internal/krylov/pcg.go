// Package krylov provides a preconditioned conjugate gradient solver, the
// outer method the paper positions Distributed Southwell inside: "as a
// competitor to Block Jacobi for preconditioning and multigrid smoothing"
// (abstract). A preconditioner here is any approximate solve M⁻¹r — e.g. a
// fixed number of parallel steps of Block Jacobi or Distributed Southwell
// from a zero initial guess.
package krylov

import (
	"fmt"

	"southwell/internal/sparse"
)

// Preconditioner applies z ≈ A⁻¹ r. Implementations must treat r as
// read-only and fully overwrite z.
type Preconditioner interface {
	Apply(r, z []float64)
}

// Identity is the unpreconditioned case (plain CG).
type Identity struct{}

// Apply implements Preconditioner.
func (Identity) Apply(r, z []float64) { copy(z, r) }

// PrecFunc adapts a function to the Preconditioner interface.
type PrecFunc func(r, z []float64)

// Apply implements Preconditioner.
func (f PrecFunc) Apply(r, z []float64) { f(r, z) }

// Options controls the CG iteration.
type Options struct {
	// MaxIter caps the iterations (0 = 10·n).
	MaxIter int
	// Tol is the relative residual target ‖r‖/‖r⁰‖ (0 = 1e-8).
	Tol float64
	// Flexible uses the Polak-Ribière update β = z'(r - r_prev)/(z_prev' r_prev),
	// which tolerates nonsymmetric or iteration-varying preconditioners
	// such as k steps of a Southwell method (whose relaxation pattern
	// depends on the input). Plain CG is the default.
	Flexible bool
}

// Result reports the outcome of a CG solve.
type Result struct {
	Iterations int
	Converged  bool
	// RelResiduals[k] is ‖r‖/‖r⁰‖ after iteration k+1.
	RelResiduals []float64
}

// Solve runs (flexible) preconditioned conjugate gradients on the SPD
// system A x = b, updating x in place. It returns an error only for
// structural problems (dimension mismatch); failure to converge is
// reported in the result, since for a preconditioning study a slow
// preconditioner is data, not an exception.
func Solve(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Result, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("krylov: dimension mismatch: n=%d len(b)=%d len(x)=%d", n, len(b), len(x))
	}
	if m == nil {
		m = Identity{}
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}

	r := make([]float64, n)
	r0 := a.ResidualNorm2(b, x, r)
	res := Result{}
	if r0 == 0 {
		res.Converged = true
		return res, nil
	}

	z := make([]float64, n)
	m.Apply(r, z)
	p := sparse.CopyVec(z)
	ap := make([]float64, n)
	rz := sparse.Dot(r, z)
	var rPrev []float64
	if opt.Flexible {
		rPrev = sparse.CopyVec(r)
	}

	for k := 0; k < maxIter; k++ {
		a.MulVec(p, ap)
		pap := sparse.Dot(p, ap)
		if pap <= 0 {
			// Loss of positive definiteness (numerically, or a genuinely
			// indefinite preconditioned operator): stop with what we have.
			res.Iterations = k
			return res, nil
		}
		alpha := rz / pap
		sparse.Axpy(alpha, p, x)
		sparse.Axpy(-alpha, ap, r)
		rel := sparse.Norm2(r) / r0
		res.RelResiduals = append(res.RelResiduals, rel)
		res.Iterations = k + 1
		if rel <= tol {
			res.Converged = true
			return res, nil
		}
		m.Apply(r, z)
		var beta float64
		if opt.Flexible {
			num := sparse.Dot(z, r) - sparse.Dot(z, rPrev)
			beta = num / rz
			copy(rPrev, r)
			rz = sparse.Dot(r, z)
		} else {
			rzNew := sparse.Dot(r, z)
			beta = rzNew / rz
			rz = rzNew
		}
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, nil
}
