package krylov

import (
	"math"
	"testing"

	"southwell/internal/core"
	"southwell/internal/partition"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func poissonSystem(t *testing.T, nx int, seed int64) (*sparse.CSR, []float64, []float64, []float64) {
	t.Helper()
	a := problem.Poisson2D(nx, nx)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	xTrue := problem.RandomVec(a.N, seed)
	b := make([]float64, a.N)
	a.MulVec(xTrue, b)
	return a, b, make([]float64, a.N), xTrue
}

func TestPlainCGSolvesPoisson(t *testing.T) {
	a, b, x, xTrue := poissonSystem(t, 20, 41)
	res, err := Solve(a, b, x, nil, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge in %d iterations", res.Iterations)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("solution error at %d", i)
		}
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := problem.Poisson2D(4, 4)
	if _, err := Solve(a, make([]float64, 3), make([]float64, a.N), nil, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCGZeroResidualImmediate(t *testing.T) {
	a, b, _, xTrue := poissonSystem(t, 6, 42)
	res, err := Solve(a, b, xTrue, nil, Options{})
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Errorf("exact start: res=%+v err=%v", res, err)
	}
}

// distPrec applies k parallel steps of a distributed method from a zero
// initial guess as a preconditioner — the paper's intended use.
func distPrec(t *testing.T, a *sparse.CSR, method core.DistMethod, ranks, steps int) Preconditioner {
	t.Helper()
	part := partition.Partition(a, ranks, partition.Options{Seed: 1})
	return PrecFunc(func(r, z []float64) {
		res, err := core.SolveDistributed(a, r, make([]float64, a.N), core.DistOptions{
			Method: method, Ranks: ranks, Steps: steps, Part: part,
		})
		if err != nil {
			t.Fatal(err)
		}
		copy(z, res.X)
	})
}

func TestBlockJacobiAndDistSWPreconditioning(t *testing.T) {
	// Flexible CG with 3 steps of each method as preconditioner must
	// converge in far fewer iterations than plain CG.
	a, b, x0, _ := poissonSystem(t, 24, 43)
	plain, err := Solve(a, b, sparse.CopyVec(x0), nil, Options{Tol: 1e-8})
	if err != nil || !plain.Converged {
		t.Fatalf("plain CG: %+v %v", plain, err)
	}
	// Block Jacobi relaxes every subdomain every step; Distributed
	// Southwell relaxes only locally-maximal ones, so it needs more
	// parallel steps before M⁻¹r has support everywhere (a 3-step DS
	// application leaves most components untouched and is no
	// preconditioner at all). Step counts chosen for comparable coverage.
	for m, steps := range map[core.DistMethod]int{core.BlockJacobi: 3, core.DistSWD: 20} {
		x := sparse.CopyVec(x0)
		res, err := Solve(a, b, x, distPrec(t, a, m, 8, steps), Options{Tol: 1e-8, Flexible: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s-preconditioned CG did not converge", m)
		}
		if res.Iterations >= plain.Iterations {
			t.Errorf("%s preconditioning did not help: %d vs plain %d",
				m, res.Iterations, plain.Iterations)
		}
		rr := make([]float64, a.N)
		a.Residual(b, x, rr)
		if sparse.Norm2(rr) > 1e-7*sparse.Norm2(b) {
			t.Errorf("%s: final residual too large", m)
		}
	}
}

func TestDistSWPreconditionerBeatsBlockJacobiAtScale(t *testing.T) {
	// With many ranks on a plate operator, Block Jacobi steps are a
	// divergent preconditioner while Distributed Southwell still reduces
	// the CG iteration count — the preconditioning side of Figure 9.
	a := problem.PlateMix3D(12, 12, 12, 1, 0.5)
	if _, err := sparse.Scale(a); err != nil {
		t.Fatal(err)
	}
	xTrue := problem.RandomVec(a.N, 44)
	b := make([]float64, a.N)
	a.MulVec(xTrue, b)

	solveWith := func(m Preconditioner) Result {
		res, err := Solve(a, b, make([]float64, a.N), m, Options{Tol: 1e-6, MaxIter: 3000, Flexible: m != nil})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := solveWith(nil)
	ds := solveWith(distPrec(t, a, core.DistSWD, 64, 30))
	if !ds.Converged {
		t.Fatal("DS-preconditioned CG did not converge")
	}
	if ds.Iterations >= plain.Iterations {
		t.Errorf("DS preconditioning did not reduce iterations: %d vs %d", ds.Iterations, plain.Iterations)
	}
}

func TestFlexibleMatchesPlainWithFixedPreconditioner(t *testing.T) {
	// With a fixed SPD preconditioner (identity), flexible and plain CG
	// follow the same trajectory.
	a, b, x0, _ := poissonSystem(t, 12, 45)
	p1, err := Solve(a, b, sparse.CopyVec(x0), Identity{}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Solve(a, b, sparse.CopyVec(x0), Identity{}, Options{Tol: 1e-10, Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Iterations != p2.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", p1.Iterations, p2.Iterations)
	}
}
