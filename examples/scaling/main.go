// Scaling example (Figures 8 and 9 of the paper): sweep the simulated
// process count on one suite matrix and watch Block Jacobi degrade while
// Parallel and Distributed Southwell stay stable, with Distributed
// Southwell needing the least communication throughout.
package main

import (
	"fmt"
	"log"

	"southwell/internal/core"
	"southwell/internal/problem"
)

func main() {
	entry, ok := problem.SuiteByName("msdoor")
	if !ok {
		log.Fatal("suite matrix missing")
	}
	a := entry.Build()
	fmt.Printf("%s stand-in: n=%d, nnz=%d; 50 parallel steps per run\n\n", entry.Name, a.N, a.NNZ())
	fmt.Printf("%6s | %12s %12s %12s | %10s %10s\n",
		"ranks", "BJ ||r||", "PS ||r||", "DS ||r||", "PS msgs/p", "DS msgs/p")

	for _, ranks := range []int{8, 16, 32, 64, 128, 256} {
		var norms [3]float64
		var comm [3]float64
		for i, m := range []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD} {
			b, x := problem.ZeroBSystem(a, 1)
			res, err := core.SolveDistributed(a, b, x, core.DistOptions{
				Method: m, Ranks: ranks, Steps: 50,
			})
			if err != nil {
				log.Fatal(err)
			}
			norms[i] = res.Final().ResNorm
			comm[i] = res.Stats.CommCost(ranks)
		}
		fmt.Printf("%6d | %12.4g %12.4g %12.4g | %10.1f %10.1f\n",
			ranks, norms[0], norms[1], norms[2], comm[1], comm[2])
	}
	fmt.Println("\nBlock Jacobi's 50-step residual grows with the rank count (values")
	fmt.Println("above 1 mean divergence); the Southwell methods degrade mildly.")
}
