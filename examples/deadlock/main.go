// Deadlock example (§2.4 of the paper): the 2016 piggyback-only
// implementation of Parallel Southwell stalls permanently once every
// rank's stale estimates convince it that a neighbor has a larger
// residual. Distributed Southwell's Γ̃ mechanism sends an explicit
// residual update exactly when a neighbor overestimates a rank, so it
// pushes straight past the same point.
package main

import (
	"fmt"
	"log"

	"southwell/internal/core"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func main() {
	a := problem.Poisson2D(40, 40)
	if _, err := sparse.Scale(a); err != nil {
		log.Fatal(err)
	}
	const ranks = 40

	b, x := problem.ZeroBSystem(a, 5)
	pb, err := core.SolveDistributed(a, b, x, core.DistOptions{
		Method: core.Piggyback2016, Ranks: ranks, Steps: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if pb.Deadlocked {
		fmt.Printf("piggyback-2016:        DEADLOCK at step %d, ||r|| stuck at %.4f\n",
			pb.DeadlockStep, pb.Final().ResNorm)
	} else {
		fmt.Printf("piggyback-2016:        no deadlock in %d steps (||r|| = %.4g)\n",
			len(pb.History)-1, pb.Final().ResNorm)
	}

	b2, x2 := problem.ZeroBSystem(a, 5)
	ds, err := core.SolveDistributed(a, b2, x2, core.DistOptions{
		Method: core.DistSWD, Ranks: ranks, Steps: pb.DeadlockStep + 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed southwell: ||r|| = %.6f after %d steps (%d explicit residual updates)\n",
		ds.Final().ResNorm, ds.Final().Step, ds.Stats.ResMsgs)
	fmt.Println("\nThe explicit updates are sent only on the deadlock-risk condition")
	fmt.Println("(a neighbor overestimating this rank), which is why Distributed")
	fmt.Println("Southwell cannot stall and still communicates far less than")
	fmt.Println("Parallel Southwell's update-on-every-change policy.")
}
