// Quickstart: solve one SPD system with the full method family, both in
// scalar (shared-memory) form and distributed over simulated ranks, and
// print a side-by-side comparison — the fastest way to see what the
// library does and why Distributed Southwell exists.
package main

import (
	"fmt"
	"log"

	"southwell/internal/core"
	"southwell/internal/problem"
	"southwell/internal/sparse"
)

func main() {
	// A small irregular finite element Poisson problem (the paper's §2.3
	// example), symmetrically scaled to unit diagonal.
	a := problem.FEM2D(40, 0.35, 7)
	if _, err := sparse.Scale(a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FEM Poisson problem: n=%d, nnz=%d\n\n", a.N, a.NNZ())

	// --- Scalar methods: residual norm after two sweeps of relaxations.
	fmt.Println("scalar methods, 2 sweeps (residual norm, parallel steps):")
	for _, m := range core.ScalarMethods() {
		b, x := problem.RandomBSystem(a, 42)
		tr, _, err := core.SolveScalar(a, b, x, core.ScalarOptions{Method: m, MaxRelax: 2 * a.N})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s ||r|| = %.4f   steps = %d\n", tr.Method, tr.Final().ResNorm, tr.NumSteps())
	}

	// --- Distributed methods over 32 simulated ranks.
	fmt.Println("\ndistributed methods, 32 ranks, 30 parallel steps:")
	for _, m := range []core.DistMethod{core.BlockJacobi, core.ParallelSWD, core.DistSWD} {
		b, x := problem.ZeroBSystem(a, 42)
		res, err := core.SolveDistributed(a, b, x, core.DistOptions{Method: m, Ranks: 32, Steps: 30})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s ||r|| = %.4f   msgs/rank = %7.2f  (solve %d + residual %d)\n",
			res.Method, res.Final().ResNorm, res.Stats.CommCost(res.P),
			res.Stats.SolveMsgs, res.Stats.ResMsgs)
	}
	fmt.Println("\nNote how Distributed Southwell matches Parallel Southwell's")
	fmt.Println("convergence with a fraction of the residual-update messages.")
}
