// Multigrid smoothing example (§4.1 of the paper): use Distributed
// Southwell as the smoother in a geometric multigrid V-cycle for the 2D
// Poisson equation and compare against Gauss-Seidel smoothing, including
// the "1/2 sweep" variant that relaxes only half as many rows per
// smoothing step.
package main

import (
	"fmt"
	"log"

	"southwell/internal/multigrid"
	"southwell/internal/problem"
)

func main() {
	const nx = 127
	n := nx * nx
	fmt.Printf("2D Poisson, %dx%d grid, V(1,1) cycles down to 3x3\n\n", nx, nx)

	smoothers := []multigrid.Smoother{
		multigrid.GaussSeidel{},
		multigrid.DistSW{SweepFraction: 0.5, Seed: 11},
		multigrid.DistSW{SweepFraction: 1, Seed: 11},
	}
	for _, sm := range smoothers {
		h, err := multigrid.New(nx, sm)
		if err != nil {
			log.Fatal(err)
		}
		b := problem.RandomVec(n, 3)
		x := make([]float64, n)
		hist := h.Solve(b, x, 9)
		fmt.Printf("%-18s rel. residual per V-cycle:", sm.Name())
		for _, v := range hist {
			fmt.Printf(" %8.1e", v)
		}
		fmt.Println()
	}
	fmt.Println("\nDistributed Southwell smoothing is grid-size independent and,")
	fmt.Println("per relaxation, more efficient than Gauss-Seidel (Figure 6).")
}
