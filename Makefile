# Tier-1 verification for the southwell repo. `make verify` is the gate:
# build + vet + full test suite + race-mode runtime/method tests + a chaos
# smoke run of both binaries.

GO ?= go

.PHONY: build test vet lint lint-fix lint-cache-check race chaos-smoke bench-kernels bench-ldl bench-obs bench-scale bench-active verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet that need no external tools: formatting drift
# fails the build (gofmt prints nothing when clean), then the project's own
# determinism/fault-safety analyzers (cmd/dslint) run over the whole module
# through the parallel content-hash-cached driver (.dslintcache): packages
# are analyzed concurrently across the import DAG and a warm run re-analyzes
# only what changed, so repeated `make lint` is near-instant. dslint prints
# one file:line:col per finding and exits non-zero on any.
lint: vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) run ./cmd/dslint ./...

# Apply dslint's machine-applicable fixes (today: deleting stale
# //dslint:ignore directives), then report whatever findings remain.
lint-fix:
	$(GO) run ./cmd/dslint -fix ./...

# Assert the warm-cache contract CI relies on: a second run over an
# unchanged tree re-analyzes zero packages and prints byte-identical
# findings. Run after `make lint` (which populates .dslintcache).
lint-cache-check:
	@$(GO) run ./cmd/dslint -stats ./... >/tmp/dslint.cold 2>/tmp/dslint.cold.err || true
	@$(GO) run ./cmd/dslint -stats ./... >/tmp/dslint.warm 2>/tmp/dslint.warm.err || true
	@grep -q ', 0 analyzed,' /tmp/dslint.warm.err || { \
		echo "warm dslint run re-analyzed packages:"; cat /tmp/dslint.warm.err; exit 1; }
	@cmp -s /tmp/dslint.cold /tmp/dslint.warm || { \
		echo "warm dslint output differs from cold run"; exit 1; }
	@echo "dslint warm cache OK: 0 packages re-analyzed, output byte-identical"

# The engine-equivalence, chaos-determinism, pool, and parallel-kernel
# tests under the race detector: together they prove the worker pools are
# race-free and bit-identical to their sequential forms, faults included
# (DESIGN.md §6, §9).
race:
	$(GO) test -race ./internal/rma/... ./internal/dmem/... ./internal/parallel/... ./internal/sparse/... ./internal/spdirect/... ./internal/obs/...

# End-to-end fault-injection smoke: both binaries on a small problem with
# delay faults. Exercises flag validation, the chaos table, and the
# watchdog verdict path outside the unit tests.
chaos-smoke: build
	$(GO) run ./cmd/dsouthwell -grid 40 -n 16 -sweep_max 15 -chaos 0.3 >/dev/null
	$(GO) run ./cmd/benchtables -quick -ranks 32 -steps 40 -par 4 chaos >/dev/null

# Kernel smoke: the allocs/op regression gate against BENCH_kernels.json
# plus one iteration of each kernel benchmark, so a steady-state allocation
# or an outright kernel breakage fails verify without a long bench run.
bench-kernels:
	$(GO) test -run 'TestKernelAllocGate' ./internal/sparse/
	$(GO) test -bench 'BenchmarkKernels' -benchtime 1x -run '^$$' ./internal/sparse/ >/dev/null

# LDL' smoke: the allocs/op regression gate against BENCH_ldl.json (Solve
# and Refactor must stay allocation-free) plus one iteration of each
# sparse-pipeline benchmark. The dense baseline (BenchmarkDenseLU) is
# deliberately excluded -- its O(n^3) factor would add minutes to verify.
bench-ldl:
	$(GO) test -run 'TestLDLAllocGate' ./internal/spdirect/
	$(GO) test -bench 'BenchmarkLDL' -benchtime 1x -run '^$$' ./internal/spdirect/ >/dev/null

# Observability smoke: the allocs/op regression gate against BENCH_obs.json
# (the disabled emit path, the enabled ring write, and a fully traced phase
# must all stay allocation-free) plus one iteration of the obs benchmarks.
bench-obs:
	$(GO) test -run 'TestObsAllocGate' ./internal/obs/
	$(GO) test -bench 'BenchmarkObs' -benchtime 1x -run '^$$' ./internal/obs/ >/dev/null

# Scheduler smoke: the allocs/op regression gate against BENCH_scale.json
# (a neighborhood-scheduled phase group must stay allocation-free in steady
# state — the memory discipline that makes the 4096/8192-rank rungs of the
# scaling study CI-feasible) plus one iteration of the scheduler benchmark.
# The full host-time ladder lives in `benchtables scaling` (results/
# scaling.txt), not in verify.
bench-scale:
	$(GO) test -run 'TestScaleAllocGate' ./internal/rma/
	$(GO) test -bench 'BenchmarkScalePhases' -benchtime 1x -run '^$$' ./internal/rma/ >/dev/null

# Active-set smoke: the allocs/op regression gate against BENCH_active.json
# (one RunPhaseActive over a warmed world must stay allocation-free in
# steady state on both engines — the discipline that lets paper-scale DS
# runs step in O(active work)) plus one iteration of the active benchmark.
bench-active:
	$(GO) test -run 'TestActiveAllocGate' ./internal/rma/
	$(GO) test -bench 'BenchmarkActivePhases' -benchtime 1x -run '^$$' ./internal/rma/ >/dev/null

verify: build lint test race chaos-smoke bench-kernels bench-ldl bench-obs bench-scale bench-active

# Micro-benchmarks for the phase engine, message path, numerical kernels,
# and sparse local solver (see BENCH_rma.json, BENCH_kernels.json, and
# BENCH_ldl.json for recorded baselines).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/rma/ ./internal/dmem/ ./internal/bench/ ./internal/sparse/ ./internal/spdirect/ ./internal/obs/

clean:
	$(GO) clean ./...
