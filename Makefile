# Tier-1 verification for the southwell repo. `make verify` is the gate:
# build + vet + full test suite + race-mode runtime/method tests + a chaos
# smoke run of both binaries.

GO ?= go

.PHONY: build test vet lint race chaos-smoke bench-kernels verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet that need no external tools: formatting drift
# fails the build (gofmt prints nothing when clean), then the project's own
# determinism/fault-safety analyzers (cmd/dslint) run over the whole module.
# dslint prints one file:line:col per finding and exits non-zero on any.
lint: vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) run ./cmd/dslint ./...

# The engine-equivalence, chaos-determinism, pool, and parallel-kernel
# tests under the race detector: together they prove the worker pools are
# race-free and bit-identical to their sequential forms, faults included
# (DESIGN.md §6, §9).
race:
	$(GO) test -race ./internal/rma/... ./internal/dmem/... ./internal/parallel/... ./internal/sparse/...

# End-to-end fault-injection smoke: both binaries on a small problem with
# delay faults. Exercises flag validation, the chaos table, and the
# watchdog verdict path outside the unit tests.
chaos-smoke: build
	$(GO) run ./cmd/dsouthwell -grid 40 -n 16 -sweep_max 15 -chaos 0.3 >/dev/null
	$(GO) run ./cmd/benchtables -quick -ranks 32 -steps 40 -par 4 chaos >/dev/null

# Kernel smoke: the allocs/op regression gate against BENCH_kernels.json
# plus one iteration of each kernel benchmark, so a steady-state allocation
# or an outright kernel breakage fails verify without a long bench run.
bench-kernels:
	$(GO) test -run 'TestKernelAllocGate' ./internal/sparse/
	$(GO) test -bench 'BenchmarkKernels' -benchtime 1x -run '^$$' ./internal/sparse/ >/dev/null

verify: build lint test race chaos-smoke bench-kernels

# Micro-benchmarks for the phase engine, message path, and numerical
# kernels (see BENCH_rma.json and BENCH_kernels.json for recorded
# baselines).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/rma/ ./internal/dmem/ ./internal/bench/ ./internal/sparse/

clean:
	$(GO) clean ./...
