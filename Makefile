# Tier-1 verification for the southwell repo. `make verify` is the gate:
# build + vet + full test suite + race-mode runtime/method tests.

GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine-equivalence and pool tests under the race detector: together
# they prove the worker-pool engine is race-free and bit-identical to the
# sequential engine (DESIGN.md §6).
race:
	$(GO) test -race ./internal/rma/... ./internal/dmem/...

verify: build vet test race

# Micro-benchmarks for the phase engine and message path (see BENCH_rma.json
# for recorded baselines).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/rma/ ./internal/dmem/ ./internal/bench/

clean:
	$(GO) clean ./...
