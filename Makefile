# Tier-1 verification for the southwell repo. `make verify` is the gate:
# build + vet + full test suite + race-mode runtime/method tests + a chaos
# smoke run of both binaries.

GO ?= go

.PHONY: build test vet lint race chaos-smoke verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet that need no external tools: formatting drift
# fails the build (gofmt prints nothing when clean), then the project's own
# determinism/fault-safety analyzers (cmd/dslint) run over the whole module.
# dslint prints one file:line:col per finding and exits non-zero on any.
lint: vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) run ./cmd/dslint ./...

# The engine-equivalence, chaos-determinism, and pool tests under the race
# detector: together they prove the worker-pool engine is race-free and
# bit-identical to the sequential engine, faults included (DESIGN.md §6).
race:
	$(GO) test -race ./internal/rma/... ./internal/dmem/...

# End-to-end fault-injection smoke: both binaries on a small problem with
# delay faults. Exercises flag validation, the chaos table, and the
# watchdog verdict path outside the unit tests.
chaos-smoke: build
	$(GO) run ./cmd/dsouthwell -grid 40 -n 16 -sweep_max 15 -chaos 0.3 >/dev/null
	$(GO) run ./cmd/benchtables -quick -ranks 32 -steps 40 -par 4 chaos >/dev/null

verify: build lint test race chaos-smoke

# Micro-benchmarks for the phase engine and message path (see BENCH_rma.json
# for recorded baselines).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/rma/ ./internal/dmem/ ./internal/bench/

clean:
	$(GO) clean ./...
